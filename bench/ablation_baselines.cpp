// Ablation: the Section-2 motivation quantified. Compares the paper's
// multicast trees against the two pre-wormhole baselines — separate
// addressing (one unicast per destination) and the store-and-forward
// relay tree — in simulated delay and in the number of non-destination
// processors that must handle the message.

#include <cstdio>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(6);
  const std::size_t sets = ctx.quick ? 4 : 20;

  metrics::Series delay("Ablation: baselines vs multicast trees (6-cube)",
                        "destinations", "avg delay (us)");
  metrics::Series relays("Non-destination processors handling the message",
                         "destinations", "relay processors");
  for (const std::size_t m : {4u, 8u, 16u, 32u, 48u, 63u}) {
    for (std::size_t trial = 0; trial < sets; ++trial) {
      workload::Rng rng(workload::derive_seed(607, m, trial));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      for (const auto& algo : core::all_algorithms()) {
        const auto schedule = algo.build(req);
        sim::SimConfig config;
        const auto result = sim::simulate_multicast(schedule, config);
        delay.add_sample(algo.display, static_cast<double>(m),
                         result.avg_delay(req.destinations) / 1000.0);
        relays.add_sample(
            algo.display, static_cast<double>(m),
            static_cast<double>(
                schedule.relay_processors(req.destinations).size()));
      }
    }
  }
  std::fputs(metrics::format_table(delay).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(relays).c_str(), stdout);
  std::puts(
      "\nReading: separate addressing serializes at the source and the\n"
      "SF tree burdens relay processors; the unicast-tree algorithms\n"
      "involve only destination processors and finish far sooner.");
  bench::summarize_series(report, delay);
  bench::summarize_series(report, relays);
}

const bench::Registration reg{
    {"ablation_baselines", bench::Kind::Ablation,
     "multicast trees vs separate addressing and the store-and-forward "
     "relay tree (6-cube)",
     run}};

}  // namespace
