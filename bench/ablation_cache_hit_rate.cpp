// Ablation: what the ScheduleCache is worth per workload pattern. Each
// pattern is a full collective's schedule-construction phase, served
// end-to-end through the ServePipeline with and without a cache:
//
//   broadcast_all_sources — a broadcast from every node (all 2^n sources
//       share one relative chain: all-ones). The cache pays one tree
//       construction plus 2^n translations, then every later round is
//       pure hits.
//   all_to_all — the translated-multicast all-to-all: one random
//       relative chain, requested from every source as (u, D ^ u).
//   hot_repeated — one (source, destinations) pair served over and over
//       (a hot collective replayed every iteration).
//   clustered — a few shapes under random translations (mixed serving
//       traffic; the micro_schedule_cache steady-state workload).
//   random_unique — every request a fresh random chain: the adversarial
//       floor, ~0% hit rate, measures the all-miss overhead.
//
// Reports per-pattern cached and uncached serve rates, the end-to-end
// speedup, and the steady-state hit rate. Measures both modes regardless
// of --cache (the flag only picks which artifact the run gates against).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "harness/bench.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

struct Pattern {
  std::string name;
  std::vector<core::MulticastRequest> stream;
  bool unique = false;  ///< never repeats: clear the cache on wrap-around
};

/// Best of several interleaved timing passes: these rates feed the
/// regression gate and a transient load burst can halve any single
/// sample, so take the max per side — and alternate cold/warm passes so
/// a burst degrades both sides of the speedup ratio alike.
template <typename ColdFn, typename WarmFn>
std::pair<bench::Rate, bench::Rate> best_rates_interleaved(
    double min_seconds, ColdFn&& cold, WarmFn&& warm) {
  bench::Rate best_cold, best_warm;
  for (int pass = 0; pass < 5; ++pass) {
    const bench::Rate c = bench::measure_rate(min_seconds, cold);
    const bench::Rate w = bench::measure_rate(min_seconds, warm);
    if (c.per_second() > best_cold.per_second()) best_cold = c;
    if (w.per_second() > best_warm.per_second()) best_warm = w;
  }
  return {best_cold, best_warm};
}

std::vector<hcube::NodeId> translate_chain(
    const std::vector<hcube::NodeId>& chain, hcube::NodeId source) {
  std::vector<hcube::NodeId> dests;
  dests.reserve(chain.size());
  for (const hcube::NodeId d : chain) {
    const auto t = static_cast<hcube::NodeId>(d ^ source);
    if (t != source) dests.push_back(t);
  }
  return dests;
}

std::vector<Pattern> make_patterns(const hcube::Topology& topo,
                                   std::size_t requests, std::size_t m,
                                   std::uint64_t seed) {
  const std::size_t nodes = topo.num_nodes();
  std::vector<Pattern> patterns;

  {  // Broadcast from every source, round-robin over all 2^n sources.
    std::vector<hcube::NodeId> all;
    for (hcube::NodeId d = 1; d < static_cast<hcube::NodeId>(nodes); ++d) {
      all.push_back(d);
    }
    Pattern p{"broadcast_all_sources", {}, false};
    for (std::size_t i = 0; i < requests; ++i) {
      const auto source = static_cast<hcube::NodeId>(i % nodes);
      p.stream.push_back(core::MulticastRequest{
          topo, source, translate_chain(all, source)});
    }
    patterns.push_back(std::move(p));
  }

  {  // Translated-multicast all-to-all: (u, D ^ u) for every u.
    workload::Rng rng(workload::derive_seed(seed, 1, 0));
    const auto chain = workload::random_destinations(topo, 0, m, rng);
    Pattern p{"all_to_all", {}, false};
    for (std::size_t i = 0; i < requests; ++i) {
      const auto source = static_cast<hcube::NodeId>(i % nodes);
      p.stream.push_back(core::MulticastRequest{
          topo, source, translate_chain(chain, source)});
    }
    patterns.push_back(std::move(p));
  }

  {  // One hot (source, destinations) pair.
    workload::Rng rng(workload::derive_seed(seed, 2, 0));
    const auto source = static_cast<hcube::NodeId>(rng() % nodes);
    const auto dests = workload::random_destinations(topo, source, m, rng);
    Pattern p{"hot_repeated", {}, false};
    for (std::size_t i = 0; i < requests; ++i) {
      p.stream.push_back(core::MulticastRequest{topo, source, dests});
    }
    patterns.push_back(std::move(p));
  }

  {  // A few shapes under random translations.
    workload::Rng rng(workload::derive_seed(seed, 3, 0));
    std::vector<std::vector<hcube::NodeId>> chains;
    for (std::size_t s = 0; s < 8; ++s) {
      chains.push_back(workload::random_destinations(topo, 0, m, rng));
    }
    Pattern p{"clustered", {}, false};
    for (std::size_t i = 0; i < requests; ++i) {
      const auto source = static_cast<hcube::NodeId>(rng() % nodes);
      p.stream.push_back(core::MulticastRequest{
          topo, source, translate_chain(chains[i % chains.size()], source)});
    }
    patterns.push_back(std::move(p));
  }

  {  // Every request distinct: the cache's adversarial floor.
    workload::Rng rng(workload::derive_seed(seed, 4, 0));
    Pattern p{"random_unique", {}, true};
    for (std::size_t i = 0; i < requests; ++i) {
      const auto source = static_cast<hcube::NodeId>(rng() % nodes);
      p.stream.push_back(core::MulticastRequest{
          topo, source, workload::random_destinations(topo, source, m, rng)});
    }
    patterns.push_back(std::move(p));
  }

  return patterns;
}

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(8);
  const std::size_t m = 64;
  const std::size_t requests = ctx.quick ? 256 : 1024;
  const char* algorithm = "wsort";

  coll::ScheduleCache::Config config;
  if (ctx.cache_shards != 0) config.shards = ctx.cache_shards;
  if (ctx.cache_bytes != 0) config.max_bytes = ctx.cache_bytes;

  std::puts("  pattern                  uncached/s    cached/s  speedup  "
            "hit rate");
  for (auto& pattern : make_patterns(topo, requests, m, ctx.seed)) {
    const coll::ServePipeline uncached(algorithm, nullptr);
    const auto cache = std::make_shared<coll::ScheduleCache>(config);
    const coll::ServePipeline cached(algorithm, cache);

    if (!pattern.unique) {  // reach steady state before timing
      for (const auto& req : pattern.stream) (void)cached.serve(req);
    }
    const auto before = cache->stats();
    std::size_t ci = 0, wi = 0;
    const auto [cold, warm] = best_rates_interleaved(
        ctx.min_time(0.15),
        [&] {
          (void)uncached.serve(pattern.stream[ci]);
          ci = (ci + 1) % pattern.stream.size();
        },
        [&] {
          (void)cached.serve(pattern.stream[wi]);
          wi = (wi + 1) % pattern.stream.size();
          if (pattern.unique && wi == 0) cache->clear();
        });
    const auto after = cache->stats();

    // Field naming follows ScheduleCache::Stats::for_each_field — the
    // same names the --stats JSON exposition uses for the cache gauge.
    const double lookups =
        static_cast<double>(after.lookups() - before.lookups());
    const double hit_rate =
        lookups > 0.0
            ? static_cast<double>(after.total_hits() - before.total_hits()) /
                  lookups
            : 0.0;
    const double speedup = cold.per_second() > 0.0
                               ? warm.per_second() / cold.per_second()
                               : 0.0;

    report.metric(pattern.name + " uncached_serves_per_sec",
                  cold.per_second());
    report.metric(pattern.name + " cached_serves_per_sec", warm.per_second());
    report.metric(pattern.name + " speedup", speedup);
    report.metric(pattern.name + " hit_rate", hit_rate);
    std::printf("  %-22s %12.0f %12.0f  %6.2fx   %5.1f%%\n",
                pattern.name.c_str(), cold.per_second(), warm.per_second(),
                speedup, hit_rate * 100.0);
  }
  std::puts(
      "\nReading: translation-sharing patterns (broadcast sweeps,\n"
      "translated all-to-alls, hot or clustered shapes) amortize tree\n"
      "construction down to a key canonicalization. Fully unique traffic\n"
      "is the floor: every serve pays the build plus the materialization\n"
      "and insert overhead (~0.6-0.7x of uncached) — the premium for the\n"
      "6x+ payoff whenever any chain shape repeats.");
}

const bench::Registration reg{
    {"ablation_cache_hit_rate", bench::Kind::Ablation,
     "schedule-cache speedup per collective workload pattern (8-cube)",
     run}};

}  // namespace
