// Ablation: how good is weighted_sort's crowding heuristic? For random
// destination sets small enough to enumerate the ENTIRE cube-ordered
// chain space (every input Theorem 6 admits for Maxport), compare the
// W-sort step count against the exhaustive optimum.

#include <cstdio>
#include <string>
#include <vector>

#include "core/chain_search.hpp"
#include "core/wsort.hpp"
#include "harness/bench.hpp"
#include "metrics/stats.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(6);
  const std::size_t trials = ctx.quick ? 10 : 60;
  const std::vector<std::size_t> sizes =
      ctx.quick ? std::vector<std::size_t>{4, 6, 8}
                : std::vector<std::size_t>{4, 6, 8, 10, 12};

  std::puts(
      "Ablation: W-sort heuristic vs exhaustive best cube-ordered chain\n"
      "(6-cube, all-port steps; 'space' = admissible chains enumerated)\n");
  std::puts(
      "  m   optimal-rate   avg W-sort   avg optimal   avg gap   avg space");
  for (const std::size_t m : sizes) {
    std::size_t optimal_hits = 0;
    metrics::OnlineStats wsort_steps;
    metrics::OnlineStats best_steps;
    metrics::OnlineStats space;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      workload::Rng rng(workload::derive_seed(608, m, trial));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      const auto best = core::best_cube_ordered_chain(req);
      const int heuristic =
          core::assign_steps(core::wsort(req), core::PortModel::all_port(),
                             req.destinations)
              .total_steps;
      if (heuristic == best.best_steps) ++optimal_hits;
      wsort_steps.add(heuristic);
      best_steps.add(best.best_steps);
      space.add(static_cast<double>(best.chains_examined));
    }
    const double optimal_rate = 100.0 * static_cast<double>(optimal_hits) /
                                static_cast<double>(trials);
    std::printf("%3zu   %10.0f%%   %10.2f   %11.2f   %7.2f   %9.0f\n", m,
                optimal_rate, wsort_steps.mean(), best_steps.mean(),
                wsort_steps.mean() - best_steps.mean(), space.mean());
    const std::string suffix = " @ m=" + std::to_string(m);
    report.metric("optimal_rate_pct" + suffix, optimal_rate);
    report.metric("avg_gap_steps" + suffix,
                  wsort_steps.mean() - best_steps.mean());
    report.metric("avg_chain_space" + suffix, space.mean());
  }
  std::puts(
      "\nReading: the greedy crowded-half rule recovers the exhaustive\n"
      "optimum in every sampled instance at these sizes (and its gap is\n"
      "bounded by a fraction of a step wherever it misses at larger m) —\n"
      "evidence the paper's heuristic leaves essentially nothing on the\n"
      "table within the chain-based design space.");
}

const bench::Registration reg{
    {"ablation_chain_search", bench::Kind::Ablation,
     "W-sort heuristic vs exhaustive best cube-ordered chain (6-cube)",
     run}};

}  // namespace
