// Ablation: channel-load footprints. Contention avoidance is load
// spreading: this bench reports, per algorithm, how many distinct
// channels a multicast touches and how hot the hottest channel gets —
// the static explanation for the dynamic delay results of Figs 11-14.

#include <cstdio>

#include "core/channel_load.hpp"
#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(8);
  const std::size_t sets = ctx.quick ? 5 : 40;

  metrics::Series max_load("Ablation: hottest-channel load (8-cube)",
                           "destinations", "max crossings per channel");
  metrics::Series used("Distinct channels used", "destinations", "channels");
  for (const std::size_t m : {16u, 32u, 64u, 128u, 255u}) {
    for (std::size_t trial = 0; trial < sets; ++trial) {
      workload::Rng rng(workload::derive_seed(613, m, trial));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      for (const auto& algo : core::all_algorithms()) {
        const auto schedule = algo.build(req);
        const auto load = core::analyze_channel_load(
            schedule,
            core::assign_steps(schedule, core::PortModel::all_port()));
        max_load.add_sample(algo.display, static_cast<double>(m),
                            static_cast<double>(load.max_load));
        used.add_sample(algo.display, static_cast<double>(m),
                        static_cast<double>(load.channels_used));
      }
    }
  }
  std::fputs(metrics::format_table(max_load).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(used).c_str(), stdout);
  std::puts(
      "\nReading: Maxport and W-sort never cross any channel twice (max\n"
      "load 1.00 — the static face of Theorem 6); U-cube's hot channel\n"
      "gets reused several times and separate addressing's first-hop\n"
      "channels absorb whole destination groups.");
  bench::summarize_series(report, max_load);
  bench::summarize_series(report, used);
}

const bench::Registration reg{
    {"ablation_channel_load", bench::Kind::Ablation,
     "hottest-channel load and distinct channels used per algorithm "
     "(8-cube)",
     run}};

}  // namespace
