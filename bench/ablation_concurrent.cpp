// Ablation: k concurrent multicasts on one shared network. The paper
// evaluates one multicast at a time; real redistribution phases launch
// several at once. This sweep grows the number of simultaneous 4 KiB
// multicasts (random sources, 32 random destinations each) on a 6-cube
// and reports the phase makespan and the channel waiting it induces.

#include <cstdio>
#include <vector>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(6);
  const std::size_t trials = ctx.quick ? 3 : 15;
  const std::size_t dests_per_job = 32;

  metrics::Series makespan(
      "Ablation: k concurrent 32-destination multicasts (6-cube, 4 KiB)",
      "concurrent multicasts", "phase makespan (us)");
  metrics::Series waits("Channel waits induced by concurrency",
                        "concurrent multicasts", "blocked acquisitions");
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    for (std::size_t trial = 0; trial < trials; ++trial) {
      workload::Rng rng(workload::derive_seed(612, k, trial));
      for (const auto& algo : core::paper_algorithms()) {
        std::vector<core::MulticastSchedule> schedules;
        schedules.reserve(k);
        for (std::size_t j = 0; j < k; ++j) {
          const auto source = static_cast<hcube::NodeId>(rng() % 64);
          const auto dests =
              workload::random_destinations(topo, source, dests_per_job, rng);
          schedules.push_back(
              algo.build(core::MulticastRequest{topo, source, dests}));
        }
        std::vector<sim::CollectiveJob> jobs;
        for (const auto& s : schedules) {
          jobs.push_back(sim::CollectiveJob{&s, 0});
        }
        const sim::SimConfig config;
        const auto result = sim::simulate_collectives(jobs, config);
        makespan.add_sample(algo.display, static_cast<double>(k),
                            sim::to_microseconds(result.makespan()));
        waits.add_sample(algo.display, static_cast<double>(k),
                         static_cast<double>(
                             result.stats.blocked_acquisitions));
      }
    }
  }
  std::fputs(metrics::format_table(makespan).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(waits).c_str(), stdout);
  std::puts(
      "\nReading: per-multicast contention-freedom (Theorem 6) cannot\n"
      "protect across independent multicasts, so waits grow with k for\n"
      "every algorithm — but the spread trees start from disjoint\n"
      "channels far more often, so W-sort's makespan degrades most\n"
      "gracefully. Scheduling the phase is the runtime's job; this bench\n"
      "is the tool for exploring it.");
  bench::summarize_series(report, makespan);
  bench::summarize_series(report, waits);
}

const bench::Registration reg{
    {"ablation_concurrent", bench::Kind::Ablation,
     "k concurrent multicasts on one shared 6-cube network", run}};

}  // namespace
