// Ablation: contention-aware co-scheduling of concurrent multicasts vs
// oblivious superposition. The serving front end admits many
// simultaneous multicasts from different sources; launched obliviously
// they fight for the same directed channels (ablation_concurrent shows
// the damage). coll::CoScheduler packs the batch into waves whose
// per-arc overlap stays under a bound; this sweep replays both launch
// plans through the wormhole DES on the new concurrent workloads
// (multi-tenant, bursty-arrival, hot-spot) and reports the delay and
// blocked-cycle win, plus the planning throughput the regression gate
// watches.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "coll/coscheduler.hpp"
#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/concurrent.hpp"

namespace {

using namespace hypercast;

struct WorkloadRun {
  const char* name;
  std::vector<workload::ConcurrentRequest> requests;
};

struct ModeTotals {
  double blocked_acq = 0.0;
  double blocked_us = 0.0;
  double makespan_us = 0.0;   ///< summed over trials (mean via divide)
  double max_delay_us = 0.0;  ///< worst per-multicast delay, summed
};

// The paper's "max delay" (Figures 11-14) is per multicast, measured
// from the moment the source injects. Delivery times in MultiSimResult
// are absolute, so each job's delay is its worst delivery minus its own
// launch time; the workload-level figure is the worst job.
double worst_job_delay_us(const sim::MultiSimResult& result,
                          std::span<const sim::CollectiveJob> jobs) {
  sim::SimTime worst = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    worst = std::max(worst, result.per_job[i].max_delay() - jobs[i].start);
  }
  return sim::to_microseconds(worst);
}

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(6);
  const auto& wsort = core::find_algorithm("wsort");
  const std::size_t trials = ctx.quick ? 2 : 8;
  const coll::CoschedPolicy policy;  // the documented defaults

  metrics::Series blocked("Co-scheduled vs oblivious channel blocking "
                          "(6-cube, 4 KiB, W-sort trees)",
                          "trial", "blocked acquisitions");
  metrics::Series makespan("Phase makespan under both launch plans",
                           "trial", "phase makespan (us)");

  double predicted_overlap_sum = 0.0;
  double trials_counted = 0.0;
  for (const char* wl : {"multi_tenant", "bursty", "hot_spot"}) {
    ModeTotals oblivious, cosched;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      workload::Rng rng(workload::derive_seed(
          7193, static_cast<std::uint64_t>(wl[0]), trial));
      std::vector<workload::ConcurrentRequest> requests;
      if (std::string_view(wl) == "multi_tenant") {
        requests = workload::multi_tenant_mix(topo, 4, 6, 24, rng);
      } else if (std::string_view(wl) == "bursty") {
        requests = workload::bursty_arrivals(topo, 3, 8, 16, 1'000'000, rng);
      } else {
        requests = workload::hot_spot_mix(topo, 24, 16, 8, rng);
      }

      std::vector<core::MulticastSchedule> schedules;
      schedules.reserve(requests.size());
      for (const auto& r : requests) {
        schedules.push_back(wsort.build(
            core::MulticastRequest{topo, r.source, r.destinations}));
      }
      std::vector<const core::MulticastSchedule*> ptrs;
      for (const auto& s : schedules) ptrs.push_back(&s);

      // Oblivious superposition: every tree launches at its arrival.
      std::vector<sim::CollectiveJob> oblivious_jobs;
      for (std::size_t i = 0; i < schedules.size(); ++i) {
        oblivious_jobs.push_back(sim::CollectiveJob{
            &schedules[i],
            static_cast<sim::SimTime>(requests[i].arrival_ns)});
      }

      // Co-scheduled: the same trees, staggered into bounded waves
      // (arrival offsets ride on top of the wave offsets).
      coll::CoScheduler scheduler(policy);
      const coll::CoschedPlan plan =
          scheduler.plan(std::span<const core::MulticastSchedule* const>(ptrs));
      std::vector<sim::CollectiveJob> cosched_jobs;
      for (const auto& wave : plan.waves) {
        for (const std::size_t idx : wave.members) {
          cosched_jobs.push_back(sim::CollectiveJob{
              &schedules[idx],
              static_cast<sim::SimTime>(requests[idx].arrival_ns +
                                        wave.start_offset_ns)});
        }
      }
      predicted_overlap_sum += plan.peak_overlap;
      trials_counted += 1.0;

      const sim::SimConfig config;
      const auto base = sim::simulate_collectives(oblivious_jobs, config);
      const auto planned = sim::simulate_collectives(cosched_jobs, config);

      oblivious.blocked_acq +=
          static_cast<double>(base.stats.blocked_acquisitions);
      oblivious.blocked_us +=
          static_cast<double>(base.stats.total_blocked_ns) / 1e3;
      oblivious.makespan_us += sim::to_microseconds(base.makespan());
      oblivious.max_delay_us += worst_job_delay_us(base, oblivious_jobs);
      cosched.blocked_acq +=
          static_cast<double>(planned.stats.blocked_acquisitions);
      cosched.blocked_us +=
          static_cast<double>(planned.stats.total_blocked_ns) / 1e3;
      cosched.makespan_us += sim::to_microseconds(planned.makespan());
      cosched.max_delay_us += worst_job_delay_us(planned, cosched_jobs);

      const auto x = static_cast<double>(trial);
      blocked.add_sample(std::string(wl) + " oblivious", x,
                         static_cast<double>(base.stats.blocked_acquisitions));
      blocked.add_sample(
          std::string(wl) + " cosched", x,
          static_cast<double>(planned.stats.blocked_acquisitions));
      makespan.add_sample(std::string(wl) + " oblivious", x,
                          sim::to_microseconds(base.makespan()));
      makespan.add_sample(std::string(wl) + " cosched", x,
                          sim::to_microseconds(planned.makespan()));
    }

    const double t = static_cast<double>(trials);
    const std::string prefix(wl);
    report.metric(prefix + "_blocked_acq_oblivious", oblivious.blocked_acq / t);
    report.metric(prefix + "_blocked_acq_cosched", cosched.blocked_acq / t);
    report.metric(prefix + "_blocked_us_oblivious", oblivious.blocked_us / t);
    report.metric(prefix + "_blocked_us_cosched", cosched.blocked_us / t);
    report.metric(prefix + "_makespan_us_oblivious",
                  oblivious.makespan_us / t);
    report.metric(prefix + "_makespan_us_cosched", cosched.makespan_us / t);
    report.metric(prefix + "_max_delay_us_oblivious",
                  oblivious.max_delay_us / t);
    report.metric(prefix + "_max_delay_us_cosched", cosched.max_delay_us / t);
    report.metric(prefix + "_blocked_cycle_reduction",
                  oblivious.blocked_us > 0.0
                      ? 1.0 - cosched.blocked_us / oblivious.blocked_us
                      : 0.0);
  }
  // Predicted-vs-simulated contention: the plan promises this mean peak
  // per-arc overlap; the blocked_acq/blocked_us metrics above are what
  // the DES actually charged for it.
  report.metric("predicted_peak_overlap_mean",
                trials_counted > 0.0 ? predicted_overlap_sum / trials_counted
                                     : 0.0);

  // Planning throughput (the regression-gated rate): plan a fresh
  // 12-tree hot-spot batch per iteration, scoring every tree's arc
  // footprint against the shared load map.
  workload::Rng rate_rng(workload::derive_seed(7193, 0x77, 0));
  const auto rate_requests = workload::hot_spot_mix(topo, 12, 16, 8, rate_rng);
  std::vector<core::MulticastSchedule> rate_schedules;
  for (const auto& r : rate_requests) {
    rate_schedules.push_back(
        wsort.build(core::MulticastRequest{topo, r.source, r.destinations}));
  }
  std::vector<const core::MulticastSchedule*> rate_ptrs;
  for (const auto& s : rate_schedules) rate_ptrs.push_back(&s);
  coll::CoScheduler rate_scheduler(policy);
  const auto rate = bench::measure_rate(ctx.min_time(0.5), [&] {
    const auto p = rate_scheduler.plan(
        std::span<const core::MulticastSchedule* const>(rate_ptrs));
    if (p.waves.empty()) std::abort();  // keep the optimizer honest
  });
  report.metric("cosched_plans_per_sec", rate.per_second());

  std::fputs(metrics::format_table(blocked).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(makespan).c_str(), stdout);
  std::puts(
      "\nReading: oblivious superposition launches every tree into the\n"
      "same arcs at once; the co-scheduler's bounded waves trade a small\n"
      "stagger for most of the channel blocking. The win is largest on\n"
      "the hot-spot mix, where every tree converges on one region.");
  report.add_series(blocked);
  report.add_series(makespan);
}

const bench::Registration reg{
    {"ablation_coschedule", bench::Kind::Ablation,
     "co-scheduled waves vs oblivious superposition on concurrent "
     "multicast workloads",
     run}};

}  // namespace
