// Ablation: simulator fidelity. Re-runs a Figure-11-style sweep through
// BOTH engines — the message-level wormhole model used for the paper's
// figures and the flit-level model with per-flit pipelining, finite
// router buffers and early tail release — to show the approximation the
// fast engine makes is immaterial for the paper's conclusions.

#include <cstdio>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/flit_sim.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(5);
  const std::size_t sets = ctx.quick ? 2 : 10;

  metrics::Series series(
      "Ablation: message-level vs flit-level engine, 4 KiB multicast "
      "(5-cube)",
      "destinations", "avg delay (us)");
  for (const std::size_t m : {4u, 8u, 16u, 24u, 31u}) {
    for (std::size_t trial = 0; trial < sets; ++trial) {
      workload::Rng rng(workload::derive_seed(611, m, trial));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      for (const auto& algo : core::paper_algorithms()) {
        const auto schedule = algo.build(req);
        sim::SimConfig mcfg;
        const auto msg = sim::simulate_multicast(schedule, mcfg);
        series.add_sample(algo.display + "/msg", static_cast<double>(m),
                          msg.avg_delay(req.destinations) / 1000.0);
        sim::FlitConfig fcfg;
        const auto flit = sim::simulate_multicast_flit(schedule, fcfg);
        double sum = 0;
        for (const auto d : req.destinations) {
          sum += static_cast<double>(flit.delay(d));
        }
        series.add_sample(algo.display + "/flit", static_cast<double>(m),
                          sum / static_cast<double>(m) / 1000.0);
      }
    }
  }
  metrics::TableOptions opts;
  opts.column_width = 13;
  std::fputs(metrics::format_table(series, opts).c_str(), stdout);
  std::puts(
      "\nReading: per point the engines differ by the header-pipelining\n"
      "term (a few tens of microseconds, <2% at 4 KiB) and never in the\n"
      "algorithm ordering — the fast engine is a faithful stand-in for\n"
      "the figure sweeps, as MultiSim was for the authors' nCUBE-2.");
  bench::summarize_series(report, series);
}

const bench::Registration reg{
    {"ablation_engine_fidelity", bench::Kind::Ablation,
     "message-level vs flit-level engine agreement on a 5-cube sweep",
     run}};

}  // namespace
