// Ablation: degraded-mode cost of link faults. The paper's algorithms
// assume a healthy cube; this bench injects random link faults (kept
// connectivity-preserving), repairs each tree fault-aware and reports
// how the step count and the simulated delay degrade with the fault
// rate. The simulator runs with the fault set armed — it hard-errors on
// any worm routed into a failed channel — so every delay sample doubles
// as a proof that the repaired tree is fault-free.

#include <cstdio>

#include "core/registry.hpp"
#include "core/stepwise.hpp"
#include "fault/fault_aware.hpp"
#include "fault/fault_inject.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(6);
  const std::size_t m = 32;
  const std::size_t trials = ctx.quick ? 4 : 20;

  metrics::Series steps("Ablation: steps vs link-fault rate (6-cube, m=32)",
                        "% links failed", "all-port steps");
  metrics::Series delay("Average delivery delay under faults",
                        "% links failed", "avg delay (us)");
  metrics::Series repairs("Unicasts repaired per multicast",
                          "% links failed", "repaired unicasts");
  for (const double rate : {0.0, 0.025, 0.05, 0.10, 0.15}) {
    const std::size_t failed = fault::links_for_rate(topo, rate);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      workload::Rng fault_rng(workload::derive_seed(0xFA, failed, trial));
      const fault::FaultSet fs =
          fault::connected_link_faults(topo, failed, fault_rng);
      workload::Rng dest_rng(workload::derive_seed(0xDE, m, trial));
      const auto dests = workload::random_destinations(topo, 0, m, dest_rng);
      const core::MulticastRequest req{topo, 0, dests};
      sim::SimConfig config;
      config.faults = &fs;
      for (const auto& algo : core::paper_algorithms()) {
        const auto result = fault::fault_aware_multicast(algo, req, fs);
        const auto assigned = core::assign_steps(
            result.schedule, core::PortModel::all_port(), req.destinations);
        const auto sim = sim::simulate_multicast(result.schedule, config);
        const double x = rate * 100.0;
        steps.add_sample(algo.display, x,
                         static_cast<double>(assigned.total_steps));
        delay.add_sample(algo.display, x,
                         sim.avg_delay(req.destinations) / 1000.0);
        repairs.add_sample(algo.display, x,
                           static_cast<double>(result.report.broken));
      }
    }
  }
  std::fputs(metrics::format_table(steps).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(delay).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(repairs).c_str(), stdout);
  std::puts(
      "\nReading: repairs grow roughly linearly with the fault rate\n"
      "(~8-10 of ~35 unicasts rerouted at 15%), and the relay chains\n"
      "they splice in cost every algorithm 2-3 extra steps and ~20-35%\n"
      "delay at the worst rate. The ranking survives degradation: the\n"
      "contention-free W-sort and Maxport trees keep their lead over\n"
      "U-cube at every fault rate.");
  bench::summarize_series(report, steps);
  bench::summarize_series(report, delay);
  bench::summarize_series(report, repairs);
}

const bench::Registration reg{
    {"ablation_fault_degradation", bench::Kind::Ablation,
     "step/delay degradation and repair counts under random link faults "
     "(6-cube)",
     run}};

}  // namespace
