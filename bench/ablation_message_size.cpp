// Ablation: message-length regimes. The paper measures one size
// (4096 bytes); this bench sweeps 64 B to 16 KiB on a 6-cube to show
// where each algorithm's advantage lives: with small messages the
// startup-serialization structure dominates (steps matter most); with
// large messages channel occupancy and contention dominate.

#include <cstdio>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(6);
  const std::size_t m = 31;
  const std::size_t sets = ctx.quick ? 5 : 30;

  metrics::Series series(
      "Ablation: 6-cube, 31 destinations, delay vs message size",
      "message bytes", "avg delay (us)");
  for (const std::size_t bytes : {64u, 256u, 1024u, 4096u, 16384u}) {
    for (std::size_t trial = 0; trial < sets; ++trial) {
      workload::Rng rng(workload::derive_seed(606, bytes, trial));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      for (const auto& algo : core::paper_algorithms()) {
        sim::SimConfig config;
        config.message_bytes = bytes;
        const auto result = sim::simulate_multicast(algo.build(req), config);
        series.add_sample(algo.display, static_cast<double>(bytes),
                          result.avg_delay(req.destinations) / 1000.0);
      }
    }
  }
  std::fputs(metrics::format_table(series).c_str(), stdout);
  std::puts(
      "\nReading: there is a crossover. For tiny messages the send\n"
      "startup dominates and U-cube's minimum-height tree is marginally\n"
      "best; once the body outweighs the startup (around 1 KiB here) the\n"
      "multiport algorithms win and the gap grows with message size —\n"
      "which is why the paper measures 4096-byte messages.");
  bench::summarize_series(report, series);
}

const bench::Registration reg{
    {"ablation_message_size", bench::Kind::Ablation,
     "delay vs message size (64 B - 16 KiB) on a 6-cube", run}};

}  // namespace
