// Ablation: how much does the port model itself buy? The same W-sort
// and U-cube schedules are replayed on one-port, 2-port, 4-port and
// all-port 6-cube nodes. This isolates the paper's core architectural
// claim: the multiport algorithms only pay off when the hardware can
// actually drive multiple internal channels.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Dim n = 6;
  const hcube::Topology topo(n);
  const std::size_t sets = ctx.quick ? 4 : 20;

  const std::vector<std::pair<std::string, core::PortModel>> ports = {
      {"one-port", core::PortModel::one_port()},
      {"2-port", core::PortModel::k_port(2)},
      {"4-port", core::PortModel::k_port(4)},
      {"all-port", core::PortModel::all_port()},
  };

  for (const char* algo_name : {"ucube", "wsort"}) {
    const auto& algo = core::find_algorithm(algo_name);
    metrics::Series series(
        std::string("Ablation: port models, ") + algo.display +
            " schedules, 4096-byte multicast on a 6-cube",
        "destinations", "avg delay (us)");
    for (const std::size_t m : {8u, 16u, 24u, 32u, 48u, 63u}) {
      for (std::size_t trial = 0; trial < sets; ++trial) {
        workload::Rng rng(workload::derive_seed(604, m, trial));
        const auto dests = workload::random_destinations(topo, 0, m, rng);
        const core::MulticastRequest req{topo, 0, dests};
        const auto schedule = algo.build(req);
        for (const auto& [label, port] : ports) {
          sim::SimConfig config;
          config.port = port;
          const auto result = sim::simulate_multicast(schedule, config);
          series.add_sample(label, static_cast<double>(m),
                            result.avg_delay(req.destinations) / 1000.0);
        }
      }
    }
    std::fputs(metrics::format_table(series).c_str(), stdout);
    std::fputs("\n", stdout);
    bench::summarize_series(report, series);
  }

  std::puts(
      "Reading: all-port vs one-port is the architectural gap the paper\n"
      "exploits; W-sort converts extra ports into delay reductions while\n"
      "U-cube (designed for one port) barely benefits from them.");
}

const bench::Registration reg{
    {"ablation_port_models", bench::Kind::Ablation,
     "one/2/4/all-port replay of U-cube and W-sort schedules (6-cube)",
     run}};

}  // namespace
