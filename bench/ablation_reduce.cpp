// Ablation (extension beyond the paper): reduction and barrier over the
// *reverse* of each multicast tree. Two things to observe:
//   1. which forward tree makes the best reduction tree — and that the
//      ranking is NOT identical to the multicast ranking, because
//      E-cube paths toward a common ancestor merge (an in-tree), so
//      reverse trees contend even when the forward tree is clean;
//   2. the cost of a full barrier (reduce + broadcast of 8 bytes).

#include <cstdio>
#include <string>

#include "coll/collectives.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(8);
  const std::size_t sets = ctx.quick ? 5 : 30;

  metrics::Series completion(
      "Ablation: 4 KiB reduction completion over reversed trees (8-cube)",
      "participants", "completion (us)");
  metrics::Series blocked(
      "Reverse-tree channel waits per reduction (contention of the dual)",
      "participants", "blocked acquisitions");
  for (const std::size_t m : {16u, 32u, 64u, 128u, 255u}) {
    for (std::size_t trial = 0; trial < sets; ++trial) {
      workload::Rng rng(workload::derive_seed(609, m, trial));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      for (const auto& algo : core::paper_algorithms()) {
        const auto tree = algo.build(req);
        coll::ReduceConfig config;
        const auto result = coll::simulate_reduce(tree, config);
        completion.add_sample(algo.display, static_cast<double>(m),
                              sim::to_microseconds(result.completion));
        blocked.add_sample(algo.display, static_cast<double>(m),
                           static_cast<double>(
                               result.stats.blocked_acquisitions));
      }
    }
  }
  std::fputs(metrics::format_table(completion).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(blocked).c_str(), stdout);
  bench::summarize_series(report, completion);
  bench::summarize_series(report, blocked);

  std::puts("\nBarrier latency (8-byte control messages, W-sort tree):");
  coll::Collectives::Options options;
  options.topo = topo;
  const coll::Collectives comm(options);
  for (const std::size_t m : {16u, 64u, 255u}) {
    workload::Rng rng(workload::derive_seed(610, m, 0));
    const auto dests = workload::random_destinations(topo, 0, m, rng);
    const double us = sim::to_microseconds(comm.barrier(0, dests));
    std::printf("  %3zu participants: %8.1f us\n", m, us);
    report.metric("barrier_us @ m=" + std::to_string(m), us);
  }
  std::puts(
      "\nReading: reductions inherit the tree shape but not the\n"
      "contention-freedom — converging E-cube paths share late arcs, so\n"
      "the spread trees (Maxport/Combine/W-sort) log channel waits their\n"
      "forward counterparts never do, while U-cube's reverse chains\n"
      "serialize on CPUs instead and stay wait-free. The forward ranking\n"
      "nevertheless survives reversal: W-sort's shallow fan-in more than\n"
      "pays for its extra waits, and all trees coincide at broadcast.");
}

const bench::Registration reg{
    {"ablation_reduce", bench::Kind::Ablation,
     "reduction and barrier cost over reversed multicast trees (8-cube)",
     run}};

}  // namespace
