// Ablation: the paper asserts that whether E-cube resolves addresses
// high-to-low (their examples) or low-to-high (the nCUBE-2) "does not
// affect any of the results". This bench runs the Figure-9 sweep under
// both resolution orders and prints them side by side.

#include <cstdio>
#include <string>

#include "harness/bench.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  for (const auto res :
       {hcube::Resolution::HighToLow, hcube::Resolution::LowToHigh}) {
    harness::StepSweepConfig config;
    config.title = std::string("Ablation: stepwise comparison, 6-cube, ") +
                   std::string(hcube::to_string(res)) + " resolution";
    config.n = 6;
    config.resolution = res;
    config.sizes = harness::size_range(5, 60, 5);
    config.sets_per_point = ctx.quick ? 10 : 100;
    config.seed = ctx.seed;
    config.threads = ctx.threads;
    const auto series = harness::run_step_sweep(config);
    std::fputs(metrics::format_table(series).c_str(), stdout);
    std::fputs("\n", stdout);
    bench::summarize_series(report, series);
  }
  std::puts(
      "Reading: the two tables agree point for point in distribution\n"
      "(identical destination sets yield bit-reversal-isomorphic trees),\n"
      "confirming the paper's remark that the resolution order is\n"
      "immaterial.");
}

const bench::Registration reg{
    {"ablation_resolution_order", bench::Kind::Ablation,
     "Figure-9 sweep under high-to-low vs low-to-high E-cube resolution",
     run}};

}  // namespace
