// Ablation: the paper asserts that whether E-cube resolves addresses
// high-to-low (their examples) or low-to-high (the nCUBE-2) "does not
// affect any of the results". This bench runs the Figure-9 sweep under
// both resolution orders and prints them side by side.

#include <cstdio>

#include "harness/experiment.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace hypercast;
  for (const auto res :
       {hcube::Resolution::HighToLow, hcube::Resolution::LowToHigh}) {
    harness::StepSweepConfig config;
    config.title = std::string("Ablation: stepwise comparison, 6-cube, ") +
                   std::string(hcube::to_string(res)) + " resolution";
    config.n = 6;
    config.resolution = res;
    config.sizes = harness::size_range(5, 60, 5);
    config.sets_per_point = 100;
    const auto series = harness::run_step_sweep(config);
    std::fputs(metrics::format_table(series).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  std::puts(
      "Reading: the two tables agree point for point in distribution\n"
      "(identical destination sets yield bit-reversal-isomorphic trees),\n"
      "confirming the paper's remark that the resolution order is\n"
      "immaterial.");
  return 0;
}
