// Ablation: the repair-tier ladder under striped fault tolerance
// (docs/STRIPING.md §3). For seeded random fault draws on 6- and 8-cube
// broadcasts the degraded planner runs its ladder — drop onto parity,
// certified disjoint repair, greedy detours — and the DES replays the
// result with the fault set armed, so every delivery figure here is
// proof, not assumption. The headline: post-repair effective bandwidth
// for single-link-fault draws stays within 15% of the fault-free
// striped baseline (the repaired plan keeps the arc-disjointness the
// bandwidth multiplier rests on), and k = 2 parity delivers through any
// two lost stripes.
//
// DES virtual-time metrics are bit-deterministic; only the trial counts
// shrink under --quick. Planning throughput is wall clock and gated.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "coll/striped.hpp"
#include "fault/fault_aware.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

std::vector<hcube::NodeId> broadcast_dests(const hcube::Topology& topo) {
  std::vector<hcube::NodeId> dests;
  for (hcube::NodeId u = 1; u < topo.num_nodes(); ++u) dests.push_back(u);
  return dests;
}

fault::FaultSet random_link_faults(const hcube::Topology& topo,
                                   std::size_t count, workload::Rng& rng) {
  fault::FaultSet faults(topo);
  while (faults.num_failed_links() < count) {
    const auto u = static_cast<hcube::NodeId>(rng() % topo.num_nodes());
    const auto d = static_cast<hcube::Dim>(rng() % topo.dim());
    faults.fail_link(std::min(u, topo.neighbor(u, d)), d);
  }
  return faults;
}

void run(const bench::Context& ctx, bench::Report& report) {
  const sim::SimConfig config;
  constexpr std::size_t kPayload = 1 << 20;

  // Part 1 — single-link-fault bandwidth retention, 6- and 8-cube,
  // k = 1. Every draw is replayed under the armed fault set; the ratio
  // against the fault-free striped makespan is the price of the repair.
  metrics::Series retention(
      "Post-repair bandwidth fraction of the fault-free striped baseline "
      "(single link fault, k = 1)",
      "trial", "degraded bandwidth / baseline bandwidth");
  const std::size_t single_trials = ctx.quick ? 6 : 24;
  for (const hcube::Dim n : {6, 8}) {
    const hcube::Topology topo(n);
    const core::MulticastRequest request{topo, 0, broadcast_dests(topo)};
    coll::StripeOptions options;
    options.parity = true;
    const coll::StripedPlanner planner(options);

    const coll::StripedPlan baseline = planner.plan(request, kPayload);
    const sim::SimTime baseline_ns =
        sim::simulate_collectives(baseline.jobs(), config).makespan();

    double ratio_sum = 0.0;
    double ratio_min = 1.0;
    double disjoint = 0.0;
    double greedy = 0.0;
    double dropped = 0.0;
    const std::string cube = std::to_string(n) + "cube";
    for (std::size_t trial = 0; trial < single_trials; ++trial) {
      workload::Rng rng(workload::derive_seed(ctx.seed, n, trial));
      const fault::FaultSet faults = random_link_faults(topo, 1, rng);
      const coll::StripedPlan plan = planner.plan(request, kPayload, faults);
      sim::SimConfig degraded = config;
      degraded.faults = &faults;
      const sim::SimTime ns =
          sim::simulate_collectives(plan.jobs(), degraded).makespan();
      const double ratio = ns == 0 ? 0.0
                                   : static_cast<double>(baseline_ns) /
                                         static_cast<double>(ns);
      ratio_sum += ratio;
      ratio_min = std::min(ratio_min, ratio);
      disjoint += static_cast<double>(plan.repaired_disjoint);
      greedy += static_cast<double>(plan.repaired_greedy);
      dropped += static_cast<double>(plan.dropped_trees.size());
      retention.add_sample(cube, static_cast<double>(trial), ratio);
    }
    const double t = static_cast<double>(single_trials);
    report.metric("post_repair_bw_fraction_mean_" + cube, ratio_sum / t);
    report.metric("post_repair_bw_fraction_min_" + cube, ratio_min);
    report.metric("repair_disjoint_per_trial_" + cube, disjoint / t);
    report.metric("repair_greedy_per_trial_" + cube, greedy / t);
    report.metric("dropped_trees_per_trial_" + cube, dropped / t);
    std::printf(
        "%s single-fault: bandwidth fraction mean %.3f min %.3f "
        "(%.2f disjoint / %.2f greedy repairs, %.2f drops per trial)\n",
        cube.c_str(), ratio_sum / t, ratio_min, disjoint / t, greedy / t,
        dropped / t);
  }

  // Part 2 — k = 2 parity under double link faults: delivered fraction
  // across draws (connected cubes only), on the 6-cube broadcast.
  const hcube::Topology topo6(6);
  const core::MulticastRequest request6{topo6, 0, broadcast_dests(topo6)};
  coll::StripeOptions k2;
  k2.parity_stripes = 2;
  const coll::StripedPlanner planner2(k2);
  const std::size_t double_trials = ctx.quick ? 8 : 32;
  double planned = 0.0;
  double delivered = 0.0;
  double k2_disjoint = 0.0;
  double k2_greedy = 0.0;
  for (std::size_t trial = 0; trial < double_trials; ++trial) {
    workload::Rng rng(workload::derive_seed(ctx.seed, 0x2b2, trial));
    const fault::FaultSet faults = random_link_faults(topo6, 2, rng);
    if (!faults.surviving_connected()) continue;
    planned += 1.0;
    coll::StripedPlan plan;
    try {
      plan = planner2.plan(request6, kPayload, faults);
    } catch (const fault::UnrepairableFault&) {
      continue;
    }
    sim::SimConfig degraded = config;
    degraded.faults = &faults;
    const auto result = sim::simulate_collectives(plan.jobs(), degraded);
    bool all = result.per_job.size() == plan.active_trees();
    for (const sim::SimResult& r : result.per_job) {
      for (const hcube::NodeId d : request6.destinations) {
        if (!r.delivery.contains(d)) all = false;
      }
    }
    if (all) delivered += 1.0;
    k2_disjoint += static_cast<double>(plan.repaired_disjoint);
    k2_greedy += static_cast<double>(plan.repaired_greedy);
  }
  report.metric("k2_delivered_fraction_2faults",
                planned > 0.0 ? delivered / planned : 0.0);
  report.metric("k2_repair_disjoint_per_trial",
                planned > 0.0 ? k2_disjoint / planned : 0.0);
  report.metric("k2_repair_greedy_per_trial",
                planned > 0.0 ? k2_greedy / planned : 0.0);
  std::printf("6cube k=2 double-fault: delivered fraction %.3f over %.0f "
              "draws\n",
              planned > 0.0 ? delivered / planned : 0.0, planned);

  // Part 3 — degraded planning throughput (wall clock, gated): the full
  // ladder on a fixed single-fault 8-cube draw, uncached, verification
  // off (the hot-path configuration for large cubes).
  const hcube::Topology topo8(8);
  const core::MulticastRequest request8{topo8, 0, broadcast_dests(topo8)};
  coll::StripeOptions hot;
  hot.parity = true;
  hot.verify = coll::StripeOptions::Verify::kOff;
  const coll::StripedPlanner hot_planner(hot);
  workload::Rng rng8(ctx.seed);
  const fault::FaultSet faults8 = random_link_faults(topo8, 1, rng8);
  const auto plan_rate = bench::measure_rate(ctx.min_time(0.5), [&] {
    const coll::StripedPlan plan =
        hot_planner.plan(request8, kPayload, faults8);
    if (plan.trees.size() != 8) std::abort();
  });
  report.metric("degraded_plans_per_sec_8cube", plan_rate.per_second());
  std::printf("8cube degraded plans: %.1f per second\n",
              plan_rate.per_second());

  std::fputs(metrics::format_table(retention).c_str(), stdout);
  std::puts(
      "\nReading: a dropped tree costs no bandwidth (its stripe is\n"
      "RS-reconstructed); a certified disjoint repair costs only the\n"
      "detour's extra hops on one stripe; only the greedy tier can\n"
      "serialize stripes on a shared channel. The fraction staying near\n"
      "1.0 is the ladder doing its job.");
  report.add_series(retention);
}

const bench::Registration reg{
    {"ablation_striped_repair", bench::Kind::Ablation,
     "repair-tier ladder under striped fault tolerance: post-repair "
     "bandwidth retention, k=2 double-fault delivery, planning throughput",
     run}};

}  // namespace
