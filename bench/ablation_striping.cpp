// Ablation: striping large payloads across the n arc-disjoint IST trees
// vs single-tree W-sort delivery. A single tree streams the whole
// payload down every branch; the n trees of core/ist.hpp share no
// directed channel, so n simultaneous jobs each carrying payload/n
// multiply the effective broadcast bandwidth by nearly n once the
// payload dwarfs the per-send startup. The sweep measures effective
// bandwidth (payload bytes / DES makespan) vs message size on 6/8/10
// cubes, plus degraded-mode delivery with a parity stripe under link
// faults, plus tree-construction throughput.
//
// The bandwidth metrics are DES virtual-time figures: bit-deterministic
// and identical under --quick (which only trims the fault trials and
// the wall-clock rate budget), so the regression gate can hold them to
// a tight band.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "coll/striped.hpp"
#include "core/registry.hpp"
#include "fault/fault_aware.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

std::vector<hcube::NodeId> broadcast_dests(const hcube::Topology& topo) {
  std::vector<hcube::NodeId> dests;
  for (hcube::NodeId u = 1; u < topo.num_nodes(); ++u) dests.push_back(u);
  return dests;
}

double bytes_per_second(std::size_t payload_bytes, sim::SimTime makespan_ns) {
  return makespan_ns == 0
             ? 0.0
             : static_cast<double>(payload_bytes) /
                   (static_cast<double>(makespan_ns) / 1e9);
}

struct SizePoint {
  std::size_t bytes;
  const char* label;
};

void run(const bench::Context& ctx, bench::Report& report) {
  const auto& wsort = core::find_algorithm("wsort");
  const sim::SimConfig config;  // ncube/2 cost model, all-port

  // Part 1 - effective broadcast bandwidth vs message size vs cube size.
  // Both plans are built once per (cube, size) and replayed through the
  // DES; virtual time is exact, so no trials are needed.
  const SizePoint sizes[] = {{16 << 10, "16KiB"},
                             {64 << 10, "64KiB"},
                             {256 << 10, "256KiB"},
                             {1 << 20, "1MiB"}};
  metrics::Series bandwidth(
      "Effective broadcast bandwidth: striped IST vs single-tree W-sort",
      "message size (KiB)", "payload bytes / makespan (MB/s)");
  for (const hcube::Dim n : {6, 8, 10}) {
    const hcube::Topology topo(n);
    const core::MulticastRequest request{topo, 0, broadcast_dests(topo)};
    const core::MulticastSchedule single = wsort.build(request);
    const coll::StripedPlanner planner;
    const std::string cube = std::to_string(n) + "cube";
    for (const SizePoint& size : sizes) {
      const sim::CollectiveJob single_job{&single, 0, size.bytes};
      const sim::SimTime single_ns =
          sim::simulate_collectives(std::span(&single_job, 1), config)
              .makespan();
      const coll::StripedPlan plan = planner.plan(request, size.bytes);
      const auto jobs = plan.jobs();
      const sim::SimTime striped_ns =
          sim::simulate_collectives(jobs, config).makespan();

      const double single_bps = bytes_per_second(size.bytes, single_ns);
      const double striped_bps = bytes_per_second(size.bytes, striped_ns);
      const double x = static_cast<double>(size.bytes) / 1024.0;
      bandwidth.add_sample(cube + " wsort", x, single_bps / 1e6);
      bandwidth.add_sample(cube + " striped", x, striped_bps / 1e6);
      if (size.bytes == (1u << 20)) {
        // Gated (rate-named) metrics at the headline size only; the
        // whole sweep lives in the series.
        report.metric("wsort_bytes_per_s_" + cube + "_1MiB", single_bps);
        report.metric("striped_bytes_per_s_" + cube + "_1MiB", striped_bps);
        report.metric("striped_speedup_" + cube + "_1MiB",
                      single_bps > 0.0 ? striped_bps / single_bps : 0.0);
      }
    }
  }

  // Part 2 - degraded-mode delivery: 6-cube broadcast with a parity
  // stripe, random link faults at increasing rates. The planner drops
  // the most-affected tree onto parity and detour-repairs the rest; the
  // DES replays with the fault set armed (failed arcs unacquirable), so
  // completion here is proof of delivery, not an assumption.
  const hcube::Topology topo6(6);
  const core::MulticastRequest request6{topo6, 0, broadcast_dests(topo6)};
  coll::StripeOptions parity_options;
  parity_options.parity = true;
  const coll::StripedPlanner parity_planner(parity_options);
  const std::size_t fault_trials = ctx.quick ? 2 : 6;
  metrics::Series degraded("Degraded striped delivery vs link-fault count "
                           "(6-cube, 1 MiB, parity stripe)",
                           "failed links", "makespan (us)");
  for (const std::size_t fault_links : {1u, 2u, 4u, 8u}) {
    double makespan_us = 0.0;
    double repaired = 0.0;
    double dropped = 0.0;
    double delivered = 0.0;
    double planned = 0.0;
    for (std::size_t trial = 0; trial < fault_trials; ++trial) {
      workload::Rng rng(workload::derive_seed(ctx.seed, fault_links, trial));
      fault::FaultSet faults(topo6);
      while (faults.num_failed_links() < fault_links) {
        const auto u = static_cast<hcube::NodeId>(rng() % topo6.num_nodes());
        const auto d = static_cast<hcube::Dim>(rng() % topo6.dim());
        faults.fail_link(std::min(u, topo6.neighbor(u, d)), d);
      }
      if (!faults.surviving_connected()) continue;  // partitioned draw
      planned += 1.0;

      // One parity stripe covers one lost tree; a draw that blocks two
      // trees' root arcs (on a broadcast, unrepairable by detours) is
      // beyond its budget and counted against the delivered fraction.
      coll::StripedPlan plan;
      try {
        plan = parity_planner.plan(request6, 1 << 20, faults);
      } catch (const fault::UnrepairableFault&) {
        continue;
      }
      sim::SimConfig degraded_config = config;
      degraded_config.faults = &faults;
      const auto jobs = plan.jobs();
      const auto result = sim::simulate_collectives(jobs, degraded_config);
      delivered += 1.0;
      makespan_us += sim::to_microseconds(result.makespan());
      repaired += static_cast<double>(plan.repaired_trees);
      if (plan.dropped_tree >= 0) dropped += 1.0;
      degraded.add_sample("makespan", static_cast<double>(fault_links),
                          sim::to_microseconds(result.makespan()));
    }
    const double t = std::max(delivered, 1.0);
    const std::string suffix = "_f" + std::to_string(fault_links);
    report.metric("degraded_makespan_us" + suffix, makespan_us / t);
    report.metric("degraded_repaired_trees" + suffix, repaired / t);
    report.metric("degraded_dropped_fraction" + suffix, dropped / t);
    report.metric("degraded_delivered_fraction" + suffix,
                  planned > 0.0 ? delivered / planned : 0.0);
  }

  // Part 3 - construction throughput (wall clock, regression-gated):
  // full 8-cube IST trees, rotating the tree index so every dimension's
  // shape is exercised.
  const hcube::Topology topo8(8);
  hcube::Dim next_tree = 0;
  const auto rate = bench::measure_rate(ctx.min_time(0.5), [&] {
    const core::MulticastSchedule tree =
        core::build_ist_tree0(topo8, next_tree);
    if (tree.num_unicasts() != topo8.num_nodes() - 1) std::abort();
    next_tree = static_cast<hcube::Dim>((next_tree + 1) % topo8.dim());
  });
  report.metric("ist_builds_per_sec", rate.per_second());

  std::fputs(metrics::format_table(bandwidth).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(degraded).c_str(), stdout);
  std::puts(
      "\nReading: one tree streams the whole payload down every branch;\n"
      "n arc-disjoint trees stream payload/n each with no shared channel,\n"
      "so the striped makespan approaches 1/n of single-tree for large\n"
      "messages. With a parity stripe, link faults drop one tree outright\n"
      "(receivers reconstruct by XOR) and only further-affected trees pay\n"
      "for detours.");
  report.add_series(bandwidth);
  report.add_series(degraded);
}

const bench::Registration reg{
    {"ablation_striping", bench::Kind::Ablation,
     "striped delivery over n arc-disjoint spanning trees vs single-tree "
     "W-sort: bandwidth multiplier and degraded-mode delivery",
     run}};

}  // namespace
