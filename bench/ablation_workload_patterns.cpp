// Ablation: destination-set structure. The paper evaluates uniformly
// random sets; real applications multicast to structured groups. This
// sweep fixes m = 32 on an 8-cube and varies the *shape* of the set:
// uniform, confined to one subcube, clustered around a few centres, and
// a distance-d sphere — probing where W-sort's crowding heuristic and
// Maxport's channel spreading each earn their keep.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/stepwise.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/patterns.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(8);
  const std::size_t m = 32;
  const std::size_t sets = ctx.quick ? 5 : 30;

  struct Pattern {
    const char* name;
    std::function<std::vector<hcube::NodeId>(workload::Rng&)> draw;
  };
  const std::vector<Pattern> patterns = {
      {"uniform",
       [&](workload::Rng& rng) {
         return workload::random_destinations(topo, 0, m, rng);
       }},
      {"subcube-6d",
       [&](workload::Rng& rng) {
         return workload::subcube_destinations(topo, 0, 6, m, rng);
       }},
      {"clustered",
       [&](workload::Rng& rng) {
         return workload::clustered_destinations(topo, 0, 4, 2, m, rng);
       }},
      {"sphere-d4",
       [&](workload::Rng& rng) {
         auto sphere = workload::sphere_destinations(topo, 0, 4);
         std::shuffle(sphere.begin(), sphere.end(), rng);
         sphere.resize(m);
         return sphere;
       }},
  };

  for (const auto& metric : {"steps", "delay"}) {
    metrics::Series series(
        std::string("Ablation: workload shape (8-cube, 32 dests), ") +
            metric,
        "pattern index", metric == std::string("steps") ? "steps"
                                                        : "avg delay (us)");
    std::puts(metric == std::string("steps")
                  ? "patterns: 1=uniform 2=subcube-6d 3=clustered 4=sphere-d4"
                  : "");
    double index = 1;
    for (const auto& pattern : patterns) {
      for (std::size_t trial = 0; trial < sets; ++trial) {
        workload::Rng rng(workload::derive_seed(614, index, trial));
        const auto dests = pattern.draw(rng);
        const core::MulticastRequest req{topo, 0, dests};
        for (const auto& algo : core::paper_algorithms()) {
          const auto schedule = algo.build(req);
          if (metric == std::string("steps")) {
            series.add_sample(
                algo.display, index,
                core::assign_steps(schedule, core::PortModel::all_port(),
                                   req.destinations)
                    .total_steps);
          } else {
            sim::SimConfig config;
            const auto result = sim::simulate_multicast(schedule, config);
            series.add_sample(algo.display, index,
                              result.avg_delay(req.destinations) / 1000.0);
          }
        }
      }
      index += 1;
    }
    std::fputs(metrics::format_table(series).c_str(), stdout);
    std::fputs("\n", stdout);
    bench::summarize_series(report, series);
  }
  std::puts(
      "Reading: structure moves the gaps around but never the ranking.\n"
      "Subcube-confined sets are the hardest for everyone (32 dests\n"
      "squeezed into a 6-cube's channels) and the case where chain\n"
      "spreading helps least; clustered sets reward W-sort's crowding\n"
      "rule; distance-4 spheres are a best case for all the multiport\n"
      "algorithms — destinations split evenly across every channel, and\n"
      "Maxport/Combine/W-sort all hit the same step count.");
}

const bench::Registration reg{
    {"ablation_workload_patterns", bench::Kind::Ablation,
     "structured destination sets (uniform/subcube/clustered/sphere) on "
     "an 8-cube",
     run}};

}  // namespace
