// Ablation: what exactly does weighted_sort buy? W-sort = Maxport run
// on a weighted cube-ordered chain; this bench compares Maxport on the
// plain dimension-ordered chain against Maxport on the weighted chain
// (i.e. W-sort) across destination densities, in both steps and
// simulated delay.

#include <cstdio>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "metrics/table.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(8);
  const std::size_t sets = ctx.quick ? 8 : 50;

  metrics::Series steps(
      "Ablation: weighted_sort's contribution (8-cube), steps",
      "destinations", "steps");
  metrics::Series delay(
      "Ablation: weighted_sort's contribution (8-cube), 4096-byte delay",
      "destinations", "avg delay (us)");

  const auto& mp = core::find_algorithm("maxport");
  const auto& ws = core::find_algorithm("wsort");
  for (const std::size_t m : {16u, 32u, 64u, 96u, 128u, 192u, 255u}) {
    for (std::size_t trial = 0; trial < sets; ++trial) {
      workload::Rng rng(workload::derive_seed(605, m, trial));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      for (const auto* entry : {&mp, &ws}) {
        const auto schedule = entry->build(req);
        const auto s = core::assign_steps(schedule,
                                          core::PortModel::all_port(),
                                          req.destinations);
        steps.add_sample(entry->display, static_cast<double>(m),
                         s.total_steps);
        sim::SimConfig config;
        const auto result = sim::simulate_multicast(schedule, config);
        delay.add_sample(entry->display, static_cast<double>(m),
                         result.avg_delay(req.destinations) / 1000.0);
      }
    }
  }
  std::fputs(metrics::format_table(steps).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_table(delay).c_str(), stdout);
  std::puts(
      "\nReading: the only difference between the two curves is the\n"
      "weighted_sort permutation (most crowded subcube first); the gap\n"
      "is weighted_sort's contribution to W-sort.");
  bench::summarize_series(report, steps);
  bench::summarize_series(report, delay);
}

const bench::Registration reg{
    {"ablation_wsort_components", bench::Kind::Ablation,
     "Maxport on the plain chain vs the weighted chain (= W-sort) on an "
     "8-cube",
     run}};

}  // namespace
