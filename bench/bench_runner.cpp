// The single benchmark driver: every figure, ablation and
// microbenchmark registers itself (see harness/bench.hpp) and this
// binary selects, runs and records them as machine-readable
// BENCH_<name>.json artifacts.
//
// Usage:
//   bench_runner                          run everything, JSON into results/
//   bench_runner --list                   show the registered table
//   bench_runner --filter smoke           substring on name, or a kind
//                                         ("figure", "ablation", "micro")
//   bench_runner --repeat 3               timed repetitions per benchmark
//   bench_runner --threads 8              parallel sweep points
//   bench_runner --quick                  shrunken sweeps (CI smoke)
//   bench_runner --out <dir>              artifact directory
//   bench_runner --seed <n>               experiment seed for the sweeps
//   bench_runner --cache on|off           schedule-cache mode for
//                                         cache-sensitive benchmarks;
//                                         "on" suffixes artifacts _cached
//   bench_runner --cache-shards <n>       lock stripes (0 = auto)
//   bench_runner --cache-bytes <b>        cache byte budget (0 = default)
//   bench_runner --stats                  collect obs counters/histograms
//                                         and embed a "stats" block per
//                                         artifact

#include <cstdio>
#include <exception>

#include "harness/bench.hpp"
#include "harness/options.hpp"

int main(int argc, char** argv) {
  using namespace hypercast;
  try {
    const auto options = harness::Options::parse(argc, argv);
    if (options.has("list")) {
      for (const bench::Benchmark* b : bench::all_benchmarks()) {
        std::printf("%-28s %-9s %s\n", b->name.c_str(),
                    bench::kind_name(b->kind), b->description.c_str());
      }
      return 0;
    }
    bench::RunOptions run;
    run.filter = options.get_or("filter", "");
    run.repeat = static_cast<int>(options.get_int_or("repeat", 1));
    run.threads = static_cast<int>(options.get_int_or("threads", 1));
    run.quick = options.has("quick");
    run.seed = static_cast<std::uint64_t>(
        options.get_int_or("seed", 0x5C93C0DE));
    run.out_dir = options.get_or("out", "results");
    const auto cache = options.cache(/*default_enabled=*/false);
    run.cache = cache.enabled;
    run.cache_shards = cache.shards;
    run.cache_bytes = cache.max_bytes;
    run.stats = options.has("stats");

    const auto records = bench::run_benchmarks(run);
    if (records.empty()) {
      std::fprintf(stderr, "no benchmark matches --filter '%s' (try --list)\n",
                   run.filter.c_str());
      return 1;
    }
    std::printf("%zu benchmark(s) done; artifacts in %s/\n", records.size(),
                run.out_dir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_runner: %s\n", e.what());
    return 1;
  }
}
