// Regenerates Figure 9: average, over 100 random destination sets per
// point, of the maximum number of steps needed to multicast in a 6-cube
// under the all-port stepwise model — curves for U-cube, Maxport,
// Combine and W-sort.
//
// Expected shape (paper): U-cube is a ceil(log2(m+1)) staircase; the
// all-port algorithms sit below it and vary smoothly with m.

#include "harness/bench.hpp"
#include "harness/figures.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  auto config = harness::fig9_config(ctx.quick);
  config.seed = ctx.seed;
  config.threads = ctx.threads;
  bench::summarize_series(
      report, harness::run_and_report_steps(
                  config, ctx.quick ? "" : "results/fig09_steps_6cube.csv"));
}

const bench::Registration reg{
    {"fig09_steps_6cube", bench::Kind::Figure,
     "Figure 9: stepwise comparisons on a 6-cube "
     "(U-cube/Maxport/Combine/W-sort)",
     run}};

}  // namespace
