// Regenerates Figure 9: average, over 100 random destination sets per
// point, of the maximum number of steps needed to multicast in a 6-cube
// under the all-port stepwise model — curves for U-cube, Maxport,
// Combine and W-sort.
//
// Expected shape (paper): U-cube is a ceil(log2(m+1)) staircase; the
// all-port algorithms sit below it and vary smoothly with m.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const std::string csv = argc > 1 ? argv[1] : "results/fig09_steps_6cube.csv";
  hypercast::harness::run_and_report_steps(hypercast::harness::fig9_config(),
                                           csv);
  return 0;
}
