// Regenerates Figure 10: stepwise comparisons on a 10-cube (average of
// the max steps over 100 random destination sets per point).
//
// Expected shape (paper): same ordering as Figure 9 with the gaps wider
// — W-sort's advantage grows with cube size.

#include "harness/bench.hpp"
#include "harness/figures.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  auto config = harness::fig10_config(ctx.quick);
  config.seed = ctx.seed;
  config.threads = ctx.threads;
  bench::summarize_series(
      report, harness::run_and_report_steps(
                  config, ctx.quick ? "" : "results/fig10_steps_10cube.csv"));
}

const bench::Registration reg{
    {"fig10_steps_10cube", bench::Kind::Figure,
     "Figure 10: stepwise comparisons on a 10-cube", run}};

}  // namespace
