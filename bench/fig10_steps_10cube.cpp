// Regenerates Figure 10: stepwise comparisons on a 10-cube (average of
// the max steps over 100 random destination sets per point).
//
// Expected shape (paper): same ordering as Figure 9 with the gaps wider
// — W-sort's advantage grows with cube size.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const std::string csv = argc > 1 ? argv[1] : "results/fig10_steps_10cube.csv";
  hypercast::harness::run_and_report_steps(hypercast::harness::fig10_config(),
                                           csv);
  return 0;
}
