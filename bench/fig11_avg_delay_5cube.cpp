// Regenerates Figure 11: average delay, over destinations, of a
// 4096-byte multicast on a 5-cube (the paper measured a 32-node
// partition of an nCUBE-2; we replay through the wormhole DES with the
// nCUBE-2 cost model), 20 random destination sets per point.
//
// Expected shape (paper): the multiport algorithms (Maxport, Combine,
// W-sort) sit below U-cube; notably U-cube's *average* delay for large
// multicasts is worse than for full broadcast (m = 31), because the
// algorithm sometimes pushes multiple messages out one channel.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "results/fig11_avg_delay_5cube";
  hypercast::harness::run_and_report_delays(
      hypercast::harness::fig11_12_config(), "avg", base);
  return 0;
}
