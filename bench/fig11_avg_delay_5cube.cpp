// Regenerates Figure 11: average delay, over destinations, of a
// 4096-byte multicast on a 5-cube (the paper measured a 32-node
// partition of an nCUBE-2; we replay through the wormhole DES with the
// nCUBE-2 cost model), 20 random destination sets per point.
//
// Expected shape (paper): the multiport algorithms (Maxport, Combine,
// W-sort) sit below U-cube; notably U-cube's *average* delay for large
// multicasts is worse than for full broadcast (m = 31), because the
// algorithm sometimes pushes multiple messages out one channel.

#include "harness/bench.hpp"
#include "harness/figures.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  auto config = harness::fig11_12_config(ctx.quick);
  config.seed = ctx.seed;
  config.threads = ctx.threads;
  const bench::Stopwatch timer;
  const auto result = harness::run_and_report_delays(
      config, "avg", ctx.quick ? "" : "results/fig11_avg_delay_5cube");
  bench::report_delay_sweep(report, result, timer.seconds(), true, false);
}

const bench::Registration reg{
    {"fig11_avg_delay_5cube", bench::Kind::Figure,
     "Figure 11: average 4096-byte multicast delay on a 5-cube (nCUBE-2 "
     "cost model)",
     run}};

}  // namespace
