// Regenerates Figure 12: maximum delay, over destinations, of a
// 4096-byte multicast on a 5-cube, 20 random destination sets per point.
//
// Expected shape (paper): U-cube shows a clear staircase (its step
// count is ceil(log2(m+1))); the all-port algorithms smooth out the
// relative delays across destination set sizes.

#include "harness/bench.hpp"
#include "harness/figures.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  auto config = harness::fig11_12_config(ctx.quick);
  config.seed = ctx.seed;
  config.threads = ctx.threads;
  const bench::Stopwatch timer;
  const auto result = harness::run_and_report_delays(
      config, "max", ctx.quick ? "" : "results/fig12_max_delay_5cube");
  bench::report_delay_sweep(report, result, timer.seconds(), false, true);
}

const bench::Registration reg{
    {"fig12_max_delay_5cube", bench::Kind::Figure,
     "Figure 12: maximum 4096-byte multicast delay on a 5-cube", run}};

}  // namespace
