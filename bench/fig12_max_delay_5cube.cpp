// Regenerates Figure 12: maximum delay, over destinations, of a
// 4096-byte multicast on a 5-cube, 20 random destination sets per point.
//
// Expected shape (paper): U-cube shows a clear staircase (its step
// count is ceil(log2(m+1))); the all-port algorithms smooth out the
// relative delays across destination set sizes.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "results/fig12_max_delay_5cube";
  hypercast::harness::run_and_report_delays(
      hypercast::harness::fig11_12_config(), "max", base);
  return 0;
}
