// Regenerates Figure 13: average delay of a 4096-byte multicast on a
// 1024-node 10-cube, 100 random destination sets per point — the
// paper's MultiSim experiment, replayed through our wormhole DES.
//
// Expected shape (paper): all multiport algorithms beat U-cube; at this
// scale W-sort's advantage becomes clearly visible in the average.

#include "harness/bench.hpp"
#include "harness/figures.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  auto config = harness::fig13_14_config(ctx.quick);
  config.seed = ctx.seed;
  config.threads = ctx.threads;
  const bench::Stopwatch timer;
  const auto result = harness::run_and_report_delays(
      config, "avg", ctx.quick ? "" : "results/fig13_avg_delay_10cube");
  bench::report_delay_sweep(report, result, timer.seconds(), true, false);
}

const bench::Registration reg{
    {"fig13_avg_delay_10cube", bench::Kind::Figure,
     "Figure 13: average 4096-byte multicast delay on a 10-cube (the "
     "paper's MultiSim experiment)",
     run}};

}  // namespace
