// Regenerates Figure 13: average delay of a 4096-byte multicast on a
// 1024-node 10-cube, 100 random destination sets per point — the
// paper's MultiSim experiment, replayed through our wormhole DES.
//
// Expected shape (paper): all multiport algorithms beat U-cube; at this
// scale W-sort's advantage becomes clearly visible in the average.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "results/fig13_avg_delay_10cube";
  hypercast::harness::run_and_report_delays(
      hypercast::harness::fig13_14_config(), "avg", base);
  return 0;
}
