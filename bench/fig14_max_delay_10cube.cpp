// Regenerates Figure 14: maximum delay of a 4096-byte multicast on a
// 10-cube, 100 random destination sets per point.
//
// Expected shape (paper): same ordering as Figure 13; W-sort's lead is
// most obvious in the worst-case (max) delay on the large cube.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  const std::string base = argc > 1 ? argv[1] : "results/fig14_max_delay_10cube";
  hypercast::harness::run_and_report_delays(
      hypercast::harness::fig13_14_config(), "max", base);
  return 0;
}
