// Regenerates Figure 14: maximum delay of a 4096-byte multicast on a
// 10-cube, 100 random destination sets per point.
//
// Expected shape (paper): same ordering as Figure 13; W-sort's lead is
// most obvious in the worst-case (max) delay on the large cube.

#include "harness/bench.hpp"
#include "harness/figures.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  auto config = harness::fig13_14_config(ctx.quick);
  config.seed = ctx.seed;
  config.threads = ctx.threads;
  const bench::Stopwatch timer;
  const auto result = harness::run_and_report_delays(
      config, "max", ctx.quick ? "" : "results/fig14_max_delay_10cube");
  bench::report_delay_sweep(report, result, timer.seconds(), false, true);
}

const bench::Registration reg{
    {"fig14_max_delay_10cube", bench::Kind::Figure,
     "Figure 14: maximum 4096-byte multicast delay on a 10-cube", run}};

}  // namespace
