// Microbenchmark: the static channel-load analyser on a 10-cube
// broadcast schedule. Guards the flat per-arc array rewrite of
// core::analyze_channel_load (the per-unicast maps it replaced
// dominated ablation_channel_load's profile).

#include <cstdio>

#include "core/channel_load.hpp"
#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(10);
  const std::size_t m = 1023;  // broadcast
  workload::Rng rng(workload::derive_seed(615, m, 0));
  const auto dests = workload::random_destinations(topo, 0, m, rng);
  const core::MulticastRequest req{topo, 0, dests};
  const auto schedule = core::find_algorithm("wsort").build(req);
  const auto steps =
      core::assign_steps(schedule, core::PortModel::all_port());

  const auto once = core::analyze_channel_load(schedule, steps);
  const bench::Rate rate = bench::measure_rate(ctx.min_time(0.3), [&] {
    (void)core::analyze_channel_load(schedule, steps);
  });
  report.metric("analyses_per_sec", rate.per_second());
  report.metric("channels_used", static_cast<double>(once.channels_used));
  report.metric("max_load", static_cast<double>(once.max_load));
  std::printf("  wsort broadcast: %10.1f analyses/s (%zu channels, max "
              "load %zu)\n",
              rate.per_second(), once.channels_used, once.max_load);
}

const bench::Registration reg{
    {"micro_channel_load", bench::Kind::Micro,
     "channel-load analyser throughput on a 10-cube broadcast schedule",
     run}};

}  // namespace
