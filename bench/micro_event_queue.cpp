// Microbenchmark: raw event-queue churn — schedule + dispatch cost of
// the pooled heap (POD tickets, slot-recycled actions, no per-event
// allocation), isolated from the network model. Interleaved
// self-rescheduling chains keep the heap at a realistic working size.

#include <cstdio>

#include "harness/bench.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const std::size_t chains = 64;
  const std::uint64_t hops = ctx.quick ? 2'000 : 20'000;
  const std::uint64_t events_per_iter = chains * (hops + 1);

  struct Hop {
    sim::EventQueue* queue;
    std::uint64_t left;
    void operator()() const {
      if (left > 0) queue->schedule_in(1, Hop{queue, left - 1});
    }
  };

  const bench::Rate rate = bench::measure_rate(ctx.min_time(0.5), [&] {
    sim::EventQueue queue;
    for (std::size_t c = 0; c < chains; ++c) {
      queue.schedule_in(1, Hop{&queue, hops});
    }
    queue.run_to_completion(events_per_iter);
  });
  const double events_per_sec =
      rate.per_second() * static_cast<double>(events_per_iter);
  report.metric("chains", static_cast<double>(chains));
  report.metric("events_per_iter", static_cast<double>(events_per_iter));
  report.metric("events_per_sec", events_per_sec);
  std::printf("  %zu chains x %llu hops: %12.3e events/s\n", chains,
              static_cast<unsigned long long>(hops), events_per_sec);
}

const bench::Registration reg{
    {"micro_event_queue", bench::Kind::Micro,
     "pooled event-queue schedule+dispatch throughput (64 interleaved "
     "chains)",
     run}};

}  // namespace
