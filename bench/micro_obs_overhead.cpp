// Microbenchmark: what the observability layer costs. Two claims are
// measured, matching the contract documented in DESIGN.md:
//
//  1. Primitive costs — a striped counter bump, a histogram record, an
//     *untraced* span guard (the steady-state cost of every
//     HYPERCAST_OBS_SPAN site: one relaxed flag load) and a raw
//     obs::now_ns() clock read. Under -DHYPERCAST_OBS_DISABLE the span
//     guard compiles to nothing and its rate collapses to the empty
//     loop, which is the no-op proof for the disabled build.
//
//  2. End-to-end serving overhead — the micro_schedule_cache cached
//     steady-state workload (8-cube, 4 shapes of 224 destinations,
//     translated sources) served with stats collection off and on,
//     interleaved best-of-5 like every other serving rate. The
//     "stats_overhead_pct" metric is the acceptance bound: enabled
//     stats must stay within a few percent of the disabled rate.
//
// Flags are saved and restored, so running this benchmark inside a
// --stats bench pass does not disturb later benchmarks.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "harness/bench.hpp"
#include "obs/counter.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

constexpr int kPasses = 5;

template <typename Fn>
bench::Rate best_rate(double min_seconds, Fn&& fn) {
  bench::Rate best;
  for (int pass = 0; pass < kPasses; ++pass) {
    const bench::Rate rate = bench::measure_rate(min_seconds, fn);
    if (rate.per_second() > best.per_second()) best = rate;
  }
  return best;
}

/// Same translated-shape stream as micro_schedule_cache (the cached
/// serving steady state the overhead bound is defined against).
std::vector<core::MulticastRequest> translated_stream(
    const hcube::Topology& topo, std::size_t shapes, std::size_t m,
    std::size_t requests, workload::Rng& rng) {
  std::vector<std::vector<hcube::NodeId>> chains;
  for (std::size_t s = 0; s < shapes; ++s) {
    chains.push_back(workload::random_destinations(topo, 0, m, rng));
  }
  std::vector<core::MulticastRequest> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto& chain = chains[i % chains.size()];
    const auto source = static_cast<hcube::NodeId>(rng() % topo.num_nodes());
    std::vector<hcube::NodeId> dests;
    dests.reserve(chain.size());
    for (const hcube::NodeId d : chain) {
      const auto t = static_cast<hcube::NodeId>(d ^ source);
      if (t != source) dests.push_back(t);
    }
    stream.push_back(core::MulticastRequest{topo, source, std::move(dests)});
  }
  return stream;
}

void run(const bench::Context& ctx, bench::Report& report) {
  obs::FlagsGuard flags;  // restore the caller's stats/tracing state

  report.metric("obs_compiled", obs::kCompiled ? 1.0 : 0.0);

  // ---- primitive costs (batched so the loop overhead amortizes) ----
  constexpr std::uint64_t kBatch = 1024;
  obs::set_stats_enabled(true);
  obs::set_tracing_enabled(false);

  obs::Counter counter;
  const bench::Rate counter_rate = best_rate(ctx.min_time(0.05), [&] {
    for (std::uint64_t i = 0; i < kBatch; ++i) counter.inc();
  });
  report.metric("counter_inc_per_sec",
                counter_rate.per_second() * static_cast<double>(kBatch));

  obs::Histogram hist;
  std::uint64_t value = 1;
  const bench::Rate hist_rate = best_rate(ctx.min_time(0.05), [&] {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      hist.record(value & 0xffff);
      value = value * 2862933555777941757ull + 3037000493ull;
    }
  });
  report.metric("histogram_record_per_sec",
                hist_rate.per_second() * static_cast<double>(kBatch));

  const bench::Rate span_rate = best_rate(ctx.min_time(0.05), [&] {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      HYPERCAST_OBS_SPAN("bench.noop");
    }
  });
  report.metric("span_untraced_per_sec",
                span_rate.per_second() * static_cast<double>(kBatch));

  std::uint64_t clock_sink = 0;
  const bench::Rate clock_rate = best_rate(ctx.min_time(0.05), [&] {
    for (std::uint64_t i = 0; i < kBatch; ++i) clock_sink ^= obs::now_ns();
  });
  report.metric("now_ns_per_sec",
                clock_rate.per_second() * static_cast<double>(kBatch));
  if (clock_sink == 1) std::puts("");  // keep the reads observable

  std::printf(
      "  counter %.0f M/s  histogram %.0f M/s  untraced span %.0f M/s  "
      "clock %.0f M/s\n",
      counter_rate.per_second() * kBatch / 1e6,
      hist_rate.per_second() * kBatch / 1e6,
      span_rate.per_second() * kBatch / 1e6,
      clock_rate.per_second() * kBatch / 1e6);

  // ---- cached serving, stats off vs on ----
  const hcube::Topology topo(8);
  const std::size_t shapes = 4;
  const std::size_t m = 224;
  const std::size_t requests = ctx.quick ? 512 : 4096;
  workload::Rng rng(workload::derive_seed(2027, m, 0));
  const auto stream = translated_stream(topo, shapes, m, requests, rng);

  coll::ScheduleCache::Config config;
  if (ctx.cache_shards != 0) config.shards = ctx.cache_shards;
  if (ctx.cache_bytes != 0) config.max_bytes = ctx.cache_bytes;
  const auto cache = std::make_shared<coll::ScheduleCache>(config);
  const coll::ServePipeline cached("wsort", cache);

  obs::set_stats_enabled(false);
  for (const auto& req : stream) (void)cached.serve(req);  // warm the cache

  std::size_t i = 0;
  const auto serve_one = [&] {
    (void)cached.serve(stream[i]);
    i = (i + 1) % stream.size();
  };
  // Interleave off/on passes so a machine-load burst degrades both
  // sides of the overhead ratio alike; keep the best of each.
  bench::Rate best_off, best_on;
  for (int pass = 0; pass < kPasses; ++pass) {
    obs::set_stats_enabled(false);
    const bench::Rate off = bench::measure_rate(ctx.min_time(0.15), serve_one);
    obs::set_stats_enabled(true);
    const bench::Rate on = bench::measure_rate(ctx.min_time(0.15), serve_one);
    if (off.per_second() > best_off.per_second()) best_off = off;
    if (on.per_second() > best_on.per_second()) best_on = on;
  }
  const double overhead_pct =
      best_off.per_second() > 0.0
          ? (1.0 - best_on.per_second() / best_off.per_second()) * 100.0
          : 0.0;
  report.metric("wsort/224 serves_stats_off_per_sec", best_off.per_second());
  report.metric("wsort/224 serves_stats_on_per_sec", best_on.per_second());
  report.metric("wsort/224 stats_overhead_pct", overhead_pct);
  std::printf(
      "  wsort/224    %10.0f serves/s stats off  %10.0f stats on  "
      "overhead %.2f%%\n",
      best_off.per_second(), best_on.per_second(), overhead_pct);
}

const bench::Registration reg{
    {"micro_obs_overhead", bench::Kind::Micro,
     "observability primitive costs and cached-serving overhead with stats "
     "off vs on (8-cube)",
     run}};

}  // namespace
