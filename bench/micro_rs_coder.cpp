// Microbenchmark: the GF(256) Reed-Solomon stripe coder (code/rs.hpp)
// — the byte-plane cost the striped collectives pay for k-fault
// tolerance. Encode is what every striped send with parity pays;
// reconstruct is the receivers' price when stripes were actually lost.
// Rates are bytes of *payload* per second (not stripe bytes), so the
// numbers compare directly against the link bandwidths the DES models:
// parity coding is worth it only while it runs far above the per-tree
// stream rate, and the regression gate holds that property.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "code/gf256.hpp"
#include "code/rs.hpp"
#include "harness/bench.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

std::vector<std::vector<std::uint8_t>> random_stripes(std::size_t m,
                                                      std::size_t width,
                                                      workload::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> data(m);
  for (auto& s : data) {
    s.resize(width);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng());
  }
  return data;
}

void run(const bench::Context& ctx, bench::Report& report) {
  workload::Rng rng(ctx.seed);
  constexpr std::size_t kPayload = 1 << 20;  // 1 MiB per encode

  // The planner's common shapes: (m, k) with m + k = n trees.
  struct Shape {
    std::size_t m, k;
    const char* label;
  };
  const Shape shapes[] = {{5, 1, "m5k1_xor"},   // legacy XOR stripe
                          {6, 2, "m6k2"},       // 8-cube, double parity
                          {7, 3, "m7k3"}};      // deep parity
  for (const Shape& s : shapes) {
    const std::size_t width = (kPayload + s.m - 1) / s.m;
    const code::RsCode rs(s.m, s.k);
    const auto data = random_stripes(s.m, width, rng);
    std::vector<std::vector<std::uint8_t>> parity;

    const auto encode_rate = bench::measure_rate(ctx.min_time(0.3), [&] {
      rs.encode(data, parity, width);
    });
    const double encode_bps =
        encode_rate.per_second() * static_cast<double>(kPayload);
    report.metric(std::string("rs_encode_payload_bytes_per_sec_") + s.label,
                  encode_bps);
    std::printf("encode %-8s: %8.1f MB/s payload (%zu+%zu stripes)\n",
                s.label, encode_bps / 1e6, s.m, s.k);

    // Reconstruct the worst case: k data stripes lost, all k parity
    // rows needed (full matrix inversion + k addmul passes per row).
    std::vector<std::vector<std::uint8_t>> stripes = data;
    rs.encode(data, parity, width);
    for (auto& p : parity) stripes.push_back(std::move(p));
    std::vector<std::size_t> missing(s.k);
    for (std::size_t i = 0; i < s.k; ++i) missing[i] = i;
    std::vector<std::vector<std::uint8_t>> scratch;
    const auto decode_rate = bench::measure_rate(ctx.min_time(0.3), [&] {
      scratch = stripes;
      for (const std::size_t i : missing) scratch[i].clear();
      rs.reconstruct(scratch, missing, width);
    });
    const double decode_bps =
        decode_rate.per_second() * static_cast<double>(kPayload);
    report.metric(
        std::string("rs_reconstruct_payload_bytes_per_sec_") + s.label,
        decode_bps);
    std::printf("decode %-8s: %8.1f MB/s payload (%zu data stripes lost)\n",
                s.label, decode_bps / 1e6, s.k);
  }

  // The kernel under both: dst ^= c * src over a long row.
  std::vector<std::uint8_t> src(1 << 20), dst(1 << 20);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng());
  std::uint8_t c = 2;
  const auto addmul_rate = bench::measure_rate(ctx.min_time(0.3), [&] {
    code::gf_addmul(dst.data(), src.data(), c, src.size());
    c = static_cast<std::uint8_t>(c + 1);
    if (c == 0) c = 2;
  });
  const double addmul_bps =
      addmul_rate.per_second() * static_cast<double>(src.size());
  report.metric("gf_addmul_bytes_per_sec", addmul_bps);
  std::printf("gf_addmul  : %8.1f MB/s\n", addmul_bps / 1e6);
}

const bench::Registration reg{
    {"micro_rs_coder", bench::Kind::Micro,
     "GF(256) Reed-Solomon stripe coder: encode/reconstruct payload "
     "throughput at planner shapes, plus the addmul kernel",
     run}};

}  // namespace
