// Microbenchmark: schedule-serving throughput with and without the
// translation-invariant ScheduleCache. The workload is the cache's
// design target — a request stream cycling a few destination-chain
// shapes, each XOR-translated to a pseudorandom source — so in steady
// state nearly every serve is a cache hit that costs one key
// canonicalization instead of a tree construction. Measures both modes
// regardless of --cache (the flag only picks which artifact the run
// gates against) and verifies cached output is bit-identical to direct
// construction before timing anything.

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "harness/bench.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

coll::ScheduleCache::Config cache_config(const bench::Context& ctx) {
  coll::ScheduleCache::Config config;
  if (ctx.cache_shards != 0) config.shards = ctx.cache_shards;
  if (ctx.cache_bytes != 0) config.max_bytes = ctx.cache_bytes;
  return config;
}

/// Best of several timing passes: serve rates feed the regression gate
/// and transient machine load can halve any single sample, so take the
/// max. Callers interleave cold/warm passes so a load burst degrades
/// both sides of a speedup ratio alike.
constexpr int kPasses = 5;

template <typename Fn>
bench::Rate best_rate(double min_seconds, Fn&& fn) {
  bench::Rate best;
  for (int pass = 0; pass < kPasses; ++pass) {
    const bench::Rate rate = bench::measure_rate(min_seconds, fn);
    if (rate.per_second() > best.per_second()) best = rate;
  }
  return best;
}

template <typename ColdFn, typename WarmFn>
std::pair<bench::Rate, bench::Rate> best_rates_interleaved(
    double min_seconds, ColdFn&& cold, WarmFn&& warm) {
  bench::Rate best_cold, best_warm;
  for (int pass = 0; pass < kPasses; ++pass) {
    const bench::Rate c = bench::measure_rate(min_seconds, cold);
    const bench::Rate w = bench::measure_rate(min_seconds, warm);
    if (c.per_second() > best_cold.per_second()) best_cold = c;
    if (w.per_second() > best_warm.per_second()) best_warm = w;
  }
  return {best_cold, best_warm};
}

/// `requests` serves cycling `shapes` relative chains of size `m`, each
/// translated to a pseudorandom source.
std::vector<core::MulticastRequest> translated_stream(
    const hcube::Topology& topo, std::size_t shapes, std::size_t m,
    std::size_t requests, workload::Rng& rng) {
  std::vector<std::vector<hcube::NodeId>> chains;
  chains.reserve(shapes);
  for (std::size_t s = 0; s < shapes; ++s) {
    chains.push_back(workload::random_destinations(topo, 0, m, rng));
  }
  std::vector<core::MulticastRequest> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto& chain = chains[i % chains.size()];
    const auto source = static_cast<hcube::NodeId>(rng() % topo.num_nodes());
    std::vector<hcube::NodeId> dests;
    dests.reserve(chain.size());
    for (const hcube::NodeId d : chain) {
      const auto t = static_cast<hcube::NodeId>(d ^ source);
      if (t != source) dests.push_back(t);
    }
    stream.push_back(core::MulticastRequest{topo, source, std::move(dests)});
  }
  return stream;
}

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(8);
  const std::size_t shapes = 4;
  const std::size_t m = 224;
  const std::size_t requests = ctx.quick ? 512 : 4096;

  for (const char* name : {"ucube", "wsort"}) {
    workload::Rng rng(workload::derive_seed(2027, m, 0));
    const auto stream = translated_stream(topo, shapes, m, requests, rng);

    const coll::ServePipeline uncached(name, nullptr);
    const auto cache =
        std::make_shared<coll::ScheduleCache>(cache_config(ctx));
    const coll::ServePipeline cached(name, cache);

    // Correctness gate: cached output must be bit-identical to direct
    // construction for every request (this pass also warms the cache).
    for (const auto& req : stream) {
      if (!(*cached.serve(req) == *uncached.serve(req))) {
        throw std::runtime_error(std::string(name) +
                                 ": cached schedule differs from uncached");
      }
    }

    const auto before = cache->stats();
    std::size_t ci = 0, wi = 0;
    const auto [cold, warm] = best_rates_interleaved(
        ctx.min_time(0.15),
        [&] {
          (void)uncached.serve(stream[ci]);
          ci = (ci + 1) % stream.size();
        },
        [&] {
          (void)cached.serve(stream[wi]);
          wi = (wi + 1) % stream.size();
        });
    const auto after = cache->stats();

    const double timed_hits =
        static_cast<double>(after.total_hits() - before.total_hits());
    const double timed_lookups =
        static_cast<double>(after.lookups() - before.lookups());
    const double hit_rate =
        timed_lookups > 0.0 ? timed_hits / timed_lookups : 0.0;
    const double speedup = cold.per_second() > 0.0
                               ? warm.per_second() / cold.per_second()
                               : 0.0;

    const std::string key = std::string(name) + "/" + std::to_string(m);
    report.metric(key + " uncached_serves_per_sec", cold.per_second());
    report.metric(key + " cached_serves_per_sec", warm.per_second());
    report.metric(key + " cached_speedup", speedup);
    report.metric(key + " hit_rate", hit_rate);
    std::printf(
        "  %-12s %10.0f uncached/s %10.0f cached/s  %5.2fx  "
        "hit rate %.1f%%\n",
        key.c_str(), cold.per_second(), warm.per_second(), speedup,
        hit_rate * 100.0);
  }

  // Batch serving through the pipeline front end (shard-partitioned when
  // ctx.threads > 1), steady state.
  {
    workload::Rng rng(workload::derive_seed(2027, m, 1));
    const auto stream = translated_stream(topo, shapes, m, requests, rng);
    const auto cache =
        std::make_shared<coll::ScheduleCache>(cache_config(ctx));
    const coll::ServePipeline cached("wsort", cache);
    (void)cached.serve_batch(stream, ctx.threads);  // warm
    const bench::Rate batch = best_rate(ctx.min_time(0.3), [&] {
      (void)cached.serve_batch(stream, ctx.threads);
    });
    const double per_req =
        batch.per_second() * static_cast<double>(stream.size());
    const std::string key = "wsort/" + std::to_string(m);
    report.metric(key + " batch_serves_per_sec", per_req);
    std::printf("  %s serve_batch (%d threads) %10.0f requests/s\n",
                key.c_str(), ctx.threads, per_req);
  }
}

const bench::Registration reg{
    {"micro_schedule_cache", bench::Kind::Micro,
     "cached vs uncached schedule-serving throughput on an 8-cube", run}};

}  // namespace
