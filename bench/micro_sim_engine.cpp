// Microbenchmark: discrete-event simulator throughput — full multicast
// replays per second and events per second, for the schedules the
// figure sweeps run by the thousand. This is the regression guard for
// the simulator hot path (pooled events, intrusive waiter lists, shared
// path pool): events_per_sec here is the number to compare across PRs.

#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(10);
  struct Case {
    const char* label;
    const char* algo;
    core::PortModel port;
  };
  const Case cases[] = {
      {"wsort_allport", "wsort", core::PortModel::all_port()},
      {"ucube_allport", "ucube", core::PortModel::all_port()},
      {"ucube_oneport", "ucube", core::PortModel::one_port()},
      {"separate_allport", "separate", core::PortModel::all_port()},
  };
  const std::vector<std::size_t> sizes =
      ctx.quick ? std::vector<std::size_t>{1023}
                : std::vector<std::size_t>{64, 512, 1023};
  for (const Case& c : cases) {
    for (const std::size_t m : sizes) {
      workload::Rng rng(workload::derive_seed(11, m, 0));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      const auto schedule = core::find_algorithm(c.algo).build(req);
      sim::SimConfig config;
      config.port = c.port;
      // The replay is deterministic, so one run gives the per-replay
      // event count and the timed loop only has to count iterations.
      const std::uint64_t events_per_replay =
          sim::simulate_multicast(schedule, config).stats.events;
      const bench::Rate rate = bench::measure_rate(ctx.min_time(0.5), [&] {
        (void)sim::simulate_multicast(schedule, config);
      });
      const double events_per_sec =
          rate.per_second() * static_cast<double>(events_per_replay);
      const std::string key = std::string(c.label) + "/" + std::to_string(m);
      report.metric(key + " replays_per_sec", rate.per_second());
      report.metric(key + " events_per_replay",
                    static_cast<double>(events_per_replay));
      report.metric(key + " events_per_sec", events_per_sec);
      std::printf("  %-22s %9.1f replays/s   %12.3e events/s\n", key.c_str(),
                  rate.per_second(), events_per_sec);
    }
  }
}

const bench::Registration reg{
    {"micro_sim_engine", bench::Kind::Micro,
     "DES throughput: 10-cube multicast replays and events per second "
     "(hot-path regression guard)",
     run}};

}  // namespace
