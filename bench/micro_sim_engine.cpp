// Microbenchmark: discrete-event simulator throughput — full multicast
// replays per second and events per second, for the schedules the
// figure sweeps run by the thousand.

#include <benchmark/benchmark.h>

#include "core/registry.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void simulate(benchmark::State& state, const char* algo_name,
              core::PortModel port) {
  const hcube::Dim n = 10;
  const hcube::Topology topo(n);
  const auto m = static_cast<std::size_t>(state.range(0));
  workload::Rng rng(workload::derive_seed(11, m, 0));
  const auto dests = workload::random_destinations(topo, 0, m, rng);
  const core::MulticastRequest req{topo, 0, dests};
  const auto schedule = core::find_algorithm(algo_name).build(req);
  sim::SimConfig config;
  config.port = port;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = sim::simulate_multicast(schedule, config);
    events += result.stats.events;
    benchmark::DoNotOptimize(result);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(simulate, wsort_allport, "wsort",
                  hypercast::core::PortModel::all_port())
    ->Arg(64)
    ->Arg(512)
    ->Arg(1023);
BENCHMARK_CAPTURE(simulate, ucube_allport, "ucube",
                  hypercast::core::PortModel::all_port())
    ->Arg(64)
    ->Arg(512)
    ->Arg(1023);
BENCHMARK_CAPTURE(simulate, ucube_oneport, "ucube",
                  hypercast::core::PortModel::one_port())
    ->Arg(64)
    ->Arg(512)
    ->Arg(1023);
BENCHMARK_CAPTURE(simulate, separate_allport, "separate",
                  hypercast::core::PortModel::all_port())
    ->Arg(64)
    ->Arg(512)
    ->Arg(1023);

BENCHMARK_MAIN();
