// Scale benchmark: how big a hypercube the DES can simulate and how
// fast. Three prongs, all feeding BENCH_sim_scale.json:
//
//  * full-broadcast replay throughput at 10-, 14- and 16-cube (the
//    16-cube case replays a 65 535-recipient wsort broadcast end to
//    end, including in --quick CI smoke);
//  * memory footprint per simulated node — and the largest cube whose
//    reserved simulator state (network resources + worm SoA + event
//    queue) fits in 1 GiB, the "million-node" headroom number;
//  * sharded-replay scaling: disjoint-subcube tenants simulated via
//    simulate_collectives_sharded at 1 thread vs. the machine's
//    parallelism (speedup/efficiency metrics deliberately avoid the
//    "per_sec" naming so the regression gate ignores machine-dependent
//    scaling figures).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"
#include "sim/worm_engine.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/patterns.hpp"

namespace {

using namespace hypercast;

/// Heap bytes a full-broadcast simulation of an n-cube pins once its
/// reserves are in place: network resource/waiter tables, per-worm SoA
/// arrays and the shared path pool, and the event-queue ticket storage.
std::size_t footprint_bytes(int n) {
  const hcube::Topology topo(n);
  sim::EventQueue queue;
  sim::WormEngine worms(topo, sim::CostModel::ncube2(),
                        core::PortModel::all_port(), queue);
  const std::size_t messages = topo.num_nodes() - 1;
  worms.reserve(messages, static_cast<std::size_t>(n) / 2 + 2);
  queue.reserve(messages);
  return worms.memory_bytes() + queue.memory_bytes();
}

void run(const bench::Context& ctx, bench::Report& report) {
  sim::SimConfig config;  // all-port, the paper's measurement setup

  // Prong 1: full-broadcast replay throughput by cube size.
  const std::vector<int> cubes =
      ctx.quick ? std::vector<int>{10, 16} : std::vector<int>{10, 14, 16};
  for (const int n : cubes) {
    const hcube::Topology topo(n);
    const auto dests = workload::broadcast_destinations(topo, 0);
    const core::MulticastRequest req{topo, 0, dests};
    const auto schedule = core::find_algorithm("wsort").build(req);
    // The replay is deterministic: one run fixes events-per-replay, the
    // timed loop just counts iterations.
    const std::uint64_t events_per_replay =
        sim::simulate_multicast(schedule, config).stats.events;
    const bench::Rate rate = bench::measure_rate(ctx.min_time(0.5), [&] {
      (void)sim::simulate_multicast(schedule, config);
    });
    const double events_per_sec =
        rate.per_second() * static_cast<double>(events_per_replay);
    const std::string key = std::to_string(n) + "cube";
    report.metric(key + " replays_per_sec", rate.per_second());
    report.metric(key + " events_per_replay",
                  static_cast<double>(events_per_replay));
    report.metric(key + " events_per_sec", events_per_sec);
    const double nodes_per_gb =
        static_cast<double>(topo.num_nodes()) *
        (static_cast<double>(std::size_t{1} << 30) /
         static_cast<double>(footprint_bytes(n)));
    report.metric(key + " nodes_per_gb", nodes_per_gb);
    std::printf("  %-7s %10.2f replays/s   %11.3e events/s   %10.0f nodes/GB\n",
                key.c_str(), rate.per_second(), events_per_sec, nodes_per_gb);
  }

  // Prong 2: the largest cube whose reserved simulator state fits in
  // 1 GiB (bounded by the topology's kMaxDim).
  int max_dim = 0;
  for (int n = 10; n <= hcube::kMaxDim; ++n) {
    if (footprint_bytes(n) > (std::size_t{1} << 30)) break;
    max_dim = n;
  }
  const double max_nodes =
      max_dim > 0 ? static_cast<double>(std::size_t{1} << max_dim) : 0.0;
  report.metric("max_cube_dim_in_1gb", static_cast<double>(max_dim));
  report.metric("max_cube_nodes_per_gb", max_nodes);
  std::printf("  largest cube in 1 GiB: %d-cube (%.0f nodes)\n", max_dim,
              max_nodes);

  // Prong 3: sharded replay of disjoint-subcube tenants. 16 tenants
  // each broadcast inside their own 10-subcube of a 14-cube: footprints
  // are provably disjoint, so the shard planner splits them 16 ways and
  // thread scaling is pure parallel speedup.
  {
    const hcube::Topology topo(14);
    std::vector<core::MulticastSchedule> schedules;
    schedules.reserve(16);
    std::vector<sim::CollectiveJob> jobs;
    for (int t = 0; t < 16; ++t) {
      const hcube::NodeId base = static_cast<hcube::NodeId>(t) << 10;
      std::vector<hcube::NodeId> dests;
      dests.reserve((1u << 10) - 1);
      for (hcube::NodeId off = 1; off < (1u << 10); ++off) {
        dests.push_back(base ^ off);
      }
      const core::MulticastRequest req{topo, base, dests};
      schedules.push_back(core::find_algorithm("wsort").build(req));
      jobs.push_back(sim::CollectiveJob{&schedules.back(), 0});
    }
    const std::uint64_t events =
        sim::simulate_collectives_sharded(jobs, config, 1).stats.events;
    const bench::Rate serial = bench::measure_rate(ctx.min_time(0.5), [&] {
      (void)sim::simulate_collectives_sharded(jobs, config, 1);
    });
    const unsigned threads = std::clamp(
        std::thread::hardware_concurrency(), 1u, 16u);
    const bench::Rate parallel = bench::measure_rate(ctx.min_time(0.5), [&] {
      (void)sim::simulate_collectives_sharded(jobs, config, threads);
    });
    const double speedup = parallel.per_second() / serial.per_second();
    report.metric("sharded_events_per_sec",
                  serial.per_second() * static_cast<double>(events));
    report.metric("shard_threads", static_cast<double>(threads));
    report.metric("shard_speedup", speedup);
    report.metric("shard_efficiency", speedup / static_cast<double>(threads));
    std::printf(
        "  shards: %11.3e events/s serial, %.2fx speedup at %u threads\n",
        serial.per_second() * static_cast<double>(events), speedup, threads);
  }
}

const bench::Registration reg{
    {"sim_scale", bench::Kind::Micro,
     "DES scale: full-broadcast events/s at 10/14/16-cube, nodes per GB "
     "of simulator state, and sharded-replay thread scaling",
     run}};

}  // namespace
