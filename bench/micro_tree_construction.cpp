// Microbenchmark: schedule-construction cost of each multicast
// algorithm versus destination-set size. The distributed algorithms run
// this logic at multicast-initiation time, so construction cost is part
// of the real latency budget (the paper quotes O(m^2) centralized /
// O(m log m) distributed for weighted_sort).

#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "harness/bench.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(10);
  const std::vector<std::size_t> sizes =
      ctx.quick ? std::vector<std::size_t>{128, 1023}
                : std::vector<std::size_t>{8, 32, 128, 512, 1023};
  for (const char* name :
       {"ucube", "maxport", "combine", "wsort", "separate", "sftree"}) {
    const auto& algo = core::find_algorithm(name);
    for (const std::size_t m : sizes) {
      workload::Rng rng(workload::derive_seed(2026, m, 0));
      const auto dests = workload::random_destinations(topo, 0, m, rng);
      const core::MulticastRequest req{topo, 0, dests};
      const bench::Rate rate = bench::measure_rate(
          ctx.min_time(0.2), [&] { (void)algo.build(req); });
      const std::string key = std::string(name) + "/" + std::to_string(m);
      report.metric(key + " builds_per_sec", rate.per_second());
      std::printf("  %-16s %12.1f builds/s\n", key.c_str(),
                  rate.per_second());
    }
  }
}

const bench::Registration reg{
    {"micro_tree_construction", bench::Kind::Micro,
     "schedule-construction throughput per algorithm on a 10-cube", run}};

}  // namespace
