// Microbenchmark: schedule-construction cost of each multicast
// algorithm versus destination-set size. The distributed algorithms run
// this logic at multicast-initiation time, so construction cost is part
// of the real latency budget (the paper quotes O(m^2) centralized /
// O(m log m) distributed for weighted_sort).

#include <benchmark/benchmark.h>

#include "core/registry.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

void construction(benchmark::State& state, const char* name) {
  const hcube::Dim n = 10;
  const hcube::Topology topo(n);
  const auto m = static_cast<std::size_t>(state.range(0));
  workload::Rng rng(workload::derive_seed(2026, m, 0));
  const auto dests = workload::random_destinations(topo, 0, m, rng);
  const core::MulticastRequest req{topo, 0, dests};
  const auto& algo = core::find_algorithm(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.build(req));
  }
  state.SetComplexityN(static_cast<std::int64_t>(m));
}

}  // namespace

BENCHMARK_CAPTURE(construction, ucube, "ucube")
    ->RangeMultiplier(4)
    ->Range(8, 1023)
    ->Complexity();
BENCHMARK_CAPTURE(construction, maxport, "maxport")
    ->RangeMultiplier(4)
    ->Range(8, 1023)
    ->Complexity();
BENCHMARK_CAPTURE(construction, combine, "combine")
    ->RangeMultiplier(4)
    ->Range(8, 1023)
    ->Complexity();
BENCHMARK_CAPTURE(construction, wsort, "wsort")
    ->RangeMultiplier(4)
    ->Range(8, 1023)
    ->Complexity();
BENCHMARK_CAPTURE(construction, separate, "separate")
    ->RangeMultiplier(4)
    ->Range(8, 1023)
    ->Complexity();
BENCHMARK_CAPTURE(construction, sftree, "sftree")
    ->RangeMultiplier(4)
    ->Range(8, 1023)
    ->Complexity();

BENCHMARK_MAIN();
