// Microbenchmark: the faithful Figure-7 weighted_sort (in-place
// rotations, the paper's centralized O(m^2)-class procedure) against
// the O(m log N) top-down rewrite standing in for the distributed
// O(m log m) version. Both produce identical output (tested).

#include <cstdio>
#include <string>
#include <vector>

#include "core/weighted_sort.hpp"
#include "harness/bench.hpp"
#include "hcube/chain.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

std::vector<hcube::NodeId> make_chain(const hcube::Topology& topo,
                                      std::size_t m) {
  workload::Rng rng(
      workload::derive_seed(7, m, static_cast<std::uint64_t>(topo.dim())));
  const auto dests = workload::random_destinations(topo, 0, m, rng);
  return hcube::make_relative_chain(topo, 0, dests);
}

void run(const bench::Context& ctx, bench::Report& report) {
  const hcube::Topology topo(15);
  const std::vector<std::size_t> sizes =
      ctx.quick ? std::vector<std::size_t>{256}
                : std::vector<std::size_t>{16, 256, 4096, 16384};
  for (const std::size_t m : sizes) {
    const auto chain = make_chain(topo, m);
    for (const bool fast : {false, true}) {
      const bench::Rate rate = bench::measure_rate(ctx.min_time(0.2), [&] {
        auto copy = chain;
        if (fast) {
          core::weighted_sort_fast(topo, copy);
        } else {
          core::weighted_sort_faithful(topo, copy);
        }
      });
      const std::string key =
          std::string(fast ? "fast" : "faithful") + "/" + std::to_string(m);
      report.metric(key + " sorts_per_sec", rate.per_second());
      std::printf("  %-16s %12.1f sorts/s\n", key.c_str(), rate.per_second());
    }
  }
}

const bench::Registration reg{
    {"micro_weighted_sort", bench::Kind::Micro,
     "weighted_sort faithful vs fast rewrite on 15-cube chains", run}};

}  // namespace
