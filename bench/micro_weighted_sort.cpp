// Microbenchmark: the faithful Figure-7 weighted_sort (in-place
// rotations, the paper's centralized O(m^2)-class procedure) against
// the O(m log N) top-down rewrite standing in for the distributed
// O(m log m) version. Both produce identical output (tested).

#include <benchmark/benchmark.h>

#include "core/weighted_sort.hpp"
#include "hcube/chain.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

std::vector<hcube::NodeId> make_chain(hcube::Dim n, std::size_t m) {
  const hcube::Topology topo(n);
  workload::Rng rng(workload::derive_seed(7, m, static_cast<std::uint64_t>(n)));
  const auto dests = workload::random_destinations(topo, 0, m, rng);
  return hcube::make_relative_chain(topo, 0, dests);
}

void faithful(benchmark::State& state) {
  const hcube::Dim n = 15;
  const hcube::Topology topo(n);
  const auto chain = make_chain(n, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = chain;
    core::weighted_sort_faithful(topo, copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(state.range(0));
}

void fast(benchmark::State& state) {
  const hcube::Dim n = 15;
  const hcube::Topology topo(n);
  const auto chain = make_chain(n, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto copy = chain;
    core::weighted_sort_fast(topo, copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(faithful)->RangeMultiplier(4)->Range(16, 16384)->Complexity();
BENCHMARK(fast)->RangeMultiplier(4)->Range(16, 16384)->Complexity();

BENCHMARK_MAIN();
