file(REMOVE_RECURSE
  "../bench/ablation_baselines"
  "../bench/ablation_baselines.pdb"
  "CMakeFiles/ablation_baselines.dir/ablation_baselines.cpp.o"
  "CMakeFiles/ablation_baselines.dir/ablation_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
