file(REMOVE_RECURSE
  "../bench/ablation_chain_search"
  "../bench/ablation_chain_search.pdb"
  "CMakeFiles/ablation_chain_search.dir/ablation_chain_search.cpp.o"
  "CMakeFiles/ablation_chain_search.dir/ablation_chain_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
