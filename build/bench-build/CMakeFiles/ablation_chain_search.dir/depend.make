# Empty dependencies file for ablation_chain_search.
# This may be replaced when dependencies are built.
