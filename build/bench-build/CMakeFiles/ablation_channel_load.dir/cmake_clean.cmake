file(REMOVE_RECURSE
  "../bench/ablation_channel_load"
  "../bench/ablation_channel_load.pdb"
  "CMakeFiles/ablation_channel_load.dir/ablation_channel_load.cpp.o"
  "CMakeFiles/ablation_channel_load.dir/ablation_channel_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_channel_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
