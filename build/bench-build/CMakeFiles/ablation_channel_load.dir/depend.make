# Empty dependencies file for ablation_channel_load.
# This may be replaced when dependencies are built.
