file(REMOVE_RECURSE
  "../bench/ablation_concurrent"
  "../bench/ablation_concurrent.pdb"
  "CMakeFiles/ablation_concurrent.dir/ablation_concurrent.cpp.o"
  "CMakeFiles/ablation_concurrent.dir/ablation_concurrent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
