# Empty dependencies file for ablation_concurrent.
# This may be replaced when dependencies are built.
