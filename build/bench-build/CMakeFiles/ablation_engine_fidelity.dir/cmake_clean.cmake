file(REMOVE_RECURSE
  "../bench/ablation_engine_fidelity"
  "../bench/ablation_engine_fidelity.pdb"
  "CMakeFiles/ablation_engine_fidelity.dir/ablation_engine_fidelity.cpp.o"
  "CMakeFiles/ablation_engine_fidelity.dir/ablation_engine_fidelity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_engine_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
