# Empty compiler generated dependencies file for ablation_engine_fidelity.
# This may be replaced when dependencies are built.
