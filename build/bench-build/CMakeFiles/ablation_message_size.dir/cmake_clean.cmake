file(REMOVE_RECURSE
  "../bench/ablation_message_size"
  "../bench/ablation_message_size.pdb"
  "CMakeFiles/ablation_message_size.dir/ablation_message_size.cpp.o"
  "CMakeFiles/ablation_message_size.dir/ablation_message_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
