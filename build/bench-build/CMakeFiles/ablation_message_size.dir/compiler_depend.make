# Empty compiler generated dependencies file for ablation_message_size.
# This may be replaced when dependencies are built.
