file(REMOVE_RECURSE
  "../bench/ablation_port_models"
  "../bench/ablation_port_models.pdb"
  "CMakeFiles/ablation_port_models.dir/ablation_port_models.cpp.o"
  "CMakeFiles/ablation_port_models.dir/ablation_port_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_port_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
