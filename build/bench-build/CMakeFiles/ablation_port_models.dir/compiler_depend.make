# Empty compiler generated dependencies file for ablation_port_models.
# This may be replaced when dependencies are built.
