file(REMOVE_RECURSE
  "../bench/ablation_reduce"
  "../bench/ablation_reduce.pdb"
  "CMakeFiles/ablation_reduce.dir/ablation_reduce.cpp.o"
  "CMakeFiles/ablation_reduce.dir/ablation_reduce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
