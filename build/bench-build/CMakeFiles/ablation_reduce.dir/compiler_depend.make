# Empty compiler generated dependencies file for ablation_reduce.
# This may be replaced when dependencies are built.
