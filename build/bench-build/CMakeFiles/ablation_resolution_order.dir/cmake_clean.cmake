file(REMOVE_RECURSE
  "../bench/ablation_resolution_order"
  "../bench/ablation_resolution_order.pdb"
  "CMakeFiles/ablation_resolution_order.dir/ablation_resolution_order.cpp.o"
  "CMakeFiles/ablation_resolution_order.dir/ablation_resolution_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resolution_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
