file(REMOVE_RECURSE
  "../bench/ablation_workload_patterns"
  "../bench/ablation_workload_patterns.pdb"
  "CMakeFiles/ablation_workload_patterns.dir/ablation_workload_patterns.cpp.o"
  "CMakeFiles/ablation_workload_patterns.dir/ablation_workload_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workload_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
