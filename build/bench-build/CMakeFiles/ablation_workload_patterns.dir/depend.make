# Empty dependencies file for ablation_workload_patterns.
# This may be replaced when dependencies are built.
