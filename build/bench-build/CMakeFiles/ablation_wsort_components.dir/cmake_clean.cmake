file(REMOVE_RECURSE
  "../bench/ablation_wsort_components"
  "../bench/ablation_wsort_components.pdb"
  "CMakeFiles/ablation_wsort_components.dir/ablation_wsort_components.cpp.o"
  "CMakeFiles/ablation_wsort_components.dir/ablation_wsort_components.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wsort_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
