# Empty dependencies file for ablation_wsort_components.
# This may be replaced when dependencies are built.
