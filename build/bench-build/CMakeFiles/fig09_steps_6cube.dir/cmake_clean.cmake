file(REMOVE_RECURSE
  "../bench/fig09_steps_6cube"
  "../bench/fig09_steps_6cube.pdb"
  "CMakeFiles/fig09_steps_6cube.dir/fig09_steps_6cube.cpp.o"
  "CMakeFiles/fig09_steps_6cube.dir/fig09_steps_6cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_steps_6cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
