# Empty compiler generated dependencies file for fig09_steps_6cube.
# This may be replaced when dependencies are built.
