file(REMOVE_RECURSE
  "../bench/fig10_steps_10cube"
  "../bench/fig10_steps_10cube.pdb"
  "CMakeFiles/fig10_steps_10cube.dir/fig10_steps_10cube.cpp.o"
  "CMakeFiles/fig10_steps_10cube.dir/fig10_steps_10cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_steps_10cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
