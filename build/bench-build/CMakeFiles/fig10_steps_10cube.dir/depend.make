# Empty dependencies file for fig10_steps_10cube.
# This may be replaced when dependencies are built.
