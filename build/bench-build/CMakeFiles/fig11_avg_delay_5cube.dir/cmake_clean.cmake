file(REMOVE_RECURSE
  "../bench/fig11_avg_delay_5cube"
  "../bench/fig11_avg_delay_5cube.pdb"
  "CMakeFiles/fig11_avg_delay_5cube.dir/fig11_avg_delay_5cube.cpp.o"
  "CMakeFiles/fig11_avg_delay_5cube.dir/fig11_avg_delay_5cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_avg_delay_5cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
