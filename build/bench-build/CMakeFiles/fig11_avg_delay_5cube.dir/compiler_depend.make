# Empty compiler generated dependencies file for fig11_avg_delay_5cube.
# This may be replaced when dependencies are built.
