file(REMOVE_RECURSE
  "../bench/fig12_max_delay_5cube"
  "../bench/fig12_max_delay_5cube.pdb"
  "CMakeFiles/fig12_max_delay_5cube.dir/fig12_max_delay_5cube.cpp.o"
  "CMakeFiles/fig12_max_delay_5cube.dir/fig12_max_delay_5cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_max_delay_5cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
