# Empty compiler generated dependencies file for fig12_max_delay_5cube.
# This may be replaced when dependencies are built.
