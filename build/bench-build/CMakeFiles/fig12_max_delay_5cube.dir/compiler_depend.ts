# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_max_delay_5cube.
