file(REMOVE_RECURSE
  "../bench/fig13_avg_delay_10cube"
  "../bench/fig13_avg_delay_10cube.pdb"
  "CMakeFiles/fig13_avg_delay_10cube.dir/fig13_avg_delay_10cube.cpp.o"
  "CMakeFiles/fig13_avg_delay_10cube.dir/fig13_avg_delay_10cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_avg_delay_10cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
