# Empty dependencies file for fig13_avg_delay_10cube.
# This may be replaced when dependencies are built.
