file(REMOVE_RECURSE
  "../bench/fig14_max_delay_10cube"
  "../bench/fig14_max_delay_10cube.pdb"
  "CMakeFiles/fig14_max_delay_10cube.dir/fig14_max_delay_10cube.cpp.o"
  "CMakeFiles/fig14_max_delay_10cube.dir/fig14_max_delay_10cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_max_delay_10cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
