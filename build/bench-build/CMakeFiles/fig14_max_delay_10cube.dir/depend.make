# Empty dependencies file for fig14_max_delay_10cube.
# This may be replaced when dependencies are built.
