file(REMOVE_RECURSE
  "../bench/micro_sim_engine"
  "../bench/micro_sim_engine.pdb"
  "CMakeFiles/micro_sim_engine.dir/micro_sim_engine.cpp.o"
  "CMakeFiles/micro_sim_engine.dir/micro_sim_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
