file(REMOVE_RECURSE
  "../bench/micro_tree_construction"
  "../bench/micro_tree_construction.pdb"
  "CMakeFiles/micro_tree_construction.dir/micro_tree_construction.cpp.o"
  "CMakeFiles/micro_tree_construction.dir/micro_tree_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tree_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
