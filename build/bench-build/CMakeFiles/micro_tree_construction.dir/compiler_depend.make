# Empty compiler generated dependencies file for micro_tree_construction.
# This may be replaced when dependencies are built.
