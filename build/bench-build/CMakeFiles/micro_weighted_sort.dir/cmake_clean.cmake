file(REMOVE_RECURSE
  "../bench/micro_weighted_sort"
  "../bench/micro_weighted_sort.pdb"
  "CMakeFiles/micro_weighted_sort.dir/micro_weighted_sort.cpp.o"
  "CMakeFiles/micro_weighted_sort.dir/micro_weighted_sort.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_weighted_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
