# Empty dependencies file for micro_weighted_sort.
# This may be replaced when dependencies are built.
