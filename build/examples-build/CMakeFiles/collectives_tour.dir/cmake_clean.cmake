file(REMOVE_RECURSE
  "../examples/collectives_tour"
  "../examples/collectives_tour.pdb"
  "CMakeFiles/collectives_tour.dir/collectives_tour.cpp.o"
  "CMakeFiles/collectives_tour.dir/collectives_tour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
