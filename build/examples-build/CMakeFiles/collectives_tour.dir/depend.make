# Empty dependencies file for collectives_tour.
# This may be replaced when dependencies are built.
