
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/contention_demo.cpp" "examples-build/CMakeFiles/contention_demo.dir/contention_demo.cpp.o" "gcc" "examples-build/CMakeFiles/contention_demo.dir/contention_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypercast_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_hcube.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
