file(REMOVE_RECURSE
  "../examples/contention_demo"
  "../examples/contention_demo.pdb"
  "CMakeFiles/contention_demo.dir/contention_demo.cpp.o"
  "CMakeFiles/contention_demo.dir/contention_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
