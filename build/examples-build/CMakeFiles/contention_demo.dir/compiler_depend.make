# Empty compiler generated dependencies file for contention_demo.
# This may be replaced when dependencies are built.
