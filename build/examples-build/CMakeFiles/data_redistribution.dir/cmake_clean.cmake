file(REMOVE_RECURSE
  "../examples/data_redistribution"
  "../examples/data_redistribution.pdb"
  "CMakeFiles/data_redistribution.dir/data_redistribution.cpp.o"
  "CMakeFiles/data_redistribution.dir/data_redistribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
