# Empty dependencies file for data_redistribution.
# This may be replaced when dependencies are built.
