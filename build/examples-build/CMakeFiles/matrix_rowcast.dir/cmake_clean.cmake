file(REMOVE_RECURSE
  "../examples/matrix_rowcast"
  "../examples/matrix_rowcast.pdb"
  "CMakeFiles/matrix_rowcast.dir/matrix_rowcast.cpp.o"
  "CMakeFiles/matrix_rowcast.dir/matrix_rowcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_rowcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
