# Empty dependencies file for matrix_rowcast.
# This may be replaced when dependencies are built.
