file(REMOVE_RECURSE
  "../examples/paper_walkthrough"
  "../examples/paper_walkthrough.pdb"
  "CMakeFiles/paper_walkthrough.dir/paper_walkthrough.cpp.o"
  "CMakeFiles/paper_walkthrough.dir/paper_walkthrough.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
