# Empty compiler generated dependencies file for paper_walkthrough.
# This may be replaced when dependencies are built.
