
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/all_to_all.cpp" "src/CMakeFiles/hypercast_coll.dir/coll/all_to_all.cpp.o" "gcc" "src/CMakeFiles/hypercast_coll.dir/coll/all_to_all.cpp.o.d"
  "/root/repo/src/coll/collectives.cpp" "src/CMakeFiles/hypercast_coll.dir/coll/collectives.cpp.o" "gcc" "src/CMakeFiles/hypercast_coll.dir/coll/collectives.cpp.o.d"
  "/root/repo/src/coll/reduce.cpp" "src/CMakeFiles/hypercast_coll.dir/coll/reduce.cpp.o" "gcc" "src/CMakeFiles/hypercast_coll.dir/coll/reduce.cpp.o.d"
  "/root/repo/src/coll/scatter.cpp" "src/CMakeFiles/hypercast_coll.dir/coll/scatter.cpp.o" "gcc" "src/CMakeFiles/hypercast_coll.dir/coll/scatter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypercast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_hcube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
