file(REMOVE_RECURSE
  "CMakeFiles/hypercast_coll.dir/coll/all_to_all.cpp.o"
  "CMakeFiles/hypercast_coll.dir/coll/all_to_all.cpp.o.d"
  "CMakeFiles/hypercast_coll.dir/coll/collectives.cpp.o"
  "CMakeFiles/hypercast_coll.dir/coll/collectives.cpp.o.d"
  "CMakeFiles/hypercast_coll.dir/coll/reduce.cpp.o"
  "CMakeFiles/hypercast_coll.dir/coll/reduce.cpp.o.d"
  "CMakeFiles/hypercast_coll.dir/coll/scatter.cpp.o"
  "CMakeFiles/hypercast_coll.dir/coll/scatter.cpp.o.d"
  "libhypercast_coll.a"
  "libhypercast_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
