file(REMOVE_RECURSE
  "libhypercast_coll.a"
)
