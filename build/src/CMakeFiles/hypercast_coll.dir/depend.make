# Empty dependencies file for hypercast_coll.
# This may be replaced when dependencies are built.
