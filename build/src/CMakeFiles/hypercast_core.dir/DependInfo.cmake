
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/CMakeFiles/hypercast_core.dir/core/bounds.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/bounds.cpp.o.d"
  "/root/repo/src/core/chain_algorithms.cpp" "src/CMakeFiles/hypercast_core.dir/core/chain_algorithms.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/chain_algorithms.cpp.o.d"
  "/root/repo/src/core/chain_search.cpp" "src/CMakeFiles/hypercast_core.dir/core/chain_search.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/chain_search.cpp.o.d"
  "/root/repo/src/core/channel_load.cpp" "src/CMakeFiles/hypercast_core.dir/core/channel_load.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/channel_load.cpp.o.d"
  "/root/repo/src/core/contention.cpp" "src/CMakeFiles/hypercast_core.dir/core/contention.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/contention.cpp.o.d"
  "/root/repo/src/core/multicast.cpp" "src/CMakeFiles/hypercast_core.dir/core/multicast.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/multicast.cpp.o.d"
  "/root/repo/src/core/reachable.cpp" "src/CMakeFiles/hypercast_core.dir/core/reachable.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/reachable.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/hypercast_core.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/separate.cpp" "src/CMakeFiles/hypercast_core.dir/core/separate.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/separate.cpp.o.d"
  "/root/repo/src/core/sf_tree.cpp" "src/CMakeFiles/hypercast_core.dir/core/sf_tree.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/sf_tree.cpp.o.d"
  "/root/repo/src/core/stepwise.cpp" "src/CMakeFiles/hypercast_core.dir/core/stepwise.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/stepwise.cpp.o.d"
  "/root/repo/src/core/weighted_sort.cpp" "src/CMakeFiles/hypercast_core.dir/core/weighted_sort.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/weighted_sort.cpp.o.d"
  "/root/repo/src/core/wsort.cpp" "src/CMakeFiles/hypercast_core.dir/core/wsort.cpp.o" "gcc" "src/CMakeFiles/hypercast_core.dir/core/wsort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypercast_hcube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
