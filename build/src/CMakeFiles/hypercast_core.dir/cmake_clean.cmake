file(REMOVE_RECURSE
  "CMakeFiles/hypercast_core.dir/core/bounds.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/bounds.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/chain_algorithms.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/chain_algorithms.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/chain_search.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/chain_search.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/channel_load.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/channel_load.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/contention.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/contention.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/multicast.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/multicast.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/reachable.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/reachable.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/registry.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/registry.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/separate.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/separate.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/sf_tree.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/sf_tree.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/stepwise.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/stepwise.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/weighted_sort.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/weighted_sort.cpp.o.d"
  "CMakeFiles/hypercast_core.dir/core/wsort.cpp.o"
  "CMakeFiles/hypercast_core.dir/core/wsort.cpp.o.d"
  "libhypercast_core.a"
  "libhypercast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
