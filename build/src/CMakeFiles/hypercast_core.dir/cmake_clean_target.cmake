file(REMOVE_RECURSE
  "libhypercast_core.a"
)
