# Empty dependencies file for hypercast_core.
# This may be replaced when dependencies are built.
