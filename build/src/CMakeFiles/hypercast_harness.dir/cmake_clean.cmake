file(REMOVE_RECURSE
  "CMakeFiles/hypercast_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/hypercast_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/hypercast_harness.dir/harness/figures.cpp.o"
  "CMakeFiles/hypercast_harness.dir/harness/figures.cpp.o.d"
  "CMakeFiles/hypercast_harness.dir/harness/options.cpp.o"
  "CMakeFiles/hypercast_harness.dir/harness/options.cpp.o.d"
  "libhypercast_harness.a"
  "libhypercast_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
