file(REMOVE_RECURSE
  "libhypercast_harness.a"
)
