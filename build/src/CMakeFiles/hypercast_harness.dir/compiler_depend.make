# Empty compiler generated dependencies file for hypercast_harness.
# This may be replaced when dependencies are built.
