
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hcube/chain.cpp" "src/CMakeFiles/hypercast_hcube.dir/hcube/chain.cpp.o" "gcc" "src/CMakeFiles/hypercast_hcube.dir/hcube/chain.cpp.o.d"
  "/root/repo/src/hcube/ecube.cpp" "src/CMakeFiles/hypercast_hcube.dir/hcube/ecube.cpp.o" "gcc" "src/CMakeFiles/hypercast_hcube.dir/hcube/ecube.cpp.o.d"
  "/root/repo/src/hcube/embeddings.cpp" "src/CMakeFiles/hypercast_hcube.dir/hcube/embeddings.cpp.o" "gcc" "src/CMakeFiles/hypercast_hcube.dir/hcube/embeddings.cpp.o.d"
  "/root/repo/src/hcube/subcube.cpp" "src/CMakeFiles/hypercast_hcube.dir/hcube/subcube.cpp.o" "gcc" "src/CMakeFiles/hypercast_hcube.dir/hcube/subcube.cpp.o.d"
  "/root/repo/src/hcube/topology.cpp" "src/CMakeFiles/hypercast_hcube.dir/hcube/topology.cpp.o" "gcc" "src/CMakeFiles/hypercast_hcube.dir/hcube/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
