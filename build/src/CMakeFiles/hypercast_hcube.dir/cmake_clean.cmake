file(REMOVE_RECURSE
  "CMakeFiles/hypercast_hcube.dir/hcube/chain.cpp.o"
  "CMakeFiles/hypercast_hcube.dir/hcube/chain.cpp.o.d"
  "CMakeFiles/hypercast_hcube.dir/hcube/ecube.cpp.o"
  "CMakeFiles/hypercast_hcube.dir/hcube/ecube.cpp.o.d"
  "CMakeFiles/hypercast_hcube.dir/hcube/embeddings.cpp.o"
  "CMakeFiles/hypercast_hcube.dir/hcube/embeddings.cpp.o.d"
  "CMakeFiles/hypercast_hcube.dir/hcube/subcube.cpp.o"
  "CMakeFiles/hypercast_hcube.dir/hcube/subcube.cpp.o.d"
  "CMakeFiles/hypercast_hcube.dir/hcube/topology.cpp.o"
  "CMakeFiles/hypercast_hcube.dir/hcube/topology.cpp.o.d"
  "libhypercast_hcube.a"
  "libhypercast_hcube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_hcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
