file(REMOVE_RECURSE
  "libhypercast_hcube.a"
)
