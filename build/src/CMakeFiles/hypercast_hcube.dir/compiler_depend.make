# Empty compiler generated dependencies file for hypercast_hcube.
# This may be replaced when dependencies are built.
