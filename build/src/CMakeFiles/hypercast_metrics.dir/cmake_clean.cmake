file(REMOVE_RECURSE
  "CMakeFiles/hypercast_metrics.dir/metrics/series.cpp.o"
  "CMakeFiles/hypercast_metrics.dir/metrics/series.cpp.o.d"
  "CMakeFiles/hypercast_metrics.dir/metrics/stats.cpp.o"
  "CMakeFiles/hypercast_metrics.dir/metrics/stats.cpp.o.d"
  "CMakeFiles/hypercast_metrics.dir/metrics/table.cpp.o"
  "CMakeFiles/hypercast_metrics.dir/metrics/table.cpp.o.d"
  "libhypercast_metrics.a"
  "libhypercast_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
