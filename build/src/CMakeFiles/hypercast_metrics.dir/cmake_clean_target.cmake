file(REMOVE_RECURSE
  "libhypercast_metrics.a"
)
