# Empty dependencies file for hypercast_metrics.
# This may be replaced when dependencies are built.
