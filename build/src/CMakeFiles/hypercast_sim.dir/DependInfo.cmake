
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/flit_sim.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/flit_sim.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/flit_sim.cpp.o.d"
  "/root/repo/src/sim/latency_model.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/latency_model.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/latency_model.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/worm_engine.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/worm_engine.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/worm_engine.cpp.o.d"
  "/root/repo/src/sim/wormhole_sim.cpp" "src/CMakeFiles/hypercast_sim.dir/sim/wormhole_sim.cpp.o" "gcc" "src/CMakeFiles/hypercast_sim.dir/sim/wormhole_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypercast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_hcube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
