file(REMOVE_RECURSE
  "CMakeFiles/hypercast_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/hypercast_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/hypercast_sim.dir/sim/flit_sim.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/flit_sim.cpp.o.d"
  "CMakeFiles/hypercast_sim.dir/sim/latency_model.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/latency_model.cpp.o.d"
  "CMakeFiles/hypercast_sim.dir/sim/network.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/hypercast_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/hypercast_sim.dir/sim/worm_engine.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/worm_engine.cpp.o.d"
  "CMakeFiles/hypercast_sim.dir/sim/wormhole_sim.cpp.o"
  "CMakeFiles/hypercast_sim.dir/sim/wormhole_sim.cpp.o.d"
  "libhypercast_sim.a"
  "libhypercast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
