file(REMOVE_RECURSE
  "libhypercast_sim.a"
)
