# Empty dependencies file for hypercast_sim.
# This may be replaced when dependencies are built.
