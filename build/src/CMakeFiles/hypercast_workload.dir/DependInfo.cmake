
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/patterns.cpp" "src/CMakeFiles/hypercast_workload.dir/workload/patterns.cpp.o" "gcc" "src/CMakeFiles/hypercast_workload.dir/workload/patterns.cpp.o.d"
  "/root/repo/src/workload/random_sets.cpp" "src/CMakeFiles/hypercast_workload.dir/workload/random_sets.cpp.o" "gcc" "src/CMakeFiles/hypercast_workload.dir/workload/random_sets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypercast_hcube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
