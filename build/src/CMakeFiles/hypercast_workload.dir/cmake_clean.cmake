file(REMOVE_RECURSE
  "CMakeFiles/hypercast_workload.dir/workload/patterns.cpp.o"
  "CMakeFiles/hypercast_workload.dir/workload/patterns.cpp.o.d"
  "CMakeFiles/hypercast_workload.dir/workload/random_sets.cpp.o"
  "CMakeFiles/hypercast_workload.dir/workload/random_sets.cpp.o.d"
  "libhypercast_workload.a"
  "libhypercast_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
