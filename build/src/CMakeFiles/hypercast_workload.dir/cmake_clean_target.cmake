file(REMOVE_RECURSE
  "libhypercast_workload.a"
)
