# Empty dependencies file for hypercast_workload.
# This may be replaced when dependencies are built.
