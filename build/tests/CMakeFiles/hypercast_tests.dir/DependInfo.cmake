
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_all_to_all.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_all_to_all.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_all_to_all.cpp.o.d"
  "/root/repo/tests/test_arc_disjoint_theorems.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_arc_disjoint_theorems.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_arc_disjoint_theorems.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bits.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_bits.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_bits.cpp.o.d"
  "/root/repo/tests/test_bounds_registry.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_bounds_registry.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_bounds_registry.cpp.o.d"
  "/root/repo/tests/test_chain.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_chain.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_chain.cpp.o.d"
  "/root/repo/tests/test_chain_search.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_chain_search.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_chain_search.cpp.o.d"
  "/root/repo/tests/test_channel_load.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_channel_load.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_channel_load.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/test_combine.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_combine.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_combine.cpp.o.d"
  "/root/repo/tests/test_contention.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_contention.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_contention.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_distributed.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_distributed.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_distributed.cpp.o.d"
  "/root/repo/tests/test_ecube.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_ecube.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_ecube.cpp.o.d"
  "/root/repo/tests/test_embeddings.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_embeddings.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_embeddings.cpp.o.d"
  "/root/repo/tests/test_exhaustive_small.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_exhaustive_small.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_exhaustive_small.cpp.o.d"
  "/root/repo/tests/test_figure_shapes.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_figure_shapes.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_figure_shapes.cpp.o.d"
  "/root/repo/tests/test_flit_sim.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_flit_sim.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_flit_sim.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_latency_model.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_latency_model.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_latency_model.cpp.o.d"
  "/root/repo/tests/test_maxport.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_maxport.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_maxport.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_misc_coverage.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_misc_coverage.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_misc_coverage.cpp.o.d"
  "/root/repo/tests/test_multi_collective.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_multi_collective.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_multi_collective.cpp.o.d"
  "/root/repo/tests/test_multicast_schedule.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_multicast_schedule.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_multicast_schedule.cpp.o.d"
  "/root/repo/tests/test_options.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_options.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_options.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reachable.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_reachable.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_reachable.cpp.o.d"
  "/root/repo/tests/test_reduce.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_reduce.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_reduce.cpp.o.d"
  "/root/repo/tests/test_scatter.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_scatter.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_scatter.cpp.o.d"
  "/root/repo/tests/test_sim_event_queue.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_sim_event_queue.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_sim_event_queue.cpp.o.d"
  "/root/repo/tests/test_sim_network.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_sim_network.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_sim_network.cpp.o.d"
  "/root/repo/tests/test_sim_wormhole.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_sim_wormhole.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_sim_wormhole.cpp.o.d"
  "/root/repo/tests/test_stepwise.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_stepwise.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_stepwise.cpp.o.d"
  "/root/repo/tests/test_subcube.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_subcube.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_subcube.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_ucube.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_ucube.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_ucube.cpp.o.d"
  "/root/repo/tests/test_weighted_sort.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_weighted_sort.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_weighted_sort.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_workload.cpp.o.d"
  "/root/repo/tests/test_worm_engine.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_worm_engine.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_worm_engine.cpp.o.d"
  "/root/repo/tests/test_wsort.cpp" "tests/CMakeFiles/hypercast_tests.dir/test_wsort.cpp.o" "gcc" "tests/CMakeFiles/hypercast_tests.dir/test_wsort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypercast_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_hcube.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypercast_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
