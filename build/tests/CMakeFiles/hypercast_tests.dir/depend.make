# Empty dependencies file for hypercast_tests.
# This may be replaced when dependencies are built.
