file(REMOVE_RECURSE
  "../tools/hypercast_cli"
  "../tools/hypercast_cli.pdb"
  "CMakeFiles/hypercast_cli.dir/hypercast_cli.cpp.o"
  "CMakeFiles/hypercast_cli.dir/hypercast_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
