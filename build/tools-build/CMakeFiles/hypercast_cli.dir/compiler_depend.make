# Empty compiler generated dependencies file for hypercast_cli.
# This may be replaced when dependencies are built.
