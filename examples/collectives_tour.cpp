// A tour of the collective-operations facade: the API a runtime system
// or application programmer would actually use. Plans every collective
// with W-sort on a 256-node all-port hypercube, estimates its cost on
// the nCUBE-2-like machine, and shows how to switch algorithms and
// port models for what-if analysis.

#include <cstdio>

#include "coll/collectives.hpp"
#include "workload/random_sets.hpp"

int main() {
  using namespace hypercast;

  coll::Collectives::Options options;
  options.topo = hcube::Topology(8);  // 256 nodes
  const coll::Collectives comm(options);

  workload::Rng rng(42);
  const auto group = workload::random_destinations(options.topo, 0, 96, rng);

  std::puts("== collective cost estimates: 256-node all-port hypercube ==\n");

  const auto mc = comm.multicast(0, group, 4096);
  std::printf("multicast  (96 dests, 4 KiB): avg %8.1f us   max %8.1f us\n",
              mc.avg_delay(group) / 1000.0,
              sim::to_microseconds(mc.max_delay(group)));

  const auto bc = comm.broadcast(0, 4096);
  std::printf("broadcast  (255 dests, 4 KiB):                max %8.1f us\n",
              sim::to_microseconds(bc.max_delay()));

  const auto rd = comm.reduce(0, group, 4096);
  std::printf("reduce     (96 nodes,  4 KiB): completes %8.1f us"
              "   (channel waits: %llu)\n",
              sim::to_microseconds(rd.completion),
              static_cast<unsigned long long>(rd.stats.blocked_acquisitions));

  const auto ga = comm.gather(0, group, 1024);
  std::printf("gather     (96 x 1 KiB):       completes %8.1f us\n",
              sim::to_microseconds(ga.completion));

  const auto sc = comm.scatter(0, group, 1024);
  std::printf("scatter    (96 x 1 KiB):       last block %8.1f us\n",
              sim::to_microseconds(sc.max_delay(group)));

  std::printf("barrier    (96 nodes):         releases  %8.1f us\n",
              sim::to_microseconds(comm.barrier(0, group)));

  const auto a2a = comm.all_to_all(256);
  std::printf("all-to-all (256 B blocks):     completes %8.1f us"
              "   (dimension exchange, %d rounds)\n\n",
              sim::to_microseconds(a2a.completion), options.topo.dim());

  // What-if: how would the same application behave on one-port nodes,
  // or with the one-port-era algorithm?
  std::puts("== what-if analysis ==");
  for (const char* algo : {"wsort", "combine", "maxport", "ucube"}) {
    for (const bool one_port : {false, true}) {
      auto alt = options;
      alt.algorithm = algo;
      if (one_port) alt.port = core::PortModel::one_port();
      const coll::Collectives variant(alt);
      const auto r = variant.multicast(0, group, 4096);
      std::printf("  %-8s %-9s multicast max %8.1f us\n", algo,
                  one_port ? "one-port" : "all-port",
                  sim::to_microseconds(r.max_delay(group)));
    }
  }
  std::puts(
      "\nReading: the all-port advantage only materializes with an\n"
      "algorithm designed for it — the paper's thesis, as an API.");
  return 0;
}
