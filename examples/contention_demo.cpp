// Demonstrates what channel contention physically costs in a wormhole
// network, using the simulator's trace facility: a naive schedule that
// funnels messages through shared channels versus the contention-free
// W-sort tree for the same destination set.

#include <cstdio>

#include "core/contention.hpp"
#include "core/separate.hpp"
#include "core/wsort.hpp"
#include "sim/wormhole_sim.hpp"

int main() {
  using namespace hypercast;
  const hcube::Topology topo(4);

  // Every destination lives behind the source's dimension-3 channel:
  // the worst case for naive separate addressing.
  const core::MulticastRequest req{topo, 0b0000,
                                   {0b1000, 0b1010, 0b1100, 0b1110, 0b1111}};

  sim::SimConfig config;
  config.record_trace = true;

  std::puts("== separate addressing: five worms, one first-hop channel ==");
  const auto naive = core::separate_addressing(req);
  const auto naive_result = sim::simulate_multicast(naive, config);
  std::fputs(naive_result.trace.format(topo).c_str(), stdout);
  std::printf(
      "blocked channel acquisitions: %llu, total blocked time: %.1f us\n"
      "max delay: %.1f us\n\n",
      static_cast<unsigned long long>(naive_result.stats.blocked_acquisitions),
      sim::to_microseconds(naive_result.stats.total_blocked_ns),
      sim::to_microseconds(naive_result.max_delay(req.destinations)));

  std::puts("== W-sort: the tree forwards inside the subcube instead ==");
  const auto tree = core::wsort(req);
  const auto tree_result = sim::simulate_multicast(tree, config);
  std::fputs(tree_result.trace.format(topo).c_str(), stdout);
  std::printf(
      "blocked channel acquisitions: %llu\n"
      "max delay: %.1f us  (%.2fx faster than separate addressing)\n\n",
      static_cast<unsigned long long>(tree_result.stats.blocked_acquisitions),
      sim::to_microseconds(tree_result.max_delay(req.destinations)),
      static_cast<double>(naive_result.max_delay(req.destinations)) /
          static_cast<double>(tree_result.max_delay(req.destinations)));

  // The formal view: Definition 4 applied to both schedules. Note the
  // nuance: separate addressing is "contention-free" in the paper's
  // sense — all its unicasts share a source, so Theorem 3 orders them —
  // yet the wall clock still pays for that ordering, one message time
  // per channel reuse. The theory forbids *unresolved* conflicts; it is
  // the tree structure that removes the serialization itself.
  const auto naive_report =
      core::check_contention(naive, core::PortModel::all_port());
  const auto tree_report =
      core::check_contention(tree, core::PortModel::all_port());
  std::printf("Definition-4 check, separate addressing: %s\n",
              naive_report.summary(topo).c_str());
  std::printf("Definition-4 check, W-sort:              %s\n",
              tree_report.summary(topo).c_str());
  return 0;
}
