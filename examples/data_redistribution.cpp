// A realistic end-to-end scenario from the paper's introduction:
// periodic data redistribution in a data-parallel program. A 64-node
// hypercube runs an iterative solver; every iteration, each of four
// producer nodes must multicast its updated boundary block (4 KiB) to
// the subset of nodes whose subdomains touch it. We build the four
// multicasts with each algorithm and compare the redistribution phase's
// completion time (the slowest multicast gates the next iteration).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/registry.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/patterns.hpp"

int main() {
  using namespace hypercast;
  const hcube::Topology topo(6);

  // Four producers, one per quadrant (4-dimensional subcube). Each
  // multicasts to its own quadrant plus a band of neighbours in the
  // adjacent quadrant — the overlap that makes redistribution
  // non-trivial.
  struct Job {
    hcube::NodeId producer;
    std::vector<hcube::NodeId> consumers;
  };
  std::vector<Job> jobs;
  workload::Rng rng(20260705);
  for (std::uint32_t q = 0; q < 4; ++q) {
    const hcube::NodeId producer = q << 4;  // first node of quadrant q
    std::vector<hcube::NodeId> consumers;
    for (hcube::NodeId u = q << 4; u < ((q + 1) << 4); ++u) {
      if (u != producer) consumers.push_back(u);
    }
    // Six random cross-quadrant neighbours.
    const auto extra = workload::random_destinations(topo, producer, 20, rng);
    int added = 0;
    for (const auto u : extra) {
      if ((u >> 4) != q && added < 6 &&
          std::find(consumers.begin(), consumers.end(), u) ==
              consumers.end()) {
        consumers.push_back(u);
        ++added;
      }
    }
    jobs.push_back(Job{producer, std::move(consumers)});
  }

  std::printf("%zu producers, %zu-%zu consumers each, 4 KiB blocks\n\n",
              jobs.size(), jobs.front().consumers.size(),
              jobs.back().consumers.size());

  std::puts(
      "redistribution completion time, per algorithm\n"
      "  'isolated'   = slowest multicast, each simulated alone\n"
      "  'concurrent' = all four multicasts share the network\n");
  for (const auto& algo : core::all_algorithms()) {
    sim::SimConfig config;  // all-port, nCUBE-2 costs
    std::vector<core::MulticastSchedule> schedules;
    sim::SimTime isolated = 0;
    for (const Job& job : jobs) {
      const core::MulticastRequest req{topo, job.producer, job.consumers};
      schedules.push_back(algo.build(req));
      isolated = std::max(
          isolated, sim::simulate_multicast(schedules.back(), config)
                        .max_delay(req.destinations));
    }
    std::vector<sim::CollectiveJob> phase;
    for (const auto& s : schedules) phase.push_back(sim::CollectiveJob{&s, 0});
    const auto together = sim::simulate_collectives(phase, config);
    std::printf(
        "  %-9s isolated %9.1f us   concurrent %9.1f us   "
        "(cross-job channel waits: %llu)\n",
        algo.display.c_str(), sim::to_microseconds(isolated),
        sim::to_microseconds(together.makespan()),
        static_cast<unsigned long long>(together.stats.blocked_acquisitions));
  }

  std::puts(
      "\nReading: quadrant-local traffic is arc-disjoint across quadrants\n"
      "(Theorem 2), so concurrency costs little extra for the tree\n"
      "algorithms — the cross-quadrant band accounts for the small gap —\n"
      "while separate addressing collapses when all four producers fight\n"
      "over the same channels.");
  return 0;
}
