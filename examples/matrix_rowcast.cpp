// Row broadcasts for data-parallel linear algebra — Theorem 2 live.
//
// An 8x8 process grid is embedded in a 64-node hypercube with Gray
// codes (hcube/embeddings). In LU factorization or HPF array statements
// each row leader periodically broadcasts its pivot block to its row.
// Because the embedding maps every grid row into its own 3-dimensional
// subcube, Theorem 2 guarantees the eight simultaneous row multicasts
// are pairwise arc-disjoint: running them together costs exactly what
// running one costs. The simulation confirms it — zero channel waits.

#include <cstdio>
#include <vector>

#include "core/wsort.hpp"
#include "hcube/embeddings.hpp"
#include "hcube/subcube.hpp"
#include "sim/wormhole_sim.hpp"

int main() {
  using namespace hypercast;
  const hcube::Topology topo(6);
  const std::size_t rows = 8;
  const std::size_t cols = 8;
  const auto grid = hcube::embed_grid(topo, rows, cols);

  std::puts("process grid (rows are subcubes):");
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  row %zu:", r);
    for (std::size_t c = 0; c < cols; ++c) {
      std::printf(" %s", topo.format(grid[r * cols + c]).c_str());
    }
    std::printf("\n");
  }

  // One W-sort multicast per row: the leader (column 0) to the rest.
  std::vector<core::MulticastSchedule> schedules;
  schedules.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const hcube::NodeId leader = grid[r * cols];
    std::vector<hcube::NodeId> row;
    for (std::size_t c = 1; c < cols; ++c) row.push_back(grid[r * cols + c]);
    schedules.push_back(
        core::wsort(core::MulticastRequest{topo, leader, std::move(row)}));
  }

  sim::SimConfig config;  // 4 KiB pivot block, nCUBE-2 costs, all-port
  const auto solo = sim::simulate_multicast(schedules[0], config);

  std::vector<sim::CollectiveJob> jobs;
  for (const auto& s : schedules) jobs.push_back(sim::CollectiveJob{&s, 0});
  const auto together = sim::simulate_collectives(jobs, config);

  std::printf(
      "\none row broadcast alone:        max delay %8.1f us\n"
      "all eight rows simultaneously:  makespan  %8.1f us\n"
      "channel waits across the phase: %llu\n",
      sim::to_microseconds(solo.max_delay()),
      sim::to_microseconds(together.makespan()),
      static_cast<unsigned long long>(together.stats.blocked_acquisitions));
  std::puts(
      "\nReading: identical numbers and zero waits — each row lives in\n"
      "its own subcube, so by Theorem 2 no two row broadcasts can share\n"
      "a channel. Collective placement that respects subcube boundaries\n"
      "makes concurrency free.");

  // Contrast: a centralized layout — every row is served by a leader
  // sitting in row 0 (as if one process column owned all the pivots).
  // The eight multicasts now all originate in one subcube, their trees
  // overlap, and the phase pays for it.
  std::vector<core::MulticastSchedule> centralized;
  for (std::size_t r = 0; r < rows; ++r) {
    const hcube::NodeId leader = grid[r];  // row 0, column r
    std::vector<hcube::NodeId> row;
    for (std::size_t c = 0; c < cols; ++c) {
      const hcube::NodeId member = grid[r * cols + c];
      if (member != leader) row.push_back(member);
    }
    centralized.push_back(
        core::wsort(core::MulticastRequest{topo, leader, std::move(row)}));
  }
  std::vector<sim::CollectiveJob> bad_jobs;
  for (const auto& s : centralized) {
    bad_jobs.push_back(sim::CollectiveJob{&s, 0});
  }
  const auto crossed = sim::simulate_collectives(bad_jobs, config);
  std::printf(
      "\ncentralized leaders (all in row 0): makespan %8.1f us, waits %llu\n",
      sim::to_microseconds(crossed.makespan()),
      static_cast<unsigned long long>(crossed.stats.blocked_acquisitions));
  std::puts(
      "Reading: a third slower even before channels contend — the row-0\n"
      "processors now juggle their own reception with eight send\n"
      "startups, and every tree is taller because its root is remote.\n"
      "Placement, not just the multicast algorithm, decides phase cost.");
  return 0;
}
