// Walks through every worked example in the paper — Figures 3, 5, 6
// and 8 — printing the trees, step assignments and contention analyses
// that the text describes.

#include <cstdio>

#include "core/contention.hpp"
#include "core/registry.hpp"
#include "core/separate.hpp"
#include "core/sf_tree.hpp"
#include "core/wsort.hpp"

namespace {

using namespace hypercast;
using core::MulticastRequest;
using core::PortModel;

void show(const char* label, const core::MulticastSchedule& schedule,
          const MulticastRequest& req, PortModel port) {
  const auto steps = core::assign_steps(schedule, port, req.destinations);
  const auto report = core::check_contention(schedule, steps);
  std::printf("--- %s (%s) ---\n", label, port.name());
  std::fputs(schedule.format_tree().c_str(), stdout);
  std::printf("unicasts with departure steps:\n");
  for (const auto& u : steps.unicasts) {
    std::printf("  step %d: %s -> %s\n", u.step,
                req.topo.format(u.from).c_str(),
                req.topo.format(u.to).c_str());
  }
  std::printf("steps to reach all destinations: %d | %s\n\n",
              steps.total_steps,
              report.contention_free() ? "contention-free"
                                       : "HAS CONTENTION");
}

}  // namespace

int main() {
  using hcube::Topology;

  // ------------------------------------------------------------------
  std::puts("==================================================");
  std::puts("Figure 3: multicast from 0000 to 8 destinations in a 4-cube");
  std::puts("==================================================\n");
  const Topology topo4(4);
  const MulticastRequest fig3{
      topo4,
      0b0000,
      {0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111}};

  const auto sf = core::sf_tree(fig3);
  std::printf("--- Fig 3(a): store-and-forward tree ---\n");
  std::fputs(sf.format_tree().c_str(), stdout);
  std::printf("relay processors (non-destinations touched): %zu\n\n",
              sf.relay_processors(fig3.destinations).size());

  show("Fig 3(c): U-cube on one-port", core::ucube(fig3), fig3,
       PortModel::one_port());
  show("Fig 3(d): U-cube executed on all-port", core::ucube(fig3), fig3,
       PortModel::all_port());
  show("Fig 3(e): W-sort — the optimal 2-step tree", core::wsort(fig3), fig3,
       PortModel::all_port());

  // ------------------------------------------------------------------
  std::puts("==================================================");
  std::puts("Figure 5: U-cube chain from source 0100");
  std::puts("==================================================\n");
  const MulticastRequest fig5{
      topo4,
      0b0100,
      {0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111}};
  show("Fig 5: U-cube", core::ucube(fig5), fig5, PortModel::one_port());

  // ------------------------------------------------------------------
  std::puts("==================================================");
  std::puts("Figure 6: the Maxport pathology (dests 1001, 1010, 1011)");
  std::puts("==================================================\n");
  const MulticastRequest fig6{topo4, 0b0000, {0b1001, 0b1010, 0b1011}};
  show("Fig 6(a): Maxport needs 3 steps", core::maxport(fig6), fig6,
       PortModel::all_port());
  show("Fig 6(b): U-cube needs only 2", core::ucube(fig6), fig6,
       PortModel::all_port());
  show("Combine also takes 2 (next = max(highdim, center))",
       core::combine(fig6), fig6, PortModel::all_port());

  // ------------------------------------------------------------------
  std::puts("==================================================");
  std::puts("Figure 8: D = {0; 1,3,5,7,11,12,14,15}");
  std::puts("==================================================\n");
  const MulticastRequest fig8{topo4, 0, {1, 3, 5, 7, 11, 12, 14, 15}};
  show("Fig 8(a): U-cube on all-port (4 steps)", core::ucube(fig8), fig8,
       PortModel::all_port());
  show("Fig 8(b): Maxport on the dimension-ordered chain (4 steps)",
       core::maxport(fig8), fig8, PortModel::all_port());

  const auto weighted = core::wsort_chain(fig8);
  std::printf("weighted_sort chain: {");
  for (std::size_t i = 0; i < weighted.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : ", ", weighted[i]);
  }
  std::puts("}  (paper: {0, 1, 3, 5, 7, 14, 15, 12, 11})");
  show("Fig 8(c): W-sort (2 steps)", core::wsort(fig8), fig8,
       PortModel::all_port());
  return 0;
}
