// Quickstart: build a multicast tree for an all-port wormhole-routed
// hypercube, inspect it, prove it contention-free, and estimate its
// latency on an nCUBE-2-like machine.

#include <cstdio>

#include "core/contention.hpp"
#include "core/registry.hpp"
#include "core/wsort.hpp"
#include "sim/wormhole_sim.hpp"

int main() {
  using namespace hypercast;

  // A 64-node hypercube (the size of the paper's nCUBE-2).
  const hcube::Topology topo(6);

  // Multicast from node 0 to ten scattered destinations.
  core::MulticastRequest request{topo, 0, {3, 5, 12, 21, 22, 37, 40, 51, 58, 63}};

  std::puts("== W-sort multicast tree (children in issue order) ==");
  const auto schedule = core::wsort(request);
  std::fputs(schedule.format_tree().c_str(), stdout);

  // Steps under the all-port model, and the contention guarantee.
  const auto steps =
      core::assign_steps(schedule, core::PortModel::all_port(),
                         request.destinations);
  const auto report = core::check_contention(schedule, steps);
  std::printf("\nsteps to reach all %zu destinations: %d\n",
              request.destinations.size(), steps.total_steps);
  std::printf("contention check: %s (%s)\n",
              report.contention_free() ? "contention-free" : "VIOLATIONS",
              report.summary(topo).c_str());

  // Simulated delay of a 4096-byte message, per algorithm.
  std::puts("\n== simulated 4096-byte multicast delay (nCUBE-2 model) ==");
  sim::SimConfig config;  // all-port, nCUBE-2 costs, 4096 bytes
  for (const auto& algo : core::paper_algorithms()) {
    const auto result = sim::simulate_multicast(algo.build(request), config);
    std::printf("%-8s avg %8.1f us   max %8.1f us   blocked waits: %llu\n",
                algo.display.c_str(),
                result.avg_delay(request.destinations) / 1000.0,
                sim::to_microseconds(result.max_delay(request.destinations)),
                static_cast<unsigned long long>(
                    result.stats.blocked_acquisitions));
  }
  return 0;
}
