#include "code/gf256.hpp"

#include <cassert>

namespace hypercast::code {

namespace detail {

Gf256Tables::Gf256Tables() {
  // Generate the multiplicative group: exp[i] = 2^i under 0x11d. The
  // group has order 255, so exp[255] wraps back to 1; the table is
  // doubled to 510 valid entries so mul can index exp[log a + log b]
  // without reducing the exponent sum mod 255.
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp[i] = static_cast<std::uint8_t>(x);
    log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read; keep the table deterministic

  for (unsigned a = 0; a < 256; ++a) {
    mul[a][0] = 0;
    if (a == 0) continue;
    for (unsigned b = 1; b < 256; ++b) {
      mul[a][b] = exp[log[a] + log[b]];
    }
  }
  for (unsigned b = 0; b < 256; ++b) mul[0][b] = 0;
}

const Gf256Tables& gf_tables() {
  static const Gf256Tables tables;
  return tables;
}

}  // namespace detail

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0 && "gf_div: division by zero");
  if (a == 0) return 0;
  const detail::Gf256Tables& t = detail::gf_tables();
  return t.exp[255 + t.log[a] - t.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  assert(a != 0 && "gf_inv: zero has no inverse");
  const detail::Gf256Tables& t = detail::gf_tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t gf_pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const detail::Gf256Tables& t = detail::gf_tables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * e) % 255];
}

void gf_addmul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
               std::size_t n) {
  if (c == 0 || n == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* row = detail::gf_tables().mul[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void gf_mul_row(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n) {
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    return;
  }
  const std::uint8_t* row = detail::gf_tables().mul[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace hypercast::code
