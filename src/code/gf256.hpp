#ifndef HYPERCAST_CODE_GF256_HPP
#define HYPERCAST_CODE_GF256_HPP

#include <cstddef>
#include <cstdint>

namespace hypercast::code {

/// GF(2^8) arithmetic — the field under the Reed–Solomon stripe coder
/// (code/rs.hpp, docs/CODING.md).
///
/// Elements are bytes; addition is XOR; multiplication is polynomial
/// multiplication modulo the primitive polynomial
/// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), with 2 as the generator of the
/// multiplicative group. Scalar ops go through log/exp tables (exp is
/// doubled so a*b needs no modular reduction of the exponent sum); the
/// bulk addmul/mul kernels instead gather from a per-constant 256-byte
/// product row of a full 64 KiB multiplication table, so the byte loop
/// has no data-dependent branches and vectorizes as a plain table
/// lookup. All tables are built once at first use and are immutable
/// afterwards, so every entry point is thread-safe.

namespace detail {

struct Gf256Tables {
  std::uint8_t exp[512];       ///< exp[i] = 2^i, doubled past 255
  std::uint8_t log[256];       ///< log[0] is unused (log of 0 undefined)
  std::uint8_t mul[256][256];  ///< mul[a][b] = a * b
  Gf256Tables();
};

const Gf256Tables& gf_tables();

}  // namespace detail

inline std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  return detail::gf_tables().mul[a][b];
}

/// a / b. Precondition: b != 0 (asserted in debug builds).
std::uint8_t gf_div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0.
std::uint8_t gf_inv(std::uint8_t a);

/// a^e (a^0 == 1, including 0^0).
std::uint8_t gf_pow(std::uint8_t a, unsigned e);

/// dst[i] ^= c * src[i] for i < n — the RS encode/reconstruct inner
/// loop. c == 0 is a no-op; c == 1 degenerates to a pure XOR.
void gf_addmul(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
               std::size_t n);

/// dst[i] = c * src[i] for i < n.
void gf_mul_row(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                std::size_t n);

}  // namespace hypercast::code

#endif  // HYPERCAST_CODE_GF256_HPP
