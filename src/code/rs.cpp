#include "code/rs.hpp"

#include <algorithm>
#include <stdexcept>

namespace hypercast::code {

RsCode::RsCode(std::size_t data, std::size_t parity)
    : data_(data), parity_(parity) {
  if (data == 0) {
    throw std::invalid_argument("RsCode: need at least one data stripe");
  }
  if (data + parity > 256) {
    throw std::invalid_argument(
        "RsCode: data + parity exceeds the GF(256) element budget");
  }
  gen_.resize(parity_ * data_);
  if (parity_ == 1) {
    // Legacy XOR parity: one all-ones row. (Still MDS for k = 1, and
    // byte-identical to the original split_stripes parity stripe.)
    std::fill(gen_.begin(), gen_.end(), std::uint8_t{1});
    return;
  }
  for (std::size_t r = 0; r < parity_; ++r) {
    for (std::size_t j = 0; j < data_; ++j) {
      const auto x = static_cast<std::uint8_t>(r);
      const auto y = static_cast<std::uint8_t>(parity_ + j);
      gen_[r * data_ + j] = gf_inv(static_cast<std::uint8_t>(x ^ y));
    }
  }
}

void RsCode::encode(std::span<const std::vector<std::uint8_t>> data,
                    std::vector<std::vector<std::uint8_t>>& parity,
                    std::size_t width) const {
  if (data.size() != data_) {
    throw std::invalid_argument("RsCode::encode: wrong data stripe count");
  }
  for (const std::vector<std::uint8_t>& s : data) {
    if (s.size() > width) {
      throw std::invalid_argument("RsCode::encode: stripe wider than width");
    }
  }
  parity.assign(parity_, std::vector<std::uint8_t>(width, 0));
  for (std::size_t r = 0; r < parity_; ++r) {
    std::uint8_t* out = parity[r].data();
    for (std::size_t j = 0; j < data_; ++j) {
      gf_addmul(out, data[j].data(), coefficient(r, j), data[j].size());
    }
  }
}

void RsCode::reconstruct(std::vector<std::vector<std::uint8_t>>& stripes,
                         std::span<const std::size_t> missing,
                         std::size_t width) const {
  if (stripes.size() != data_ + parity_) {
    throw std::invalid_argument("RsCode::reconstruct: wrong stripe count");
  }
  std::vector<char> gone(data_ + parity_, 0);
  std::vector<std::size_t> lost_data;
  for (const std::size_t i : missing) {
    if (i >= data_ + parity_ || gone[i]) {
      throw std::invalid_argument(
          "RsCode::reconstruct: bad or repeated missing index");
    }
    gone[i] = 1;
    if (i < data_) lost_data.push_back(i);
  }
  if (lost_data.empty()) return;

  // Pick the first e surviving parity rows; Cauchy (and the k = 1 XOR
  // row) guarantee the e-by-e submatrix they select over the lost data
  // columns is invertible.
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < parity_ && rows.size() < lost_data.size(); ++r) {
    if (!gone[data_ + r]) rows.push_back(r);
  }
  const std::size_t e = lost_data.size();
  if (rows.size() < e) {
    throw std::invalid_argument(
        "RsCode::reconstruct: more erasures than surviving parity stripes");
  }

  // RHS_r = parity_r ^ sum over surviving data j of C[r][j] * data_j:
  // what the lost stripes alone must have contributed to each row.
  std::vector<std::vector<std::uint8_t>> rhs(e);
  for (std::size_t r = 0; r < e; ++r) {
    const std::vector<std::uint8_t>& p = stripes[data_ + rows[r]];
    if (p.size() > width) {
      throw std::invalid_argument(
          "RsCode::reconstruct: parity stripe wider than width");
    }
    rhs[r].assign(width, 0);
    std::copy(p.begin(), p.end(), rhs[r].begin());
    for (std::size_t j = 0; j < data_; ++j) {
      if (gone[j]) continue;
      const std::vector<std::uint8_t>& d = stripes[j];
      if (d.size() > width) {
        throw std::invalid_argument(
            "RsCode::reconstruct: data stripe wider than width");
      }
      gf_addmul(rhs[r].data(), d.data(), coefficient(rows[r], j), d.size());
    }
  }

  // Solve A * X = RHS by Gauss-Jordan over GF(256), applying every row
  // operation to the byte rows as well; afterwards rhs[c] IS the lost
  // stripe lost_data[c].
  std::vector<std::uint8_t> a(e * e);
  for (std::size_t r = 0; r < e; ++r) {
    for (std::size_t c = 0; c < e; ++c) {
      a[r * e + c] = coefficient(rows[r], lost_data[c]);
    }
  }
  for (std::size_t col = 0; col < e; ++col) {
    std::size_t pivot = col;
    while (pivot < e && a[pivot * e + col] == 0) ++pivot;
    if (pivot == e) {
      // Unreachable for the Cauchy/XOR generators (every square
      // submatrix is nonsingular); kept as a hard error rather than UB.
      throw std::invalid_argument(
          "RsCode::reconstruct: singular erasure submatrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < e; ++c) {
        std::swap(a[pivot * e + c], a[col * e + c]);
      }
      std::swap(rhs[pivot], rhs[col]);
    }
    const std::uint8_t inv = gf_inv(a[col * e + col]);
    for (std::size_t c = 0; c < e; ++c) {
      a[col * e + c] = gf_mul(a[col * e + c], inv);
    }
    gf_mul_row(rhs[col].data(), rhs[col].data(), inv, width);
    for (std::size_t r = 0; r < e; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = a[r * e + col];
      if (factor == 0) continue;
      for (std::size_t c = 0; c < e; ++c) {
        a[r * e + c] =
            static_cast<std::uint8_t>(a[r * e + c] ^ gf_mul(factor, a[col * e + c]));
      }
      gf_addmul(rhs[r].data(), rhs[col].data(), factor, width);
    }
  }
  for (std::size_t c = 0; c < e; ++c) {
    stripes[lost_data[c]] = std::move(rhs[c]);
  }
}

}  // namespace hypercast::code
