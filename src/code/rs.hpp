#ifndef HYPERCAST_CODE_RS_HPP
#define HYPERCAST_CODE_RS_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "code/gf256.hpp"

namespace hypercast::code {

/// Systematic (m + k, m) Reed–Solomon erasure code over GF(256): m data
/// stripes plus k parity stripes, tolerating the loss of ANY k stripes
/// (data or parity). This is what lets the striped planner reserve k
/// parity trees and reconstruct every dropped stripe at the receivers
/// (docs/CODING.md has the construction and proofs).
///
/// The generator is chosen so the code stays MDS for every erasure
/// pattern and the single-parity case keeps the legacy XOR contract:
///   * k == 1: the parity row is all ones — parity = XOR of the data
///     stripes, byte-identical to split_stripes' original parity stripe.
///   * k >= 2: a Cauchy matrix C[r][j] = inv(x_r ^ y_j) with x_r = r
///     (r < k) and y_j = k + j (j < m). The x's and y's are k + m
///     distinct field elements, so every square submatrix of C is
///     nonsingular — which is exactly the MDS property: any e <= k
///     missing data stripes are recoverable from any e surviving parity
///     stripes by inverting the e-by-e submatrix they select.
///
/// Stripes are byte vectors notionally zero-padded to a common `width`
/// (short tails contribute zeroes, exactly like the XOR parity split).
class RsCode {
 public:
  /// Requires data >= 1 and data + parity <= 256 (the Cauchy
  /// construction draws k + m distinct elements of GF(256)); throws
  /// std::invalid_argument otherwise. parity == 0 builds a trivial
  /// coder whose encode produces nothing.
  RsCode(std::size_t data, std::size_t parity);

  std::size_t data_stripes() const { return data_; }
  std::size_t parity_stripes() const { return parity_; }

  /// Generator coefficient of parity row r over data stripe j.
  std::uint8_t coefficient(std::size_t row, std::size_t col) const {
    return gen_[row * data_ + col];
  }

  /// parity[r][i] = sum_j C[r][j] * data[j][i] over the zero-padded
  /// stripes: `parity` is resized to k stripes of `width` bytes each.
  /// Data stripes shorter than `width` are treated as zero-padded;
  /// longer ones are an error.
  void encode(std::span<const std::vector<std::uint8_t>> data,
              std::vector<std::vector<std::uint8_t>>& parity,
              std::size_t width) const;

  /// Rebuild missing data stripes in place. `stripes` holds the m + k
  /// slots (data first, then parity); `missing` lists the unavailable
  /// slot indices in [0, m + k) — missing *data* stripes are
  /// reconstructed (each resized to `width`, zero-padded tail
  /// included), missing parity stripes merely shrink the budget.
  /// Requires #missing-data <= #surviving-parity; throws
  /// std::invalid_argument otherwise (more erasures than the code
  /// tolerates) or when `missing` repeats/overflows an index.
  void reconstruct(std::vector<std::vector<std::uint8_t>>& stripes,
                   std::span<const std::size_t> missing,
                   std::size_t width) const;

 private:
  std::size_t data_;
  std::size_t parity_;
  std::vector<std::uint8_t> gen_;  ///< k x m generator, row-major
};

}  // namespace hypercast::code

#endif  // HYPERCAST_CODE_RS_HPP
