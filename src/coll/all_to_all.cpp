#include "coll/all_to_all.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/worm_engine.hpp"

namespace hypercast::coll {

namespace {

using hcube::NodeId;
using hcube::Topology;
using sim::SimTime;

class ExchangeEngine {
 public:
  ExchangeEngine(const Topology& topo, const AllToAllConfig& config)
      : topo_(topo),
        config_(config),
        worms_(topo, config.cost, config.port, queue_, nullptr,
               config.record_trace) {
    worms_.set_delivery_handler(
        [](void* ctx, sim::MessageId m, SimTime tail) {
          ExchangeEngine* e = static_cast<ExchangeEngine*>(ctx);
          e->received(e->worms_.destination(m), m, tail);
        },
        this);
  }

  AllToAllResult run() {
    const std::size_t n_nodes = topo_.num_nodes();
    cpu_free_.assign(n_nodes, 0);
    round_.assign(n_nodes, 0);
    if (topo_.dim() == 0) return std::move(result_);
    for (NodeId u = 0; u < n_nodes; ++u) {
      begin_round(u, 0);
    }
    queue_.run_to_completion();
    finish();
    return std::move(result_);
  }

 private:
  /// The dimension exchanged in logical round r follows the resolution
  /// order (the same order E-cube would route, for cache of thought;
  /// any fixed order works).
  hcube::Dim round_dim(int r) const {
    return topo_.resolution() == hcube::Resolution::HighToLow
               ? topo_.dim() - 1 - r
               : r;
  }

  std::size_t round_bytes() const {
    return (topo_.num_nodes() / 2) * config_.block_bytes;
  }

  void begin_round(NodeId u, SimTime ready) {
    const int r = round_[u];
    const NodeId peer = topo_.neighbor(u, round_dim(r));
    const SimTime issue = std::max(cpu_free_[u], ready);
    const SimTime header_start = issue + config_.cost.send_startup;
    cpu_free_[u] = header_start;
    const sim::MessageId id =
        worms_.inject(u, peer, round_bytes(), header_start);
    if (worms_.recording_traces()) worms_.trace(id).issue = issue;
    ++result_.stats.messages;
  }

  void received(NodeId u, sim::MessageId id, SimTime tail) {
    const SimTime done =
        std::max(cpu_free_[u], tail) + config_.cost.recv_overhead;
    cpu_free_[u] = done;
    if (worms_.recording_traces()) worms_.trace(id).done = done;
    const int r = ++round_[u];
    if (r < topo_.dim()) {
      queue_.schedule(done, [this, u, done] { begin_round(u, done); });
    } else {
      result_.finish[u] = done;
      result_.completion = std::max(result_.completion, done);
    }
  }

  void finish() {
    result_.stats.events = queue_.events_processed();
    result_.stats.blocked_acquisitions = worms_.blocked_acquisitions();
    result_.stats.total_blocked_ns = worms_.total_blocked_ns();
    if (result_.finish.size() != topo_.num_nodes() || !worms_.quiescent()) {
      throw std::logic_error("all-to-all drained before completing");
    }
    if (config_.record_trace) {
      for (sim::MessageId id = 0; id < worms_.num_messages(); ++id) {
        result_.trace.messages.push_back(worms_.trace(id));
      }
    }
  }

  Topology topo_;
  AllToAllConfig config_;
  sim::EventQueue queue_;
  sim::WormEngine worms_;
  std::vector<SimTime> cpu_free_;
  std::vector<int> round_;
  AllToAllResult result_;
};

}  // namespace

AllToAllResult simulate_all_to_all(const Topology& topo,
                                   const AllToAllConfig& config) {
  return ExchangeEngine(topo, config).run();
}

SimTime all_to_all_latency(const Topology& topo,
                           const AllToAllConfig& config) {
  const SimTime per_round =
      config.cost.send_startup + config.cost.per_hop +
      config.cost.body_time((topo.num_nodes() / 2) * config.block_bytes) +
      config.cost.recv_overhead;
  return topo.dim() * per_round;
}

}  // namespace hypercast::coll
