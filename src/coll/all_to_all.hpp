#ifndef HYPERCAST_COLL_ALL_TO_ALL_HPP
#define HYPERCAST_COLL_ALL_TO_ALL_HPP

#include <unordered_map>

#include "core/stepwise.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::coll {

/// All-to-all personalized exchange (complete exchange) via the classic
/// hypercube dimension-exchange algorithm: n rounds, one per dimension
/// in the topology's resolution order. In round d every node swaps,
/// with its dimension-d neighbour, the N/2 blocks whose destinations
/// lie on the other side of dimension d. Every round uses all 2^n
/// directed dimension-d channels exactly once — single-hop, pairwise
/// disjoint, contention-free by construction (the simulator asserts
/// zero channel waits). A node enters round d+1 once it has both issued
/// its round-d send and fully received its round-d message.
struct AllToAllConfig {
  sim::CostModel cost = sim::CostModel::ncube2();
  core::PortModel port = core::PortModel::all_port();
  std::size_t block_bytes = 1024;  ///< one (source, destination) block
  bool record_trace = false;
};

struct AllToAllResult {
  sim::SimTime completion = 0;  ///< last node finishes its last receive
  /// Per node: when it finished the exchange.
  std::unordered_map<hcube::NodeId, sim::SimTime> finish;
  sim::SimStats stats;
  sim::Trace trace;
};

/// Simulate the complete exchange among all 2^n nodes.
AllToAllResult simulate_all_to_all(const hcube::Topology& topo,
                                   const AllToAllConfig& config);

/// The closed-form completion (exact, tested): n sequential rounds of
/// startup + one hop + (N/2 blocks) streaming + receive.
sim::SimTime all_to_all_latency(const hcube::Topology& topo,
                                const AllToAllConfig& config);

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_ALL_TO_ALL_HPP
