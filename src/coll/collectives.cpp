#include "coll/collectives.hpp"

#include "workload/patterns.hpp"

namespace hypercast::coll {

namespace {

/// Payload of barrier control messages: a few flits.
constexpr std::size_t kBarrierBytes = 8;

}  // namespace

Collectives::Collectives(Options options)
    : options_(std::move(options)),
      algo_(&core::find_algorithm(options_.algorithm)) {}

core::MulticastSchedule Collectives::plan(
    hcube::NodeId source, std::span<const hcube::NodeId> dests) const {
  const core::MulticastRequest req{
      options_.topo, source, std::vector<hcube::NodeId>(dests.begin(),
                                                        dests.end())};
  return algo_->build(req);
}

sim::SimResult Collectives::multicast(hcube::NodeId source,
                                      std::span<const hcube::NodeId> dests,
                                      std::size_t bytes) const {
  const auto schedule = plan(source, dests);
  sim::SimConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.message_bytes = bytes;
  return sim::simulate_multicast(schedule, config);
}

sim::SimResult Collectives::broadcast(hcube::NodeId source,
                                      std::size_t bytes) const {
  const auto dests = workload::broadcast_destinations(options_.topo, source);
  return multicast(source, dests, bytes);
}

ReduceResult Collectives::reduce(hcube::NodeId root,
                                 std::span<const hcube::NodeId> participants,
                                 std::size_t bytes) const {
  const auto tree = plan(root, participants);
  ReduceConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes;
  config.mode = ReduceConfig::Mode::Combine;
  return simulate_reduce(tree, config);
}

ReduceResult Collectives::gather(hcube::NodeId root,
                                 std::span<const hcube::NodeId> participants,
                                 std::size_t bytes_per_node) const {
  const auto tree = plan(root, participants);
  ReduceConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes_per_node;
  config.mode = ReduceConfig::Mode::Gather;
  return simulate_reduce(tree, config);
}

ScatterResult Collectives::scatter(
    hcube::NodeId root, std::span<const hcube::NodeId> destinations,
    std::size_t bytes_per_node) const {
  const auto tree = plan(root, destinations);
  ScatterConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes_per_node;
  return simulate_scatter(tree, config);
}

AllToAllResult Collectives::all_to_all(std::size_t bytes_per_block) const {
  AllToAllConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes_per_block;
  return simulate_all_to_all(options_.topo, config);
}

sim::SimTime Collectives::barrier(
    hcube::NodeId root, std::span<const hcube::NodeId> participants) const {
  const auto tree = plan(root, participants);

  ReduceConfig up;
  up.cost = options_.cost;
  up.port = options_.port;
  up.block_bytes = kBarrierBytes;
  up.combine_ns_per_byte = 0;  // a barrier folds nothing
  const auto arrive = simulate_reduce(tree, up);

  sim::SimConfig down;
  down.cost = options_.cost;
  down.port = options_.port;
  down.message_bytes = kBarrierBytes;
  const auto release = sim::simulate_multicast(tree, down);

  return arrive.completion + release.max_delay(participants);
}

}  // namespace hypercast::coll
