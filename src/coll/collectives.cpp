#include "coll/collectives.hpp"

#include "workload/patterns.hpp"

namespace hypercast::coll {

namespace {

/// Payload of barrier control messages: a few flits.
constexpr std::size_t kBarrierBytes = 8;

}  // namespace

Collectives::Collectives(Options options)
    : options_(std::move(options)),
      algo_(&core::find_algorithm(options_.algorithm)),
      pipeline_(std::make_unique<ServePipeline>(
          options_.algorithm,
          options_.cache_enabled
              ? std::make_shared<ScheduleCache>(options_.cache)
              : nullptr)) {}

ScheduleCache::Stats Collectives::cache_stats() const {
  return pipeline_->cache() ? pipeline_->cache()->stats()
                            : ScheduleCache::Stats{};
}

core::MulticastSchedule Collectives::plan(
    hcube::NodeId source, std::span<const hcube::NodeId> dests) const {
  return *plan_shared(source, dests);
}

std::shared_ptr<const core::MulticastSchedule> Collectives::plan_shared(
    hcube::NodeId source, std::span<const hcube::NodeId> dests) const {
  const core::MulticastRequest req{
      options_.topo, source, std::vector<hcube::NodeId>(dests.begin(),
                                                        dests.end())};
  return pipeline_->serve(req);
}

sim::SimResult Collectives::multicast(hcube::NodeId source,
                                      std::span<const hcube::NodeId> dests,
                                      std::size_t bytes) const {
  const auto schedule = plan_shared(source, dests);
  sim::SimConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.message_bytes = bytes;
  return sim::simulate_multicast(*schedule, config);
}

sim::SimResult Collectives::broadcast(hcube::NodeId source,
                                      std::size_t bytes) const {
  const auto dests = workload::broadcast_destinations(options_.topo, source);
  return multicast(source, dests, bytes);
}

ReduceResult Collectives::reduce(hcube::NodeId root,
                                 std::span<const hcube::NodeId> participants,
                                 std::size_t bytes) const {
  const auto tree = plan_shared(root, participants);
  ReduceConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes;
  config.mode = ReduceConfig::Mode::Combine;
  return simulate_reduce(*tree, config);
}

ReduceResult Collectives::gather(hcube::NodeId root,
                                 std::span<const hcube::NodeId> participants,
                                 std::size_t bytes_per_node) const {
  const auto tree = plan_shared(root, participants);
  ReduceConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes_per_node;
  config.mode = ReduceConfig::Mode::Gather;
  return simulate_reduce(*tree, config);
}

ScatterResult Collectives::scatter(
    hcube::NodeId root, std::span<const hcube::NodeId> destinations,
    std::size_t bytes_per_node) const {
  const auto tree = plan_shared(root, destinations);
  ScatterConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes_per_node;
  return simulate_scatter(*tree, config);
}

AllToAllResult Collectives::all_to_all(std::size_t bytes_per_block) const {
  AllToAllConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes_per_block;
  return simulate_all_to_all(options_.topo, config);
}

AllToAllResult Collectives::all_to_all_scatter(
    std::size_t bytes_per_block) const {
  ScatterConfig config;
  config.cost = options_.cost;
  config.port = options_.port;
  config.block_bytes = bytes_per_block;

  // One phase per root, network quiescent between phases. Every root's
  // tree is the XOR-translation of the same relative broadcast tree, so
  // planning the exchange is one construction + N - 1 cache hits.
  AllToAllResult out;
  for (hcube::NodeId root = 0;
       root < static_cast<hcube::NodeId>(options_.topo.num_nodes()); ++root) {
    const auto dests = workload::broadcast_destinations(options_.topo, root);
    const auto tree = plan_shared(root, dests);
    const ScatterResult phase = simulate_scatter(*tree, config);
    out.completion += phase.max_delay();
    out.stats.messages += phase.stats.messages;
    out.stats.blocked_acquisitions += phase.stats.blocked_acquisitions;
    out.stats.total_blocked_ns += phase.stats.total_blocked_ns;
    out.stats.events += phase.stats.events;
  }
  for (hcube::NodeId u = 0;
       u < static_cast<hcube::NodeId>(options_.topo.num_nodes()); ++u) {
    out.finish[u] = out.completion;
  }
  return out;
}

sim::SimTime Collectives::barrier(
    hcube::NodeId root, std::span<const hcube::NodeId> participants) const {
  const auto tree = plan_shared(root, participants);

  ReduceConfig up;
  up.cost = options_.cost;
  up.port = options_.port;
  up.block_bytes = kBarrierBytes;
  up.combine_ns_per_byte = 0;  // a barrier folds nothing
  const auto arrive = simulate_reduce(*tree, up);

  sim::SimConfig down;
  down.cost = options_.cost;
  down.port = options_.port;
  down.message_bytes = kBarrierBytes;
  const auto release = sim::simulate_multicast(*tree, down);

  return arrive.completion + release.max_delay(participants);
}

}  // namespace hypercast::coll
