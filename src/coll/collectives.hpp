#ifndef HYPERCAST_COLL_COLLECTIVES_HPP
#define HYPERCAST_COLL_COLLECTIVES_HPP

#include <memory>
#include <string>

#include "coll/all_to_all.hpp"
#include "coll/reduce.hpp"
#include "coll/scatter.hpp"
#include "coll/serve_pipeline.hpp"
#include "core/registry.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::coll {

/// The adoptable front door: an MPI-flavoured collective-communication
/// planner/estimator for an all-port wormhole-routed hypercube. Every
/// operation plans a unicast-based schedule with the configured
/// algorithm (W-sort by default) and runs it through the wormhole
/// simulator, returning per-node timing — what a runtime system would
/// use to choose algorithms, and what a researcher uses to explore the
/// design space.
class Collectives {
 public:
  struct Options {
    hcube::Topology topo{6};
    core::PortModel port = core::PortModel::all_port();
    sim::CostModel cost = sim::CostModel::ncube2();
    std::string algorithm = "wsort";  ///< registry name

    /// Plan through the translation-invariant ScheduleCache (repeated
    /// and XOR-translated requests pay tree construction once). Cached
    /// and uncached planning produce bit-identical schedules; disable
    /// only to measure, or to shed the cache's memory footprint.
    bool cache_enabled = true;
    ScheduleCache::Config cache;
  };

  explicit Collectives(Options options);

  const Options& options() const { return options_; }

  /// The serving pipeline every plan goes through (its cache is null
  /// when cache_enabled is false).
  const ServePipeline& pipeline() const { return *pipeline_; }

  /// Planning-cache counters (all zero when the cache is disabled).
  ScheduleCache::Stats cache_stats() const;

  /// The multicast tree the configured algorithm plans for this
  /// source/destination set.
  core::MulticastSchedule plan(hcube::NodeId source,
                               std::span<const hcube::NodeId> dests) const;

  /// Same plan as an immutably shared, finalized schedule — what the
  /// simulating operations below consume; a cache hit costs a key sort
  /// plus (for non-zero sources) a linear XOR relabeling.
  std::shared_ptr<const core::MulticastSchedule> plan_shared(
      hcube::NodeId source, std::span<const hcube::NodeId> dests) const;

  /// One-to-many, arbitrary destination set.
  sim::SimResult multicast(hcube::NodeId source,
                           std::span<const hcube::NodeId> dests,
                           std::size_t bytes) const;

  /// One-to-all.
  sim::SimResult broadcast(hcube::NodeId source, std::size_t bytes) const;

  /// Many-to-one fold over the reverse tree: every participant
  /// contributes `bytes`; messages stay `bytes` long.
  ReduceResult reduce(hcube::NodeId root,
                      std::span<const hcube::NodeId> participants,
                      std::size_t bytes) const;

  /// Many-to-one concatenation: messages grow with subtree size.
  ReduceResult gather(hcube::NodeId root,
                      std::span<const hcube::NodeId> participants,
                      std::size_t bytes_per_node) const;

  /// One-to-many personalized: each destination receives its own
  /// block; bundles shrink down the tree (the dual of gather).
  ScatterResult scatter(hcube::NodeId root,
                        std::span<const hcube::NodeId> destinations,
                        std::size_t bytes_per_node) const;

  /// Full-tree barrier: a minimal-payload reduction to `root` followed
  /// by a minimal-payload broadcast back. Returns the release time of
  /// the last participant.
  sim::SimTime barrier(hcube::NodeId root,
                       std::span<const hcube::NodeId> participants) const;

  /// Complete exchange among ALL nodes (dimension-exchange algorithm):
  /// every node ends up with one block from every other node.
  AllToAllResult all_to_all(std::size_t bytes_per_block) const;

  /// Complete exchange as N phased scatters over multicast trees, one
  /// rooted at every node — the "n translated multicasts" pattern: all N
  /// trees are XOR-translations of one relative broadcast tree, so with
  /// the cache enabled the whole exchange plans one tree. Modeled as
  /// sequential quiescent phases (an estimator, pessimistic on overlap;
  /// the dimension-exchange all_to_all above remains the contention-free
  /// reference).
  AllToAllResult all_to_all_scatter(std::size_t bytes_per_block) const;

 private:
  Options options_;
  const core::AlgorithmEntry* algo_;
  std::unique_ptr<ServePipeline> pipeline_;
};

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_COLLECTIVES_HPP
