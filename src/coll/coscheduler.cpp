#include "coll/coscheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"

namespace hypercast::coll {

namespace {

/// Instrument handles resolved once against the default registry, same
/// pattern as serve_metrics / the net.* block: the planning path only
/// dereferences pointers.
struct CoschedMetrics {
  obs::Counter* plans;
  obs::Counter* waves;
  obs::Counter* deferred;
  obs::Counter* fallback;
  obs::Histogram* wave_size;
  obs::Histogram* peak_overlap;
  obs::Histogram* plan_ns;
};

const CoschedMetrics& cosched_metrics() {
  static const CoschedMetrics m = [] {
    obs::Registry& r = obs::default_registry();
    return CoschedMetrics{&r.counter("cosched.plans"),
                          &r.counter("cosched.waves"),
                          &r.counter("cosched.deferred"),
                          &r.counter("cosched.fallback"),
                          &r.histogram("cosched.wave_size"),
                          &r.histogram("cosched.peak_overlap"),
                          &r.histogram("cosched.plan_ns")};
  }();
  return m;
}

}  // namespace

std::size_t CoschedPlan::wave_of(std::size_t index) const {
  for (std::size_t w = 0; w < waves.size(); ++w) {
    const auto& members = waves[w].members;
    if (std::binary_search(members.begin(), members.end(), index)) return w;
  }
  return size();
}

CoschedPlan CoScheduler::plan(
    std::span<const std::shared_ptr<const core::MulticastSchedule>>
        schedules) {
  std::vector<const core::MulticastSchedule*> raw(schedules.size(), nullptr);
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    raw[i] = schedules[i].get();
  }
  return plan(std::span<const core::MulticastSchedule* const>(raw));
}

CoschedPlan CoScheduler::plan(
    std::span<const core::MulticastSchedule* const> schedules) {
  const core::Topology* topo = nullptr;
  std::vector<std::size_t> order;  // candidate batch indices
  footprints_.assign(schedules.size(), core::ArcFootprint{});
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const core::MulticastSchedule* s = schedules[i];
    if (s == nullptr) continue;
    if (topo == nullptr) {
      topo = &s->topo();
    } else if (s->topo().dim() != topo->dim()) {
      throw std::invalid_argument(
          "CoScheduler::plan: schedules span different topologies");
    }
    footprints_[i] = core::arc_footprint(*topo, *s);
    order.push_back(i);
  }
  if (topo == nullptr) return CoschedPlan{};  // nothing to plan
  return pack(*topo, std::move(order));
}

CoschedPlan CoScheduler::plan_footprints(
    const core::Topology& topo,
    std::span<const core::ArcFootprint> footprints) {
  footprints_.assign(footprints.begin(), footprints.end());
  std::vector<std::size_t> order(footprints.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (order.empty()) return CoschedPlan{};
  return pack(topo, std::move(order));
}

CoschedPlan CoScheduler::pack(const core::Topology& topo,
                              std::vector<std::size_t> candidates) {
  const bool stats = obs::stats_enabled();
  const std::uint64_t t_start = stats ? obs::now_ns() : 0;
  CoschedPlan out;
  std::vector<std::size_t> order = std::move(candidates);

  // Heaviest-footprint-first, original index breaking ties: packing the
  // widest trees before the narrow ones is the classic first-fit-
  // decreasing move, and the deterministic order is what keeps the plan
  // identical at any serving thread count.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const std::size_t ca = footprints_[a].total_crossings();
                     const std::size_t cb = footprints_[b].total_crossings();
                     if (ca != cb) return ca > cb;
                     return a < b;
                   });

  const std::uint32_t bound = std::max<std::uint32_t>(policy_.max_arc_overlap, 1);
  wave_load_.reset(topo);
  std::vector<std::size_t> remaining = std::move(order);
  std::vector<std::size_t> next_round;
  while (!remaining.empty()) {
    const std::size_t wave_index = out.waves.size();
    const bool final_wave =
        policy_.max_waves != 0 && wave_index + 1 >= policy_.max_waves;
    CoschedPlan::Wave wave;
    wave.start_offset_ns = wave_index * policy_.stagger_offset_ns;
    wave_load_.clear();
    next_round.clear();

    for (std::size_t k = 0; k < remaining.size(); ++k) {
      const std::size_t idx = remaining[k];
      const core::ArcFootprint& fp = footprints_[idx];
      const bool fits_bound = fp.self_max <= bound &&
                              wave_load_.peak_if_added(fp) <= bound;
      // Three ways in: it fits under the bound; the wave cap forces the
      // remainder into this final wave obliviously; or the tree's own
      // footprint exceeds the bound (unachievable for any wave), in
      // which case it gets an otherwise-empty wave to itself.
      const bool self_unschedulable = fp.self_max > bound;
      const bool admit =
          fits_bound || final_wave ||
          (self_unschedulable && wave.members.empty());
      if (!admit) {
        next_round.push_back(idx);
        ++out.deferred;
        continue;
      }
      if (!fits_bound) ++out.oblivious_fallback;
      wave.peak_overlap = std::max(wave.peak_overlap, wave_load_.add(fp));
      wave.members.push_back(idx);
      // A tree above the bound owns its wave: piling more on top only
      // deepens the hot arc it already saturates.
      if (self_unschedulable && !final_wave) {
        for (std::size_t j = k + 1; j < remaining.size(); ++j) {
          next_round.push_back(remaining[j]);
          ++out.deferred;
        }
        break;
      }
    }

    std::sort(wave.members.begin(), wave.members.end());
    out.peak_overlap = std::max(out.peak_overlap, wave.peak_overlap);
    out.waves.push_back(std::move(wave));
    std::swap(remaining, next_round);
  }

  if (stats) {
    const CoschedMetrics& m = cosched_metrics();
    m.plans->inc();
    m.waves->add(out.waves.size());
    m.deferred->add(out.deferred);
    m.fallback->add(out.oblivious_fallback);
    for (const CoschedPlan::Wave& w : out.waves) {
      m.wave_size->record(w.members.size());
    }
    m.peak_overlap->record(out.peak_overlap);
    m.plan_ns->record(obs::now_ns() - t_start);
  }
  return out;
}

std::vector<sim::CollectiveJob> CoScheduler::to_jobs(
    const CoschedPlan& plan,
    std::span<const core::MulticastSchedule* const> schedules,
    sim::SimTime base_start) {
  std::vector<sim::CollectiveJob> jobs;
  jobs.reserve(plan.size());
  for (const CoschedPlan::Wave& wave : plan.waves) {
    const auto start =
        base_start + static_cast<sim::SimTime>(wave.start_offset_ns);
    for (const std::size_t idx : wave.members) {
      jobs.push_back(sim::CollectiveJob{schedules[idx], start});
    }
  }
  return jobs;
}

}  // namespace hypercast::coll
