#ifndef HYPERCAST_COLL_COSCHEDULER_HPP
#define HYPERCAST_COLL_COSCHEDULER_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/channel_load.hpp"
#include "core/multicast.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::coll {

/// Admission policy for co-scheduling a batch of concurrent multicasts.
///
/// The paper's algorithms build each tree as if it were alone on the
/// network, and Theorem 3 only bounds contention for common-source
/// unicast sets — nothing protects simultaneous multicasts from
/// *different* sources, which oblivious superposition launches straight
/// into each other's channels. Following the greedy low-congestion
/// packing of *Near-Optimal Schedules for Simultaneous Multicasts*
/// (Haeupler, Hershkowitz, Wajc), the co-scheduler scores every tree's
/// E-cube arc footprint against a shared per-arc load map and packs
/// trees into waves so no directed channel is crossed by more than
/// `max_arc_overlap` worms per wave; waves launch `stagger_offset_ns`
/// apart.
struct CoschedPolicy {
  /// Per-arc crossing bound within one wave. A tree whose own footprint
  /// already exceeds the bound (self-overlap) is unschedulable under it
  /// and falls back to oblivious superposition: admitted alone into a
  /// wave and counted in CoschedPlan::oblivious_fallback.
  std::uint32_t max_arc_overlap = 2;
  /// Hard cap on waves; 0 = unbounded. When packing would need more
  /// waves than this, the remainder is superposed obliviously onto the
  /// final wave (counted in oblivious_fallback).
  std::size_t max_waves = 0;
  /// Launch offset between consecutive waves. The default is roughly
  /// one 4 KiB message service time under CostModel::ncube2() (startup
  /// + body streaming + receive overhead), so a wave's worms have
  /// largely released their paths before the next wave injects.
  std::uint64_t stagger_offset_ns = 2'200'000;
};

/// The greedy-wave plan over one batch. Waves partition the admitted
/// batch indices; every input index appears in exactly one wave.
struct CoschedPlan {
  struct Wave {
    std::vector<std::size_t> members;  ///< batch indices, ascending
    std::uint64_t start_offset_ns = 0; ///< wave_index * stagger
    std::uint32_t peak_overlap = 0;    ///< predicted max per-arc crossings
  };

  std::vector<Wave> waves;
  std::size_t deferred = 0;            ///< admissions pushed past their
                                       ///< first candidate wave
  std::size_t oblivious_fallback = 0;  ///< trees admitted above the bound
  std::uint32_t peak_overlap = 0;      ///< max over waves

  std::size_t size() const {
    std::size_t n = 0;
    for (const Wave& w : waves) n += w.members.size();
    return n;
  }

  /// Wave index of batch member `index` (plan.size() if absent).
  std::size_t wave_of(std::size_t index) const;
};

/// Plans batches of concurrent multicasts into contention-bounded
/// waves. Stateless between calls apart from reusable scratch; a plan
/// is a pure function of (policy, schedules), so co-scheduled serving
/// stays deterministic at any thread count.
class CoScheduler {
 public:
  explicit CoScheduler(CoschedPolicy policy = {}) : policy_(policy) {}

  const CoschedPolicy& policy() const { return policy_; }

  /// Plan a batch. Null schedules are skipped (they appear in no wave —
  /// the serving pipeline uses null slots for shed requests). All
  /// non-null schedules must share one topology.
  ///
  /// Deterministic greedy-wave packing: candidates are ordered by
  /// total footprint crossings (heaviest first, original index breaking
  /// ties), then first-fit into the earliest wave where every footprint
  /// arc stays within policy.max_arc_overlap of the wave's shared load
  /// map. Obs counters (cosched.*) record waves, deferrals and
  /// fallbacks when stats are enabled.
  CoschedPlan plan(
      std::span<const std::shared_ptr<const core::MulticastSchedule>>
          schedules);
  CoschedPlan plan(std::span<const core::MulticastSchedule* const> schedules);

  /// Plan directly from precomputed arc footprints — the entry point for
  /// composite candidates that are not a single schedule, e.g. a striped
  /// collective presenting the union footprint of its n trees
  /// (StripedPlan::union_footprint) as one candidate. Same deterministic
  /// greedy-wave packing; wave members index into `footprints`.
  CoschedPlan plan_footprints(const core::Topology& topo,
                              std::span<const core::ArcFootprint> footprints);

  /// Expand a plan into DES jobs: each member of wave w starts at
  /// `base_start + w * stagger`. Orders jobs by (wave, member), so the
  /// result is directly comparable against the oblivious all-at-once
  /// launch of the same schedules.
  static std::vector<sim::CollectiveJob> to_jobs(
      const CoschedPlan& plan,
      std::span<const core::MulticastSchedule* const> schedules,
      sim::SimTime base_start = 0);

 private:
  /// The greedy first-fit-decreasing wave packing over footprints_;
  /// `candidates` lists the admissible batch indices. Shared by both
  /// plan() overloads and plan_footprints().
  CoschedPlan pack(const core::Topology& topo,
                   std::vector<std::size_t> candidates);

  CoschedPolicy policy_;
  core::ChannelLoadMap wave_load_;              // scratch: current wave
  std::vector<core::ArcFootprint> footprints_;  // scratch: per candidate
};

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_COSCHEDULER_HPP
