#include "coll/reduce.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/reachable.hpp"
#include "sim/worm_engine.hpp"

namespace hypercast::coll {

namespace {

using hcube::NodeId;
using sim::SimTime;

class ReduceEngine {
 public:
  ReduceEngine(const core::MulticastSchedule& tree, const ReduceConfig& config)
      : tree_(tree),
        config_(config),
        worms_(tree.topo(), config.cost, config.port, queue_, nullptr,
               config.record_trace) {
    worms_.set_delivery_handler(
        [](void* ctx, sim::MessageId m, SimTime tail) {
          ReduceEngine* e = static_cast<ReduceEngine*>(ctx);
          e->folded(e->worms_.destination(m), m, tail);
        },
        this);
  }

  ReduceResult run() {
    const auto info = core::tree_info(tree_);
    parent_ = info.parent;

    // Subtree sizes (for Gather-mode message growth) and child counts.
    const auto reach = core::all_reachable_sets(tree_);
    for (const auto& [node, set] : reach) {
      subtree_size_[node] = set.size();
    }
    pending_[tree_.source()] = tree_.sends_from(tree_.source()).size();
    for (const NodeId r : tree_.recipients()) {
      pending_[r] = tree_.sends_from(r).size();
    }

    // Everyone enters at t = 0; leaves send immediately.
    for (const auto& [node, count] : pending_) {
      cpu_free_[node] = 0;
      if (count == 0 && node != tree_.source()) {
        send_to_parent(node, 0);
      }
    }
    if (pending_.size() == 1) {
      // Root alone: nothing to reduce.
      result_.completion = 0;
    }
    queue_.run_to_completion();
    finish();
    return std::move(result_);
  }

 private:
  std::size_t message_bytes(NodeId sender) const {
    if (config_.mode == ReduceConfig::Mode::Gather) {
      return subtree_size_.at(sender) * config_.block_bytes;
    }
    return config_.block_bytes;
  }

  void send_to_parent(NodeId node, SimTime ready) {
    const auto it = parent_.find(node);
    assert(it != parent_.end());
    const NodeId parent = it->second;
    const SimTime issue = std::max(cpu_free_[node], ready);
    const SimTime header_start = issue + config_.cost.send_startup;
    cpu_free_[node] = header_start;
    const sim::MessageId id =
        worms_.inject(node, parent, message_bytes(node), header_start);
    if (worms_.recording_traces()) worms_.trace(id).issue = issue;
    result_.send_time[node] = header_start;
    ++result_.stats.messages;
  }

  void folded(NodeId node, sim::MessageId id, SimTime tail) {
    // Receive + (in Combine mode) fold into the accumulator; both
    // occupy the receiving CPU.
    SimTime cpu = std::max(cpu_free_[node], tail) + config_.cost.recv_overhead;
    if (config_.mode == ReduceConfig::Mode::Combine) {
      cpu += static_cast<SimTime>(config_.block_bytes) *
             config_.combine_ns_per_byte;
    }
    cpu_free_[node] = cpu;
    if (worms_.recording_traces()) worms_.trace(id).done = cpu;

    auto& left = pending_.at(node);
    assert(left > 0);
    if (--left > 0) return;
    if (node == tree_.source()) {
      result_.completion = cpu;
    } else {
      send_to_parent(node, cpu);
    }
  }

  void finish() {
    result_.stats.events = queue_.events_processed();
    result_.stats.blocked_acquisitions = worms_.blocked_acquisitions();
    result_.stats.total_blocked_ns = worms_.total_blocked_ns();
    if (!worms_.quiescent()) {
      throw std::logic_error("reduction drained with undelivered messages");
    }
    for (const auto& [node, count] : pending_) {
      if (count != 0) {
        throw std::logic_error("reduction finished with unfolded children");
      }
    }
    if (config_.record_trace) {
      for (sim::MessageId id = 0; id < worms_.num_messages(); ++id) {
        result_.trace.messages.push_back(worms_.trace(id));
      }
    }
  }

  const core::MulticastSchedule& tree_;
  ReduceConfig config_;
  sim::EventQueue queue_;
  sim::WormEngine worms_;
  std::unordered_map<NodeId, NodeId> parent_;
  std::unordered_map<NodeId, std::size_t> subtree_size_;
  std::unordered_map<NodeId, std::size_t> pending_;
  std::unordered_map<NodeId, SimTime> cpu_free_;
  ReduceResult result_;
};

}  // namespace

ReduceResult simulate_reduce(const core::MulticastSchedule& tree,
                             const ReduceConfig& config) {
  return ReduceEngine(tree, config).run();
}

}  // namespace hypercast::coll
