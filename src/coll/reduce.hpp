#ifndef HYPERCAST_COLL_REDUCE_HPP
#define HYPERCAST_COLL_REDUCE_HPP

#include <unordered_map>

#include "core/multicast.hpp"
#include "core/stepwise.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::coll {

/// Reduction (convergecast) over the *reverse* of a multicast tree —
/// the natural dual the paper's introduction lists among collective
/// operations. Every participant enters the operation at t = 0 holding
/// one block; leaves send immediately; an interior node folds each
/// arriving child message into its accumulator and forwards a single
/// message to its parent once all children have been folded; the
/// operation completes when the root folds its last child.
///
/// Note the routing asymmetry this layer exposes: E-cube paths toward a
/// common ancestor *merge* (an in-tree), so reverse trees are generally
/// NOT contention-free even when the forward multicast is — sibling
/// messages can share late arcs. The simulator quantifies that blocking;
/// see bench/ablation_reduce.
struct ReduceConfig {
  sim::CostModel cost = sim::CostModel::ncube2();
  core::PortModel port = core::PortModel::all_port();
  std::size_t block_bytes = 4096;  ///< each participant's contribution

  /// CPU cost to fold one incoming byte into the accumulator
  /// (Combine mode only).
  std::int64_t combine_ns_per_byte = 2;

  enum class Mode {
    Combine,  ///< messages stay block_bytes (e.g. vector sum)
    Gather,   ///< messages concatenate: bytes grow with subtree size
  };
  Mode mode = Mode::Combine;
  bool record_trace = false;
};

struct ReduceResult {
  /// When the root finished folding the last contribution.
  sim::SimTime completion = 0;
  /// When each non-root participant's message entered the network
  /// (header start).
  std::unordered_map<hcube::NodeId, sim::SimTime> send_time;
  sim::SimStats stats;
  sim::Trace trace;
};

/// Simulate a reduction over the reverse of `tree` (root =
/// tree.source()). The tree's recipients are the participants.
ReduceResult simulate_reduce(const core::MulticastSchedule& tree,
                             const ReduceConfig& config);

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_REDUCE_HPP
