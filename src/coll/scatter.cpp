#include "coll/scatter.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/worm_engine.hpp"

namespace hypercast::coll {

namespace {

using hcube::NodeId;
using sim::SimTime;

class ScatterEngine {
 public:
  ScatterEngine(const core::MulticastSchedule& tree,
                const ScatterConfig& config)
      : tree_(tree),
        config_(config),
        worms_(tree.topo(), config.cost, config.port, queue_, nullptr,
               config.record_trace) {
    worms_.set_delivery_handler(
        [](void* ctx, sim::MessageId m, SimTime tail) {
          static_cast<ScatterEngine*>(ctx)->delivered(m, tail);
        },
        this);
  }

  ScatterResult run() {
    cpu_free_.assign(tree_.topo().num_nodes(), 0);
    start_node(tree_.source(), 0);
    queue_.run_to_completion();
    finish();
    return std::move(result_);
  }

 private:
  void start_node(NodeId node, SimTime ready) {
    SimTime cpu = std::max(cpu_free_[node], ready);
    for (const core::Send& send : tree_.sends_from(node)) {
      // The bundle for this subtree: the recipient's own block plus one
      // per payload destination.
      const std::size_t bytes =
          (send.payload.size() + 1) * config_.block_bytes;
      const SimTime issue = cpu;
      cpu += config_.cost.send_startup;
      const sim::MessageId id = worms_.inject(node, send.to, bytes, cpu);
      if (worms_.recording_traces()) worms_.trace(id).issue = issue;
      ++result_.stats.messages;
    }
    cpu_free_[node] = cpu;
  }

  void delivered(sim::MessageId id, SimTime tail) {
    const NodeId node = worms_.destination(id);
    const SimTime done =
        std::max(cpu_free_[node], tail) + config_.cost.recv_overhead;
    cpu_free_[node] = done;
    if (worms_.recording_traces()) worms_.trace(id).done = done;
    result_.delivery.emplace(node, done);
    queue_.schedule(done, [this, node, done] { start_node(node, done); });
  }

  void finish() {
    result_.stats.events = queue_.events_processed();
    result_.stats.blocked_acquisitions = worms_.blocked_acquisitions();
    result_.stats.total_blocked_ns = worms_.total_blocked_ns();
    if (result_.delivery.size() != result_.stats.messages ||
        !worms_.quiescent()) {
      throw std::logic_error("scatter drained with undelivered bundles");
    }
    if (config_.record_trace) {
      for (sim::MessageId id = 0; id < worms_.num_messages(); ++id) {
        result_.trace.messages.push_back(worms_.trace(id));
      }
    }
  }

  const core::MulticastSchedule& tree_;
  ScatterConfig config_;
  sim::EventQueue queue_;
  sim::WormEngine worms_;
  std::vector<SimTime> cpu_free_;
  ScatterResult result_;
};

}  // namespace

SimTime ScatterResult::max_delay(
    std::span<const hcube::NodeId> targets) const {
  SimTime worst = 0;
  if (targets.empty()) {
    for (const auto& [node, t] : delivery) worst = std::max(worst, t);
  } else {
    for (const hcube::NodeId n : targets) {
      worst = std::max(worst, delivery.at(n));
    }
  }
  return worst;
}

ScatterResult simulate_scatter(const core::MulticastSchedule& tree,
                               const ScatterConfig& config) {
  return ScatterEngine(tree, config).run();
}

}  // namespace hypercast::coll
