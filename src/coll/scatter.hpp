#ifndef HYPERCAST_COLL_SCATTER_HPP
#define HYPERCAST_COLL_SCATTER_HPP

#include <unordered_map>

#include "core/multicast.hpp"
#include "core/stepwise.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::coll {

/// Scatter — one-to-all *personalized* communication (the operation of
/// Johnsson & Ho [5], which the paper cites for the port-model
/// terminology): the root holds one distinct block per destination and
/// each destination must receive exactly its own block. Over a
/// multicast tree the message to a subtree carries that subtree's
/// blocks, so messages SHRINK as they descend — the forward dual of
/// gather. A node forwards only after its incoming bundle has fully
/// arrived (it must split the bundle).
struct ScatterConfig {
  sim::CostModel cost = sim::CostModel::ncube2();
  core::PortModel port = core::PortModel::all_port();
  std::size_t block_bytes = 4096;  ///< one destination's block
  bool record_trace = false;
};

struct ScatterResult {
  /// When each participant has fully received (and unpacked) its
  /// bundle; for leaves this is when their own block is in memory.
  std::unordered_map<hcube::NodeId, sim::SimTime> delivery;
  sim::SimStats stats;
  sim::Trace trace;

  sim::SimTime delay(hcube::NodeId node) const { return delivery.at(node); }
  sim::SimTime max_delay(std::span<const hcube::NodeId> targets = {}) const;
};

/// Simulate a scatter over `tree` (root = tree.source()); the tree's
/// recipients are the destinations.
ScatterResult simulate_scatter(const core::MulticastSchedule& tree,
                               const ScatterConfig& config);

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_SCATTER_HPP
