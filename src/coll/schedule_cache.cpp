#include "coll/schedule_cache.hpp"

#include <algorithm>
#include <array>
#include <thread>

#include "fault/fault_aware.hpp"
#include "obs/registry.hpp"

namespace hypercast::coll {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local L1: a small direct-mapped table shared by every cache
/// instance in the process (slots are tagged with the owning instance).
/// Slot residency pins a shared_ptr, so the table is deliberately small:
/// it exists to make the *hot* path lock-free, not to be a second cache.
struct L1Slot {
  std::uint64_t instance = 0;    ///< owning ScheduleCache
  std::uint64_t generation = 0;  ///< shard generation at stamp time
  std::uint64_t fault_epoch = 0; ///< stamp for absolute (fault) keys
  core::CacheKey key;
  std::shared_ptr<const core::MulticastSchedule> schedule;
};

constexpr std::size_t kL1Slots = 128;  // power of two

std::array<L1Slot, kL1Slots>& l1_table() {
  thread_local std::array<L1Slot, kL1Slots> table;
  return table;
}

L1Slot& l1_slot_for(std::uint64_t hash) {
  return l1_table()[(hash >> 8) & (kL1Slots - 1)];
}

}  // namespace

ScheduleCache::ScheduleCache() : ScheduleCache(Config{}) {}

ScheduleCache::ScheduleCache(Config config)
    : config_(config), instance_id_(next_instance_id()) {
  std::size_t shards = config_.shards;
  if (shards == 0) {
    shards = std::thread::hardware_concurrency();
    if (shards == 0) shards = 8;
  }
  shards = std::min(round_up_pow2(shards), std::size_t{256});
  shard_mask_ = shards - 1;
  per_shard_budget_ = std::max<std::size_t>(config_.max_bytes / shards, 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ScheduleCache::~ScheduleCache() { detach_from_registry(); }

bool ScheduleCache::stale(const core::CacheKey& key,
                          std::uint64_t entry_epoch) {
  return key.absolute && entry_epoch != kEpochImmune &&
         entry_epoch != fault::fault_epoch();
}

std::shared_ptr<const core::MulticastSchedule> ScheduleCache::get(
    const core::CacheKey& key) {
  Shard& shard = *shards_[shard_of(key)];

  // Lock-free fast path: thread-local slot, validated by instance id,
  // shard generation and (for fault-dependent entries) the fault epoch.
  L1Slot& slot = l1_slot_for(key.hash);
  if (slot.instance == instance_id_ &&
      slot.generation == shard.generation.load(std::memory_order_acquire) &&
      !stale(key, slot.fault_epoch) && slot.key == key) {
    l1_hits_.inc();
    return slot.schedule;
  }

  std::shared_ptr<const core::MulticastSchedule> found;
  std::uint64_t entry_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.inc();
      return nullptr;
    }
    if (stale(key, it->second.fault_epoch)) {
      // Lazy epoch invalidation: the fault set moved on since this
      // repaired tree was built — drop it and report a miss.
      shard.bytes -= it->second.bytes;
      shard.lru.erase(it->second.lru);
      shard.map.erase(it);
      invalidations_.inc();
      misses_.inc();
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
    found = it->second.schedule;
    entry_epoch = it->second.fault_epoch;
    hits_.inc();
  }

  // Stamp the L1 slot outside the lock (thread-local, no races).
  slot.instance = instance_id_;
  slot.generation = shard.generation.load(std::memory_order_acquire);
  slot.fault_epoch = entry_epoch;
  slot.key = key;
  slot.schedule = found;
  return found;
}

void ScheduleCache::put(
    const core::CacheKey& key,
    std::shared_ptr<const core::MulticastSchedule> schedule) {
  put(key, std::move(schedule), fault::fault_epoch());
}

void ScheduleCache::put(
    const core::CacheKey& key,
    std::shared_ptr<const core::MulticastSchedule> schedule,
    std::uint64_t built_at_epoch) {
  Shard& shard = *shards_[shard_of(key)];
  const std::size_t bytes =
      schedule->footprint_bytes() + key.footprint_bytes() + 64;
  const std::uint64_t epoch = key.absolute ? built_at_epoch : 0;

  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(key);
  Entry& entry = it->second;
  if (!inserted) {
    shard.bytes -= entry.bytes;
    shard.lru.erase(entry.lru);
  }
  entry.schedule = std::move(schedule);
  entry.bytes = bytes;
  entry.fault_epoch = epoch;
  shard.lru.push_front(&it->first);
  entry.lru = shard.lru.begin();
  shard.bytes += bytes;
  evict_over_budget_locked(shard);
}

std::shared_ptr<const core::MulticastSchedule> ScheduleCache::get_or_build(
    const core::CacheKey& key,
    const std::function<std::shared_ptr<const core::MulticastSchedule>()>&
        build) {
  if (auto hit = get(key)) return hit;
  const std::uint64_t epoch_before = fault::fault_epoch();
  auto built = build();
  put(key, built, epoch_before);
  return built;
}

void ScheduleCache::evict_over_budget_locked(Shard& shard) {
  while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
    const core::CacheKey* victim = shard.lru.back();
    const auto it = shard.map.find(*victim);
    shard.bytes -= it->second.bytes;
    shard.lru.pop_back();
    shard.map.erase(it);
    evictions_.inc();
  }
}

void ScheduleCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
    shard->bytes = 0;
    // Generation bump retires every thread-local L1 slot pointing here.
    shard->generation.fetch_add(1, std::memory_order_acq_rel);
  }
}

ScheduleCache::Stats ScheduleCache::stats() const {
  Stats out;
  out.hits = hits_.value();
  out.l1_hits = l1_hits_.value();
  out.misses = misses_.value();
  out.evictions = evictions_.value();
  out.invalidations = invalidations_.value();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.entries += shard->map.size();
    out.bytes += shard->bytes;
  }
  return out;
}

void ScheduleCache::attach_to_registry(obs::Registry& registry,
                                       const std::string& name) {
  detach_from_registry();
  attached_registry_ = &registry;
  attached_name_ = name;
  registry.register_gauge_source(name, [this] {
    std::vector<std::pair<std::string, double>> fields;
    stats().for_each_field([&fields](const char* field, double value) {
      fields.emplace_back(field, value);
    });
    return fields;
  });
}

void ScheduleCache::detach_from_registry() {
  if (attached_registry_ != nullptr) {
    attached_registry_->unregister_gauge_source(attached_name_);
    attached_registry_ = nullptr;
    attached_name_.clear();
  }
}

}  // namespace hypercast::coll
