#ifndef HYPERCAST_COLL_SCHEDULE_CACHE_HPP
#define HYPERCAST_COLL_SCHEDULE_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cache_key.hpp"
#include "core/multicast.hpp"
#include "obs/counter.hpp"

namespace hypercast::obs {
class Registry;
}

namespace hypercast::coll {

/// Sharded, striped-lock LRU cache of finalized multicast schedules,
/// keyed by core::CacheKey (dimension, resolution, algorithm, canonical
/// relative chain, and — for absolute keys — the source). A *relative*
/// entry serves every XOR-translation of its request: `(u, D)` and
/// `(v, v ^ u ^ D)` hit the same schedule, so a broadcast sweep over all
/// sources, the n translated multicasts of a tree-based all-to-all, or a
/// repeated hot pattern all pay tree construction exactly once.
/// *Absolute* entries pin one specific source: fault-aware schedules
/// (whose repairs depend on absolute link positions, invalidated by
/// fault-epoch bumps) and materialized translations of relative entries
/// (epoch-immune; they make exact repeats zero-copy).
///
/// Concurrency
///  * The shared tier is striped: the key's hash selects a shard, each
///    shard owns a mutex + hash map + LRU list. Writers (miss insert,
///    eviction, invalidation) only contend within one shard.
///  * The hot path is lock-free: each thread keeps a small direct-mapped
///    L1 of recently served entries, validated against the owning
///    shard's atomic generation tag (bumped by clear()) and — for
///    fault-dependent entries — against fault::fault_epoch(). An L1 hit
///    touches no lock and no shared cache line beyond two atomic loads.
///    Schedules are immutable once published (finalized before insert),
///    so an L1 entry that outlives its shared-tier eviction still serves
///    correct bytes; generation tags only guard deliberate invalidation.
///  * Stats counters are relaxed atomics; stats() is a racy snapshot.
///
/// Capacity is a byte budget split evenly across shards; entries charge
/// their schedule + key footprint and the least-recently *inserted or
/// shared-tier-hit* entry is evicted first (L1 hits deliberately skip
/// the LRU touch — approximate recency in exchange for zero locking).
class ScheduleCache {
 public:
  struct Config {
    /// Number of lock stripes; rounded up to a power of two, clamped to
    /// [1, 256]. 0 = auto (hardware concurrency).
    std::size_t shards = 0;
    /// Total byte budget across all shards.
    std::size_t max_bytes = std::size_t{64} << 20;
    /// Seed for the canonical-key hash; independent caches can
    /// decorrelate their shard mappings.
    std::uint64_t hash_seed = 0x5ca1ab1e5eedull;
  };

  struct Stats {
    std::uint64_t hits = 0;          ///< shared-tier hits
    std::uint64_t l1_hits = 0;       ///< lock-free thread-local hits
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;     ///< entries dropped for capacity
    std::uint64_t invalidations = 0; ///< entries dropped as stale (epoch)
    std::size_t entries = 0;         ///< resident entries (shared tier)
    std::size_t bytes = 0;           ///< resident bytes (shared tier)

    std::uint64_t total_hits() const { return hits + l1_hits; }
    std::uint64_t lookups() const { return total_hits() + misses; }
    double hit_rate() const {
      const std::uint64_t n = lookups();
      return n == 0 ? 0.0 : static_cast<double>(total_hits()) / n;
    }

    /// The canonical field schema: every exposition of cache stats (the
    /// serve CLI, registry gauge sources, bench artifacts, the ablation)
    /// walks this, so field names agree everywhere by construction.
    /// `visit` is called as visit(const char* name, double value).
    template <typename Visitor>
    void for_each_field(Visitor&& visit) const {
      visit("hits", static_cast<double>(hits));
      visit("l1_hits", static_cast<double>(l1_hits));
      visit("misses", static_cast<double>(misses));
      visit("evictions", static_cast<double>(evictions));
      visit("invalidations", static_cast<double>(invalidations));
      visit("entries", static_cast<double>(entries));
      visit("bytes", static_cast<double>(bytes));
      visit("total_hits", static_cast<double>(total_hits()));
      visit("lookups", static_cast<double>(lookups()));
      visit("hit_rate", hit_rate());
    }
  };

  /// built_at_epoch value for absolute entries whose contents do NOT
  /// depend on the fault set (cached materializations of one specific
  /// translation): they survive fault-epoch bumps.
  static constexpr std::uint64_t kEpochImmune = ~std::uint64_t{0};

  ScheduleCache();  ///< default Config
  explicit ScheduleCache(Config config);
  ~ScheduleCache();

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  const Config& config() const { return config_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// The shard a key maps to (exposed so batch servers can partition
  /// request groups shard-aligned and keep worker threads lock-disjoint).
  std::size_t shard_of(const core::CacheKey& key) const {
    return (key.hash >> 40) & shard_mask_;
  }

  /// Look the key up; nullptr on miss. The returned schedule is
  /// finalized, immutable and safe to share across threads.
  std::shared_ptr<const core::MulticastSchedule> get(const core::CacheKey& key);

  /// Insert (or overwrite) the finalized relative schedule for `key`.
  /// The schedule must already be finalized; the cache never mutates it.
  /// For absolute (fault-dependent) keys, `built_at_epoch` must be the
  /// fault epoch observed *before* the schedule was built — stamping the
  /// insert-time epoch would let a build that raced a fault change be
  /// served as fresh. Ignored for translation-invariant keys.
  void put(const core::CacheKey& key,
           std::shared_ptr<const core::MulticastSchedule> schedule,
           std::uint64_t built_at_epoch);
  void put(const core::CacheKey& key,
           std::shared_ptr<const core::MulticastSchedule> schedule);

  /// get(), falling back to `build` on a miss and inserting the result.
  /// `build` runs outside every lock; two threads racing on the same
  /// cold key may both build (last insert wins) — by design, since
  /// builds are pure and holding a stripe across a build would serialize
  /// unrelated misses.
  std::shared_ptr<const core::MulticastSchedule> get_or_build(
      const core::CacheKey& key,
      const std::function<std::shared_ptr<const core::MulticastSchedule>()>&
          build);

  /// Drop every entry and bump every shard's generation tag (which also
  /// kills all thread-local L1 entries).
  void clear();

  Stats stats() const;

  /// Expose this instance's stats() as a gauge source named `name` on
  /// `registry` (field names per Stats::for_each_field). The source is
  /// unregistered automatically when the cache is destroyed, or
  /// explicitly via detach_from_registry(). At most one attachment at a
  /// time; re-attaching replaces the previous one.
  void attach_to_registry(obs::Registry& registry, const std::string& name);
  void detach_from_registry();

 private:
  struct Entry {
    std::shared_ptr<const core::MulticastSchedule> schedule;
    std::size_t bytes = 0;
    std::uint64_t fault_epoch = 0;  ///< stamp at insert (absolute keys)
    std::list<const core::CacheKey*>::iterator lru;
  };

  struct KeyHash {
    std::size_t operator()(const core::CacheKey& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<core::CacheKey, Entry, KeyHash> map;
    /// Front = most recent; elements point at the map's keys (stable:
    /// unordered_map never moves nodes).
    std::list<const core::CacheKey*> lru;
    std::size_t bytes = 0;
    std::atomic<std::uint64_t> generation{1};
  };

  /// True iff the entry is stale under the current fault epoch.
  static bool stale(const core::CacheKey& key, std::uint64_t entry_epoch);

  void evict_over_budget_locked(Shard& shard);

  Config config_;
  std::size_t shard_mask_ = 0;
  std::size_t per_shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t instance_id_ = 0;  ///< tags thread-local L1 slots

  // Instance-owned striped counters (obs::Counter shards internally, so
  // one set per cache suffices — no per-Shard copies). Owned rather than
  // registry-named because counters registered under a shared name would
  // alias across cache instances and break per-instance stats().
  obs::Counter hits_;
  obs::Counter l1_hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter invalidations_;

  obs::Registry* attached_registry_ = nullptr;
  std::string attached_name_;
};

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_SCHEDULE_CACHE_HPP
