#include "coll/serve_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/tree_builder.hpp"
#include "core/wsort.hpp"
#include "fault/fault_aware.hpp"
#include "obs/registry.hpp"

namespace hypercast::coll {

namespace {

/// Fixed algorithm ids for the translation-invariant built-ins; ids for
/// absolutely-cached registry entries are assigned on first use so that
/// pipelines sharing one cache never collide.
constexpr std::uint8_t kUcubeId = 0;
constexpr std::uint8_t kMaxportId = 1;
constexpr std::uint8_t kCombineId = 2;
constexpr std::uint8_t kWsortId = 3;

std::uint8_t entry_algo_id(const std::string& name) {
  static std::mutex mu;
  static std::unordered_map<std::string, std::uint8_t> ids;
  static std::uint8_t next = 4;
  std::lock_guard<std::mutex> lock(mu);
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (next == 0) {  // wrapped: 252 distinct registered names, unlikely
    throw std::runtime_error("ServePipeline: algorithm id space exhausted");
  }
  return ids.emplace(name, next++).first->second;
}

bool ends_with_ft(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "-ft") == 0;
}

/// Per-thread serving scratch: the canonical key, the relative chain
/// reconstruction buffer, the tree builder and the wsort permutation
/// scratch. One instance per thread serves every pipeline (builders are
/// stateless between builds), which is what keeps a threaded batch at
/// the zero-allocation steady state.
struct ServeTls {
  core::CacheKey key;
  std::vector<core::NodeId> chain;
  core::TreeBuilder builder;
  core::WeightedSortScratch wsort_scratch;
  unsigned sample_tick = 0;  ///< stage-timing sampler (see kSampleMask)
};

ServeTls& serve_tls() {
  thread_local ServeTls tls;
  return tls;
}

/// Stage-timing sample rate: a cached serve is ~1.2us and a clock read
/// ~30ns on this class of machine, so timing every request would cost
/// ~7% — outside the overhead budget. Counters bump on every request
/// (one striped relaxed add, ~6ns); the per-stage histograms sample one
/// request in 16, which keeps the percentile estimates stable for any
/// steady workload while holding the enabled-stats overhead near 1%.
/// Miss-path stages (build, translate) are timed unconditionally: they
/// are rare and three orders of magnitude longer than a clock read.
constexpr unsigned kSampleMask = 15;

/// Instrument handles resolved once against the default registry; the
/// hot path dereferences pointers and never touches the registry lock.
struct ServeMetrics {
  obs::Counter* requests;
  obs::Counter* batches;
  obs::Counter* deadline_shed;
  obs::Histogram* serve_ns;
  obs::Histogram* canonicalize_ns;
  obs::Histogram* hit_ns;
  obs::Histogram* build_ns;
  obs::Histogram* translate_ns;
};

const ServeMetrics& serve_metrics() {
  static const ServeMetrics m = [] {
    obs::Registry& r = obs::default_registry();
    return ServeMetrics{&r.counter("serve.requests"),
                        &r.counter("serve.batches"),
                        &r.counter("serve.deadline_shed"),
                        &r.histogram("serve.serve_ns"),
                        &r.histogram("serve.canonicalize_ns"),
                        &r.histogram("serve.hit_ns"),
                        &r.histogram("serve.build_ns"),
                        &r.histogram("serve.translate_ns")};
  }();
  return m;
}

}  // namespace

ServePipeline::ServePipeline(std::string algorithm,
                             std::shared_ptr<ScheduleCache> cache)
    : algorithm_(std::move(algorithm)), cache_(std::move(cache)) {
  if (algorithm_ == "ucube") {
    kind_ = Kind::Chain;
    rule_ = core::NextRule::Center;
    algo_id_ = kUcubeId;
  } else if (algorithm_ == "maxport") {
    kind_ = Kind::Chain;
    rule_ = core::NextRule::HighDim;
    algo_id_ = kMaxportId;
  } else if (algorithm_ == "combine") {
    kind_ = Kind::Chain;
    rule_ = core::NextRule::MaxOfBoth;
    algo_id_ = kCombineId;
  } else if (algorithm_ == "wsort") {
    kind_ = Kind::Wsort;
    algo_id_ = kWsortId;
  } else {
    // Resolves (and validates) the name against the registry; throws the
    // self-diagnosing invalid_argument for typos.
    kind_ = Kind::Entry;
    entry_epoch_.store(fault::fault_epoch(), std::memory_order_relaxed);
    entry_.store(&core::find_algorithm(algorithm_), std::memory_order_relaxed);
    entry_cacheable_ = ends_with_ft(algorithm_);
    algo_id_ = entry_cacheable_ ? entry_algo_id(algorithm_) : 0;
  }
}

const core::AlgorithmEntry& ServePipeline::resolved_entry() const {
  const std::uint64_t now = fault::fault_epoch();
  const core::AlgorithmEntry* e = entry_.load(std::memory_order_acquire);
  if (e == nullptr || entry_epoch_.load(std::memory_order_acquire) != now) {
    // The epoch moved since this pipeline last looked the name up:
    // whoever bumped it may have re-registered the entry against a new
    // FaultSet (register_fault_aware_algorithms replaces in place and
    // then bumps). Re-resolve so builds go through the live
    // registration, not the one captured at construction. The pair of
    // stores is not atomic; a racing bump at worst leaves a stale
    // epoch stamp behind, causing one redundant re-resolution — never
    // a stale entry served as fresh (the post-build epoch recheck in
    // the callers covers the build window itself).
    e = &core::find_algorithm(algorithm_);
    entry_.store(e, std::memory_order_release);
    entry_epoch_.store(now, std::memory_order_release);
  }
  return *e;
}

std::shared_ptr<const core::MulticastSchedule> ServePipeline::serve(
    const core::MulticastRequest& request) const {
  HYPERCAST_OBS_SPAN("serve");
  if (cache_ == nullptr) return build_direct(request);
  switch (kind_) {
    case Kind::Chain:
    case Kind::Wsort:
      return serve_relative(request);
    case Kind::Entry:
      return entry_cacheable_ ? serve_absolute(request)
                              : build_direct(request);
  }
  return build_direct(request);  // unreachable
}

std::shared_ptr<const core::MulticastSchedule> ServePipeline::serve_relative(
    const core::MulticastRequest& request) const {
  ServeTls& tls = serve_tls();
  const core::NodeId mask = request.source;
  const bool stats = obs::stats_enabled();
  bool sampled = false;
  std::uint64_t t_start = 0;
  if (stats) {
    serve_metrics().requests->inc();
    sampled = (tls.sample_tick++ & kSampleMask) == 0;
    if (sampled) t_start = obs::now_ns();
  }
  // One canonicalization pass yields both identities: the absolute one
  // (this exact translation, zero-copy on repeat) and — via a cheap
  // rekey() of the header — the relative one (shared by every
  // translation of the chain).
  core::canonical_key_into(request.topo, request.source, request.destinations,
                           algo_id_, /*absolute=*/mask != 0,
                           cache_->config().hash_seed, tls.key);
  std::uint64_t t_probe = 0;
  if (sampled) {
    t_probe = obs::now_ns();
    serve_metrics().canonicalize_ns->record(t_probe - t_start);
  }
  if (mask != 0) {
    if (auto hit = cache_->get(tls.key)) {
      if (sampled) {
        const std::uint64_t t_end = obs::now_ns();
        serve_metrics().hit_ns->record(t_end - t_probe);
        serve_metrics().serve_ns->record(t_end - t_start);
      }
      return hit;
    }
    core::rekey(tls.key, /*absolute=*/false, 0);
  }
  auto rel = cache_->get(tls.key);
  if (rel == nullptr) {
    HYPERCAST_OBS_SPAN("serve.build");
    const std::uint64_t t_build = stats ? obs::now_ns() : 0;
    auto built = build_relative(request.topo, tls.key);
    cache_->put(tls.key, built);
    if (stats) serve_metrics().build_ns->record(obs::now_ns() - t_build);
    rel = std::move(built);
  } else if (sampled && mask == 0) {
    serve_metrics().hit_ns->record(obs::now_ns() - t_probe);
  }
  if (mask == 0) {
    if (sampled) serve_metrics().serve_ns->record(obs::now_ns() - t_start);
    return rel;  // zero-copy: the relative origin
  }
  HYPERCAST_OBS_SPAN("serve.translate");
  const std::uint64_t t_translate = stats ? obs::now_ns() : 0;
  auto out = std::make_shared<core::MulticastSchedule>(request.topo,
                                                       request.source);
  out->assign_translated(*rel, mask);
  out->finalize();
  // Publish the materialized translation under its absolute identity so
  // the next identical request shares it without copying. The entry is
  // pure translation (no fault dependence), hence epoch-immune.
  core::rekey(tls.key, /*absolute=*/true, mask);
  cache_->put(tls.key, out, ScheduleCache::kEpochImmune);
  if (stats) {
    const std::uint64_t t_end = obs::now_ns();
    serve_metrics().translate_ns->record(t_end - t_translate);
    if (sampled) serve_metrics().serve_ns->record(t_end - t_start);
  }
  return out;
}

std::shared_ptr<const core::MulticastSchedule> ServePipeline::serve_absolute(
    const core::MulticastRequest& request) const {
  ServeTls& tls = serve_tls();
  const bool stats = obs::stats_enabled();
  bool sampled = false;
  std::uint64_t t_start = 0;
  if (stats) {
    serve_metrics().requests->inc();
    sampled = (tls.sample_tick++ & kSampleMask) == 0;
    if (sampled) t_start = obs::now_ns();
  }
  core::canonical_key_into(request.topo, request.source, request.destinations,
                           algo_id_, /*absolute=*/true,
                           cache_->config().hash_seed, tls.key);
  std::uint64_t t_probe = 0;
  if (sampled) {
    t_probe = obs::now_ns();
    serve_metrics().canonicalize_ns->record(t_probe - t_start);
  }
  if (auto hit = cache_->get(tls.key)) {
    if (sampled) {
      const std::uint64_t t_end = obs::now_ns();
      serve_metrics().hit_ns->record(t_end - t_probe);
      serve_metrics().serve_ns->record(t_end - t_start);
    }
    return hit;
  }
  HYPERCAST_OBS_SPAN("serve.build");
  const std::uint64_t t_build = stats ? obs::now_ns() : 0;
  // Build-and-recheck: the epoch must be read *before* the build for
  // the stamp to be safe, and read *again* after it — a bump landing
  // mid-build may have swapped the registry entry under us, so the
  // schedule we just built could reflect the retired FaultSet. On a
  // mismatch, retry against the freshly resolved entry; if the epoch
  // will not hold still (a bump storm), serve the last build uncached
  // so nothing stale is ever stamped as current.
  std::shared_ptr<core::MulticastSchedule> built;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const core::AlgorithmEntry& entry = resolved_entry();
    const std::uint64_t epoch = fault::fault_epoch();
    built = std::make_shared<core::MulticastSchedule>(entry.build(request));
    built->finalize();
    if (fault::fault_epoch() == epoch) {
      cache_->put(tls.key, built, epoch);
      break;
    }
  }
  if (stats) {
    const std::uint64_t t_end = obs::now_ns();
    serve_metrics().build_ns->record(t_end - t_build);
    if (sampled) serve_metrics().serve_ns->record(t_end - t_start);
  }
  return built;
}

std::shared_ptr<core::MulticastSchedule> ServePipeline::build_relative(
    const core::Topology& topo, const core::CacheKey& key) const {
  ServeTls& tls = serve_tls();
  core::relative_chain_from_key(topo, key, tls.chain);
  auto out = std::make_shared<core::MulticastSchedule>(topo, 0);
  core::NextRule rule = rule_;
  if (kind_ == Kind::Wsort) {
    core::weighted_sort(topo, tls.chain, core::WeightedSortImpl::Fast,
                        tls.wsort_scratch);
    rule = core::NextRule::HighDim;
  }
  tls.builder.build_chain_into(topo, tls.chain, rule, *out);
  out->finalize();
  return out;
}

std::shared_ptr<const core::MulticastSchedule> ServePipeline::build_direct(
    const core::MulticastRequest& request) const {
  ServeTls& tls = serve_tls();
  const bool stats = obs::stats_enabled();
  std::uint64_t t_build = 0;
  if (stats) {
    serve_metrics().requests->inc();
    // Direct builds are the uncached slow path (several microseconds):
    // timing every one costs well under a percent, no sampling needed.
    t_build = obs::now_ns();
  }
  const auto record_build = [&](std::uint64_t t0) {
    if (stats) serve_metrics().build_ns->record(obs::now_ns() - t0);
  };
  switch (kind_) {
    case Kind::Chain: {
      auto out = std::make_shared<core::MulticastSchedule>(request.topo,
                                                           request.source);
      tls.builder.build_into(request, rule_, *out);
      out->finalize();
      record_build(t_build);
      return out;
    }
    case Kind::Wsort: {
      auto out = std::make_shared<core::MulticastSchedule>(request.topo,
                                                           request.source);
      tls.builder.build_wsort_into(request, core::WeightedSortImpl::Fast,
                                   *out);
      out->finalize();
      record_build(t_build);
      return out;
    }
    case Kind::Entry:
      break;
  }
  // Pass-through entries get the same resolve-and-recheck treatment as
  // the cached absolute path: without it, a pipeline constructed before
  // a register + bump_fault_epoch would keep building through the
  // retired registration's captured FaultSet.
  std::shared_ptr<core::MulticastSchedule> out;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const core::AlgorithmEntry& entry = resolved_entry();
    const std::uint64_t epoch = fault::fault_epoch();
    out = std::make_shared<core::MulticastSchedule>(entry.build(request));
    out->finalize();
    if (fault::fault_epoch() == epoch) break;
  }
  record_build(t_build);
  return out;
}

std::vector<std::shared_ptr<const core::MulticastSchedule>>
ServePipeline::serve_batch(std::span<const core::MulticastRequest> requests,
                           const BatchPolicy& policy) const {
  HYPERCAST_OBS_SPAN("serve.batch");
  if (obs::stats_enabled()) serve_metrics().batches->inc();
  std::vector<std::shared_ptr<const core::MulticastSchedule>> out(
      requests.size());
  const std::size_t n = requests.size();
  // Deadline check, evaluated immediately before each request's serve
  // starts. Sampling the clock per request costs ~30ns against serves
  // of >=1.2us, so no batching of the check is needed. Slot i is held
  // to the tighter of the batch-wide deadline and its own entry in
  // policy.deadlines_ns — a coalesced batch mixes admission times, and
  // the oldest request must not inherit the newest one's slack.
  const std::uint64_t batch_deadline = policy.deadline_ns;
  const std::span<const std::uint64_t> per_request = policy.deadlines_ns;
  const auto expired = [batch_deadline, per_request](std::size_t i) {
    std::uint64_t deadline = batch_deadline;
    if (i < per_request.size() && per_request[i] != 0) {
      deadline = deadline == 0 ? per_request[i]
                               : std::min(deadline, per_request[i]);
    }
    if (deadline == 0 || obs::now_ns() <= deadline) return false;
    if (obs::stats_enabled()) serve_metrics().deadline_shed->inc();
    return true;
  };
  std::size_t workers =
      policy.threads < 1 ? 1 : static_cast<std::size_t>(policy.threads);
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (expired(i)) continue;
      out[i] = serve(requests[i]);
    }
    return out;
  }

  // Owner of request i: with a cache, its key's shard (so no two workers
  // ever touch the same stripe — hits resolve without lock contention);
  // without one, a contiguous chunk.
  const bool shard_partition =
      cache_ != nullptr && (kind_ != Kind::Entry || entry_cacheable_);
  std::vector<std::uint32_t> owner(n, 0);
  std::mutex error_mu;
  std::exception_ptr error;

  const auto guard = [&](auto&& fn) {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
  };
  const auto parallel_over = [&](auto&& body) {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] { guard([&] { body(w); }); });
    }
    for (std::thread& t : pool) t.join();
    if (error) std::rethrow_exception(error);
  };

  if (shard_partition) {
    // Phase 1: canonicalize in parallel chunks to discover each
    // request's shard (the keys are recomputed thread-locally during
    // serving; what matters here is only the partition).
    parallel_over([&](std::size_t w) {
      core::CacheKey key;
      for (std::size_t i = w; i < n; i += workers) {
        // Partition by the identity serve() probes (and inserts) first:
        // the absolute one for translated or registry requests, the
        // relative one at the relative origin. The fallback probe of a
        // cold relative entry may touch a foreign stripe, but that is a
        // once-per-chain event, not the steady state.
        const bool absolute =
            kind_ == Kind::Entry || requests[i].source != 0;
        core::canonical_key_into(requests[i].topo, requests[i].source,
                                 requests[i].destinations, algo_id_, absolute,
                                 cache_->config().hash_seed, key);
        owner[i] = static_cast<std::uint32_t>(cache_->shard_of(key) %
                                              workers);
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      owner[i] = static_cast<std::uint32_t>(i % workers);
    }
  }

  // Phase 2: every worker serves exactly its shard group, writing
  // disjoint result slots.
  parallel_over([&](std::size_t w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (owner[i] != w) continue;
      if (expired(i)) continue;
      out[i] = serve(requests[i]);
    }
  });
  return out;
}

StripedPlan ServePipeline::serve_striped(
    const core::MulticastRequest& request, std::size_t payload_bytes,
    const StripeOptions& options) const {
  if (payload_bytes < options.threshold_bytes || request.topo.dim() < 2) {
    StripedPlan plan;
    plan.payload_bytes = payload_bytes;
    plan.stripe_bytes = payload_bytes;
    plan.trees.push_back(serve(request));
    return plan;
  }
  return StripedPlanner(options, cache_).plan(request, payload_bytes);
}

StripedPlan ServePipeline::serve_striped(
    const core::MulticastRequest& request, std::size_t payload_bytes,
    const StripeOptions& options, const fault::FaultSet& faults) const {
  if (payload_bytes < options.threshold_bytes || request.topo.dim() < 2) {
    StripedPlan plan;
    plan.payload_bytes = payload_bytes;
    plan.stripe_bytes = payload_bytes;
    auto tree = serve(request);
    if (fault::blocked_unicasts(*tree, faults) != 0) {
      // Degraded single-tree fallback. The repaired tree depends on the
      // absolute fault set, so it caches like the striped planner's
      // repaired trees: an absolute key under a dedicated algorithm id,
      // salted with the fault fingerprint and stamped with the live
      // fault epoch (bump_fault_epoch() invalidates it lazily).
      constexpr std::uint8_t kFallbackRepairAlgoId = 191;
      std::shared_ptr<const core::MulticastSchedule> repaired;
      ServeTls* tls = nullptr;
      if (cache_ != nullptr) {
        tls = &serve_tls();
        core::canonical_key_into(request.topo, request.source,
                                 request.destinations, kFallbackRepairAlgoId,
                                 /*absolute=*/true, cache_->config().hash_seed,
                                 tls->key);
        core::set_salt(tls->key,
                       faults.fingerprint(cache_->config().hash_seed));
        repaired = cache_->get(tls->key);
      }
      if (repaired == nullptr) {
        auto built = std::make_shared<core::MulticastSchedule>(
            fault::repair_schedule(*tree, request.destinations, faults)
                .schedule);
        built->finalize();
        if (tls != nullptr) {
          cache_->put(tls->key, built, fault::fault_epoch());
        }
        repaired = std::move(built);
      }
      tree = std::move(repaired);
      plan.repaired_trees = 1;
    }
    plan.trees.push_back(std::move(tree));
    return plan;
  }
  return StripedPlanner(options, cache_).plan(request, payload_bytes, faults);
}

ServePipeline::CoschedBatch ServePipeline::serve_batch_cosched(
    std::span<const core::MulticastRequest> requests,
    const BatchPolicy& policy, const CoschedPolicy& cosched) const {
  CoschedBatch out;
  out.schedules = serve_batch(requests, policy);
  // The plan is a pure function of the served schedules (null slots are
  // skipped), so co-scheduled serving inherits serve_batch's
  // thread-count determinism.
  CoScheduler scheduler(cosched);
  out.plan = scheduler.plan(out.schedules);
  return out;
}

}  // namespace hypercast::coll
