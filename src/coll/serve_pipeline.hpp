#ifndef HYPERCAST_COLL_SERVE_PIPELINE_HPP
#define HYPERCAST_COLL_SERVE_PIPELINE_HPP

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "coll/coscheduler.hpp"
#include "coll/schedule_cache.hpp"
#include "coll/striped.hpp"
#include "core/chain_algorithms.hpp"
#include "core/registry.hpp"

namespace hypercast::coll {

/// The concurrent schedule-serving front end: turns MulticastRequests
/// into finalized, immutably shared MulticastSchedules, consulting a
/// ScheduleCache when one is attached.
///
/// Serving strategy by algorithm:
///  * ucube / maxport / combine / wsort — translation-invariant (the
///    property tests prove build(u, D) is the XOR-relabeling of
///    build(0, u ^ D)), so the pipeline caches at two levels sharing one
///    canonicalization pass: the *relative* schedule under the canonical
///    relative chain (paying tree construction once per chain shape),
///    and each *materialized translation* under its absolute identity
///    (paying the XOR relabeling copy once per (source, shape) pair).
///    In steady state a hit is zero-copy: key canonicalization plus a
///    shared_ptr share, never a construction and never a copy.
///  * "<algo>-ft" fault-aware variants — repairs depend on the absolute
///    fault positions, so these cache under absolute keys (source folded
///    in, shared back without translation) and are invalidated by fault
///    epoch bumps.
///  * anything else (separate, sftree, other registered entries) — the
///    output may depend on caller-supplied destination *order*, which
///    canonicalization erases, so these are served pass-through
///    (built per request, never cached).
///
/// Misses build through a thread-local core::TreeBuilder, so a pipeline
/// shared by many worker threads reaches the same zero-allocation steady
/// state as PR 3's sweeps while staying bit-identical to uncached
/// construction at any thread count.
class ServePipeline {
 public:
  /// `cache` may be nullptr: the pipeline then serves every request by
  /// direct construction (the --cache=off mode everywhere).
  ServePipeline(std::string algorithm, std::shared_ptr<ScheduleCache> cache);

  const std::string& algorithm() const { return algorithm_; }
  const std::shared_ptr<ScheduleCache>& cache() const { return cache_; }
  bool cached() const { return cache_ != nullptr; }

  /// Serve one request. The returned schedule is finalized and safe to
  /// share read-only across threads. Throws std::invalid_argument on
  /// malformed requests (same contract as MulticastRequest::validate).
  std::shared_ptr<const core::MulticastSchedule> serve(
      const core::MulticastRequest& request) const;

  /// Batch-serving policy. The default (1 thread, no deadline) serves
  /// the whole batch sequentially.
  struct BatchPolicy {
    int threads = 1;
    /// Absolute obs::now_ns() deadline; 0 = none. A request whose
    /// serving has not *started* by the deadline is shed: its result
    /// slot stays nullptr and the serve.deadline_shed counter bumps.
    /// This is the hook a queue-backed server uses to stop burning CPU
    /// on requests whose caller has already given up (the response
    /// would arrive past its latency SLO anyway) — load-shedding at the
    /// latest possible moment, after queueing but before construction.
    std::uint64_t deadline_ns = 0;
    /// Optional per-request absolute deadlines (same clock; 0 = none),
    /// parallel to the request span. A batch coalesced from a queue
    /// mixes admission times, so one collapsed batch deadline would
    /// serve the earliest-admitted requests past their own SLO; each
    /// slot i is shed against min(deadline_ns, deadlines_ns[i]) of the
    /// nonzero values instead. An empty span means batch-wide only.
    std::span<const std::uint64_t> deadlines_ns{};
  };

  /// Serve a batch, results in request order. With `policy.threads` > 1
  /// the batch is partitioned by cache shard — every shard's requests
  /// are handled by exactly one worker, so workers never contend on a
  /// stripe and hits resolve lock-free (uncached pipelines fall back to
  /// contiguous chunks). Without a deadline, output is bit-identical to
  /// serving the batch sequentially, at any thread count; with one,
  /// served slots are still bit-identical but trailing requests may be
  /// shed (nullptr).
  std::vector<std::shared_ptr<const core::MulticastSchedule>> serve_batch(
      std::span<const core::MulticastRequest> requests,
      const BatchPolicy& policy) const;
  std::vector<std::shared_ptr<const core::MulticastSchedule>> serve_batch(
      std::span<const core::MulticastRequest> requests, int threads = 1) const {
    return serve_batch(requests, BatchPolicy{threads, 0});
  }

  /// A served batch plus its contention-bounded launch plan. Plan wave
  /// members index into `schedules`; shed (nullptr) slots appear in no
  /// wave.
  struct CoschedBatch {
    std::vector<std::shared_ptr<const core::MulticastSchedule>> schedules;
    CoschedPlan plan;
  };

  /// Serve one request as a striped collective: payloads at or above
  /// options.threshold_bytes on cubes of dim >= 2 split across the n
  /// arc-disjoint IST trees (each tree cached per-tree through this
  /// pipeline's cache, same two-level scheme as serve()); smaller
  /// payloads fall back to the latency-optimal single-tree serve()
  /// (plan.striped == false, one tree carrying the whole payload).
  StripedPlan serve_striped(const core::MulticastRequest& request,
                            std::size_t payload_bytes,
                            const StripeOptions& options = {}) const;

  /// Degraded-mode serve_striped: striped plans swap the most-affected
  /// tree onto the parity stripe and detour-repair the rest (see
  /// StripedPlanner); the single-tree fallback is detour-repaired when a
  /// fault blocks it. Throws fault::UnrepairableFault when a destination
  /// is unreachable.
  StripedPlan serve_striped(const core::MulticastRequest& request,
                            std::size_t payload_bytes,
                            const StripeOptions& options,
                            const fault::FaultSet& faults) const;

  /// serve_batch, then co-schedule the served slots into waves under
  /// `cosched` (see coll::CoScheduler). The schedules are byte-identical
  /// to plain serve_batch output and the plan is a pure function of
  /// them, so the result is deterministic at any policy.threads.
  CoschedBatch serve_batch_cosched(
      std::span<const core::MulticastRequest> requests,
      const BatchPolicy& policy, const CoschedPolicy& cosched) const;

 private:
  enum class Kind {
    Chain,   ///< ucube / maxport / combine: TreeBuilder + NextRule
    Wsort,   ///< weighted_sort permutation + HighDim rule
    Entry,   ///< registry entry; cacheable only under absolute keys
  };

  std::shared_ptr<const core::MulticastSchedule> serve_relative(
      const core::MulticastRequest& request) const;
  std::shared_ptr<const core::MulticastSchedule> serve_absolute(
      const core::MulticastRequest& request) const;
  std::shared_ptr<const core::MulticastSchedule> build_direct(
      const core::MulticastRequest& request) const;

  /// Build the relative schedule a canonical key denotes (source 0,
  /// destinations reconstructed from the key words), finalized.
  std::shared_ptr<core::MulticastSchedule> build_relative(
      const core::Topology& topo, const core::CacheKey& key) const;

  /// The registry entry serving Kind::Entry requests, re-resolved
  /// whenever the fault epoch moves. register_fault_aware_algorithms
  /// replaces entries in place and bumps the epoch; a pipeline that
  /// kept the pointer it resolved at construction would build through
  /// the *retired* registration (capturing the old FaultSet) forever —
  /// and stamp those stale builds with the current epoch, so the cache
  /// would serve them as fresh. Epoch-checked resolution plus the
  /// post-build epoch recheck in serve_absolute/build_direct closes
  /// both holes.
  const core::AlgorithmEntry& resolved_entry() const;

  std::string algorithm_;
  Kind kind_ = Kind::Entry;
  core::NextRule rule_ = core::NextRule::Center;
  /// Kind::Entry only; epoch-stamped cache of find_algorithm(algorithm_).
  mutable std::atomic<const core::AlgorithmEntry*> entry_{nullptr};
  mutable std::atomic<std::uint64_t> entry_epoch_{0};
  bool entry_cacheable_ = false;                 ///< "-ft" entries
  std::uint8_t algo_id_ = 0;
  std::shared_ptr<ScheduleCache> cache_;
};

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_SERVE_PIPELINE_HPP
