#include "coll/striped.hpp"

#include <algorithm>
#include <stdexcept>

#include "code/rs.hpp"
#include "fault/fault_aware.hpp"
#include "obs/registry.hpp"
#include "paths/repair.hpp"

namespace hypercast::coll {

namespace {

/// Per-tree cache algorithm ids. The serving pipeline hands ids 0..3 to
/// the paper algorithms and grows registry-entry ids upward from 4; the
/// IST trees claim a block at the top of the 8-bit space instead
/// (kIstAlgoBase + tree, tree < dim <= hcube::kMaxDim = 20), so the two
/// assignment schemes cannot collide until ~220 distinct registered
/// names exist — far beyond anything the registry holds. Degraded-mode
/// repaired trees take a second block below it: they are absolute,
/// fault-dependent entries salted by fault fingerprint + parity config.
constexpr std::uint8_t kIstAlgoBase = 224;
constexpr std::uint8_t kIstRepairAlgoBase = 192;

std::uint8_t ist_algo_id(hcube::Dim tree) {
  return static_cast<std::uint8_t>(kIstAlgoBase + tree);
}

std::uint8_t ist_repair_algo_id(hcube::Dim tree) {
  return static_cast<std::uint8_t>(kIstRepairAlgoBase + tree);
}

/// Per-thread scratch mirroring the serving pipeline's: one canonical
/// key and one chain-reconstruction buffer recycled across plans.
struct StripedTls {
  core::CacheKey key;
  std::vector<core::NodeId> chain;
};

StripedTls& striped_tls() {
  thread_local StripedTls tls;
  return tls;
}

std::shared_ptr<core::MulticastSchedule> finalized(
    core::MulticastSchedule&& schedule) {
  auto out = std::make_shared<core::MulticastSchedule>(std::move(schedule));
  out->finalize();
  return out;
}

void bump(const char* name, std::uint64_t by = 1) {
  if (by != 0 && obs::stats_enabled()) {
    obs::default_registry().counter(name).add(by);
  }
}

}  // namespace

std::vector<sim::CollectiveJob> StripedPlan::jobs(sim::SimTime start) const {
  std::vector<sim::CollectiveJob> out;
  out.reserve(active_trees());
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (dropped(t)) continue;
    out.push_back(sim::CollectiveJob{trees[t].get(), start, stripe_bytes});
  }
  return out;
}

core::ArcFootprint StripedPlan::union_footprint() const {
  std::vector<core::ArcFootprint> parts;
  parts.reserve(active_trees());
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (dropped(t)) continue;
    parts.push_back(core::arc_footprint(trees[t]->topo(), *trees[t]));
  }
  return core::merge_footprints(parts);
}

std::vector<std::vector<std::uint8_t>> split_stripes(
    std::span<const std::uint8_t> payload, std::size_t data_stripes,
    std::size_t parity_stripes) {
  if (data_stripes == 0) {
    throw std::invalid_argument("split_stripes: zero data stripes");
  }
  const std::size_t width =
      (payload.size() + data_stripes - 1) / data_stripes;
  std::vector<std::vector<std::uint8_t>> stripes;
  stripes.reserve(data_stripes + parity_stripes);
  for (std::size_t i = 0; i < data_stripes; ++i) {
    const std::size_t begin = std::min(payload.size(), i * width);
    const std::size_t end = std::min(payload.size(), begin + width);
    stripes.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                         payload.begin() + static_cast<std::ptrdiff_t>(end));
  }
  if (parity_stripes > 0) {
    // Reed-Solomon over the data stripes, each notionally zero-padded
    // to `width` (short tail bytes contribute nothing, so padding is
    // implicit). One parity stripe is the all-ones row — plain XOR,
    // byte-identical to the legacy parity contract.
    const code::RsCode rs(data_stripes, parity_stripes);
    std::vector<std::vector<std::uint8_t>> parity;
    rs.encode(std::span<const std::vector<std::uint8_t>>(stripes.data(),
                                                         data_stripes),
              parity, width);
    for (std::vector<std::uint8_t>& p : parity) {
      stripes.push_back(std::move(p));
    }
  }
  return stripes;
}

std::vector<std::vector<std::uint8_t>> split_stripes(
    std::span<const std::uint8_t> payload, std::size_t data_stripes,
    bool parity) {
  return split_stripes(payload, data_stripes,
                       static_cast<std::size_t>(parity ? 1 : 0));
}

std::vector<std::uint8_t> reassemble_stripes(
    std::span<const std::vector<std::uint8_t>> stripes,
    std::size_t data_stripes, std::size_t payload_bytes,
    std::span<const std::size_t> missing) {
  if (data_stripes == 0 || stripes.size() < data_stripes) {
    throw std::invalid_argument("reassemble_stripes: too few stripes");
  }
  const std::size_t width =
      (payload_bytes + data_stripes - 1) / data_stripes;
  // Reconstruct lost data stripes (if any) through the RS decoder; the
  // working copy is only materialized when something is missing.
  std::vector<std::vector<std::uint8_t>> recovered;
  bool any_data_missing = false;
  for (const std::size_t i : missing) {
    if (i < data_stripes) any_data_missing = true;
  }
  if (any_data_missing) {
    const std::size_t parity_stripes = stripes.size() - data_stripes;
    const code::RsCode rs(data_stripes, parity_stripes);
    recovered.assign(stripes.begin(), stripes.end());
    rs.reconstruct(recovered, missing, width);
  }
  const std::span<const std::vector<std::uint8_t>> source =
      any_data_missing
          ? std::span<const std::vector<std::uint8_t>>(recovered)
          : stripes;
  std::vector<std::uint8_t> out;
  out.reserve(payload_bytes);
  for (std::size_t i = 0; i < data_stripes && out.size() < payload_bytes;
       ++i) {
    const std::vector<std::uint8_t>& s = source[i];
    const std::size_t take =
        std::min(payload_bytes - out.size(), std::min(width, s.size()));
    out.insert(out.end(), s.begin(),
               s.begin() + static_cast<std::ptrdiff_t>(take));
    if (take < width && out.size() < payload_bytes) break;
  }
  if (out.size() != payload_bytes) {
    throw std::invalid_argument(
        "reassemble_stripes: stripes shorter than payload");
  }
  return out;
}

std::vector<std::uint8_t> reassemble_stripes(
    std::span<const std::vector<std::uint8_t>> stripes,
    std::size_t data_stripes, std::size_t payload_bytes, int missing) {
  if (missing < 0) {
    return reassemble_stripes(stripes, data_stripes, payload_bytes,
                              std::span<const std::size_t>{});
  }
  if (static_cast<std::size_t>(missing) >= data_stripes) {
    throw std::invalid_argument(
        "reassemble_stripes: missing index out of range");
  }
  if (stripes.size() < data_stripes + 1) {
    throw std::invalid_argument(
        "reassemble_stripes: parity stripe required to reconstruct");
  }
  const std::size_t gone[1] = {static_cast<std::size_t>(missing)};
  return reassemble_stripes(stripes, data_stripes, payload_bytes,
                            std::span<const std::size_t>(gone));
}

StripedPlanner::StripedPlanner(StripeOptions options,
                               std::shared_ptr<ScheduleCache> cache)
    : options_(options), cache_(std::move(cache)) {}

std::size_t StripedPlanner::effective_parity(hcube::Dim dim) const {
  if (dim < 2) return 0;
  std::size_t k = options_.parity_stripes;
  if (options_.parity && k == 0) k = 1;
  return std::min(k, static_cast<std::size_t>(dim) - 1);
}

bool StripedPlanner::should_verify(hcube::Dim dim) const {
  switch (options_.verify) {
    case StripeOptions::Verify::kOn:
      return true;
    case StripeOptions::Verify::kOff:
      return false;
    case StripeOptions::Verify::kAuto:
      break;
  }
#ifndef NDEBUG
  return true;  // debug builds always pay for the proof
#else
  return dim < 10;  // O(n * 2^n) — off on the large-cube hot path
#endif
}

std::shared_ptr<const core::MulticastSchedule> StripedPlanner::serve_tree(
    const core::MulticastRequest& request, hcube::Dim tree) const {
  if (cache_ == nullptr) {
    return finalized(core::build_ist_tree(request.topo, tree, request.source,
                                          request.destinations));
  }
  // The serving pipeline's two-level scheme, one instance per tree: the
  // relative IST tree caches under the canonical relative chain (built
  // once per chain shape, shared by every source), and each materialized
  // translation under its absolute identity (epoch-immune pure copy).
  StripedTls& tls = striped_tls();
  const core::NodeId mask = request.source;
  core::canonical_key_into(request.topo, request.source, request.destinations,
                           ist_algo_id(tree), /*absolute=*/mask != 0,
                           cache_->config().hash_seed, tls.key);
  if (mask != 0) {
    if (auto hit = cache_->get(tls.key)) return hit;
    core::rekey(tls.key, /*absolute=*/false, 0);
  }
  auto rel = cache_->get(tls.key);
  if (rel == nullptr) {
    core::relative_chain_from_key(request.topo, tls.key, tls.chain);
    auto built = finalized(core::build_ist_tree0(
        request.topo, tree,
        std::span<const core::NodeId>(tls.chain.data() + 1,
                                      tls.chain.size() - 1)));
    cache_->put(tls.key, built);
    rel = std::move(built);
  }
  if (mask == 0) return rel;
  auto out = std::make_shared<core::MulticastSchedule>(request.topo,
                                                       request.source);
  out->assign_translated(*rel, mask);
  out->finalize();
  core::rekey(tls.key, /*absolute=*/true, mask);
  cache_->put(tls.key, out, ScheduleCache::kEpochImmune);
  return out;
}

std::shared_ptr<const core::MulticastSchedule> StripedPlanner::cached_repair(
    const core::MulticastRequest& request, hcube::Dim tree,
    std::uint64_t salt) const {
  if (cache_ == nullptr) return nullptr;
  StripedTls& tls = striped_tls();
  core::canonical_key_into(request.topo, request.source, request.destinations,
                           ist_repair_algo_id(tree), /*absolute=*/true,
                           cache_->config().hash_seed, tls.key);
  core::set_salt(tls.key, salt);
  return cache_->get(tls.key);
}

void StripedPlanner::cache_repair(
    const core::MulticastRequest& request, hcube::Dim tree,
    std::uint64_t salt,
    const std::shared_ptr<const core::MulticastSchedule>& schedule) const {
  if (cache_ == nullptr) return;
  StripedTls& tls = striped_tls();
  core::canonical_key_into(request.topo, request.source, request.destinations,
                           ist_repair_algo_id(tree), /*absolute=*/true,
                           cache_->config().hash_seed, tls.key);
  core::set_salt(tls.key, salt);
  // Stamped with the live fault epoch, NOT kEpochImmune: a repaired
  // tree is a function of the absolute fault set, so bump_fault_epoch()
  // must invalidate it like every fault-dependent entry.
  cache_->put(tls.key, schedule, fault::fault_epoch());
}

StripedPlan StripedPlanner::plan(const core::MulticastRequest& request,
                                 std::size_t payload_bytes) const {
  HYPERCAST_OBS_SPAN("striped.plan");
  request.validate();
  const hcube::Dim n = core::ist_tree_count(request.topo);
  const std::size_t k = effective_parity(n);
  StripedPlan plan;
  plan.striped = true;
  plan.payload_bytes = payload_bytes;
  plan.parity_stripes = k;
  plan.data_stripes = static_cast<std::size_t>(n) - k;
  plan.stripe_bytes = std::max<std::size_t>(
      1, (payload_bytes + plan.data_stripes - 1) / plan.data_stripes);
  plan.parity_tree = k > 0 ? static_cast<int>(n - k) : -1;
  plan.trees.reserve(n);
  for (hcube::Dim t = 0; t < n; ++t) {
    plan.trees.push_back(serve_tree(request, t));
  }
  bump("striped.plans");
  return plan;
}

StripedPlan StripedPlanner::plan(const core::MulticastRequest& request,
                                 std::size_t payload_bytes,
                                 const fault::FaultSet& faults) const {
  StripedPlan out = plan(request, payload_bytes);
  const std::size_t n = out.trees.size();
  // Which trees does the fault set actually touch? Every tree arc is a
  // single hop, so blocked_unicasts counts exactly the tree edges that
  // land on a failed resource. A single link fault has two directed
  // arcs and can therefore hit two different trees.
  std::vector<std::size_t> blocked(n, 0);
  std::vector<char> root_blocked(n, 0);
  std::vector<int> damaged;
  for (std::size_t t = 0; t < n; ++t) {
    blocked[t] = fault::blocked_unicasts(*out.trees[t], faults);
    if (blocked[t] == 0) continue;
    damaged.push_back(static_cast<int>(t));
    for (const core::Send& s : out.trees[t]->sends_from(request.source)) {
      if (faults.path_blocked(request.source, s.to)) root_blocked[t] = 1;
    }
  }
  if (damaged.empty()) return out;  // fault-free replay: nothing to do
  bump("striped.fault_plans");

  // Tier 1 — drop up to k damaged trees outright (their stripes are
  // RS-reconstructed at the receivers). Root-blocked trees first: an
  // IST root has exactly one child, so on a spanning request nothing
  // has delivered anywhere when a repair would run, and without freed
  // arcs such a tree has no repair of any kind. Then most-blocked
  // first — the trees whose detours would cost the most.
  std::vector<int> order = damaged;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (root_blocked[a] != root_blocked[b]) {
      return root_blocked[a] > root_blocked[b];
    }
    return blocked[a] > blocked[b];
  });
  for (const int t : order) {
    if (out.dropped_trees.size() >= out.parity_stripes) break;
    out.dropped_trees.push_back(t);
  }
  std::sort(out.dropped_trees.begin(), out.dropped_trees.end());
  out.dropped_tree = out.dropped_trees.empty() ? -1 : out.dropped_trees.front();
  bump("striped.dropped_trees", out.dropped_trees.size());
  bump("striped.repair_rs", out.dropped_trees.size());

  std::vector<int> to_repair;
  for (const int t : damaged) {
    if (!out.dropped(t)) to_repair.push_back(t);
  }
  if (!to_repair.empty()) {
    // Salt for the degraded-entry cache keys: the repaired tree is a
    // function of the fault set, the parity config and the drop
    // decisions, all of which are deterministic given the request — so
    // fold them all in and let the fault epoch handle invalidation.
    std::uint64_t drop_mask = 0;
    for (const int d : out.dropped_trees) drop_mask |= std::uint64_t{1} << d;
    std::uint64_t salt =
        faults.fingerprint(cache_ ? cache_->config().hash_seed : 0);
    salt ^= ((std::uint64_t{out.parity_stripes} << 32) | drop_mask) *
            0x9e3779b97f4a7c15ull;

    // Tier 2 — certified disjoint repair: every surviving untouched
    // tree claims its footprint, and each damaged tree is patched
    // through the remaining free arcs (paths::repair_disjoint), so the
    // repaired family stays pairwise arc-disjoint by construction.
    core::ArcOwnerTable owners(request.topo);
    for (std::size_t t = 0; t < n; ++t) {
      if (!out.dropped(t) && blocked[t] == 0) {
        owners.claim_schedule(*out.trees[t], static_cast<int>(t));
      }
    }
    for (const int t : to_repair) {
      if (auto hit =
              cached_repair(request, static_cast<hcube::Dim>(t), salt)) {
        // Only certified disjoint repairs are ever cached, so a hit
        // re-claims its footprint and keeps the certificate.
        out.trees[static_cast<std::size_t>(t)] = hit;
        owners.claim_schedule(*hit, t);
        ++out.repaired_disjoint;
        bump("striped.repair_cached");
        continue;
      }
      std::optional<paths::DisjointRepairResult> res = paths::repair_disjoint(
          *out.trees[static_cast<std::size_t>(t)], request.destinations,
          faults, owners, t);
      if (res) {
        auto fixed = finalized(std::move(res->schedule));
        out.trees[static_cast<std::size_t>(t)] = fixed;
        ++out.repaired_disjoint;
        bump("striped.repair_disjoint");
        cache_repair(request, static_cast<hcube::Dim>(t), salt, fixed);
        continue;
      }
      // Tier 3 — greedy detours: delivery at the price of
      // arc-disjointness. The result still claims what it can so later
      // repairs in this plan avoid its arcs where possible. Throws
      // UnrepairableFault when even greedy routing cannot deliver
      // (e.g. a root-blocked tree with no drop budget and no freed
      // arcs).
      fault::FaultAwareResult greedy = fault::repair_schedule(
          *out.trees[static_cast<std::size_t>(t)], request.destinations,
          faults);
      auto fixed = finalized(std::move(greedy.schedule));
      out.trees[static_cast<std::size_t>(t)] = fixed;
      owners.claim_schedule(*fixed, t);
      ++out.repaired_greedy;
      out.certified_disjoint = false;
      bump("striped.repair_greedy");
    }
  }
  out.repaired_trees = out.repaired_disjoint + out.repaired_greedy;
  bump("striped.repaired_trees", out.repaired_trees);

  // Gated verification (StripeOptions::verify): re-prove the active
  // family's pairwise arc-disjointness with the owner table — the same
  // check tests/test_ist.cpp runs on the pristine trees, now applied to
  // the surgery's output. A certified plan failing it is a logic error,
  // not a degraded mode.
  if (should_verify(request.topo.dim())) {
    std::vector<const core::MulticastSchedule*> active;
    active.reserve(out.active_trees());
    for (std::size_t t = 0; t < n; ++t) {
      if (!out.dropped(t)) active.push_back(out.trees[t].get());
    }
    const core::IstDisjointReport report = core::verify_arc_disjoint(
        request.topo,
        std::span<const core::MulticastSchedule* const>(active));
    out.verified = true;
    if (out.certified_disjoint && !report.disjoint) {
      throw std::logic_error("striped degraded plan failed verification: " +
                             report.summary(request.topo));
    }
  }
  return out;
}

}  // namespace hypercast::coll
