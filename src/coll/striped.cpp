#include "coll/striped.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/fault_aware.hpp"
#include "obs/registry.hpp"

namespace hypercast::coll {

namespace {

/// Per-tree cache algorithm ids. The serving pipeline hands ids 0..3 to
/// the paper algorithms and grows registry-entry ids upward from 4; the
/// IST trees claim a block at the top of the 8-bit space instead
/// (kIstAlgoBase + tree, tree < dim <= hcube::kMaxDim = 20), so the two
/// assignment schemes cannot collide until ~220 distinct registered
/// names exist — far beyond anything the registry holds.
constexpr std::uint8_t kIstAlgoBase = 224;

std::uint8_t ist_algo_id(hcube::Dim tree) {
  return static_cast<std::uint8_t>(kIstAlgoBase + tree);
}

/// Per-thread scratch mirroring the serving pipeline's: one canonical
/// key and one chain-reconstruction buffer recycled across plans.
struct StripedTls {
  core::CacheKey key;
  std::vector<core::NodeId> chain;
};

StripedTls& striped_tls() {
  thread_local StripedTls tls;
  return tls;
}

std::shared_ptr<core::MulticastSchedule> finalized(
    core::MulticastSchedule&& schedule) {
  auto out = std::make_shared<core::MulticastSchedule>(std::move(schedule));
  out->finalize();
  return out;
}

void bump(const char* name, std::uint64_t by = 1) {
  if (by != 0 && obs::stats_enabled()) {
    obs::default_registry().counter(name).add(by);
  }
}

}  // namespace

std::vector<sim::CollectiveJob> StripedPlan::jobs(sim::SimTime start) const {
  std::vector<sim::CollectiveJob> out;
  out.reserve(active_trees());
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (static_cast<int>(t) == dropped_tree) continue;
    out.push_back(sim::CollectiveJob{trees[t].get(), start, stripe_bytes});
  }
  return out;
}

core::ArcFootprint StripedPlan::union_footprint() const {
  std::vector<core::ArcFootprint> parts;
  parts.reserve(active_trees());
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (static_cast<int>(t) == dropped_tree) continue;
    parts.push_back(core::arc_footprint(trees[t]->topo(), *trees[t]));
  }
  return core::merge_footprints(parts);
}

std::vector<std::vector<std::uint8_t>> split_stripes(
    std::span<const std::uint8_t> payload, std::size_t data_stripes,
    bool parity) {
  if (data_stripes == 0) {
    throw std::invalid_argument("split_stripes: zero data stripes");
  }
  const std::size_t width =
      (payload.size() + data_stripes - 1) / data_stripes;
  std::vector<std::vector<std::uint8_t>> stripes;
  stripes.reserve(data_stripes + (parity ? 1 : 0));
  for (std::size_t i = 0; i < data_stripes; ++i) {
    const std::size_t begin = std::min(payload.size(), i * width);
    const std::size_t end = std::min(payload.size(), begin + width);
    stripes.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                         payload.begin() + static_cast<std::ptrdiff_t>(end));
  }
  if (parity) {
    // XOR over the data stripes, each notionally zero-padded to `width`
    // (short tail bytes contribute nothing, so padding is implicit).
    std::vector<std::uint8_t> p(width, 0);
    for (const std::vector<std::uint8_t>& s : stripes) {
      for (std::size_t b = 0; b < s.size(); ++b) p[b] ^= s[b];
    }
    stripes.push_back(std::move(p));
  }
  return stripes;
}

std::vector<std::uint8_t> reassemble_stripes(
    std::span<const std::vector<std::uint8_t>> stripes,
    std::size_t data_stripes, std::size_t payload_bytes, int missing) {
  if (data_stripes == 0 || stripes.size() < data_stripes) {
    throw std::invalid_argument("reassemble_stripes: too few stripes");
  }
  const std::size_t width =
      (payload_bytes + data_stripes - 1) / data_stripes;
  std::vector<std::uint8_t> recovered;
  if (missing >= 0) {
    if (static_cast<std::size_t>(missing) >= data_stripes) {
      throw std::invalid_argument(
          "reassemble_stripes: missing index out of range");
    }
    if (stripes.size() < data_stripes + 1) {
      throw std::invalid_argument(
          "reassemble_stripes: parity stripe required to reconstruct");
    }
    recovered.assign(width, 0);
    for (std::size_t i = 0; i <= data_stripes; ++i) {
      if (static_cast<int>(i) == missing) continue;
      const std::vector<std::uint8_t>& s = stripes[i];
      for (std::size_t b = 0; b < s.size(); ++b) recovered[b] ^= s[b];
    }
  }
  std::vector<std::uint8_t> out;
  out.reserve(payload_bytes);
  for (std::size_t i = 0; i < data_stripes && out.size() < payload_bytes;
       ++i) {
    const std::vector<std::uint8_t>& s =
        static_cast<int>(i) == missing ? recovered : stripes[i];
    const std::size_t take =
        std::min(payload_bytes - out.size(),
                 static_cast<int>(i) == missing ? width : s.size());
    out.insert(out.end(), s.begin(),
               s.begin() + static_cast<std::ptrdiff_t>(take));
  }
  if (out.size() != payload_bytes) {
    throw std::invalid_argument(
        "reassemble_stripes: stripes shorter than payload");
  }
  return out;
}

StripedPlanner::StripedPlanner(StripeOptions options,
                               std::shared_ptr<ScheduleCache> cache)
    : options_(options), cache_(std::move(cache)) {}

std::shared_ptr<const core::MulticastSchedule> StripedPlanner::serve_tree(
    const core::MulticastRequest& request, hcube::Dim tree) const {
  if (cache_ == nullptr) {
    return finalized(core::build_ist_tree(request.topo, tree, request.source,
                                          request.destinations));
  }
  // The serving pipeline's two-level scheme, one instance per tree: the
  // relative IST tree caches under the canonical relative chain (built
  // once per chain shape, shared by every source), and each materialized
  // translation under its absolute identity (epoch-immune pure copy).
  StripedTls& tls = striped_tls();
  const core::NodeId mask = request.source;
  core::canonical_key_into(request.topo, request.source, request.destinations,
                           ist_algo_id(tree), /*absolute=*/mask != 0,
                           cache_->config().hash_seed, tls.key);
  if (mask != 0) {
    if (auto hit = cache_->get(tls.key)) return hit;
    core::rekey(tls.key, /*absolute=*/false, 0);
  }
  auto rel = cache_->get(tls.key);
  if (rel == nullptr) {
    core::relative_chain_from_key(request.topo, tls.key, tls.chain);
    auto built = finalized(core::build_ist_tree0(
        request.topo, tree,
        std::span<const core::NodeId>(tls.chain.data() + 1,
                                      tls.chain.size() - 1)));
    cache_->put(tls.key, built);
    rel = std::move(built);
  }
  if (mask == 0) return rel;
  auto out = std::make_shared<core::MulticastSchedule>(request.topo,
                                                       request.source);
  out->assign_translated(*rel, mask);
  out->finalize();
  core::rekey(tls.key, /*absolute=*/true, mask);
  cache_->put(tls.key, out, ScheduleCache::kEpochImmune);
  return out;
}

StripedPlan StripedPlanner::plan(const core::MulticastRequest& request,
                                 std::size_t payload_bytes) const {
  HYPERCAST_OBS_SPAN("striped.plan");
  request.validate();
  const hcube::Dim n = core::ist_tree_count(request.topo);
  const bool parity = options_.parity && n >= 2;
  StripedPlan plan;
  plan.striped = true;
  plan.payload_bytes = payload_bytes;
  plan.data_stripes = parity ? static_cast<std::size_t>(n) - 1
                             : static_cast<std::size_t>(n);
  plan.stripe_bytes = std::max<std::size_t>(
      1, (payload_bytes + plan.data_stripes - 1) / plan.data_stripes);
  plan.parity_tree = parity ? static_cast<int>(n) - 1 : -1;
  plan.trees.reserve(n);
  for (hcube::Dim t = 0; t < n; ++t) {
    plan.trees.push_back(serve_tree(request, t));
  }
  bump("striped.plans");
  return plan;
}

StripedPlan StripedPlanner::plan(const core::MulticastRequest& request,
                                 std::size_t payload_bytes,
                                 const fault::FaultSet& faults) const {
  StripedPlan out = plan(request, payload_bytes);
  // Which trees does the fault set actually touch? Every tree arc is a
  // single hop, so blocked_unicasts counts exactly the tree edges that
  // land on a failed resource. A single link fault has two directed
  // arcs and can therefore hit two different trees.
  //
  // A tree whose *root* arc is blocked gets priority for the parity
  // drop: an IST root has exactly one child, so on a spanning request
  // nothing below it has delivered when the repair runs and no detour
  // relay is usable — repair_schedule cannot fix it (it throws).
  // Dropping it onto the parity stripe is the only degraded-mode
  // delivery for that stripe.
  std::vector<std::size_t> blocked(out.trees.size(), 0);
  std::vector<char> root_blocked(out.trees.size(), 0);
  int worst = -1;
  for (std::size_t t = 0; t < out.trees.size(); ++t) {
    blocked[t] = fault::blocked_unicasts(*out.trees[t], faults);
    if (blocked[t] == 0) continue;
    for (const core::Send& s : out.trees[t]->sends_from(request.source)) {
      if (faults.path_blocked(request.source, s.to)) root_blocked[t] = 1;
    }
    const bool wins =
        worst < 0 || (root_blocked[t] && !root_blocked[worst]) ||
        (root_blocked[t] == root_blocked[worst] && blocked[t] > blocked[worst]);
    if (wins) worst = static_cast<int>(t);
  }
  if (worst < 0) return out;  // fault-free replay: nothing to do
  bump("striped.fault_plans");
  if (out.parity_tree >= 0) {
    // Parity buys exactly one tree's worth of loss: drop the
    // most-affected tree outright (receivers reconstruct its stripe by
    // XOR — dropping the parity tree itself is the degenerate case
    // where nothing needs reconstructing) and spare it the detour
    // repairs below.
    out.dropped_tree = worst;
    bump("striped.dropped_trees");
  }
  for (std::size_t t = 0; t < out.trees.size(); ++t) {
    if (blocked[t] == 0 || static_cast<int>(t) == out.dropped_tree) continue;
    fault::FaultAwareResult repaired = fault::repair_schedule(
        *out.trees[t], request.destinations, faults);
    out.trees[t] = finalized(std::move(repaired.schedule));
    ++out.repaired_trees;
  }
  bump("striped.repaired_trees", out.repaired_trees);
  return out;
}

}  // namespace hypercast::coll
