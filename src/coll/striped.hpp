#ifndef HYPERCAST_COLL_STRIPED_HPP
#define HYPERCAST_COLL_STRIPED_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/schedule_cache.hpp"
#include "core/channel_load.hpp"
#include "core/ist.hpp"
#include "fault/fault_set.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::coll {

/// Striped collectives: split a large payload into n stripes and send
/// them down the n arc-disjoint spanning trees of core/ist.hpp as
/// simultaneous all-port jobs. A single tree caps effective broadcast
/// bandwidth at one tree's arc capacity; the n trees share no directed
/// channel, so for payloads well above n flits the striped launch
/// approaches n times the single-tree figure (docs/STRIPING.md has the
/// model and ablation_striping the DES measurements).
///
/// Fault tolerance: with k >= 1 parity stripes the payload splits into
/// n - k data stripes plus k GF(256) Reed-Solomon parity stripes
/// (code/rs.hpp; k == 1 is the classic XOR stripe), so receivers
/// survive ANY k lost stripes. When a fault epoch lands the planner
/// walks a repair-tier ladder per damaged tree (docs/STRIPING.md §3):
///   1. drop — up to k damaged trees (root-blocked ones first) are
///      dropped outright and their stripes RS-reconstructed;
///   2. disjoint repair — remaining damage is patched by
///      paths::repair_disjoint, provably arc-disjoint from every other
///      surviving tree (certified: the striped launch keeps its
///      contention-freedom);
///   3. greedy detours — fault::repair_schedule as the last resort,
///      delivering at the price of arc-disjointness
///      (certified_disjoint drops to false).
struct StripeOptions {
  /// Exhaustive owner-table verification of degraded plans
  /// (core::verify_arc_disjoint): kAuto runs it for small cubes
  /// (dim < 10) and in debug builds, kOn always, kOff never — the
  /// check is O(n * 2^n) and the hot plan path must not pay it on
  /// large cubes.
  enum class Verify { kAuto, kOn, kOff };

  /// Payloads below this stay on the latency-optimal single-tree path
  /// (ServePipeline::serve_striped): an n-way split of a small message
  /// pays n send startups to save almost no streaming time —
  /// ablation_striping locates the crossover.
  std::size_t threshold_bytes = 64 * 1024;
  /// Legacy switch: reserve one XOR parity tree (equivalent to
  /// parity_stripes = 1). Needs dim >= 2; ignored below that.
  bool parity = false;
  /// Reserve k parity trees (Reed-Solomon; k-fault-tolerant delivery).
  /// The effective k is max(parity ? 1 : 0, parity_stripes), clamped
  /// to dim - 1 so at least one data stripe remains.
  std::size_t parity_stripes = 0;
  Verify verify = Verify::kAuto;
};

/// A planned (possibly degraded) striped collective.
struct StripedPlan {
  bool striped = false;          ///< false: single-tree fallback
  std::size_t payload_bytes = 0;
  std::size_t stripe_bytes = 0;  ///< per-tree message size (ceil split)
  std::size_t data_stripes = 1;  ///< stripes carrying payload bytes
  std::size_t parity_stripes = 0;  ///< k: trees carrying RS parity
  int parity_tree = -1;          ///< first parity tree (dim - k), -1 if none
  int dropped_tree = -1;         ///< first dropped tree (legacy accessor)
  std::vector<int> dropped_trees;  ///< all fault-dropped trees: their
                                   ///< stripes are RS-reconstructed at
                                   ///< the receivers
  std::size_t repaired_trees = 0;    ///< total patched trees
  std::size_t repaired_disjoint = 0; ///< via paths::repair_disjoint
  std::size_t repaired_greedy = 0;   ///< via fault::repair_schedule
  bool certified_disjoint = true;  ///< active trees pairwise arc-disjoint
                                   ///< by construction (no greedy tier)
  bool verified = false;  ///< owner-table verification ran on this plan

  /// One finalized schedule per tree (tree index = stripe index; a
  /// non-striped plan holds exactly one). Dropped trees' slots stay
  /// populated (callers may inspect them) but jobs() skips them.
  std::vector<std::shared_ptr<const core::MulticastSchedule>> trees;

  bool dropped(std::size_t tree) const {
    for (const int d : dropped_trees) {
      if (d == static_cast<int>(tree)) return true;
    }
    return false;
  }

  std::size_t active_trees() const {
    return trees.size() - dropped_trees.size();
  }

  /// Expand into simultaneous DES jobs launching at `start`, each
  /// carrying stripe_bytes (the per-job override in sim::CollectiveJob).
  std::vector<sim::CollectiveJob> jobs(sim::SimTime start = 0) const;

  /// The union arc footprint of the active trees — how a striped launch
  /// presents itself to CoScheduler::plan_footprints (one candidate
  /// whose footprint sums its trees'; for fault-free IST trees the arcs
  /// are disjoint, so self_max stays at the per-tree value).
  core::ArcFootprint union_footprint() const;
};

/// Byte-level stripe split: `data_stripes` slices of ceil(size /
/// data_stripes) bytes (the last one short), plus `parity_stripes`
/// Reed-Solomon stripes over the zero-padded data (code::RsCode; one
/// parity stripe is the classic XOR). This is the data-plane contract
/// the schedules' address fields describe; the DES models the transfer,
/// these helpers are what an implementation (and the tests) round-trip.
std::vector<std::vector<std::uint8_t>> split_stripes(
    std::span<const std::uint8_t> payload, std::size_t data_stripes,
    std::size_t parity_stripes);

/// Legacy single-XOR-parity split (parity_stripes = parity ? 1 : 0).
std::vector<std::vector<std::uint8_t>> split_stripes(
    std::span<const std::uint8_t> payload, std::size_t data_stripes,
    bool parity);

/// Reassemble the original payload from the stripe array (data stripes
/// first, then any parity stripes). `missing` lists unavailable stripe
/// indices; missing data stripes are Reed-Solomon-reconstructed from
/// the surviving ones (requires #missing-data <= #surviving-parity).
std::vector<std::uint8_t> reassemble_stripes(
    std::span<const std::vector<std::uint8_t>> stripes,
    std::size_t data_stripes, std::size_t payload_bytes,
    std::span<const std::size_t> missing);

/// Legacy overload: with `missing` >= 0, that data stripe is
/// reconstructed from the single parity stripe at index data_stripes.
std::vector<std::uint8_t> reassemble_stripes(
    std::span<const std::vector<std::uint8_t>> stripes,
    std::size_t data_stripes, std::size_t payload_bytes, int missing = -1);

/// Plans striped collectives, consulting a ScheduleCache when attached:
/// each tree caches as a *relative* schedule under its own per-tree
/// algorithm id (IST construction is translation-invariant, so one
/// cached tree serves every source via XOR materialization, exactly
/// like the serving pipeline's chain algorithms). Degraded-mode
/// repaired trees cache under *absolute* keys salted with the fault
/// fingerprint + parity config and stamped with the fault epoch, so
/// bump_fault_epoch() invalidates them like every fault-dependent
/// entry.
class StripedPlanner {
 public:
  explicit StripedPlanner(StripeOptions options = {},
                          std::shared_ptr<ScheduleCache> cache = nullptr);

  const StripeOptions& options() const { return options_; }

  /// The effective parity stripe count for an n-cube request.
  std::size_t effective_parity(hcube::Dim dim) const;

  /// Plan `payload_bytes` across the dim trees (the threshold is the
  /// pipeline's concern, not the planner's). Requires dim >= 2 with
  /// parity, dim >= 1 without. Validates the request.
  StripedPlan plan(const core::MulticastRequest& request,
                   std::size_t payload_bytes) const;

  /// Degraded-mode plan: the repair-tier ladder described above (drop
  /// onto parity -> certified disjoint repair -> greedy detours), with
  /// per-tier striped.repair_* counters. Root-blocked trees take drop
  /// priority (an IST root has a single child; with no freed arcs such
  /// a tree cannot be repaired at all), but when the drop budget is
  /// exhausted the disjoint repairer may still save one by chain-feeding
  /// through arcs a dropped tree freed. Throws fault::UnrepairableFault
  /// when a stripe can neither be dropped nor repaired, or a
  /// destination is dead.
  StripedPlan plan(const core::MulticastRequest& request,
                   std::size_t payload_bytes,
                   const fault::FaultSet& faults) const;

 private:
  std::shared_ptr<const core::MulticastSchedule> serve_tree(
      const core::MulticastRequest& request, hcube::Dim tree) const;

  std::shared_ptr<const core::MulticastSchedule> cached_repair(
      const core::MulticastRequest& request, hcube::Dim tree,
      std::uint64_t salt) const;
  void cache_repair(
      const core::MulticastRequest& request, hcube::Dim tree,
      std::uint64_t salt,
      const std::shared_ptr<const core::MulticastSchedule>& schedule) const;

  bool should_verify(hcube::Dim dim) const;

  StripeOptions options_;
  std::shared_ptr<ScheduleCache> cache_;
};

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_STRIPED_HPP
