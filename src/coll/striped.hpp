#ifndef HYPERCAST_COLL_STRIPED_HPP
#define HYPERCAST_COLL_STRIPED_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/schedule_cache.hpp"
#include "core/channel_load.hpp"
#include "core/ist.hpp"
#include "fault/fault_set.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::coll {

/// Striped collectives: split a large payload into n stripes and send
/// them down the n arc-disjoint spanning trees of core/ist.hpp as
/// simultaneous all-port jobs. A single tree caps effective broadcast
/// bandwidth at one tree's arc capacity; the n trees share no directed
/// channel, so for payloads well above n flits the striped launch
/// approaches n times the single-tree figure (docs/STRIPING.md has the
/// model and ablation_striping the DES measurements).
///
/// Fault tolerance rides along nearly for free: with `parity` set, the
/// payload splits into n-1 data stripes and tree n-1 carries their XOR.
/// Any single lost stripe is reconstructible, so when a fault epoch
/// lands, the planner *drops* the most-affected tree outright (its
/// stripe is recovered from parity at the receivers) and only trees
/// beyond that one pay for detour repairs.
struct StripeOptions {
  /// Payloads below this stay on the latency-optimal single-tree path
  /// (ServePipeline::serve_striped): an n-way split of a small message
  /// pays n send startups to save almost no streaming time —
  /// ablation_striping locates the crossover.
  std::size_t threshold_bytes = 64 * 1024;
  /// Reserve one tree for the XOR parity stripe (1-fault-tolerant
  /// delivery). Needs dim >= 2; ignored below that.
  bool parity = false;
};

/// A planned (possibly degraded) striped collective.
struct StripedPlan {
  bool striped = false;          ///< false: single-tree fallback
  std::size_t payload_bytes = 0;
  std::size_t stripe_bytes = 0;  ///< per-tree message size (ceil split)
  std::size_t data_stripes = 1;  ///< stripes carrying payload bytes
  int parity_tree = -1;          ///< tree index carrying the XOR stripe
  int dropped_tree = -1;         ///< fault-swapped-out tree (stripe
                                 ///< reconstructed from parity)
  std::size_t repaired_trees = 0;  ///< trees patched by detour repair

  /// One finalized schedule per tree (tree index = stripe index; a
  /// non-striped plan holds exactly one). The dropped tree's slot stays
  /// populated (callers may inspect it) but jobs() skips it.
  std::vector<std::shared_ptr<const core::MulticastSchedule>> trees;

  std::size_t active_trees() const {
    return trees.size() - (dropped_tree >= 0 ? 1 : 0);
  }

  /// Expand into simultaneous DES jobs launching at `start`, each
  /// carrying stripe_bytes (the per-job override in sim::CollectiveJob).
  std::vector<sim::CollectiveJob> jobs(sim::SimTime start = 0) const;

  /// The union arc footprint of the active trees — how a striped launch
  /// presents itself to CoScheduler::plan_footprints (one candidate
  /// whose footprint sums its trees'; for fault-free IST trees the arcs
  /// are disjoint, so self_max stays at the per-tree value).
  core::ArcFootprint union_footprint() const;
};

/// Byte-level stripe split: `data_stripes` slices of ceil(size /
/// data_stripes) bytes (the last one short), plus — with `parity` — one
/// XOR stripe over the zero-padded data stripes. This is the data-plane
/// contract the schedules' address fields describe; the DES models the
/// transfer, these helpers are what an implementation (and the tests)
/// round-trip.
std::vector<std::vector<std::uint8_t>> split_stripes(
    std::span<const std::uint8_t> payload, std::size_t data_stripes,
    bool parity);

/// Reassemble the original payload. With `missing` >= 0, that data
/// stripe's bytes are reconstructed by XORing the parity stripe (which
/// must be present at index data_stripes) with the surviving stripes.
std::vector<std::uint8_t> reassemble_stripes(
    std::span<const std::vector<std::uint8_t>> stripes,
    std::size_t data_stripes, std::size_t payload_bytes, int missing = -1);

/// Plans striped collectives, consulting a ScheduleCache when attached:
/// each tree caches as a *relative* schedule under its own per-tree
/// algorithm id (IST construction is translation-invariant, so one
/// cached tree serves every source via XOR materialization, exactly
/// like the serving pipeline's chain algorithms).
class StripedPlanner {
 public:
  explicit StripedPlanner(StripeOptions options = {},
                          std::shared_ptr<ScheduleCache> cache = nullptr);

  const StripeOptions& options() const { return options_; }

  /// Plan `payload_bytes` across the dim trees (the threshold is the
  /// pipeline's concern, not the planner's). Requires dim >= 2 with
  /// parity, dim >= 1 without. Validates the request.
  StripedPlan plan(const core::MulticastRequest& request,
                   std::size_t payload_bytes) const;

  /// Degraded-mode plan: trees whose sends a fault blocks are swapped
  /// onto the parity stripe or patched by fault::repair_schedule
  /// detours. The drop goes to a tree whose root arc is blocked when
  /// one exists (an IST root has a single child, so on a spanning
  /// request such a tree has no usable detour relay and cannot be
  /// repaired), otherwise to the most-blocked tree. Repaired trees lose
  /// arc-disjointness from the others — the price of delivery, counted
  /// in repaired_trees. Throws fault::UnrepairableFault when a stripe
  /// can neither be repaired nor dropped (e.g. two root-blocked trees
  /// and one parity stripe) or a destination is dead.
  StripedPlan plan(const core::MulticastRequest& request,
                   std::size_t payload_bytes,
                   const fault::FaultSet& faults) const;

 private:
  std::shared_ptr<const core::MulticastSchedule> serve_tree(
      const core::MulticastRequest& request, hcube::Dim tree) const;

  StripeOptions options_;
  std::shared_ptr<ScheduleCache> cache_;
};

}  // namespace hypercast::coll

#endif  // HYPERCAST_COLL_STRIPED_HPP
