#include "core/bounds.hpp"

#include <cassert>

namespace hypercast::core {

int one_port_step_lower_bound(std::size_t m) {
  int steps = 0;
  std::size_t informed = 1;  // the source
  while (informed < m + 1) {
    informed *= 2;
    ++steps;
  }
  return steps;
}

int all_port_step_lower_bound(std::size_t m, int n) {
  assert(n >= 1);
  int steps = 0;
  std::size_t informed = 1;
  while (informed < m + 1) {
    informed *= static_cast<std::size_t>(n) + 1;
    ++steps;
  }
  return steps;
}

}  // namespace hypercast::core
