#ifndef HYPERCAST_CORE_BOUNDS_HPP
#define HYPERCAST_CORE_BOUNDS_HPP

#include <cstddef>

namespace hypercast::core {

/// ceil(log2(m + 1)): the tight lower bound on steps for reaching m
/// destinations on a one-port architecture (Section 2), met exactly by
/// U-cube.
int one_port_step_lower_bound(std::size_t m);

/// ceil(log_{n+1}(m + 1)): with n ports the number of informed nodes can
/// at most (n+1)-tuple per step, giving the all-port lower bound.
int all_port_step_lower_bound(std::size_t m, int n);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_BOUNDS_HPP
