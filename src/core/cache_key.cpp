#include "core/cache_key.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace hypercast::core {

namespace {

/// Scratch bitmap for the counting sort below; reused across calls so a
/// serving thread allocates once per cube size.
std::vector<std::uint64_t>& sort_bitmap() {
  thread_local std::vector<std::uint64_t> bitmap;
  return bitmap;
}

[[noreturn]] void throw_source_in_dests() {
  throw std::invalid_argument("source listed as a destination");
}

[[noreturn]] void throw_duplicate() {
  throw std::invalid_argument("duplicate destination");
}

/// Sort the (distinct, non-zero) chain words in place, validating as a
/// side effect. The words are node keys, i.e. values below num_nodes,
/// so for dense chains a bitmap counting sort beats the comparison sort
/// by a wide margin: O(N/64 + m) word operations with no branches per
/// element. Falls back to std::sort for chains sparse enough that
/// clearing the bitmap would dominate.
void sort_and_validate(std::vector<std::uint32_t>& words,
                       std::size_t num_nodes) {
  const std::size_t bitmap_words = (num_nodes + 63) / 64;
  if (bitmap_words > words.size()) {
    std::sort(words.begin(), words.end());
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i] == 0) throw_source_in_dests();
      if (i > 0 && words[i] == words[i - 1]) throw_duplicate();
    }
    return;
  }
  auto& bitmap = sort_bitmap();
  bitmap.assign(bitmap_words, 0);
  for (const std::uint32_t w : words) {
    if (w == 0) throw_source_in_dests();
    std::uint64_t& word = bitmap[w >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (w & 63);
    if (word & bit) throw_duplicate();
    word |= bit;
  }
  std::size_t k = 0;
  for (std::size_t i = 0; i < bitmap_words; ++i) {
    std::uint64_t bits = bitmap[i];
    while (bits != 0) {
      words[k++] = static_cast<std::uint32_t>(
          (i << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

}  // namespace

std::uint64_t hash_words(std::span<const std::uint32_t> words,
                         std::uint64_t seed) {
  // FNV-1a 64, offset basis perturbed by the seed, folding one 32-bit
  // word per round (the chain words are already dense entropy; byte
  // granularity buys nothing here).
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kOffset ^ (seed * 0x9e3779b97f4a7c15ull);
  for (const std::uint32_t w : words) {
    h ^= w;
    h *= kPrime;
  }
  // Final avalanche (splitmix64 tail) so that low-entropy chains still
  // spread across shard indices taken from the high bits.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

void canonical_key_into(const Topology& topo, NodeId source,
                        std::span<const NodeId> destinations,
                        std::uint8_t algo, bool absolute, std::uint64_t seed,
                        CacheKey& out) {
  if (!topo.contains(source)) {
    throw std::invalid_argument("multicast source outside the cube");
  }
  const std::uint32_t source_key = topo.key(source);
  out.algo = algo;
  out.absolute = absolute;
  out.dim = static_cast<std::uint8_t>(topo.dim());
  out.res = static_cast<std::uint8_t>(topo.resolution());
  out.source = absolute ? source : 0;
  out.words.resize(destinations.size());
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    if (!topo.contains(destinations[i])) {
      throw std::invalid_argument("multicast destination outside the cube");
    }
    out.words[i] = topo.key(destinations[i]) ^ source_key;
  }
  sort_and_validate(out.words, topo.num_nodes());

  // The words are hashed once; the scalar identity fields (which rekey()
  // can swap without re-reading the words) are folded on top, so that
  // e.g. the same relative chain under the two resolution orders, or
  // under two algorithms, never collides structurally.
  out.words_hash = hash_words(out.words, seed);
  out.salt = 0;  // `out` is recycled scratch; salting is opt-in afterwards
  rekey(out, absolute, source);
}

void rekey(CacheKey& key, bool absolute, NodeId source) {
  key.absolute = absolute;
  key.source = absolute ? source : 0;
  const std::uint32_t header[5] = {
      (static_cast<std::uint32_t>(key.algo) << 16) |
          (static_cast<std::uint32_t>(key.absolute) << 8) |
          static_cast<std::uint32_t>(key.res),
      static_cast<std::uint32_t>(key.dim),
      static_cast<std::uint32_t>(key.source),
      static_cast<std::uint32_t>(key.salt),
      static_cast<std::uint32_t>(key.salt >> 32),
  };
  key.hash = hash_words(header, key.words_hash);
}

void set_salt(CacheKey& key, std::uint64_t salt) {
  key.salt = salt;
  rekey(key, key.absolute, key.source);
}

void relative_chain_from_key(const Topology& topo, const CacheKey& key,
                             std::vector<NodeId>& chain) {
  chain.resize(key.words.size() + 1);
  chain[0] = 0;  // key(0) == 0 under both resolution orders
  for (std::size_t i = 0; i < key.words.size(); ++i) {
    chain[i + 1] = topo.unkey(key.words[i]);
  }
}

}  // namespace hypercast::core
