#ifndef HYPERCAST_CORE_CACHE_KEY_HPP
#define HYPERCAST_CORE_CACHE_KEY_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/multicast.hpp"

namespace hypercast::core {

/// Canonical, translation-invariant identity of a multicast request.
///
/// Under E-cube routing every chain-based schedule is a pure function of
/// the *relative* address chain: the tree for (u, D) is the node-wise
/// XOR-relabeling by u of the tree for (0, u ^ D) (the property
/// tests/test_translation_invariance.cpp proves for all four paper
/// algorithms). The canonical form of a request is therefore the sorted
/// sequence of relative keys key(d) ^ key(source) — which is exactly the
/// key sequence hcube::make_relative_chain_into sorts by — plus the cube
/// dimension, the resolution order and an opaque algorithm id.
///
/// Requests whose schedules are NOT translation-invariant (fault-aware
/// repairs depend on absolute link positions) set `absolute`: the source
/// is then folded into the identity and the cached schedule is only
/// reusable at mask 0.
struct CacheKey {
  std::uint8_t algo = 0;        ///< opaque algorithm id (cache-owner scoped)
  bool absolute = false;        ///< source folded in; no XOR materialization
  std::uint8_t dim = 0;         ///< cube dimension n
  std::uint8_t res = 0;         ///< hcube::Resolution
  NodeId source = 0;            ///< 0 unless `absolute`
  std::uint64_t salt = 0;       ///< extra identity scope (0 = none): the
                                ///< striping layer keys degraded plans by a
                                ///< fault-set fingerprint + parity config so
                                ///< two fault sets never alias in one epoch
  std::uint64_t hash = 0;       ///< seeded FNV-1a over the fields + words
  std::uint64_t words_hash = 0; ///< hash of the words alone (rekey cache)

  /// The canonical relative chain: strictly increasing relative keys of
  /// the destinations (the source's relative key, 0, is omitted).
  std::vector<std::uint32_t> words;

  /// Full equality (hash is a cached fingerprint, not the identity).
  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.hash == b.hash && a.algo == b.algo && a.absolute == b.absolute &&
           a.dim == b.dim && a.res == b.res && a.source == b.source &&
           a.salt == b.salt && a.words == b.words;
  }

  /// Heap bytes this key pins inside a cache entry.
  std::size_t footprint_bytes() const {
    return sizeof(CacheKey) + words.capacity() * sizeof(std::uint32_t);
  }
};

/// Seeded 64-bit FNV-1a over a word sequence (word-at-a-time; the seed
/// perturbs the offset basis so independent caches decorrelate).
std::uint64_t hash_words(std::span<const std::uint32_t> words,
                         std::uint64_t seed);

/// Build the canonical key of (source, destinations) under `topo` into
/// `out` (its word buffer is recycled across calls). Also validates the
/// request with the same guarantees as MulticastRequest::validate():
/// throws std::invalid_argument on out-of-cube nodes, duplicate
/// destinations, or the source listed as a destination.
///
/// When `absolute` is set the source is kept in the identity (for
/// algorithms whose output is not translation-invariant, and for cached
/// materializations of one specific translation); the words are still
/// source-relative so that e.g. two identical fault-aware requests
/// collide regardless of how the caller ordered the destinations.
void canonical_key_into(const Topology& topo, NodeId source,
                        std::span<const NodeId> destinations,
                        std::uint8_t algo, bool absolute, std::uint64_t seed,
                        CacheKey& out);

/// Switch a key between its absolute and relative identities without
/// re-canonicalizing: the words (and their cached words_hash) are
/// identical for both — only the identity header changes, so this is a
/// three-word hash fold. This is what lets a serving pipeline probe the
/// absolute (materialized-translation) level and fall back to the
/// relative level on one canonicalization pass.
void rekey(CacheKey& key, bool absolute, NodeId source);

/// Set the identity salt and re-fold the header hash (same cost as
/// rekey). canonical_key_into always resets the salt to 0; callers that
/// scope entries (fault fingerprint, parity config) salt afterwards.
void set_salt(CacheKey& key, std::uint64_t salt);

/// Reconstruct the relative build chain a canonical key denotes: node 0
/// (the relative source) followed by unkey(word) for each word, which is
/// precisely the 0-relative dimension-ordered chain of the relative
/// destination set. `chain` is resized to words.size() + 1.
void relative_chain_from_key(const Topology& topo, const CacheKey& key,
                             std::vector<NodeId>& chain);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_CACHE_KEY_HPP
