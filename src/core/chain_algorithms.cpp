#include "core/chain_algorithms.hpp"

#include <cassert>
#include <deque>

#include "hcube/bits.hpp"

namespace hypercast::core {

std::vector<Send> local_sends(const Topology& topo, NodeId local,
                              std::span<const NodeId> field, NextRule rule) {
  std::vector<Send> sends;
  if (field.empty()) return sends;

  // Work on canonical keys: the bit position delta() would return is the
  // highest differing key bit, for either resolution order. XOR
  // translation cancels in every comparison, so no global source is
  // needed — each node runs this on exactly what it received.
  std::vector<std::uint32_t> key(field.size() + 1);
  key[0] = topo.key(local);
  for (std::size_t i = 0; i < field.size(); ++i) {
    key[i + 1] = topo.key(field[i]);
    assert(key[i + 1] != key[0] && "field must not contain the local node");
  }
  const auto chain_at = [&](std::size_t i) {
    return i == 0 ? local : field[i - 1];
  };

  std::size_t left = 0;
  std::size_t right = field.size();
  while (left < right) {
    // Step 1: x = delta(d_left, d_right), the first routing dimension
    // (as a key-space bit) of a message spanning the whole segment.
    const Dim x = hcube::highest_bit(key[left] ^ key[right]);

    // Step 2: d_highdim — the leftmost node whose route from d_left
    // starts on channel x. In a cube-ordered segment the far side of
    // bit x is a contiguous suffix, so this is that suffix's head.
    std::size_t highdim = left + 1;
    const bool left_side = hcube::test_bit(key[left], x);
    while (hcube::test_bit(key[highdim], x) == left_side) ++highdim;
    assert(highdim <= right);

    // Step 3: the binary-halving midpoint.
    const std::size_t center = left + (right - left + 1) / 2;

    // Step 4: the single statement the three algorithms differ in.
    std::size_t next = 0;
    switch (rule) {
      case NextRule::Center:
        next = center;
        break;
      case NextRule::HighDim:
        next = highdim;
        break;
      case NextRule::MaxOfBoth:
        next = std::max(highdim, center);
        break;
    }

    // Steps 5-6: transmit to d_next along with the address field
    // D = {d_next+1, ..., d_right}.
    Send send;
    send.to = chain_at(next);
    send.payload.reserve(right - next);
    for (std::size_t i = next + 1; i <= right; ++i) {
      send.payload.push_back(chain_at(i));
    }
    sends.push_back(std::move(send));

    // Step 7.
    right = next - 1;
  }
  return sends;
}

MulticastSchedule build_chain_schedule(const Topology& topo,
                                       std::span<const NodeId> chain,
                                       NextRule rule) {
  assert(!chain.empty());
  MulticastSchedule schedule(topo, chain[0]);
  if (chain.size() == 1) return schedule;

  // Execute the distributed recursion: deliver each address field and
  // let the recipient compute its own sends.
  struct Delivery {
    NodeId node;
    std::vector<NodeId> field;
  };
  std::deque<Delivery> inbox;
  inbox.push_back(
      Delivery{chain[0], std::vector<NodeId>(chain.begin() + 1, chain.end())});
  while (!inbox.empty()) {
    Delivery d = std::move(inbox.front());
    inbox.pop_front();
    for (Send& send : local_sends(topo, d.node, d.field, rule)) {
      if (!send.payload.empty()) {
        inbox.push_back(Delivery{send.to, send.payload});
      }
      schedule.add_send(d.node, std::move(send));
    }
  }
  return schedule;
}

namespace {

MulticastSchedule run_on_sorted_chain(const MulticastRequest& req,
                                      NextRule rule) {
  req.validate();
  const auto chain =
      hcube::make_relative_chain(req.topo, req.source, req.destinations);
  return build_chain_schedule(req.topo, chain, rule);
}

}  // namespace

MulticastSchedule ucube(const MulticastRequest& req) {
  return run_on_sorted_chain(req, NextRule::Center);
}

MulticastSchedule maxport(const MulticastRequest& req) {
  return run_on_sorted_chain(req, NextRule::HighDim);
}

MulticastSchedule combine(const MulticastRequest& req) {
  return run_on_sorted_chain(req, NextRule::MaxOfBoth);
}

}  // namespace hypercast::core
