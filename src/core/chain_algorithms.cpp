#include "core/chain_algorithms.hpp"

#include <cassert>

#include "core/tree_builder.hpp"
#include "hcube/bits.hpp"

namespace hypercast::core {

std::vector<Send> local_sends(const Topology& topo, NodeId local,
                              std::span<const NodeId> field, NextRule rule) {
  std::vector<Send> sends;
  if (field.empty()) return sends;

  // Work on canonical keys: the bit position delta() would return is the
  // highest differing key bit, for either resolution order. XOR
  // translation cancels in every comparison, so no global source is
  // needed — each node runs this on exactly what it received.
  std::vector<std::uint32_t> key(field.size() + 1);
  key[0] = topo.key(local);
  for (std::size_t i = 0; i < field.size(); ++i) {
    key[i + 1] = topo.key(field[i]);
    assert(key[i + 1] != key[0] && "field must not contain the local node");
  }

  std::size_t left = 0;
  std::size_t right = field.size();
  while (left < right) {
    // Step 1: x = delta(d_left, d_right), the first routing dimension
    // (as a key-space bit) of a message spanning the whole segment.
    const Dim x = hcube::highest_bit(key[left] ^ key[right]);

    // Step 2: d_highdim — the leftmost node whose route from d_left
    // starts on channel x. In a cube-ordered segment the far side of
    // bit x is a contiguous suffix, so this is that suffix's head.
    std::size_t highdim = left + 1;
    const bool left_side = hcube::test_bit(key[left], x);
    while (hcube::test_bit(key[highdim], x) == left_side) ++highdim;
    assert(highdim <= right);

    // Step 3: the binary-halving midpoint.
    const std::size_t center = left + (right - left + 1) / 2;

    // Step 4: the single statement the three algorithms differ in.
    std::size_t next = 0;
    switch (rule) {
      case NextRule::Center:
        next = center;
        break;
      case NextRule::HighDim:
        next = highdim;
        break;
      case NextRule::MaxOfBoth:
        next = std::max(highdim, center);
        break;
    }

    // Steps 5-6: transmit to d_next along with the address field
    // D = {d_next+1, ..., d_right} — in chain position i >= 1 that is
    // field[i - 1], so the field is the contiguous segment
    // field[next .. right - 1]. Emit it as a view, not a copy.
    sends.push_back(Send{field[next - 1], field.subspan(next, right - next)});

    // Step 7.
    right = next - 1;
  }
  return sends;
}

MulticastSchedule build_chain_schedule(const Topology& topo,
                                       std::span<const NodeId> chain,
                                       NextRule rule) {
  assert(!chain.empty());
  MulticastSchedule schedule(topo, chain[0]);
  TreeBuilder builder;
  builder.build_chain_into(topo, chain, rule, schedule);
  return schedule;
}

namespace {

TreeBuilder& local_builder() {
  // One scratch arena per thread: registry-driven callers (sweeps,
  // benches, the CLI) amortize all construction allocations without
  // sharing state across sweep workers.
  thread_local TreeBuilder builder;
  return builder;
}

}  // namespace

MulticastSchedule ucube(const MulticastRequest& req) {
  return local_builder().build(req, NextRule::Center);
}

MulticastSchedule maxport(const MulticastRequest& req) {
  return local_builder().build(req, NextRule::HighDim);
}

MulticastSchedule combine(const MulticastRequest& req) {
  return local_builder().build(req, NextRule::MaxOfBoth);
}

}  // namespace hypercast::core
