#ifndef HYPERCAST_CORE_CHAIN_ALGORITHMS_HPP
#define HYPERCAST_CORE_CHAIN_ALGORITHMS_HPP

#include <span>

#include "core/multicast.hpp"

namespace hypercast::core {

/// The family of chain-splitting multicast algorithms of Section 4.1.
/// All three share the body of Algorithm 1 (the U-cube loop) and differ
/// only in how `next` is chosen each iteration:
///
///   * U-cube:  next = center              (one-port optimal [McKinley'92])
///   * Maxport: next = highdim             (peel the maximal top subcube)
///   * Combine: next = max(highdim,center) (Maxport across subcubes,
///                                          binary halving within one)
enum class NextRule {
  Center,
  HighDim,
  MaxOfBoth,
};

/// One node's share of the distributed algorithm: the ordered unicasts
/// node `local` issues after receiving the address field `field` (the
/// ordered list of destinations it is responsible for, exactly as
/// transmitted on the wire). This is the routine a real implementation
/// runs in the message handler — it needs no knowledge of the global
/// source, only the field it received. Precondition: {local} + field is
/// a cube-ordered chain (Definition 5) of distinct nodes.
///
/// Every payload is a contiguous suffix-segment of the received field,
/// so the returned sends carry spans *into `field`* — zero copies. The
/// caller must keep `field`'s storage alive and unchanged while the
/// sends are in use.
std::vector<Send> local_sends(const Topology& topo, NodeId local,
                              std::span<const NodeId> field, NextRule rule);

/// Run the Algorithm-1 loop over an explicit chain (position 0 is the
/// source / local node). The chain must be cube-ordered (Definition 5);
/// dimension-ordered chains always qualify (Theorem 4), and so do
/// weighted_sort outputs (Theorem 5). Equivalent to executing the
/// distributed recursion — delivering each address field and invoking
/// local_sends at every recipient — but implemented as an explicit
/// worklist of (node, first, last) index ranges over the one shared
/// chain buffer (every delivered field is a contiguous chain segment),
/// so nothing is copied per hop. Convenience wrapper over
/// TreeBuilder::build_chain_into.
MulticastSchedule build_chain_schedule(const Topology& topo,
                                       std::span<const NodeId> chain,
                                       NextRule rule);

/// U-cube (Figure 4): sorts the destinations into the d0-relative
/// dimension-ordered chain and splits it binarily.
MulticastSchedule ucube(const MulticastRequest& req);

/// Maxport: one send per outgoing channel, each peeling the whole
/// highest-dimension subcube that holds destinations.
MulticastSchedule maxport(const MulticastRequest& req);

/// Combine: Maxport's channel spreading without leaving one node
/// responsible for more than half the remaining chain.
MulticastSchedule combine(const MulticastRequest& req);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_CHAIN_ALGORITHMS_HPP
