#include "core/chain_search.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/tree_builder.hpp"
#include "hcube/bits.hpp"
#include "hcube/chain.hpp"

namespace hypercast::core {

namespace {

/// Recursive block structure over the sorted relative-key array: the
/// range [first, last] lies in one ns-dimensional subcube; find the
/// boundary between its halves (as in weighted_sort).
std::size_t half_boundary(const std::vector<std::uint32_t>& sorted,
                          std::size_t first, std::size_t last, hcube::Dim ns) {
  const std::uint32_t prefix = sorted[first] >> ns;
  const std::uint32_t boundary = (prefix << ns) | (1u << (ns - 1));
  const auto it = std::lower_bound(
      sorted.begin() + static_cast<std::ptrdiff_t>(first),
      sorted.begin() + static_cast<std::ptrdiff_t>(last) + 1, boundary);
  return static_cast<std::size_t>(it - sorted.begin());
}

/// Enumerate all admissible orderings of [first, last] (relative keys).
/// `pinned` forces the half containing key 0 (the source) to lead.
std::vector<std::vector<std::uint32_t>> orderings(
    const std::vector<std::uint32_t>& sorted, std::size_t first,
    std::size_t last, hcube::Dim ns, bool pinned) {
  const std::size_t count = last - first + 1;
  if (count <= 1) {
    return {std::vector<std::uint32_t>(
        sorted.begin() + static_cast<std::ptrdiff_t>(first),
        sorted.begin() + static_cast<std::ptrdiff_t>(last) + 1)};
  }
  assert(ns >= 1);
  const std::size_t center = half_boundary(sorted, first, last, ns);
  if (center == first || center > last) {
    return orderings(sorted, first, last, ns - 1, pinned);
  }
  const auto lower = orderings(sorted, first, center - 1, ns - 1, pinned);
  const auto upper = orderings(sorted, center, last, ns - 1, false);
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(lower.size() * upper.size() * (pinned ? 1 : 2));
  for (const auto& a : lower) {
    for (const auto& b : upper) {
      std::vector<std::uint32_t> ab;
      ab.reserve(count);
      ab.insert(ab.end(), a.begin(), a.end());
      ab.insert(ab.end(), b.begin(), b.end());
      out.push_back(std::move(ab));
      if (!pinned) {
        std::vector<std::uint32_t> ba;
        ba.reserve(count);
        ba.insert(ba.end(), b.begin(), b.end());
        ba.insert(ba.end(), a.begin(), a.end());
        out.push_back(std::move(ba));
      }
    }
  }
  return out;
}

/// Saturating multiply: the chain space grows as 2^(splits) and can
/// overflow size_t for large destination sets; saturation keeps the
/// too-large check sound.
std::size_t sat_mul(std::size_t a, std::size_t b) {
  constexpr std::size_t kCap = std::size_t{1} << 62;
  if (b != 0 && a > kCap / b) return kCap;
  return a * b;
}

std::size_t count_orderings(const std::vector<std::uint32_t>& sorted,
                            std::size_t first, std::size_t last, hcube::Dim ns,
                            bool pinned) {
  if (last - first + 1 <= 1) return 1;
  assert(ns >= 1);
  const std::size_t center = half_boundary(sorted, first, last, ns);
  if (center == first || center > last) {
    return count_orderings(sorted, first, last, ns - 1, pinned);
  }
  const std::size_t lower =
      count_orderings(sorted, first, center - 1, ns - 1, pinned);
  const std::size_t upper = count_orderings(sorted, center, last, ns - 1, false);
  return sat_mul(sat_mul(lower, upper), pinned ? 1 : 2);
}

std::vector<std::uint32_t> sorted_relative_keys(const MulticastRequest& req) {
  std::vector<std::uint32_t> rel;
  rel.reserve(req.destinations.size() + 1);
  rel.push_back(0);
  for (const NodeId d : req.destinations) {
    rel.push_back(hcube::relative_key(req.topo, req.source, d));
  }
  std::sort(rel.begin(), rel.end());
  return rel;
}

}  // namespace

std::size_t count_cube_ordered_chains(const MulticastRequest& req) {
  req.validate();
  if (req.destinations.empty()) return 1;
  const auto rel = sorted_relative_keys(req);
  return count_orderings(rel, 0, rel.size() - 1, req.topo.dim(), true);
}

ChainSearchResult best_cube_ordered_chain(const MulticastRequest& req,
                                          PortModel port,
                                          std::size_t max_chains) {
  req.validate();
  ChainSearchResult result;
  if (req.destinations.empty()) {
    result.best_chain = {req.source};
    result.chains_examined = 1;
    return result;
  }

  const std::size_t space = count_cube_ordered_chains(req);
  if (space > max_chains) {
    throw std::invalid_argument(
        "cube-ordered chain space too large for exhaustive search (" +
        std::to_string(space) + " chains)");
  }

  const auto rel = sorted_relative_keys(req);
  const std::uint32_t source_key = req.topo.key(req.source);
  std::vector<NodeId> chain;
  const auto to_chain = [&](const std::vector<std::uint32_t>& keys) {
    chain.resize(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      chain[i] = req.topo.unkey(keys[i] ^ source_key);
    }
  };

  // One builder + one schedule recycled across the whole (potentially
  // huge) chain space: the search allocates nothing per candidate.
  TreeBuilder builder;
  MulticastSchedule schedule(req.topo, req.source);
  result.best_steps = -1;
  for (const auto& keys :
       orderings(rel, 0, rel.size() - 1, req.topo.dim(), true)) {
    ++result.chains_examined;
    to_chain(keys);
    builder.build_chain_into(req.topo, chain, NextRule::HighDim, schedule);
    const int steps =
        assign_steps(schedule, port, req.destinations).total_steps;
    if (result.best_steps < 0 || steps < result.best_steps) {
      result.best_steps = steps;
      result.best_chain = chain;
    }
  }
  assert(result.chains_examined == space);
  return result;
}

}  // namespace hypercast::core
