#ifndef HYPERCAST_CORE_CHAIN_SEARCH_HPP
#define HYPERCAST_CORE_CHAIN_SEARCH_HPP

#include "core/chain_algorithms.hpp"
#include "core/stepwise.hpp"

namespace hypercast::core {

/// Exhaustive exploration of the whole input space Theorem 6 admits:
/// every cube-ordered chain with the source pinned at position 0. Each
/// populated subcube split contributes a binary choice (which half goes
/// first), so a destination set with s populated splits has exactly 2^s
/// admissible chains (2^(s-1) on the spine through the source, where
/// the pin fixes the order). weighted_sort greedily picks the crowded
/// half at every split; this search tries both, quantifying how close
/// the heuristic gets to the best chain-based multicast.
struct ChainSearchResult {
  std::vector<NodeId> best_chain;   ///< a minimizer (ties: first found)
  int best_steps = 0;               ///< its all-port Maxport step count
  std::size_t chains_examined = 0;  ///< size of the admissible space
};

/// Enumerate every admissible chain, run Maxport over each, and return
/// one minimizing the step count to reach the request's destinations
/// under `port`. Exponential: throws std::invalid_argument if the space
/// exceeds `max_chains`.
ChainSearchResult best_cube_ordered_chain(
    const MulticastRequest& req, PortModel port = PortModel::all_port(),
    std::size_t max_chains = std::size_t{1} << 20);

/// The number of cube-ordered chains (source pinned) for this request,
/// without enumerating them.
std::size_t count_cube_ordered_chains(const MulticastRequest& req);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_CHAIN_SEARCH_HPP
