#include "core/channel_load.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "hcube/ecube.hpp"

namespace hypercast::core {

ChannelLoadReport analyze_channel_load(const MulticastSchedule& schedule,
                                       const StepResult& steps) {
  const Topology& topo = schedule.topo();
  ChannelLoadReport report;

  std::unordered_map<std::size_t, std::size_t> load;        // arc -> count
  std::map<std::pair<std::size_t, int>, std::size_t> slot;  // (arc, step)
  for (const TimedUnicast& u : steps.unicasts) {
    for (const hcube::Arc& a : hcube::ecube_arcs(topo, u.from, u.to)) {
      const std::size_t arc = topo.arc_index(a);
      ++load[arc];
      ++slot[{arc, u.step}];
    }
  }

  report.channels_used = load.size();
  for (const auto& [arc, count] : load) {
    report.total_crossings += count;
    report.max_load = std::max(report.max_load, count);
  }
  report.avg_load =
      report.channels_used == 0
          ? 0.0
          : static_cast<double>(report.total_crossings) /
                static_cast<double>(report.channels_used);
  report.load_histogram.assign(report.max_load + 1, 0);
  for (const auto& [arc, count] : load) {
    ++report.load_histogram[count];
  }
  for (const auto& [key, count] : slot) {
    report.max_step_channel_reuse =
        std::max(report.max_step_channel_reuse, count);
  }
  return report;
}

}  // namespace hypercast::core
