#include "core/channel_load.hpp"

#include <algorithm>

#include "hcube/ecube.hpp"

namespace hypercast::core {

ChannelLoadReport analyze_channel_load(const MulticastSchedule& schedule,
                                       const StepResult& steps) {
  const Topology& topo = schedule.topo();
  ChannelLoadReport report;

  // Flat per-arc counters indexed by the dense arc index — the maps this
  // replaces dominated the analyser's profile on 10-cube sweeps.
  const std::size_t num_arcs = topo.num_arcs();
  std::vector<std::size_t> load(num_arcs, 0);

  int max_step = 0;
  for (const TimedUnicast& u : steps.unicasts) {
    max_step = std::max(max_step, u.step);
  }
  // slot[arc * (max_step + 1) + step] = crossings of `arc` during `step`
  // (steps are 1-based; row 0 stays unused).
  const std::size_t stride = static_cast<std::size_t>(max_step) + 1;
  std::vector<std::size_t> slot(num_arcs * stride, 0);

  for (const TimedUnicast& u : steps.unicasts) {
    hcube::for_each_ecube_arc(topo, u.from, u.to, [&](hcube::Arc a) {
      const std::size_t arc = topo.arc_index(a);
      ++load[arc];
      ++slot[arc * stride + static_cast<std::size_t>(u.step)];
    });
  }

  for (const std::size_t count : load) {
    if (count == 0) continue;
    ++report.channels_used;
    report.total_crossings += count;
    report.max_load = std::max(report.max_load, count);
  }
  report.avg_load =
      report.channels_used == 0
          ? 0.0
          : static_cast<double>(report.total_crossings) /
                static_cast<double>(report.channels_used);
  report.load_histogram.assign(report.max_load + 1, 0);
  for (const std::size_t count : load) {
    if (count != 0) ++report.load_histogram[count];
  }
  for (const std::size_t count : slot) {
    report.max_step_channel_reuse =
        std::max(report.max_step_channel_reuse, count);
  }
  return report;
}

ArcFootprint arc_footprint(const Topology& topo,
                           const MulticastSchedule& schedule) {
  ArcFootprint fp;
  // Collect raw arc indices, then sort + run-length encode: a tree
  // touches O(m log N) arcs, so the sort beats a num_arcs-sized scratch
  // for the small batches the co-scheduler scores.
  std::vector<std::uint32_t> touched;
  for (const Unicast& u : schedule.unicasts()) {
    hcube::for_each_ecube_arc(topo, u.from, u.to, [&](hcube::Arc a) {
      touched.push_back(static_cast<std::uint32_t>(topo.arc_index(a)));
    });
  }
  std::sort(touched.begin(), touched.end());
  for (std::size_t i = 0; i < touched.size();) {
    std::size_t j = i;
    while (j < touched.size() && touched[j] == touched[i]) ++j;
    const auto count = static_cast<std::uint32_t>(j - i);
    fp.arcs.emplace_back(touched[i], count);
    fp.self_max = std::max(fp.self_max, count);
    i = j;
  }
  return fp;
}

ArcFootprint merge_footprints(std::span<const ArcFootprint> parts) {
  ArcFootprint out;
  if (parts.size() == 1) return parts.front();
  // Each part's arc list is already sorted; concatenate and re-encode
  // (k-way merging buys nothing at co-scheduler batch sizes).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> all;
  std::size_t total = 0;
  for (const ArcFootprint& p : parts) total += p.arcs.size();
  all.reserve(total);
  for (const ArcFootprint& p : parts) {
    all.insert(all.end(), p.arcs.begin(), p.arcs.end());
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size();) {
    std::uint32_t count = 0;
    std::size_t j = i;
    while (j < all.size() && all[j].first == all[i].first) {
      count += all[j].second;
      ++j;
    }
    out.arcs.emplace_back(all[i].first, count);
    out.self_max = std::max(out.self_max, count);
    i = j;
  }
  return out;
}

}  // namespace hypercast::core
