#ifndef HYPERCAST_CORE_CHANNEL_LOAD_HPP
#define HYPERCAST_CORE_CHANNEL_LOAD_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/stepwise.hpp"

namespace hypercast::core {

/// Channel-load analysis of a multicast schedule: how the constituent
/// unicasts distribute over the network's directed channels. Contention
/// avoidance is load spreading in disguise — a channel crossed by k
/// unicasts serializes them over at least k time slots — so these
/// figures explain *why* the all-port algorithms win before any
/// simulation is run.
struct ChannelLoadReport {
  std::size_t channels_used = 0;   ///< distinct directed channels crossed
  std::size_t total_crossings = 0; ///< sum of per-channel loads
  std::size_t max_load = 0;        ///< most-crossed channel
  double avg_load = 0.0;           ///< total / used
  /// load_histogram[k] = number of channels crossed exactly k times
  /// (index 0 unused).
  std::vector<std::size_t> load_histogram;

  /// Max unicasts departing any single node in one step — 1 for
  /// schedules that perfectly exploit distinct channels.
  std::size_t max_step_channel_reuse = 0;
};

/// Analyse the E-cube footprints of every unicast in the schedule.
/// `steps` supplies the timing used for the per-step reuse figure
/// (pass assign_steps(schedule, port)).
ChannelLoadReport analyze_channel_load(const MulticastSchedule& schedule,
                                       const StepResult& steps);

/// The sparse per-arc crossing profile of one schedule: which directed
/// channels its unicasts' E-cube routes traverse, and how many times.
/// Entries are (dense arc index, multiplicity), sorted by arc index, so
/// footprints of different trees can be compared and summed without
/// re-walking the routes.
struct ArcFootprint {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> arcs;
  std::uint32_t self_max = 0;  ///< max multiplicity over `arcs` — the
                               ///< floor any co-schedule pays for this
                               ///< tree alone

  std::size_t total_crossings() const {
    std::size_t total = 0;
    for (const auto& [arc, count] : arcs) total += count;
    return total;
  }
};

/// Walk every unicast's E-cube route and collect the schedule's
/// footprint. The schedule must belong to `topo` (same dimension).
ArcFootprint arc_footprint(const Topology& topo,
                           const MulticastSchedule& schedule);

/// The union footprint of several schedules launched as one unit:
/// per-arc multiplicities summed, self_max recomputed. This is how a
/// striped collective (n trees in flight at once) presents itself to
/// the co-scheduler — one candidate whose footprint is the sum of its
/// trees'. Arc-disjoint parts merge with self_max = max over parts.
ArcFootprint merge_footprints(std::span<const ArcFootprint> parts);

/// A reusable flat per-arc load accumulator — the dense counter array
/// analyze_channel_load keeps internally, promoted to a shared data
/// structure so several schedules can be scored against one load map
/// (the co-scheduler's admission test). Indexed by the dense arc index;
/// O(num_arcs) storage, O(footprint) updates.
class ChannelLoadMap {
 public:
  ChannelLoadMap() = default;
  explicit ChannelLoadMap(const Topology& topo) { reset(topo); }

  /// Size (or resize) for `topo` and zero every counter.
  void reset(const Topology& topo) {
    load_.assign(topo.num_arcs(), 0);
  }
  /// Zero every counter, keeping the current size.
  void clear() { std::fill(load_.begin(), load_.end(), 0u); }

  std::size_t num_arcs() const { return load_.size(); }
  std::uint32_t load(std::size_t arc) const { return load_[arc]; }

  /// Peak load over the whole map.
  std::uint32_t max_load() const {
    std::uint32_t peak = 0;
    for (const std::uint32_t v : load_) peak = std::max(peak, v);
    return peak;
  }

  /// Peak resulting load over `fp`'s arcs if it were added — the
  /// admission score. Does not mutate the map.
  std::uint32_t peak_if_added(const ArcFootprint& fp) const {
    std::uint32_t peak = 0;
    for (const auto& [arc, count] : fp.arcs) {
      peak = std::max(peak, load_[arc] + count);
    }
    return peak;
  }

  /// Accumulate `fp` into the map; returns the peak load over the arcs
  /// it touched.
  std::uint32_t add(const ArcFootprint& fp) {
    std::uint32_t peak = 0;
    for (const auto& [arc, count] : fp.arcs) {
      load_[arc] += count;
      peak = std::max(peak, load_[arc]);
    }
    return peak;
  }

 private:
  std::vector<std::uint32_t> load_;
};

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_CHANNEL_LOAD_HPP
