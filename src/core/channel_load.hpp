#ifndef HYPERCAST_CORE_CHANNEL_LOAD_HPP
#define HYPERCAST_CORE_CHANNEL_LOAD_HPP

#include <vector>

#include "core/stepwise.hpp"

namespace hypercast::core {

/// Channel-load analysis of a multicast schedule: how the constituent
/// unicasts distribute over the network's directed channels. Contention
/// avoidance is load spreading in disguise — a channel crossed by k
/// unicasts serializes them over at least k time slots — so these
/// figures explain *why* the all-port algorithms win before any
/// simulation is run.
struct ChannelLoadReport {
  std::size_t channels_used = 0;   ///< distinct directed channels crossed
  std::size_t total_crossings = 0; ///< sum of per-channel loads
  std::size_t max_load = 0;        ///< most-crossed channel
  double avg_load = 0.0;           ///< total / used
  /// load_histogram[k] = number of channels crossed exactly k times
  /// (index 0 unused).
  std::vector<std::size_t> load_histogram;

  /// Max unicasts departing any single node in one step — 1 for
  /// schedules that perfectly exploit distinct channels.
  std::size_t max_step_channel_reuse = 0;
};

/// Analyse the E-cube footprints of every unicast in the schedule.
/// `steps` supplies the timing used for the per-step reuse figure
/// (pass assign_steps(schedule, port)).
ChannelLoadReport analyze_channel_load(const MulticastSchedule& schedule,
                                       const StepResult& steps);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_CHANNEL_LOAD_HPP
