#include "core/contention.hpp"

#include <algorithm>
#include <sstream>

#include "core/reachable.hpp"
#include "hcube/ecube.hpp"

namespace hypercast::core {

std::string ContentionReport::summary(const Topology& topo) const {
  std::ostringstream os;
  os << pairs_checked << " pairs checked, " << pairs_sharing_arcs
     << " share arcs, " << violations.size() << " violations";
  for (const ContentionViolation& v : violations) {
    os << "\n  (" << topo.format(v.a.from) << " -> " << topo.format(v.a.to)
       << ", step " << v.a.step << ") vs (" << topo.format(v.b.from) << " -> "
       << topo.format(v.b.to) << ", step " << v.b.step << ") share arc "
       << topo.format(v.shared_arc.from) << " dim " << v.shared_arc.dim;
  }
  return os.str();
}

ContentionReport check_contention(const MulticastSchedule& schedule,
                                  const StepResult& steps) {
  const Topology& topo = schedule.topo();
  ContentionReport report;
  const auto reach = all_reachable_sets(schedule);

  // Precompute every unicast's arc list once.
  std::vector<std::vector<hcube::Arc>> arcs;
  arcs.reserve(steps.unicasts.size());
  for (const TimedUnicast& u : steps.unicasts) {
    arcs.push_back(hcube::ecube_arcs(topo, u.from, u.to));
  }

  const auto shared_arc = [&](std::size_t i, std::size_t j)
      -> std::optional<hcube::Arc> {
    for (const hcube::Arc& a : arcs[i]) {
      if (std::find(arcs[j].begin(), arcs[j].end(), a) != arcs[j].end()) {
        return a;
      }
    }
    return std::nullopt;
  };

  for (std::size_t i = 0; i < steps.unicasts.size(); ++i) {
    for (std::size_t j = i + 1; j < steps.unicasts.size(); ++j) {
      ++report.pairs_checked;
      // Order the pair so that `first` is the earlier unicast.
      const bool i_first = steps.unicasts[i].step <= steps.unicasts[j].step;
      const TimedUnicast& first = i_first ? steps.unicasts[i] : steps.unicasts[j];
      const TimedUnicast& second = i_first ? steps.unicasts[j] : steps.unicasts[i];

      const auto arc = shared_arc(i, j);
      if (!arc.has_value()) continue;
      ++report.pairs_sharing_arcs;

      const bool strictly_later = first.step < second.step;
      const bool causally_ordered =
          reach.contains(first.from) && reach.at(first.from).contains(second.from);
      if (strictly_later && causally_ordered) continue;
      report.violations.push_back(ContentionViolation{first, second, *arc});
    }
  }
  return report;
}

ContentionReport check_contention(const MulticastSchedule& schedule,
                                  PortModel port) {
  return check_contention(schedule, assign_steps(schedule, port));
}

}  // namespace hypercast::core
