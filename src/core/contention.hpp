#ifndef HYPERCAST_CORE_CONTENTION_HPP
#define HYPERCAST_CORE_CONTENTION_HPP

#include <string>
#include <vector>

#include "core/stepwise.hpp"

namespace hypercast::core {

/// A pair of unicasts that violate Definition 4.
struct ContentionViolation {
  TimedUnicast a;
  TimedUnicast b;
  hcube::Arc shared_arc;
};

struct ContentionReport {
  std::vector<ContentionViolation> violations;
  std::size_t pairs_checked = 0;
  std::size_t pairs_sharing_arcs = 0;  ///< overlapping but possibly legal

  bool contention_free() const { return violations.empty(); }
  std::string summary(const Topology& topo) const;
};

/// Check Definition 4 over a timed multicast: two unicasts
/// (u, v, P(u,v), t) and (x, y, P(x,y), tau) with t <= tau are
/// contention-free iff their paths are arc-disjoint, or t < tau and x is
/// in the reachable set R_u (the later unicast's sender learns of the
/// message through the earlier unicast's sender, so the earlier message
/// has necessarily left the shared channels behind).
///
/// Exact but quadratic in the number of unicasts — intended for tests,
/// verification passes and examples, not the hot path.
ContentionReport check_contention(const MulticastSchedule& schedule,
                                  const StepResult& steps);

/// Convenience: evaluate the schedule under `port` and check Definition 4
/// on the resulting step assignment.
ContentionReport check_contention(const MulticastSchedule& schedule,
                                  PortModel port);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_CONTENTION_HPP
