#include "core/ist.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "hcube/bits.hpp"
#include "hcube/ecube.hpp"

namespace hypercast::core {

namespace {

using hcube::test_bit;

/// Recursive emitter: appends the kept subtree of `u` (u first) to
/// `sub`, adding one single-hop send per kept child whose payload is the
/// child's strict kept descendants. Recursion depth is the tree depth
/// (<= n + 1), so stack use is bounded by the cube dimension.
struct TreeEmitter {
  const Topology& topo;
  Dim tree;
  const std::vector<char>& keep;
  MulticastSchedule& schedule;

  void emit(NodeId u, std::vector<NodeId>& sub) {
    sub.push_back(u);
    if (u == 0) {
      child(u, NodeId{1} << tree, sub);
      return;
    }
    if (!test_bit(u, tree)) return;  // leaves own no arcs
    // Up-children u | 2^d for d in the cyclic scan tree+1, tree+2, ...
    // mod n up to (exclusive) u's first set bit in that order. Emitted
    // in reverse scan order: a later-scanned child owns the whole clear
    // prefix before it, so the largest subtree starts streaming first.
    const Dim n = topo.dim();
    Dim prefix = 0;
    for (Dim step = 1; step < n; ++step) {
      if (test_bit(u, static_cast<Dim>((tree + step) % n))) break;
      prefix = step;
    }
    for (Dim step = prefix; step >= 1; --step) {
      const Dim d = static_cast<Dim>((tree + step) % n);
      child(u, u | (NodeId{1} << d), sub);
    }
    const NodeId down = u ^ (NodeId{1} << tree);
    if (down != 0) child(u, down, sub);
  }

  void child(NodeId u, NodeId c, std::vector<NodeId>& sub) {
    if (!keep[c]) return;
    const std::size_t begin = sub.size();
    emit(c, sub);
    // Strict descendants of c: everything emit() appended past c itself.
    schedule.add_send(u, c,
                      std::span<const NodeId>(sub.data() + begin + 1,
                                              sub.size() - begin - 1));
  }
};

MulticastSchedule build_kept_tree0(const Topology& topo, Dim tree,
                                   const std::vector<char>& keep,
                                   std::size_t kept_nodes) {
  MulticastSchedule schedule(topo, 0);
  schedule.reserve(kept_nodes, kept_nodes == 0 ? 0 : kept_nodes - 1);
  TreeEmitter emitter{topo, tree, keep, schedule};
  std::vector<NodeId> sub;
  sub.reserve(kept_nodes + 1);
  emitter.emit(0, sub);
  return schedule;
}

void check_tree_index(const Topology& topo, Dim tree) {
  if (tree < 0 || tree >= topo.dim()) {
    throw std::invalid_argument("ist: tree index out of range");
  }
}

}  // namespace

NodeId ist_parent0(const Topology& topo, Dim tree, NodeId v) {
  check_tree_index(topo, tree);
  assert(topo.contains(v) && v != 0);
  const Dim n = topo.dim();
  const NodeId bit = NodeId{1} << tree;
  if (v == bit) return 0;
  if (!test_bit(v, tree)) return v | bit;
  for (Dim step = 1; step < n; ++step) {
    const Dim d = static_cast<Dim>((tree + step) % n);
    if (test_bit(v, d)) return v ^ (NodeId{1} << d);
  }
  assert(false && "v == 2^tree handled above");
  return 0;
}

MulticastSchedule build_ist_tree0(const Topology& topo, Dim tree) {
  check_tree_index(topo, tree);
  const std::vector<char> keep(topo.num_nodes(), 1);
  return build_kept_tree0(topo, tree, keep, topo.num_nodes() - 1);
}

MulticastSchedule build_ist_tree0(const Topology& topo, Dim tree,
                                  std::span<const NodeId> relative_dests) {
  check_tree_index(topo, tree);
  std::vector<char> keep(topo.num_nodes(), 0);
  std::size_t kept = 0;
  for (const NodeId d : relative_dests) {
    if (!topo.contains(d) || d == 0) {
      throw std::invalid_argument(
          "build_ist_tree0: relative destination outside the cube or 0");
    }
    // Mark d and its ancestor chain; stop at the first already-kept
    // ancestor (everything above it is marked already).
    for (NodeId v = d; v != 0 && !keep[v]; v = ist_parent0(topo, tree, v)) {
      keep[v] = 1;
      ++kept;
    }
  }
  return build_kept_tree0(topo, tree, keep, kept);
}

MulticastSchedule build_ist_tree(const Topology& topo, Dim tree,
                                 NodeId source,
                                 std::span<const NodeId> destinations) {
  if (!topo.contains(source)) {
    throw std::invalid_argument("build_ist_tree: source outside the cube");
  }
  std::vector<NodeId> relative;
  relative.reserve(destinations.size());
  for (const NodeId d : destinations) relative.push_back(d ^ source);
  MulticastSchedule rel = build_ist_tree0(topo, tree, relative);
  if (source == 0) return rel;
  MulticastSchedule out(topo, source);
  out.assign_translated(rel, source);
  return out;
}

std::string IstDisjointReport::summary(const Topology& topo) const {
  char buf[160];
  if (disjoint) {
    std::snprintf(buf, sizeof buf, "arc-disjoint: %zu directed arcs, no clash",
                  arcs_used);
    return buf;
  }
  std::snprintf(buf, sizeof buf,
                "arc clash: %s -dim %d- claimed by trees #%d and #%d",
                topo.format(clash.from).c_str(), clash.dim, first_tree,
                second_tree);
  return buf;
}

void ArcOwnerTable::claim_schedule(const MulticastSchedule& schedule, int who,
                                   IstDisjointReport* report) {
  for (const Unicast& u : schedule.unicasts()) {
    hcube::for_each_ecube_arc(topo_, u.from, u.to, [&](hcube::Arc a) {
      const int prev = owner(a);
      if (try_claim(a, who)) return;
      if (report != nullptr && report->disjoint) {
        report->disjoint = false;
        report->clash = a;
        report->first_tree = prev;
        report->second_tree = who;
      }
    });
  }
}

IstDisjointReport verify_arc_disjoint(
    const Topology& topo,
    std::span<const MulticastSchedule* const> trees) {
  IstDisjointReport report;
  ArcOwnerTable owners(topo);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    if (trees[t] == nullptr) continue;
    owners.claim_schedule(*trees[t], static_cast<int>(t), &report);
  }
  report.arcs_used = owners.arcs_claimed();
  return report;
}

}  // namespace hypercast::core
