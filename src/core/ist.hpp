#ifndef HYPERCAST_CORE_IST_HPP
#define HYPERCAST_CORE_IST_HPP

#include <span>
#include <string>
#include <vector>

#include "core/multicast.hpp"

namespace hypercast::core {

/// n arc-disjoint spanning trees of Q_n — the bandwidth substrate under
/// coll/ striping (docs/STRIPING.md).
///
/// Each undirected hypercube link carries two directed arcs that the
/// all-port model drives simultaneously, so Q_n has N*n directed arcs
/// and exactly n of them enter any fixed root. A family of n spanning
/// trees rooted at 0 that pairwise share no *directed* arc therefore
/// uses every arc of the cube except the n entering the root — the
/// construction below achieves that bound, in the spirit of the
/// edge-disjoint/completely-independent spanning-tree constructions for
/// Q_n (Shaw; Barden et al.), adapted to directed arcs so both
/// directions of a link may serve two different trees at once.
///
/// Tree i (0 <= i < n), rooted at 0, is defined by its parent rule for
/// v != 0:
///   * v == 2^i            -> parent 0            (the root arc of tree i)
///   * bit i of v clear    -> parent v | 2^i      (a "down" dim-i arc)
///   * otherwise           -> parent v ^ 2^d, where d is the first set
///                            bit of v scanning cyclically i+1, i+2,
///                            ... mod n (d != i exists since v != 2^i).
/// Nodes with bit i set form the interior (a tree over the upper
/// half-cube); every node with bit i clear hangs off v | 2^i as a leaf.
/// Depth is at most n + 1 and every tree edge is a single hop, so the
/// schedules below are store-and-forward trees whose unicasts each
/// occupy exactly one directed channel.
///
/// Why trees i != j never share an arc: a down arc of tree i travels
/// dimension i (and i only), so down arcs of different trees differ in
/// dimension; an up arc u -> u | 2^d of tree i has bit i of u set and no
/// set bit of u in the cyclic interval (i, d). If trees i and j both
/// used that arc, then j is not in (i, d) and i is not in (j, d) — two
/// cyclic intervals ending at the same d, each excluding the other's
/// start, which forces i == j. Up arcs travel "upward" (into a heavier
/// node) and down arcs "downward", so the two classes cannot collide,
/// and the root arcs 0 -> 2^i are distinct by construction.
/// verify_arc_disjoint() proves all of this exhaustively at run time.

/// Number of arc-disjoint trees the construction yields: the dimension.
inline Dim ist_tree_count(const Topology& topo) { return topo.dim(); }

/// Parent of `v` in tree `tree` rooted at 0. Precondition: v != 0,
/// topo.contains(v), 0 <= tree < dim.
NodeId ist_parent0(const Topology& topo, Dim tree, NodeId v);

/// The full spanning tree `tree` rooted at 0 as a multicast schedule:
/// every node != 0 receives exactly once, every send is a single hop,
/// payloads carry each recipient's strict descendants. Children are
/// emitted largest-subtree-first so deep chains start streaming early.
MulticastSchedule build_ist_tree0(const Topology& topo, Dim tree);

/// The spanning tree pruned to `relative_dests` (0-relative addresses,
/// 0 itself excluded): only destinations and their tree ancestors
/// participate; ancestors that are not destinations become relay
/// recipients. Pruning removes whole sends, never re-routes, so the
/// pruned trees inherit pairwise arc-disjointness from the full ones.
MulticastSchedule build_ist_tree0(const Topology& topo, Dim tree,
                                  std::span<const NodeId> relative_dests);

/// Tree `tree` rooted at `source` and pruned to `destinations`
/// (absolute addresses): built at the relative origin and XOR-relabeled
/// by `source` — the same translation machinery the schedule cache uses,
/// so a cached relative tree materializes to exactly this schedule.
MulticastSchedule build_ist_tree(const Topology& topo, Dim tree,
                                 NodeId source,
                                 std::span<const NodeId> destinations);

struct IstDisjointReport;

/// Dense per-directed-arc ownership map — the data structure under
/// verify_arc_disjoint, shared with the paths:: disjoint repairer so
/// that repaired striped schedules are checked (and constructed)
/// against exactly the invariant the verifier proves: every directed
/// channel has at most one owning tree.
class ArcOwnerTable {
 public:
  explicit ArcOwnerTable(const Topology& topo)
      : topo_(topo), owner_(topo.num_arcs(), -1) {}

  const Topology& topo() const { return topo_; }

  /// Owning tree of a directed arc, or -1 when unclaimed.
  int owner(hcube::Arc a) const { return owner_[topo_.arc_index(a)]; }

  /// Claim an arc for `who` (who >= 0). Returns false — leaving the
  /// table unchanged — when the arc is already claimed, *including* by
  /// `who` itself: double use within one tree is a clash too.
  bool try_claim(hcube::Arc a, int who) {
    int& slot = owner_[topo_.arc_index(a)];
    if (slot >= 0) return false;
    slot = who;
    ++claimed_;
    return true;
  }

  /// Release one arc (no-op when unclaimed).
  void release(hcube::Arc a) {
    int& slot = owner_[topo_.arc_index(a)];
    if (slot >= 0) {
      slot = -1;
      --claimed_;
    }
  }

  std::size_t arcs_claimed() const { return claimed_; }

  /// Claim the full E-cube footprint of every unicast of `schedule` for
  /// `who`, folding clashes into `report` exactly like
  /// verify_arc_disjoint (first clash recorded, later arcs still
  /// claimed when free, arcs_used tracked by the table).
  void claim_schedule(const MulticastSchedule& schedule, int who,
                      IstDisjointReport* report = nullptr);

 private:
  Topology topo_;
  std::vector<int> owner_;
  std::size_t claimed_ = 0;
};

/// Outcome of the exhaustive arc-disjointness check.
struct IstDisjointReport {
  bool disjoint = true;
  std::size_t arcs_used = 0;  ///< distinct directed arcs across all trees
  // First offending arc when !disjoint:
  hcube::Arc clash{};
  int first_tree = -1;   ///< index (into the checked span) that used it
  int second_tree = -1;  ///< index that used it again

  std::string summary(const Topology& topo) const;
};

/// Walk every unicast's E-cube arcs of every schedule and verify that no
/// directed channel is claimed twice — neither by two trees nor twice
/// within one tree. Exhaustive and model-independent: it checks the
/// routes the simulator will actually acquire, so it holds for pruned
/// and translated trees too.
IstDisjointReport verify_arc_disjoint(
    const Topology& topo,
    std::span<const MulticastSchedule* const> trees);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_IST_HPP
