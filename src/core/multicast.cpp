#include "core/multicast.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace hypercast::core {

void MulticastRequest::validate() const {
  if (!topo.contains(source)) {
    throw std::invalid_argument("multicast source outside the cube");
  }
  // One bit per node: duplicate and source checks in a single linear
  // pass (no hashing, no rescans).
  std::vector<std::uint64_t> seen((topo.num_nodes() + 63) / 64, 0);
  for (const NodeId d : destinations) {
    if (!topo.contains(d)) {
      throw std::invalid_argument("multicast destination outside the cube");
    }
    if (d == source) {
      throw std::invalid_argument("source listed as a destination");
    }
    std::uint64_t& word = seen[d >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (d & 63);
    if (word & bit) {
      throw std::invalid_argument("duplicate destination");
    }
    word |= bit;
  }
}

void MulticastSchedule::reset(Topology topo, NodeId source) {
  topo_ = std::move(topo);
  source_ = source;
  raw_.clear();
  pool_.clear();
  view_.clear();
  dirty_ = true;
}

void MulticastSchedule::assign_translated(const MulticastSchedule& relative,
                                          NodeId mask) {
  topo_ = relative.topo_;
  source_ = relative.source_ ^ mask;
  raw_.resize(relative.raw_.size());
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const RawSend& r = relative.raw_[i];
    raw_[i] = RawSend{r.from ^ mask, r.to ^ mask, r.pool_begin, r.pool_len};
  }
  pool_.resize(relative.pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_[i] = relative.pool_[i] ^ mask;
  }
  if (relative.dirty_) {
    // No view to translate; leave the counting sort to the next accessor.
    view_.clear();
    dirty_ = true;
    return;
  }
  // The relative view is already grouped by sender, and XOR only permutes
  // whole buckets (bucket u here is bucket u ^ mask there, contents in
  // the same stable order), so the translated view is a gather copy —
  // cheaper than re-running finalize()'s counting sort.
  const std::size_t n = topo_.num_nodes();
  begin_.resize(n + 1);
  view_.resize(relative.view_.size());
  const NodeId* rel_pool = relative.pool_.data();
  const NodeId* pool = pool_.data();
  std::uint32_t out = 0;
  for (std::size_t u = 0; u < n; ++u) {
    begin_[u] = out;
    const std::size_t rel = u ^ static_cast<std::size_t>(mask);
    for (std::uint32_t j = relative.begin_[rel]; j < relative.begin_[rel + 1];
         ++j) {
      const Send& s = relative.view_[j];
      const std::size_t offset =
          s.payload.empty() ? 0
                            : static_cast<std::size_t>(s.payload.data() -
                                                       rel_pool);
      view_[out++] = Send{s.to ^ mask, std::span<const NodeId>(
                                           pool + offset, s.payload.size())};
    }
  }
  begin_[n] = out;
  cursor_.clear();
  dirty_ = false;
}

std::size_t MulticastSchedule::footprint_bytes() const {
  return sizeof(MulticastSchedule) + raw_.capacity() * sizeof(RawSend) +
         pool_.capacity() * sizeof(NodeId) + view_.capacity() * sizeof(Send) +
         begin_.capacity() * sizeof(std::uint32_t) +
         cursor_.capacity() * sizeof(std::uint32_t);
}

bool operator==(const MulticastSchedule& a, const MulticastSchedule& b) {
  if (a.topo_ != b.topo_ || a.source_ != b.source_ ||
      a.raw_.size() != b.raw_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.raw_.size(); ++i) {
    const MulticastSchedule::RawSend& ra = a.raw_[i];
    const MulticastSchedule::RawSend& rb = b.raw_[i];
    if (ra.from != rb.from || ra.to != rb.to || ra.pool_len != rb.pool_len) {
      return false;
    }
    const NodeId* pa = a.pool_.data() + ra.pool_begin;
    const NodeId* pb = b.pool_.data() + rb.pool_begin;
    if (!std::equal(pa, pa + ra.pool_len, pb)) return false;
  }
  return true;
}

void MulticastSchedule::reserve(std::size_t sends, std::size_t payload_total) {
  raw_.reserve(sends);
  pool_.reserve(payload_total);
}

void MulticastSchedule::add_send(NodeId from, NodeId to,
                                 std::span<const NodeId> payload) {
  RawSend raw;
  raw.from = from;
  raw.to = to;
  raw.pool_begin = static_cast<std::uint32_t>(pool_.size());
  raw.pool_len = static_cast<std::uint32_t>(payload.size());
  // The payload may alias pool_ itself (a schedule forwarding one of
  // its own sends), which reallocation would invalidate — copy through
  // a temporary index loop after the resize re-reads the span only when
  // it points elsewhere.
  if (!payload.empty()) {
    const NodeId* src = payload.data();
    const bool aliases_pool =
        !pool_.empty() && src >= pool_.data() && src < pool_.data() + pool_.size();
    const std::size_t src_offset =
        aliases_pool ? static_cast<std::size_t>(src - pool_.data()) : 0;
    pool_.resize(pool_.size() + payload.size());
    const NodeId* base = aliases_pool ? pool_.data() + src_offset : src;
    NodeId* dst = pool_.data() + raw.pool_begin;
    for (std::size_t i = 0; i < raw.pool_len; ++i) dst[i] = base[i];
  }
  raw_.push_back(raw);
  dirty_ = true;
}

void MulticastSchedule::finalize() const {
  if (!dirty_) return;
  const std::size_t n = topo_.num_nodes();
  // Counting sort by sender, stable in append order per sender.
  begin_.assign(n + 1, 0);
  for (const RawSend& r : raw_) ++begin_[static_cast<std::size_t>(r.from) + 1];
  for (std::size_t i = 1; i <= n; ++i) begin_[i] += begin_[i - 1];
  cursor_.assign(begin_.begin(), begin_.end() - 1);
  view_.resize(raw_.size());
  const NodeId* pool = pool_.data();
  for (const RawSend& r : raw_) {
    view_[cursor_[r.from]++] =
        Send{r.to, std::span<const NodeId>(pool + r.pool_begin, r.pool_len)};
  }
  dirty_ = false;
}

std::vector<Unicast> MulticastSchedule::unicasts() const {
  std::vector<Unicast> out;
  out.reserve(raw_.size());
  // BFS with a flat frontier; a schedule is a tree, so nodes never
  // repeat and the frontier is bounded by the send count.
  std::vector<NodeId> frontier{source_};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    int issue = 0;
    for (const Send& s : sends_from(u)) {
      out.push_back(Unicast{u, s.to, issue++});
      frontier.push_back(s.to);
    }
  }
  return out;
}

std::vector<NodeId> MulticastSchedule::recipients() const {
  std::vector<NodeId> out;
  out.reserve(raw_.size());
  for (const Unicast& u : unicasts()) out.push_back(u.to);
  return out;
}

std::vector<NodeId> MulticastSchedule::senders() const {
  finalize();
  std::vector<NodeId> out;
  for (std::size_t u = 0; u + 1 < begin_.size(); ++u) {
    if (begin_[u + 1] > begin_[u]) out.push_back(static_cast<NodeId>(u));
  }
  return out;
}

void MulticastSchedule::validate() const {
  std::unordered_set<NodeId> received;
  received.insert(source_);
  std::size_t tree_sends = 0;
  std::vector<NodeId> frontier{source_};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    for (const Send& s : sends_from(u)) {
      ++tree_sends;
      if (!topo_.contains(s.to)) {
        throw std::logic_error("schedule sends outside the cube");
      }
      if (s.to == u) {
        throw std::logic_error("schedule contains a self-send");
      }
      if (!received.insert(s.to).second) {
        throw std::logic_error("node " + topo_.format(s.to) +
                               " receives the message more than once");
      }
      frontier.push_back(s.to);
    }
  }
  if (tree_sends != raw_.size()) {
    throw std::logic_error(
        "schedule contains sends from nodes that never receive the message");
  }
}

bool MulticastSchedule::covers(std::span<const NodeId> dests) const {
  const auto recv = recipients();
  const std::unordered_set<NodeId> got(recv.begin(), recv.end());
  for (const NodeId d : dests) {
    if (d != source_ && !got.contains(d)) return false;
  }
  return true;
}

std::vector<NodeId> MulticastSchedule::relay_processors(
    std::span<const NodeId> dests) const {
  const std::unordered_set<NodeId> want(dests.begin(), dests.end());
  std::vector<NodeId> relays;
  for (const NodeId r : recipients()) {
    if (!want.contains(r)) relays.push_back(r);
  }
  return relays;
}

std::string MulticastSchedule::format_tree() const {
  std::ostringstream os;
  // Depth-first rendering with indentation; children in issue order.
  struct Frame {
    NodeId node;
    int depth;
  };
  std::vector<Frame> stack{{source_, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    for (int i = 0; i < f.depth; ++i) os << "  ";
    os << topo_.format(f.node) << '\n';
    const auto sends = sends_from(f.node);
    // Push in reverse so that issue order renders top-to-bottom.
    for (auto it = sends.rbegin(); it != sends.rend(); ++it) {
      stack.push_back(Frame{it->to, f.depth + 1});
    }
  }
  return os.str();
}

}  // namespace hypercast::core
