#include "core/multicast.hpp"

#include <deque>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace hypercast::core {

void MulticastRequest::validate() const {
  if (!topo.contains(source)) {
    throw std::invalid_argument("multicast source outside the cube");
  }
  std::unordered_set<NodeId> seen;
  for (const NodeId d : destinations) {
    if (!topo.contains(d)) {
      throw std::invalid_argument("multicast destination outside the cube");
    }
    if (d == source) {
      throw std::invalid_argument("source listed as a destination");
    }
    if (!seen.insert(d).second) {
      throw std::invalid_argument("duplicate destination");
    }
  }
}

void MulticastSchedule::add_send(NodeId from, Send send) {
  sends_[from].push_back(std::move(send));
  ++num_sends_;
}

std::span<const Send> MulticastSchedule::sends_from(NodeId u) const {
  const auto it = sends_.find(u);
  if (it == sends_.end()) return {};
  return it->second;
}

std::vector<Unicast> MulticastSchedule::unicasts() const {
  std::vector<Unicast> out;
  out.reserve(num_sends_);
  std::deque<NodeId> frontier{source_};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    int issue = 0;
    for (const Send& s : sends_from(u)) {
      out.push_back(Unicast{u, s.to, issue++});
      frontier.push_back(s.to);
    }
  }
  return out;
}

std::vector<NodeId> MulticastSchedule::recipients() const {
  std::vector<NodeId> out;
  out.reserve(num_sends_);
  for (const Unicast& u : unicasts()) out.push_back(u.to);
  return out;
}

std::vector<NodeId> MulticastSchedule::senders() const {
  std::vector<NodeId> out;
  out.reserve(sends_.size());
  for (const auto& [node, list] : sends_) {
    if (!list.empty()) out.push_back(node);
  }
  return out;
}

void MulticastSchedule::validate() const {
  std::unordered_set<NodeId> received;
  received.insert(source_);
  std::size_t tree_sends = 0;
  std::deque<NodeId> frontier{source_};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const Send& s : sends_from(u)) {
      ++tree_sends;
      if (!topo_.contains(s.to)) {
        throw std::logic_error("schedule sends outside the cube");
      }
      if (s.to == u) {
        throw std::logic_error("schedule contains a self-send");
      }
      if (!received.insert(s.to).second) {
        throw std::logic_error("node " + topo_.format(s.to) +
                               " receives the message more than once");
      }
      frontier.push_back(s.to);
    }
  }
  if (tree_sends != num_sends_) {
    throw std::logic_error(
        "schedule contains sends from nodes that never receive the message");
  }
}

bool MulticastSchedule::covers(std::span<const NodeId> dests) const {
  const auto recv = recipients();
  const std::unordered_set<NodeId> got(recv.begin(), recv.end());
  for (const NodeId d : dests) {
    if (d != source_ && !got.contains(d)) return false;
  }
  return true;
}

std::vector<NodeId> MulticastSchedule::relay_processors(
    std::span<const NodeId> dests) const {
  const std::unordered_set<NodeId> want(dests.begin(), dests.end());
  std::vector<NodeId> relays;
  for (const NodeId r : recipients()) {
    if (!want.contains(r)) relays.push_back(r);
  }
  return relays;
}

std::string MulticastSchedule::format_tree() const {
  std::ostringstream os;
  // Depth-first rendering with indentation; children in issue order.
  struct Frame {
    NodeId node;
    int depth;
  };
  std::vector<Frame> stack{{source_, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    for (int i = 0; i < f.depth; ++i) os << "  ";
    os << topo_.format(f.node) << '\n';
    const auto sends = sends_from(f.node);
    // Push in reverse so that issue order renders top-to-bottom.
    for (auto it = sends.rbegin(); it != sends.rend(); ++it) {
      stack.push_back(Frame{it->to, f.depth + 1});
    }
  }
  return os.str();
}

}  // namespace hypercast::core
