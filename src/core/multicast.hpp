#ifndef HYPERCAST_CORE_MULTICAST_HPP
#define HYPERCAST_CORE_MULTICAST_HPP

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "hcube/chain.hpp"
#include "hcube/ecube.hpp"
#include "hcube/topology.hpp"

namespace hypercast::core {

using hcube::Dim;
using hcube::NodeId;
using hcube::Resolution;
using hcube::Topology;

/// A multicast to perform: deliver one message from `source` to every
/// node in `destinations` (distinct, source excluded).
struct MulticastRequest {
  Topology topo;
  NodeId source = 0;
  std::vector<NodeId> destinations;

  /// Throws std::invalid_argument on malformed requests (duplicate or
  /// out-of-range destinations, source listed as a destination).
  /// Linear: one pass over the destinations against a bitset over
  /// topo.num_nodes().
  void validate() const;
};

/// One unicast a node issues as part of a unicast-based multicast: the
/// message goes to `to`, accompanied by the address field `payload` — the
/// destinations `to` becomes responsible for delivering (Definition 3's
/// reachable set of `to`, minus `to` itself).
///
/// The payload is a *view*: sends handed out by MulticastSchedule point
/// into the schedule's contiguous payload pool, and sends returned by
/// local_sends point into the caller's field. Neither owns storage.
struct Send {
  NodeId to = 0;
  std::span<const NodeId> payload;
};

/// A unicast flattened out of a schedule, tagged with its sender's
/// issue position (the order the sender's software would transmit).
struct Unicast {
  NodeId from = 0;
  NodeId to = 0;
  int issue_index = 0;  ///< 0-based position in the sender's send list
};

/// The product of a multicast algorithm: for every participating node,
/// the *ordered* list of unicasts it issues after receiving the message.
/// The order matters — it is the serialization order on a one-port node
/// and the per-channel serialization order on an all-port node.
///
/// A schedule forms a tree rooted at the source: each non-source
/// recipient receives exactly once (validate() enforces this).
///
/// Storage is CSR-style flat arrays: every add_send appends one fixed
/// size record plus its payload to one contiguous pool (no per-send
/// vectors, no per-node map). Accessors group the records per sender
/// into a cached view, rebuilt lazily after mutation; spans obtained
/// from sends_from() are invalidated by the next add_send()/reset().
/// The lazy rebuild means the first accessor call after a mutation is
/// not safe to race with other readers — finalize() first to share a
/// schedule across threads read-only.
class MulticastSchedule {
 public:
  MulticastSchedule(Topology topo, NodeId source)
      : topo_(std::move(topo)), source_(source) {}

  // Copies drop the cached view (it points into the source's pool) and
  // lazily rebuild against their own storage; moves keep it (the heap
  // buffers move wholesale, so the spans stay valid).
  MulticastSchedule(const MulticastSchedule& other)
      : topo_(other.topo_), source_(other.source_), raw_(other.raw_),
        pool_(other.pool_) {}
  MulticastSchedule& operator=(const MulticastSchedule& other) {
    if (this != &other) {
      topo_ = other.topo_;
      source_ = other.source_;
      raw_ = other.raw_;
      pool_ = other.pool_;
      dirty_ = true;
      view_.clear();
    }
    return *this;
  }
  MulticastSchedule(MulticastSchedule&&) noexcept = default;
  MulticastSchedule& operator=(MulticastSchedule&&) noexcept = default;

  const Topology& topo() const { return topo_; }
  NodeId source() const { return source_; }

  /// Re-initialize in place, keeping the flat arrays' capacity. This is
  /// what lets TreeBuilder sweeps reach a zero-allocation steady state.
  void reset(Topology topo, NodeId source);

  /// Capacity hint: `sends` future add_send calls carrying
  /// `payload_total` destination ids altogether.
  void reserve(std::size_t sends, std::size_t payload_total);

  /// Become the XOR-relabeling of `relative`: every node id (source,
  /// sender, recipient, payload entry) is XORed with `mask`. This is how
  /// the schedule cache materializes a caller-facing schedule from a
  /// cached source-relative one — a straight linear copy of the flat
  /// arrays (capacity kept, like reset()), with none of the sorting,
  /// validation or worklist cost of a fresh build. The result compares
  /// equal (operator==) to building the translated request directly for
  /// every translation-invariant algorithm. `relative` may not alias
  /// this schedule. When `relative` is finalized the grouped view is
  /// translated too (XOR permutes whole sender buckets, so it is a
  /// gather copy, not a re-sort) and the result is immediately safe to
  /// share; otherwise the view is left dirty — finalize() first.
  void assign_translated(const MulticastSchedule& relative, NodeId mask);

  /// Append a send to `from`'s issue list. The payload is copied into
  /// the schedule's pool (the argument may alias any storage, including
  /// this schedule's own pool).
  void add_send(NodeId from, NodeId to, std::span<const NodeId> payload = {});
  void add_send(NodeId from, NodeId to, std::initializer_list<NodeId> payload) {
    add_send(from, to, std::span<const NodeId>(payload.begin(), payload.size()));
  }

  /// The ordered sends issued by node u (empty list if u sends nothing).
  std::span<const Send> sends_from(NodeId u) const {
    if (dirty_) finalize();
    const auto node = static_cast<std::size_t>(u);
    return {view_.data() + begin_[node], begin_[node + 1] - begin_[node]};
  }

  /// Build the grouped per-sender view now (idempotent). Called
  /// implicitly by every accessor; calling it explicitly makes the
  /// schedule safe for concurrent read-only use.
  void finalize() const;

  /// Every node that receives the message (excludes the source), in
  /// breadth-first tree order. Deterministic.
  std::vector<NodeId> recipients() const;

  /// All unicasts in breadth-first tree order (parents before children).
  std::vector<Unicast> unicasts() const;

  /// Total number of unicast messages in the schedule.
  std::size_t num_unicasts() const { return raw_.size(); }

  /// Nodes with at least one outgoing send, including the source if it
  /// sends. Ascending node order.
  std::vector<NodeId> senders() const;

  /// Structural validation: all endpoints in the cube, no self-sends,
  /// every non-source recipient receives exactly once, every sender is
  /// the source or a recipient (i.e. the schedule is a tree rooted at
  /// the source). Throws std::logic_error with a description otherwise.
  void validate() const;

  /// True iff every node of `dests` receives the message.
  bool covers(std::span<const NodeId> dests) const;

  /// Intermediate routers relay worms without processor involvement, but
  /// a *recipient* that is not a requested destination has its processor
  /// handle the message (the cost the paper's Figure 3(a) vs 3(c)
  /// comparison highlights). Returns the recipients not in `dests`.
  std::vector<NodeId> relay_processors(std::span<const NodeId> dests) const;

  /// Multi-line human-readable tree rendering (for examples/debugging).
  std::string format_tree() const;

  /// Heap bytes the flat arrays pin (capacity, not size — what a cache
  /// entry actually holds resident).
  std::size_t footprint_bytes() const;

  /// Structural equality: same topology, source, and identical append
  /// order of sends with identical payload contents (pool offsets are
  /// an implementation detail and do not participate). This is the
  /// "bit-identical schedule" relation the cache equality tests assert.
  friend bool operator==(const MulticastSchedule& a,
                         const MulticastSchedule& b);

 private:
  /// One add_send record: fixed size, payload in [pool_begin,
  /// pool_begin + pool_len) of pool_.
  struct RawSend {
    NodeId from = 0;
    NodeId to = 0;
    std::uint32_t pool_begin = 0;
    std::uint32_t pool_len = 0;
  };

  Topology topo_;
  NodeId source_;
  std::vector<RawSend> raw_;   ///< append order
  std::vector<NodeId> pool_;   ///< all payloads, back to back

  // Cached per-sender grouping (counting-sort by `from`, stable within
  // a sender): node u's sends are view_[begin_[u] .. begin_[u+1]).
  mutable bool dirty_ = true;
  mutable std::vector<Send> view_;
  mutable std::vector<std::uint32_t> begin_;    ///< num_nodes + 1 offsets
  mutable std::vector<std::uint32_t> cursor_;   ///< finalize scratch
};

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_MULTICAST_HPP
