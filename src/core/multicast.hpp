#ifndef HYPERCAST_CORE_MULTICAST_HPP
#define HYPERCAST_CORE_MULTICAST_HPP

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hcube/chain.hpp"
#include "hcube/ecube.hpp"
#include "hcube/topology.hpp"

namespace hypercast::core {

using hcube::Dim;
using hcube::NodeId;
using hcube::Resolution;
using hcube::Topology;

/// A multicast to perform: deliver one message from `source` to every
/// node in `destinations` (distinct, source excluded).
struct MulticastRequest {
  Topology topo;
  NodeId source = 0;
  std::vector<NodeId> destinations;

  /// Throws std::invalid_argument on malformed requests (duplicate or
  /// out-of-range destinations, source listed as a destination).
  void validate() const;
};

/// One unicast a node issues as part of a unicast-based multicast: the
/// message goes to `to`, accompanied by the address field `payload` — the
/// destinations `to` becomes responsible for delivering (Definition 3's
/// reachable set of `to`, minus `to` itself).
struct Send {
  NodeId to = 0;
  std::vector<NodeId> payload;
};

/// A unicast flattened out of a schedule, tagged with its sender's
/// issue position (the order the sender's software would transmit).
struct Unicast {
  NodeId from = 0;
  NodeId to = 0;
  int issue_index = 0;  ///< 0-based position in the sender's send list
};

/// The product of a multicast algorithm: for every participating node,
/// the *ordered* list of unicasts it issues after receiving the message.
/// The order matters — it is the serialization order on a one-port node
/// and the per-channel serialization order on an all-port node.
///
/// A schedule forms a tree rooted at the source: each non-source
/// recipient receives exactly once (validate() enforces this).
class MulticastSchedule {
 public:
  MulticastSchedule(Topology topo, NodeId source)
      : topo_(std::move(topo)), source_(source) {}

  const Topology& topo() const { return topo_; }
  NodeId source() const { return source_; }

  /// Append a send to `from`'s issue list.
  void add_send(NodeId from, Send send);

  /// The ordered sends issued by node u (empty list if u sends nothing).
  std::span<const Send> sends_from(NodeId u) const;

  /// Every node that receives the message (excludes the source), in
  /// breadth-first tree order. Deterministic.
  std::vector<NodeId> recipients() const;

  /// All unicasts in breadth-first tree order (parents before children).
  std::vector<Unicast> unicasts() const;

  /// Total number of unicast messages in the schedule.
  std::size_t num_unicasts() const { return num_sends_; }

  /// Nodes with at least one outgoing send, including the source if it
  /// sends. Unordered.
  std::vector<NodeId> senders() const;

  /// Structural validation: all endpoints in the cube, no self-sends,
  /// every non-source recipient receives exactly once, every sender is
  /// the source or a recipient (i.e. the schedule is a tree rooted at
  /// the source). Throws std::logic_error with a description otherwise.
  void validate() const;

  /// True iff every node of `dests` receives the message.
  bool covers(std::span<const NodeId> dests) const;

  /// Intermediate routers relay worms without processor involvement, but
  /// a *recipient* that is not a requested destination has its processor
  /// handle the message (the cost the paper's Figure 3(a) vs 3(c)
  /// comparison highlights). Returns the recipients not in `dests`.
  std::vector<NodeId> relay_processors(std::span<const NodeId> dests) const;

  /// Multi-line human-readable tree rendering (for examples/debugging).
  std::string format_tree() const;

 private:
  Topology topo_;
  NodeId source_;
  std::size_t num_sends_ = 0;
  std::unordered_map<NodeId, std::vector<Send>> sends_;
};

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_MULTICAST_HPP
