#include "core/reachable.hpp"

#include <algorithm>
#include <deque>

namespace hypercast::core {

TreeInfo tree_info(const MulticastSchedule& schedule) {
  TreeInfo info;
  info.depth[schedule.source()] = 0;
  std::deque<NodeId> frontier{schedule.source()};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const int d = info.depth.at(u);
    for (const Send& s : schedule.sends_from(u)) {
      info.parent[s.to] = u;
      info.depth[s.to] = d + 1;
      info.height = std::max(info.height, d + 1);
      frontier.push_back(s.to);
    }
  }
  return info;
}

std::unordered_set<NodeId> reachable_set(const MulticastSchedule& schedule,
                                         NodeId u) {
  std::unordered_set<NodeId> out{u};
  std::deque<NodeId> frontier{u};
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const Send& s : schedule.sends_from(v)) {
      if (out.insert(s.to).second) frontier.push_back(s.to);
    }
  }
  return out;
}

std::unordered_map<NodeId, std::unordered_set<NodeId>> all_reachable_sets(
    const MulticastSchedule& schedule) {
  std::unordered_map<NodeId, std::unordered_set<NodeId>> out;
  // Post-order accumulation: children before parents. unicasts() yields
  // parents before children, so walk it in reverse.
  const auto unis = schedule.unicasts();
  out[schedule.source()].insert(schedule.source());
  for (const Unicast& u : unis) out[u.to].insert(u.to);
  for (auto it = unis.rbegin(); it != unis.rend(); ++it) {
    auto& parent_set = out[it->from];
    const auto& child_set = out[it->to];
    parent_set.insert(child_set.begin(), child_set.end());
  }
  return out;
}

}  // namespace hypercast::core
