#ifndef HYPERCAST_CORE_REACHABLE_HPP
#define HYPERCAST_CORE_REACHABLE_HPP

#include <unordered_map>
#include <unordered_set>

#include "core/multicast.hpp"

namespace hypercast::core {

/// Tree-shape queries over a multicast schedule.
struct TreeInfo {
  std::unordered_map<NodeId, NodeId> parent;  ///< absent for the source
  std::unordered_map<NodeId, int> depth;      ///< source at 0
  int height = 0;                             ///< max depth over recipients
};

TreeInfo tree_info(const MulticastSchedule& schedule);

/// The reachable set R_u (Definition 3): the nodes that receive the
/// message directly or indirectly through u — the subtree rooted at u,
/// including u itself. Nodes not in the schedule yield {u}.
std::unordered_set<NodeId> reachable_set(const MulticastSchedule& schedule,
                                         NodeId u);

/// Reachable sets for every participant at once (one tree walk).
std::unordered_map<NodeId, std::unordered_set<NodeId>> all_reachable_sets(
    const MulticastSchedule& schedule);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_REACHABLE_HPP
