#include "core/registry.hpp"

#include <array>
#include <stdexcept>

#include "core/chain_algorithms.hpp"
#include "core/separate.hpp"
#include "core/sf_tree.hpp"
#include "core/wsort.hpp"

namespace hypercast::core {

namespace {

const std::vector<AlgorithmEntry>& table() {
  static const std::vector<AlgorithmEntry> entries = {
      {"ucube", "U-cube", [](const MulticastRequest& r) { return ucube(r); }},
      {"maxport", "Maxport",
       [](const MulticastRequest& r) { return maxport(r); }},
      {"combine", "Combine",
       [](const MulticastRequest& r) { return combine(r); }},
      {"wsort", "W-sort", [](const MulticastRequest& r) { return wsort(r); }},
      {"separate", "Separate",
       [](const MulticastRequest& r) { return separate_addressing(r); }},
      {"sftree", "SF-tree",
       [](const MulticastRequest& r) { return sf_tree(r); }},
  };
  return entries;
}

std::vector<AlgorithmEntry>& registered() {
  static std::vector<AlgorithmEntry> entries;
  return entries;
}

}  // namespace

std::span<const AlgorithmEntry> paper_algorithms() {
  return std::span<const AlgorithmEntry>(table()).subspan(0, 4);
}

std::span<const AlgorithmEntry> all_algorithms() { return table(); }

std::span<const AlgorithmEntry> registered_algorithms() {
  return registered();
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  names.reserve(table().size() + registered().size());
  for (const AlgorithmEntry& e : table()) names.push_back(e.name);
  for (const AlgorithmEntry& e : registered()) names.push_back(e.name);
  return names;
}

void register_algorithm(AlgorithmEntry entry) {
  for (const AlgorithmEntry& e : table()) {
    if (e.name == entry.name) {
      throw std::invalid_argument("register_algorithm: '" + entry.name +
                                  "' would shadow a built-in algorithm");
    }
  }
  for (AlgorithmEntry& e : registered()) {
    if (e.name == entry.name) {
      e = std::move(entry);
      return;
    }
  }
  registered().push_back(std::move(entry));
}

const AlgorithmEntry& find_algorithm(std::string_view name) {
  for (const AlgorithmEntry& e : table()) {
    if (e.name == name) return e;
  }
  for (const AlgorithmEntry& e : registered()) {
    if (e.name == name) return e;
  }
  std::string known;
  for (const std::string& n : algorithm_names()) {
    known += known.empty() ? n : ", " + n;
  }
  throw std::invalid_argument("unknown multicast algorithm: '" +
                              std::string(name) + "' (known: " + known + ")");
}

}  // namespace hypercast::core
