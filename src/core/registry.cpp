#include "core/registry.hpp"

#include <array>
#include <stdexcept>

#include "core/chain_algorithms.hpp"
#include "core/separate.hpp"
#include "core/sf_tree.hpp"
#include "core/wsort.hpp"

namespace hypercast::core {

namespace {

const std::vector<AlgorithmEntry>& table() {
  static const std::vector<AlgorithmEntry> entries = {
      {"ucube", "U-cube", [](const MulticastRequest& r) { return ucube(r); }},
      {"maxport", "Maxport",
       [](const MulticastRequest& r) { return maxport(r); }},
      {"combine", "Combine",
       [](const MulticastRequest& r) { return combine(r); }},
      {"wsort", "W-sort", [](const MulticastRequest& r) { return wsort(r); }},
      {"separate", "Separate",
       [](const MulticastRequest& r) { return separate_addressing(r); }},
      {"sftree", "SF-tree",
       [](const MulticastRequest& r) { return sf_tree(r); }},
  };
  return entries;
}

}  // namespace

std::span<const AlgorithmEntry> paper_algorithms() {
  return std::span<const AlgorithmEntry>(table()).subspan(0, 4);
}

std::span<const AlgorithmEntry> all_algorithms() { return table(); }

const AlgorithmEntry& find_algorithm(std::string_view name) {
  for (const AlgorithmEntry& e : table()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("unknown multicast algorithm: " +
                              std::string(name));
}

}  // namespace hypercast::core
