#ifndef HYPERCAST_CORE_REGISTRY_HPP
#define HYPERCAST_CORE_REGISTRY_HPP

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/multicast.hpp"

namespace hypercast::core {

/// A named multicast algorithm, as the harness and benches drive them.
struct AlgorithmEntry {
  std::string name;         ///< e.g. "wsort"
  std::string display;      ///< e.g. "W-sort"
  std::function<MulticastSchedule(const MulticastRequest&)> build;
};

/// The four algorithms the paper evaluates (Figures 9-14), in the
/// paper's curve order: U-cube, Maxport, Combine, W-sort.
std::span<const AlgorithmEntry> paper_algorithms();

/// Paper algorithms plus the baselines (separate addressing and the
/// store-and-forward tree).
std::span<const AlgorithmEntry> all_algorithms();

/// Lookup by name (built-in or registered); throws
/// std::invalid_argument listing every known name for unknown ones, so
/// CLI typos are self-diagnosing.
const AlgorithmEntry& find_algorithm(std::string_view name);

/// Register an additional algorithm (e.g. a fault-aware wrapper) under
/// its entry's name, replacing an earlier registration of the same
/// name. Built-in names cannot be shadowed (std::invalid_argument).
/// The entry becomes visible to find_algorithm and registered_algorithms.
void register_algorithm(AlgorithmEntry entry);

/// The dynamically registered entries, in registration order.
std::span<const AlgorithmEntry> registered_algorithms();

/// Every known algorithm name: built-ins first, then registered.
std::vector<std::string> algorithm_names();

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_REGISTRY_HPP
