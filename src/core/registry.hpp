#ifndef HYPERCAST_CORE_REGISTRY_HPP
#define HYPERCAST_CORE_REGISTRY_HPP

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/multicast.hpp"

namespace hypercast::core {

/// A named multicast algorithm, as the harness and benches drive them.
struct AlgorithmEntry {
  std::string name;         ///< e.g. "wsort"
  std::string display;      ///< e.g. "W-sort"
  std::function<MulticastSchedule(const MulticastRequest&)> build;
};

/// The four algorithms the paper evaluates (Figures 9-14), in the
/// paper's curve order: U-cube, Maxport, Combine, W-sort.
std::span<const AlgorithmEntry> paper_algorithms();

/// Paper algorithms plus the baselines (separate addressing and the
/// store-and-forward tree).
std::span<const AlgorithmEntry> all_algorithms();

/// Lookup by name; throws std::invalid_argument for unknown names.
const AlgorithmEntry& find_algorithm(std::string_view name);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_REGISTRY_HPP
