#include "core/separate.hpp"

namespace hypercast::core {

MulticastSchedule separate_addressing(const MulticastRequest& req) {
  req.validate();
  MulticastSchedule schedule(req.topo, req.source);
  const auto chain =
      hcube::make_relative_chain(req.topo, req.source, req.destinations);
  schedule.reserve(chain.size() - 1, 0);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    schedule.add_send(req.source, chain[i]);
  }
  return schedule;
}

}  // namespace hypercast::core
