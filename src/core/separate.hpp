#ifndef HYPERCAST_CORE_SEPARATE_HPP
#define HYPERCAST_CORE_SEPARATE_HPP

#include "core/multicast.hpp"

namespace hypercast::core {

/// Separate addressing: the source sends an individual unicast to every
/// destination (Section 2's naive alternative to multicast trees). The
/// sends are issued in d0-relative dimension order, which at least lets
/// an all-port source overlap messages that leave on distinct channels.
MulticastSchedule separate_addressing(const MulticastRequest& req);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_SEPARATE_HPP
