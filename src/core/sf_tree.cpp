#include "core/sf_tree.hpp"

#include <deque>

#include "hcube/bits.hpp"

namespace hypercast::core {

namespace {

struct Task {
  NodeId node;          ///< holder of the message
  Dim dims_remaining;   ///< may forward over key-space bits [0, dims_remaining)
  std::vector<std::uint32_t> targets;  ///< relative keys still to cover (not node)
};

}  // namespace

MulticastSchedule sf_tree(const MulticastRequest& req) {
  req.validate();
  const Topology& topo = req.topo;
  MulticastSchedule schedule(topo, req.source);

  std::vector<std::uint32_t> targets;
  targets.reserve(req.destinations.size());
  for (const NodeId d : req.destinations) {
    targets.push_back(hcube::relative_key(topo, req.source, d));
  }

  const std::uint32_t source_key = topo.key(req.source);
  const auto to_node = [&](std::uint32_t rel) {
    return topo.unkey(rel ^ source_key);
  };
  // Key-space bit b corresponds to physical dimension b (HighToLow) or
  // n-1-b (LowToHigh); forwarding in key space descending matches the
  // resolution order either way.
  const auto rel_neighbor = [](std::uint32_t rel, Dim bit) {
    return rel ^ (std::uint32_t{1} << bit);
  };

  std::deque<Task> work;
  std::vector<NodeId> payload;  // per-send scratch, copied by add_send
  work.push_back(Task{req.source, topo.dim(), std::move(targets)});
  while (!work.empty()) {
    Task task = std::move(work.front());
    work.pop_front();
    const std::uint32_t here =
        hcube::relative_key(topo, req.source, task.node);
    for (Dim b = task.dims_remaining - 1; b >= 0; --b) {
      // Split the remaining targets by bit b relative to the holder.
      std::vector<std::uint32_t> far;
      std::vector<std::uint32_t> near;
      for (const std::uint32_t t : task.targets) {
        (hcube::test_bit(t, b) != hcube::test_bit(here, b) ? far : near)
            .push_back(t);
      }
      task.targets = std::move(near);
      if (far.empty()) continue;
      const std::uint32_t next_rel = rel_neighbor(here, b);
      const NodeId next = to_node(next_rel);
      payload.clear();
      std::vector<std::uint32_t> sub;
      for (const std::uint32_t t : far) {
        if (t != next_rel) {
          payload.push_back(to_node(t));
          sub.push_back(t);
        }
      }
      schedule.add_send(task.node, next, payload);
      // The relay keeps covering the far side with the lower dimensions.
      if (!sub.empty()) work.push_back(Task{next, b, std::move(sub)});
    }
  }
  return schedule;
}

}  // namespace hypercast::core
