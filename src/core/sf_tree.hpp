#ifndef HYPERCAST_CORE_SF_TREE_HPP
#define HYPERCAST_CORE_SF_TREE_HPP

#include "core/multicast.hpp"

namespace hypercast::core {

/// The store-and-forward era multicast of Figure 3(a): the message is
/// relayed hop by hop through a dimension-ordered spanning (binomial)
/// tree pruned to the branches that contain destinations. Every hop is a
/// single-channel unicast handled by the relay node's *processor* — the
/// scheme early hypercubes used before wormhole routing, kept here as the
/// historical baseline the paper motivates against. Relay nodes that are
/// not destinations still receive and forward the message.
MulticastSchedule sf_tree(const MulticastRequest& req);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_SF_TREE_HPP
