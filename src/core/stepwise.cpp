#include "core/stepwise.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

#include "hcube/ecube.hpp"

namespace hypercast::core {

StepResult assign_steps(const MulticastSchedule& schedule, PortModel port,
                        std::span<const NodeId> targets) {
  const Topology& topo = schedule.topo();
  const int concurrency = std::max(1, port.concurrency(topo.dim()));

  StepResult result;
  result.arrival_step[schedule.source()] = 0;

  std::deque<NodeId> frontier{schedule.source()};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const int ready = result.arrival_step.at(u);

    // Next free step per outgoing channel, and per-step send counts.
    std::unordered_map<Dim, int> chan_free;
    std::unordered_map<int, int> step_load;
    for (const Send& s : schedule.sends_from(u)) {
      const Dim d = hcube::delta_distinct(topo, u, s.to);
      int dep = std::max(ready + 1, [&] {
        const auto it = chan_free.find(d);
        return it == chan_free.end() ? 0 : it->second;
      }());
      while (step_load[dep] >= concurrency) ++dep;
      chan_free[d] = dep + 1;
      ++step_load[dep];

      result.unicasts.push_back(TimedUnicast{u, s.to, dep});
      result.arrival_step[s.to] = dep;
      frontier.push_back(s.to);
    }
  }

  if (targets.empty()) {
    for (const auto& [node, step] : result.arrival_step) {
      result.total_steps = std::max(result.total_steps, step);
    }
  } else {
    for (const NodeId t : targets) {
      const auto it = result.arrival_step.find(t);
      assert(it != result.arrival_step.end() &&
             "stepwise target never receives the message");
      if (it != result.arrival_step.end()) {
        result.total_steps = std::max(result.total_steps, it->second);
      }
    }
  }
  return result;
}

}  // namespace hypercast::core
