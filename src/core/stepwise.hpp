#ifndef HYPERCAST_CORE_STEPWISE_HPP
#define HYPERCAST_CORE_STEPWISE_HPP

#include <unordered_map>
#include <vector>

#include "core/multicast.hpp"

namespace hypercast::core {

/// Port model of a node (Section 1): how many internal channel pairs
/// connect the processor to its router, i.e. how many messages a node
/// can be transmitting (receiving) simultaneously.
struct PortModel {
  enum class Kind : std::uint8_t {
    OnePort,  ///< one internal pair: sends fully serialize
    AllPort,  ///< one internal pair per external channel
    KPort,    ///< k internal pairs, any k concurrent transmissions
  };
  Kind kind = Kind::AllPort;
  int k = 1;  ///< only meaningful for KPort

  static constexpr PortModel one_port() { return {Kind::OnePort, 1}; }
  static constexpr PortModel all_port() { return {Kind::AllPort, 0}; }
  static constexpr PortModel k_port(int k) { return {Kind::KPort, k}; }

  /// Max concurrent sends for a node of degree n.
  int concurrency(int n) const {
    switch (kind) {
      case Kind::OnePort: return 1;
      case Kind::AllPort: return n;
      case Kind::KPort: return k;
    }
    return 1;
  }

  const char* name() const {
    switch (kind) {
      case Kind::OnePort: return "one-port";
      case Kind::AllPort: return "all-port";
      case Kind::KPort: return "k-port";
    }
    return "?";
  }
};

/// A unicast stamped with the logical time step of its transmission
/// (the (u, v, P(u, v), t) tuples of Section 3.4).
struct TimedUnicast {
  NodeId from = 0;
  NodeId to = 0;
  int step = 0;  ///< 1-based: the source's first sends occupy step 1
};

/// Result of stepwise evaluation of a schedule.
struct StepResult {
  std::vector<TimedUnicast> unicasts;
  std::unordered_map<NodeId, int> arrival_step;  ///< per recipient
  int total_steps = 0;  ///< max arrival step over the *requested* targets
};

/// Assign each unicast of the schedule its transmission step under the
/// paper's stepwise model (Section 5.1, and the step labels of Figures
/// 3/5/6/8): a message occupies exactly one step; a node that receives
/// in step t issues its sends starting at step t+1 in issue order;
/// sends from one node serialize per outgoing channel (two sends with
/// equal delta share their first arc and cannot overlap; distinct deltas
/// are arc-disjoint by Theorem 1) and at most `concurrency` of them may
/// occupy the same step.
///
/// `targets` selects the nodes whose arrival defines total_steps (the
/// requested destinations; relays en route do not count). If empty, all
/// recipients count.
StepResult assign_steps(const MulticastSchedule& schedule, PortModel port,
                        std::span<const NodeId> targets = {});

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_STEPWISE_HPP
