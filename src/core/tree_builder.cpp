#include "core/tree_builder.hpp"

#include <cassert>

#include "hcube/bits.hpp"

namespace hypercast::core {

void TreeBuilder::prepare_chain(const MulticastRequest& req) {
  req.validate();
  hcube::make_relative_chain_into(req.topo, req.source, req.destinations,
                                  chain_);
}

MulticastSchedule TreeBuilder::build(const MulticastRequest& req,
                                     NextRule rule) {
  MulticastSchedule out(req.topo, req.source);
  build_into(req, rule, out);
  return out;
}

void TreeBuilder::build_into(const MulticastRequest& req, NextRule rule,
                             MulticastSchedule& out) {
  prepare_chain(req);
  build_chain_into(req.topo, chain_, rule, out);
}

MulticastSchedule TreeBuilder::build_wsort(const MulticastRequest& req,
                                           WeightedSortImpl impl) {
  MulticastSchedule out(req.topo, req.source);
  build_wsort_into(req, impl, out);
  return out;
}

void TreeBuilder::build_wsort_into(const MulticastRequest& req,
                                   WeightedSortImpl impl,
                                   MulticastSchedule& out) {
  prepare_chain(req);
  weighted_sort(req.topo, chain_, impl, wsort_scratch_);
  build_chain_into(req.topo, chain_, NextRule::HighDim, out);
}

void TreeBuilder::build_chain_into(const Topology& topo,
                                   std::span<const NodeId> chain,
                                   NextRule rule, MulticastSchedule& out) {
  assert(!chain.empty());
  out.reset(topo, chain[0]);
  const std::size_t n = chain.size();
  if (n <= 1) {
    out.finalize();
    return;
  }
  // Every non-source chain entry receives exactly once; payload volume
  // is roughly one chain suffix per tree level, so 2n is a good first
  // guess (amortized away entirely once the schedule is recycled).
  out.reserve(n - 1, 2 * n);

  keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) keys_[i] = topo.key(chain[i]);
#ifndef NDEBUG
  for (std::size_t i = 1; i < n; ++i) {
    assert(keys_[i] != keys_[0] &&
           "destinations must not include the source");
  }
#endif

  // The distributed recursion over index ranges: chain_[local] holds
  // the message and owes delivery to the field chain_[local+1 .. last].
  // Processing order across ranges is irrelevant (each node's sends are
  // emitted in one burst; the schedule groups per sender), so a LIFO
  // stack keeps the worklist cache-hot.
  work_.clear();
  work_.push_back(Range{0, static_cast<std::uint32_t>(n - 1)});
  while (!work_.empty()) {
    const Range range = work_.back();
    work_.pop_back();
    const std::uint32_t left = range.local;
    std::uint32_t right = range.last;
    const NodeId local = chain[left];
    while (left < right) {
      // Step 1: x = delta(d_left, d_right), the first routing dimension
      // (as a key-space bit) of a message spanning the whole segment.
      const Dim x = hcube::highest_bit(keys_[left] ^ keys_[right]);

      // Step 2: d_highdim — the leftmost node whose route from d_left
      // starts on channel x. In a cube-ordered segment the far side of
      // bit x is a contiguous suffix, so this is that suffix's head.
      std::uint32_t highdim = left + 1;
      const bool left_side = hcube::test_bit(keys_[left], x);
      while (hcube::test_bit(keys_[highdim], x) == left_side) ++highdim;
      assert(highdim <= right);

      // Step 3: the binary-halving midpoint.
      const std::uint32_t center = left + (right - left + 1) / 2;

      // Step 4: the single statement the three algorithms differ in.
      std::uint32_t next = 0;
      switch (rule) {
        case NextRule::Center:
          next = center;
          break;
        case NextRule::HighDim:
          next = highdim;
          break;
        case NextRule::MaxOfBoth:
          next = std::max(highdim, center);
          break;
      }

      // Steps 5-6: transmit to d_next along with the address field
      // D = {d_next+1, ..., d_right} — the contiguous chain segment
      // (next, right]. The recipient's own share of the recursion is
      // exactly that range.
      out.add_send(local, chain[next], chain.subspan(next + 1, right - next));
      if (next < right) work_.push_back(Range{next, right});

      // Step 7.
      right = next - 1;
    }
  }
  out.finalize();
}

}  // namespace hypercast::core
