#ifndef HYPERCAST_CORE_TREE_BUILDER_HPP
#define HYPERCAST_CORE_TREE_BUILDER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/chain_algorithms.hpp"
#include "core/weighted_sort.hpp"

namespace hypercast::core {

/// Reusable scratch arena for chain-schedule construction.
///
/// The Section-4 algorithms are pure index manipulations over one
/// cube-ordered chain: every address field the distributed recursion
/// delivers is a contiguous segment of that chain, so the whole build
/// runs as an explicit worklist of (chain index, last) ranges — no
/// per-hop payload copies, no per-delivery allocation. The builder owns
/// the chain buffer, the key cache, the worklist and the weighted_sort
/// scratch; reusing one TreeBuilder across a sweep of thousands of
/// builds reaches a zero-allocation steady state (together with
/// MulticastSchedule::reset, which recycles the output arrays too).
///
/// Reuse contract: a TreeBuilder may be reused for any number of
/// sequential builds, on any mix of topologies, and holds no pointers
/// into the schedules it produced. It is not thread-safe; give each
/// sweep worker its own instance (the registry entries do this via a
/// thread_local builder). Output is a pure function of the inputs —
/// identical whether a builder is fresh or reused, which is what keeps
/// threaded sweeps bit-identical at any thread count.
class TreeBuilder {
 public:
  /// Sort the destinations into the source-relative dimension-ordered
  /// chain and run `rule` over it (ucube/maxport/combine, depending on
  /// the rule). Validates the request.
  MulticastSchedule build(const MulticastRequest& req, NextRule rule);
  void build_into(const MulticastRequest& req, NextRule rule,
                  MulticastSchedule& out);

  /// W-sort: dimension-ordered chain, weighted_sort permutation, then
  /// the HighDim rule.
  MulticastSchedule build_wsort(const MulticastRequest& req,
                                WeightedSortImpl impl);
  void build_wsort_into(const MulticastRequest& req, WeightedSortImpl impl,
                        MulticastSchedule& out);

  /// Run `rule` over an explicit cube-ordered chain (position 0 is the
  /// source). `chain` may alias this builder's internal chain buffer
  /// (the *_into entry points above rely on that).
  void build_chain_into(const Topology& topo, std::span<const NodeId> chain,
                        NextRule rule, MulticastSchedule& out);

 private:
  /// req.validate() + relative chain into chain_.
  void prepare_chain(const MulticastRequest& req);

  std::vector<NodeId> chain_;          ///< source + sorted destinations
  std::vector<std::uint32_t> keys_;    ///< topo.key() of each chain entry

  /// One pending delivery: node chain_[local] received the address
  /// field chain_[local + 1 .. last].
  struct Range {
    std::uint32_t local = 0;
    std::uint32_t last = 0;
  };
  std::vector<Range> work_;

  WeightedSortScratch wsort_scratch_;
};

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_TREE_BUILDER_HPP
