#include "core/weighted_sort.hpp"

#include <algorithm>
#include <cassert>

#include "hcube/bits.hpp"

namespace hypercast::core {

namespace {

/// cube_center (Figure 7): the starting position of the second
/// (ns-1)-dimensional half of the chain range [first, last], all of
/// whose relative keys lie in one ns-dimensional subcube. Returns
/// last + 1 when either half is empty.
std::size_t cube_center(const std::vector<std::uint32_t>& rel,
                        std::size_t first, std::size_t last, Dim ns) {
  assert(ns >= 1);
  std::size_t split = first;
  while (split <= last && !hcube::test_bit(rel[split], ns - 1)) ++split;
  if (split == first || split > last) return last + 1;  // a half is empty
  return split;
}

/// The paper's recursion, verbatim: recurse into both halves, then swap
/// them (rotate) when the later half is strictly more populated —
/// except at a range that starts at position 0, which pins the source.
void faithful_rec(std::vector<std::uint32_t>& rel, std::size_t first,
                  std::size_t last, Dim ns) {
  if (last - first < 2) return;
  assert(ns >= 1 && "distinct keys in one range imply free dimensions");
  const std::size_t center = cube_center(rel, first, last, ns);
  if (center == last + 1) {
    // All nodes fall in one half; it is itself an (ns-1)-subcube.
    faithful_rec(rel, first, last, ns - 1);
    return;
  }
  faithful_rec(rel, first, center - 1, ns - 1);
  faithful_rec(rel, center, last, ns - 1);
  if (first != 0 && (center - first) < (last - center + 1)) {
    std::rotate(rel.begin() + static_cast<std::ptrdiff_t>(first),
                rel.begin() + static_cast<std::ptrdiff_t>(center),
                rel.begin() + static_cast<std::ptrdiff_t>(last) + 1);
  }
}

/// Top-down equivalent: the input range [first, last) of `sorted` is
/// ascending, so half sizes come from a binary search; the half that
/// should go first is emitted first. `pinned` marks the range that will
/// occupy output position 0 (the guard `first != 0` in Figure 7).
void fast_rec(const std::vector<std::uint32_t>& sorted, std::size_t first,
              std::size_t last, Dim ns, bool pinned,
              std::vector<std::uint32_t>& out) {
  const std::size_t count = last - first + 1;
  if (count <= 2) {
    for (std::size_t i = first; i <= last; ++i) out.push_back(sorted[i]);
    return;
  }
  assert(ns >= 1);
  // Boundary between the halves: first key with bit (ns-1) set. All keys
  // in the range share the bits at and above ns.
  const std::uint32_t prefix = sorted[first] >> ns;
  const std::uint32_t boundary = (prefix << ns) | (1u << (ns - 1));
  const auto it = std::lower_bound(
      sorted.begin() + static_cast<std::ptrdiff_t>(first),
      sorted.begin() + static_cast<std::ptrdiff_t>(last) + 1, boundary);
  const std::size_t center =
      static_cast<std::size_t>(it - sorted.begin());
  if (center == first || center > last) {
    fast_rec(sorted, first, last, ns - 1, pinned, out);
    return;
  }
  const std::size_t lower_n = center - first;
  const std::size_t upper_n = last - center + 1;
  const bool swap = !pinned && lower_n < upper_n;
  if (swap) {
    fast_rec(sorted, center, last, ns - 1, false, out);
    fast_rec(sorted, first, center - 1, ns - 1, false, out);
  } else {
    fast_rec(sorted, first, center - 1, ns - 1, pinned, out);
    fast_rec(sorted, center, last, ns - 1, false, out);
  }
}

void to_relative(const Topology& topo, const std::vector<NodeId>& chain,
                 std::vector<std::uint32_t>& rel) {
  rel.resize(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    rel[i] = hcube::relative_key(topo, chain[0], chain[i]);
  }
  assert(std::is_sorted(rel.begin(), rel.end()) &&
         "weighted_sort input must be a dimension-ordered relative chain");
}

void from_relative(const Topology& topo, NodeId source,
                   const std::vector<std::uint32_t>& rel,
                   std::vector<NodeId>& chain) {
  const std::uint32_t skey = topo.key(source);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    chain[i] = topo.unkey(rel[i] ^ skey);
  }
}

}  // namespace

void weighted_sort_faithful(const Topology& topo, std::vector<NodeId>& chain,
                            WeightedSortScratch& scratch) {
  if (chain.size() <= 2) return;
  const NodeId source = chain[0];
  to_relative(topo, chain, scratch.rel);
  faithful_rec(scratch.rel, 0, scratch.rel.size() - 1, topo.dim());
  from_relative(topo, source, scratch.rel, chain);
}

void weighted_sort_faithful(const Topology& topo, std::vector<NodeId>& chain) {
  WeightedSortScratch scratch;
  weighted_sort_faithful(topo, chain, scratch);
}

void weighted_sort_fast(const Topology& topo, std::vector<NodeId>& chain,
                        WeightedSortScratch& scratch) {
  if (chain.size() <= 2) return;
  const NodeId source = chain[0];
  to_relative(topo, chain, scratch.rel);
  scratch.out.clear();
  scratch.out.reserve(scratch.rel.size());
  fast_rec(scratch.rel, 0, scratch.rel.size() - 1, topo.dim(),
           /*pinned=*/true, scratch.out);
  from_relative(topo, source, scratch.out, chain);
}

void weighted_sort_fast(const Topology& topo, std::vector<NodeId>& chain) {
  WeightedSortScratch scratch;
  weighted_sort_fast(topo, chain, scratch);
}

void weighted_sort(const Topology& topo, std::vector<NodeId>& chain,
                   WeightedSortImpl impl, WeightedSortScratch& scratch) {
  switch (impl) {
    case WeightedSortImpl::Faithful:
      weighted_sort_faithful(topo, chain, scratch);
      break;
    case WeightedSortImpl::Fast:
      weighted_sort_fast(topo, chain, scratch);
      break;
  }
}

void weighted_sort(const Topology& topo, std::vector<NodeId>& chain,
                   WeightedSortImpl impl) {
  WeightedSortScratch scratch;
  weighted_sort(topo, chain, impl, scratch);
}

}  // namespace hypercast::core
