#ifndef HYPERCAST_CORE_WEIGHTED_SORT_HPP
#define HYPERCAST_CORE_WEIGHTED_SORT_HPP

#include <vector>

#include "core/multicast.hpp"

namespace hypercast::core {

/// The weighted_sort procedure (Figure 7): permute a d0-relative
/// dimension-ordered chain (source at position 0) so that within every
/// subcube the more populated half appears first, while keeping the
/// source pinned at position 0. Theorem 5 guarantees the result is a
/// cube-ordered permutation of the input.
///
/// Two implementations with identical output:
///  * faithful — the paper's centralized recursion, with the swap done
///    by rotating subcube halves in place after recursing (the paper
///    quotes O(m^2) for the centralized form);
///  * fast — a top-down rewrite that decides each swap from half sizes
///    (binary searches on the sorted input) and emits straight into an
///    output buffer, O(m log N). It stands in for the distributed
///    O(m log m) version the paper defers to the technical report.

/// Reusable buffers for the sort: the relative-key image of the chain
/// and the fast version's output permutation. Both are resized to the
/// exact chain length per call, so a scratch recycled across a sweep
/// allocates only on its high-water chain. Plain value type; keep one
/// per thread (TreeBuilder embeds one).
struct WeightedSortScratch {
  std::vector<std::uint32_t> rel;
  std::vector<std::uint32_t> out;
};

/// In-place faithful version. `chain` must be the d0-relative
/// dimension-ordered chain produced by hcube::make_relative_chain.
void weighted_sort_faithful(const Topology& topo, std::vector<NodeId>& chain);
void weighted_sort_faithful(const Topology& topo, std::vector<NodeId>& chain,
                            WeightedSortScratch& scratch);

/// Fast version, same contract and identical output.
void weighted_sort_fast(const Topology& topo, std::vector<NodeId>& chain);
void weighted_sort_fast(const Topology& topo, std::vector<NodeId>& chain,
                        WeightedSortScratch& scratch);

enum class WeightedSortImpl { Faithful, Fast };

void weighted_sort(const Topology& topo, std::vector<NodeId>& chain,
                   WeightedSortImpl impl);
void weighted_sort(const Topology& topo, std::vector<NodeId>& chain,
                   WeightedSortImpl impl, WeightedSortScratch& scratch);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_WEIGHTED_SORT_HPP
