#include "core/wsort.hpp"

#include "core/tree_builder.hpp"

namespace hypercast::core {

std::vector<NodeId> wsort_chain(const MulticastRequest& req,
                                WeightedSortImpl impl) {
  req.validate();
  auto chain = hcube::make_relative_chain(req.topo, req.source, req.destinations);
  weighted_sort(req.topo, chain, impl);
  return chain;
}

MulticastSchedule wsort(const MulticastRequest& req, WeightedSortImpl impl) {
  thread_local TreeBuilder builder;
  return builder.build_wsort(req, impl);
}

}  // namespace hypercast::core
