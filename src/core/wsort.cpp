#include "core/wsort.hpp"

namespace hypercast::core {

std::vector<NodeId> wsort_chain(const MulticastRequest& req,
                                WeightedSortImpl impl) {
  req.validate();
  auto chain = hcube::make_relative_chain(req.topo, req.source, req.destinations);
  weighted_sort(req.topo, chain, impl);
  return chain;
}

MulticastSchedule wsort(const MulticastRequest& req, WeightedSortImpl impl) {
  const auto chain = wsort_chain(req, impl);
  return build_chain_schedule(req.topo, chain, NextRule::HighDim);
}

}  // namespace hypercast::core
