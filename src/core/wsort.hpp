#ifndef HYPERCAST_CORE_WSORT_HPP
#define HYPERCAST_CORE_WSORT_HPP

#include "core/chain_algorithms.hpp"
#include "core/weighted_sort.hpp"

namespace hypercast::core {

/// The W-sort routing algorithm (Section 4.2): sort the destinations
/// into the d0-relative dimension-ordered chain, permute it with
/// weighted_sort so the most crowded subcube half is always forwarded
/// first, and feed the (still cube-ordered, Theorem 5) chain to Maxport.
/// Theorem 6: the resulting multicast is contention-free.
MulticastSchedule wsort(const MulticastRequest& req,
                        WeightedSortImpl impl = WeightedSortImpl::Fast);

/// The weighted chain W-sort would multicast over, exposed for tests,
/// examples and ablations.
std::vector<NodeId> wsort_chain(const MulticastRequest& req,
                                WeightedSortImpl impl = WeightedSortImpl::Fast);

}  // namespace hypercast::core

#endif  // HYPERCAST_CORE_WSORT_HPP
