#include "fault/fault_aware.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "core/stepwise.hpp"
#include "obs/registry.hpp"

namespace hypercast::fault {

namespace {

/// Repairs one schedule. Processes the base tree in BFS order so that
/// every sender of the repaired schedule has provably received the
/// message before it issues (the repaired schedule stays a tree rooted
/// at the source).
class Repairer {
 public:
  Repairer(const core::MulticastSchedule& base,
           std::span<const NodeId> destinations, const FaultSet& faults)
      : base_(base),
        faults_(faults),
        topo_(base.topo()),
        out_(base.topo(), base.source()),
        planned_(topo_.num_nodes(), false),
        received_(topo_.num_nodes(), false) {
    if (faults_.node_failed(base_.source())) {
      throw std::invalid_argument("fault-aware multicast: source is dead");
    }
    for (const NodeId d : destinations) {
      if (faults_.node_failed(d)) {
        throw UnrepairableFault("destination " + topo_.format(d) +
                                " is dead; no repair can deliver");
      }
    }
    for (const NodeId r : base_.recipients()) {
      if (!faults_.node_failed(r)) planned_[r] = true;
    }
    received_[base_.source()] = true;
  }

  FaultAwareResult run() {
    enqueue_sends(base_.source(), base_.source());
    while (!queue_.empty()) {
      Item item = queue_.front();
      queue_.pop_front();
      process(item);
    }
    RepairReport report = std::move(report_);
    report.contention_violations =
        core::check_contention(out_, core::PortModel::all_port())
            .violations.size();
    return FaultAwareResult{std::move(out_), std::move(report)};
  }

 private:
  struct Item {
    NodeId from;
    const core::Send* send;
    bool deferred = false;  ///< requeued at least once (already reported)
  };

  void enqueue_sends(NodeId actual_from, NodeId tree_node) {
    for (const core::Send& s : base_.sends_from(tree_node)) {
      queue_.push_back({actual_from, &s});
    }
  }

  void deliver(NodeId from, NodeId to, std::span<const NodeId> payload) {
    out_.add_send(from, to, payload);  // copied into out_'s payload pool
    received_[to] = true;
    consecutive_defers_ = 0;
  }

  void process(Item item) {
    const NodeId from = item.from;
    const NodeId to = item.send->to;
    if (!item.deferred) ++report_.unicasts_checked;
    if (faults_.node_failed(to)) {
      // Dead relay (destinations were screened in the constructor): its
      // forwarding duties fall to the live sender that would have fed it.
      ++report_.dead_relays_bypassed;
      enqueue_sends(from, to);
      return;
    }
    if (!faults_.path_blocked(from, to)) {
      deliver(from, to, item.send->payload);
      enqueue_sends(to, to);
      return;
    }
    if (!item.deferred) ++report_.broken;
    if (repair(from, *item.send)) {
      enqueue_sends(to, to);
      return;
    }
    // Every candidate relay is scheduled to receive later (common when
    // the tree spans most of the cube, e.g. a broadcast): defer the
    // repair until the rest of the tree has delivered and the relays
    // become reusable. A full queue cycle with no delivery means no
    // amount of waiting will help.
    item.deferred = true;
    if (++consecutive_defers_ > queue_.size() + 1) {
      throw UnrepairableFault("no usable fault-free route from " +
                              topo_.format(from) + " to " + topo_.format(to) +
                              " (" + faults_.format() + ")");
    }
    queue_.push_back(item);
  }

  /// A node may carry extra relay traffic iff it is live and either not
  /// scheduled to receive at all (a fresh relay) or has already received
  /// (forwarding again costs a send, never a second receive).
  bool relay_usable(NodeId w) const {
    return !faults_.node_failed(w) && (!planned_[w] || received_[w]);
  }

  /// Try to reroute one broken unicast now. Returns false when every
  /// candidate route needs a relay the schedule cannot use yet (the
  /// caller defers and retries after more of the tree has delivered).
  bool repair(NodeId from, const core::Send& send) {
    const NodeId to = send.to;
    std::vector<bool> banned(topo_.num_nodes(), false);
    for (int attempt = 0; attempt < 16; ++attempt) {
      std::optional<NodePath> path =
          dimension_ordered_detour(topo_, faults_, from, to, &banned);
      const bool shortest = path.has_value();
      if (!path) path = bfs_detour(topo_, faults_, from, to, &banned);
      if (!path) return false;
      const std::vector<NodeId> endpoints = segment_endpoints(topo_, *path);
      // Every interior endpoint becomes a software relay; ban the ones
      // the schedule cannot use and search again.
      bool usable = true;
      for (std::size_t i = 1; i + 1 < endpoints.size(); ++i) {
        if (!relay_usable(endpoints[i])) {
          banned[endpoints[i]] = true;
          usable = false;
        }
      }
      if (!usable) continue;
      emit(from, send, *path, endpoints, shortest);
      return true;
    }
    return false;
  }

  void emit(NodeId from, const core::Send& send, const NodePath& path,
            const std::vector<NodeId>& endpoints, bool shortest) {
    const NodeId to = send.to;
    // Skip ahead to the last endpoint that already holds the message
    // (the sender itself, or a relay fed by the processed prefix): the
    // chain only needs to start where the message stops being present.
    std::size_t start = 0;
    for (std::size_t i = 0; i + 1 < endpoints.size(); ++i) {
      if (endpoints[i] == from || received_[endpoints[i]]) start = i;
    }
    Repair repair{from, to, path, {}, shortest};
    NodeId carrier = endpoints[start];
    int emitted_hops = 0;
    for (std::size_t i = start + 1; i < endpoints.size(); ++i) {
      const NodeId w = endpoints[i];
      emitted_hops += topo_.distance(carrier, w);
      if (w == to) {
        deliver(carrier, w, send.payload);
      } else {
        // A relay inherits responsibility for everything downstream:
        // the remaining relays of the chain, the original target and
        // its subtree.
        relay_payload_.assign(
            endpoints.begin() + static_cast<std::ptrdiff_t>(i) + 1,
            endpoints.end());
        relay_payload_.insert(relay_payload_.end(), send.payload.begin(),
                              send.payload.end());
        planned_[w] = true;
        repair.relays.push_back(w);
        deliver(carrier, w, relay_payload_);
      }
      carrier = w;
    }
    report_.relay_nodes_added += repair.relays.size();
    // Hops the repaired chain actually transmits minus the broken
    // unicast's E-cube distance. Can be negative: a chain that
    // short-circuits through a node already holding the message sends
    // fewer hops than the original route would have.
    report_.extra_hops += emitted_hops - topo_.distance(from, to);
    if (shortest) {
      ++report_.rerouted_shortest;
    } else {
      ++report_.relayed;
    }
    report_.repairs.push_back(std::move(repair));
  }

  const core::MulticastSchedule& base_;
  const FaultSet& faults_;
  Topology topo_;
  core::MulticastSchedule out_;
  std::vector<bool> planned_;   ///< will receive in the final schedule
  std::vector<bool> received_;  ///< receive already emitted (or source)
  std::deque<Item> queue_;
  std::vector<NodeId> relay_payload_;   ///< emit() scratch
  std::size_t consecutive_defers_ = 0;  ///< defers since the last delivery
  RepairReport report_;
};

}  // namespace

std::string RepairReport::summary() const {
  std::ostringstream os;
  os << "fault-aware repair: " << unicasts_checked << " unicasts checked, "
     << broken << " broken (" << rerouted_shortest << " shortest detours, "
     << relayed << " relayed), " << dead_relays_bypassed
     << " dead relays bypassed, " << relay_nodes_added
     << " relay nodes added, +" << extra_hops << " hops, "
     << contention_violations << " contention violation"
     << (contention_violations == 1 ? "" : "s");
  return os.str();
}

FaultAwareResult repair_schedule(const core::MulticastSchedule& base,
                                 std::span<const NodeId> destinations,
                                 const FaultSet& faults) {
  HYPERCAST_OBS_SPAN("fault.repair");
  FaultAwareResult out = Repairer(base, destinations, faults).run();
  if (obs::stats_enabled()) {
    obs::Registry& r = obs::default_registry();
    static obs::Counter* const calls = &r.counter("fault.repair_calls");
    static obs::Counter* const broken = &r.counter("fault.broken");
    static obs::Counter* const rerouted =
        &r.counter("fault.rerouted_shortest");
    static obs::Counter* const relayed = &r.counter("fault.relayed");
    static obs::Counter* const relays_added =
        &r.counter("fault.relay_nodes_added");
    static obs::Counter* const dead_bypassed =
        &r.counter("fault.dead_relays_bypassed");
    calls->inc();
    broken->add(out.report.broken);
    rerouted->add(out.report.rerouted_shortest);
    relayed->add(out.report.relayed);
    relays_added->add(out.report.relay_nodes_added);
    dead_bypassed->add(out.report.dead_relays_bypassed);
  }
  return out;
}

FaultAwareResult fault_aware_multicast(const core::AlgorithmEntry& base,
                                       const core::MulticastRequest& request,
                                       const FaultSet& faults) {
  return repair_schedule(base.build(request), request.destinations, faults);
}

std::size_t blocked_unicasts(const core::MulticastSchedule& schedule,
                             const FaultSet& faults) {
  std::size_t blocked = 0;
  for (const core::Unicast& u : schedule.unicasts()) {
    if (faults.path_blocked(u.from, u.to)) ++blocked;
  }
  return blocked;
}

core::AlgorithmEntry fault_aware_entry(
    const core::AlgorithmEntry& base, std::shared_ptr<const FaultSet> faults) {
  auto build = base.build;
  return core::AlgorithmEntry{
      base.name + "-ft", base.display + "+FT",
      [build = std::move(build),
       faults = std::move(faults)](const core::MulticastRequest& r) {
        return repair_schedule(build(r), r.destinations, *faults).schedule;
      }};
}

void register_fault_aware_algorithms(std::shared_ptr<const FaultSet> faults) {
  for (const core::AlgorithmEntry& base : core::paper_algorithms()) {
    core::register_algorithm(fault_aware_entry(base, faults));
  }
  bump_fault_epoch();
}

namespace {
std::atomic<std::uint64_t>& fault_epoch_counter() {
  static std::atomic<std::uint64_t> epoch{0};
  return epoch;
}
}  // namespace

std::uint64_t fault_epoch() {
  return fault_epoch_counter().load(std::memory_order_acquire);
}

void bump_fault_epoch() {
  fault_epoch_counter().fetch_add(1, std::memory_order_acq_rel);
  if (obs::stats_enabled()) {
    obs::default_registry().counter("fault.epoch_bumps").inc();
  }
}

}  // namespace hypercast::fault
