#ifndef HYPERCAST_FAULT_FAULT_AWARE_HPP
#define HYPERCAST_FAULT_FAULT_AWARE_HPP

#include <memory>
#include <string>

#include "core/contention.hpp"
#include "core/registry.hpp"
#include "fault/fault_route.hpp"
#include "fault/fault_set.hpp"

namespace hypercast::fault {

/// One repaired unicast of a schedule.
struct Repair {
  NodeId from = 0;  ///< the (live) sender of the broken unicast
  NodeId to = 0;    ///< its destination
  NodePath path;    ///< the fault-free replacement path actually routed
  std::vector<NodeId> relays;  ///< fresh relay recipients introduced
  bool shortest = false;       ///< repaired at the original hop count
};

/// What the repair pass did to one schedule, plus the degraded-mode
/// price it paid: detours break the algorithms' contention-freedom
/// guarantees, so the report re-runs the Definition 4 checker on the
/// repaired tree and counts the violations the detours introduced.
struct RepairReport {
  std::size_t unicasts_checked = 0;
  std::size_t broken = 0;            ///< unicasts blocked by a fault
  std::size_t rerouted_shortest = 0; ///< fixed by a same-length detour
  std::size_t relayed = 0;           ///< needed a longer relay route
  std::size_t dead_relays_bypassed = 0;  ///< dead tree nodes whose
                                         ///< forwarding moved to a parent
  std::size_t relay_nodes_added = 0;     ///< extra processors involved
  int extra_hops = 0;  ///< transmitted detour hops minus E-cube distance
                       ///< (negative when chains short-circuit through
                       ///< nodes that already hold the message)
  std::vector<Repair> repairs;

  /// Contention the detours introduced (Definition 4 over the repaired
  /// schedule under the all-port stepwise model). Zero-fault inputs
  /// keep the base algorithm's guarantee.
  std::size_t contention_violations = 0;

  bool clean() const { return broken == 0 && dead_relays_bypassed == 0; }
  std::string summary() const;
};

/// A repaired schedule plus its repair accounting.
struct FaultAwareResult {
  core::MulticastSchedule schedule;
  RepairReport report;
};

/// Thrown when a destination is unreachable under the fault set (dead
/// destination or partitioned cube) — no repair can deliver.
class UnrepairableFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Repair an existing schedule against `faults`: every unicast whose
/// E-cube path crosses a failed arc or dead node is rerouted along a
/// shortest fault-free dimension-ordered detour (greedy permutation
/// search), falling back to a breadth-first relay route through live
/// intermediates; dead non-destination recipients are bypassed by
/// moving their forwarding duties to their live parent. The result is a
/// valid multicast tree in which no unicast touches a failed resource
/// (the simulator's hard-error path proves this at run time).
/// Throws UnrepairableFault when a destination cannot be reached and
/// std::invalid_argument when the source is dead.
FaultAwareResult repair_schedule(const core::MulticastSchedule& base,
                                 std::span<const NodeId> destinations,
                                 const FaultSet& faults);

/// Build `base` on the (fault-oblivious) request, then repair the tree.
FaultAwareResult fault_aware_multicast(const core::AlgorithmEntry& base,
                                       const core::MulticastRequest& request,
                                       const FaultSet& faults);

/// Number of unicasts in `schedule` whose E-cube route crosses a failed
/// arc or dead node (endpoints included) — 0 means the schedule can
/// replay unrepaired under `faults`. The striping layer uses this to
/// pick which trees a fault epoch actually touched (and, with a parity
/// stripe, which single tree to drop instead of repairing).
std::size_t blocked_unicasts(const core::MulticastSchedule& schedule,
                             const FaultSet& faults);

/// Wrap a registered algorithm into a fault-aware registry entry named
/// "<name>-ft" (display "<Display>+FT") that builds and repairs against
/// the captured fault set.
core::AlgorithmEntry fault_aware_entry(const core::AlgorithmEntry& base,
                                       std::shared_ptr<const FaultSet> faults);

/// Register fault-aware variants of the four paper algorithms in
/// core::registry ("ucube-ft", "maxport-ft", "combine-ft", "wsort-ft"),
/// replacing any previously registered variants (e.g. for a new fault
/// set). Bumps the fault epoch (below), so cached fault-dependent
/// schedules built against the previous fault set become stale.
void register_fault_aware_algorithms(std::shared_ptr<const FaultSet> faults);

/// Monotonic process-wide fault epoch. Repaired schedules depend on the
/// absolute fault set, not just the relative request, so caches stamp
/// fault-dependent entries with the epoch current at insertion and treat
/// an epoch mismatch as a miss (lazy invalidation — no cache walk on a
/// fault event). The epoch advances on every
/// register_fault_aware_algorithms call and on explicit bumps.
std::uint64_t fault_epoch();

/// Advance the fault epoch, invalidating every cached fault-dependent
/// schedule. Call after mutating or retiring a fault set that registered
/// algorithms still capture. Thread-safe.
void bump_fault_epoch();

}  // namespace hypercast::fault

#endif  // HYPERCAST_FAULT_FAULT_AWARE_HPP
