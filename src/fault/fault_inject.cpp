#include "fault/fault_inject.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace hypercast::fault {

namespace {

/// Dense index of an undirected link: the arc index of its low arc.
/// Exactly half of the arc indices name links (the ones whose `from`
/// has the dimension bit clear), so sampling maps a flat link ordinal
/// onto (low node, dim) arithmetic.
Link link_at(const Topology& topo, std::size_t ordinal) {
  // Links along dimension d are in bijection with nodes whose bit d is
  // clear: 2^(n-1) per dimension.
  const std::size_t per_dim = topo.num_nodes() / 2;
  const Dim d = static_cast<Dim>(ordinal / per_dim);
  std::size_t rest = ordinal % per_dim;
  // Spread `rest` over the n-1 remaining bits, skipping bit d.
  NodeId low = 0;
  for (Dim b = 0, out = 0; b < topo.dim(); ++b) {
    if (b == d) continue;
    if (rest & (std::size_t{1} << out)) low |= NodeId{1} << b;
    ++out;
  }
  return Link{low, d};
}

}  // namespace

FaultSet random_link_faults(const Topology& topo, std::size_t count,
                            Rng& rng) {
  const std::size_t num_links = topo.num_arcs() / 2;
  if (count > num_links) {
    throw std::invalid_argument("random_link_faults: more faults than links");
  }
  FaultSet fs(topo);
  // Floyd's sampling, as in workload::random_destinations: O(count)
  // memory on any cube size.
  std::unordered_set<std::size_t> chosen;
  for (std::size_t j = num_links - count; j < num_links; ++j) {
    std::uniform_int_distribution<std::size_t> dist(0, j);
    const std::size_t pick = dist(rng);
    const std::size_t ordinal = chosen.insert(pick).second ? pick : j;
    chosen.insert(ordinal);
    const Link l = link_at(topo, ordinal);
    fs.fail_link(l.low, l.dim);
  }
  return fs;
}

FaultSet random_node_faults(const Topology& topo, std::size_t count, Rng& rng,
                            std::span<const NodeId> protect) {
  const std::unordered_set<NodeId> keep(protect.begin(), protect.end());
  if (count + keep.size() > topo.num_nodes()) {
    throw std::invalid_argument("random_node_faults: more faults than nodes");
  }
  FaultSet fs(topo);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  std::size_t failed = 0;
  while (failed < count) {
    const NodeId u = dist(rng);
    if (keep.contains(u) || fs.node_failed(u)) continue;
    fs.fail_node(u);
    ++failed;
  }
  return fs;
}

std::size_t links_for_rate(const Topology& topo, double rate) {
  assert(rate >= 0.0 && rate <= 1.0);
  const double links = static_cast<double>(topo.num_arcs()) / 2.0;
  return static_cast<std::size_t>(std::llround(links * rate));
}

FaultSet connected_link_faults(const Topology& topo, std::size_t count,
                               Rng& rng, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    FaultSet fs = random_link_faults(topo, count, rng);
    if (fs.surviving_connected()) return fs;
  }
  throw std::runtime_error(
      "connected_link_faults: no connected sample found (fault rate too "
      "high?)");
}

}  // namespace hypercast::fault
