#ifndef HYPERCAST_FAULT_FAULT_INJECT_HPP
#define HYPERCAST_FAULT_FAULT_INJECT_HPP

#include <span>

#include "fault/fault_set.hpp"
#include "workload/random_sets.hpp"

namespace hypercast::fault {

using workload::Rng;

/// Seeded random fault generators, in the workload/ mould: every
/// experiment seeds explicitly (workload::derive_seed) so fault
/// scenarios are exactly reproducible and independent of sweep order.

/// `count` distinct undirected links failed uniformly at random among
/// the n * 2^(n-1) links of the cube. Precondition: count <= num links.
FaultSet random_link_faults(const Topology& topo, std::size_t count, Rng& rng);

/// `count` distinct nodes failed uniformly at random, never touching the
/// nodes in `protect` (a multicast's source and destinations stay
/// alive). Precondition: count + |protect| <= num nodes.
FaultSet random_node_faults(const Topology& topo, std::size_t count, Rng& rng,
                            std::span<const NodeId> protect = {});

/// Number of links a fractional fault `rate` in [0, 1] corresponds to
/// (rounded to nearest), e.g. rate 0.10 on a 6-cube = 19 of 192 links.
std::size_t links_for_rate(const Topology& topo, double rate);

/// Like random_link_faults, but resamples (fresh draws from `rng`) until
/// the surviving cube is connected, up to `max_attempts` tries. Returns
/// the first connected sample; throws std::runtime_error when every
/// attempt leaves the cube partitioned (only plausible at extreme
/// rates). This is the generator the degradation ablation uses: a
/// partitioned cube has unreachable destinations by construction, which
/// would measure impossibility, not algorithm quality.
FaultSet connected_link_faults(const Topology& topo, std::size_t count,
                               Rng& rng, int max_attempts = 64);

}  // namespace hypercast::fault

#endif  // HYPERCAST_FAULT_FAULT_INJECT_HPP
