#include "fault/fault_route.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

#include "hcube/bits.hpp"

namespace hypercast::fault {

namespace {

bool intermediate_usable(const FaultSet& faults, const std::vector<bool>* banned,
                         NodeId w) {
  return !faults.node_failed(w) && !(banned && (*banned)[w]);
}

Dim hop_dim(NodeId a, NodeId b) {
  assert(hcube::hamming(a, b) == 1);
  return hcube::lowest_bit(a ^ b);
}

struct PermutationDfs {
  const Topology& topo;
  const FaultSet& faults;
  const std::vector<bool>* banned;
  NodeId target;
  std::vector<Dim> prefer;  ///< differing dims, resolution order first
  std::unordered_set<NodeId> dead_end;
  NodePath path;

  bool run(NodeId cur) {
    if (cur == target) return true;
    const NodeId remaining = cur ^ target;
    for (const Dim d : prefer) {
      if (!hcube::test_bit(remaining, d)) continue;
      if (faults.arc_failed(Arc{cur, d})) continue;
      const NodeId next = topo.neighbor(cur, d);
      if (next != target && !intermediate_usable(faults, banned, next)) {
        continue;
      }
      if (dead_end.contains(next)) continue;
      path.push_back(next);
      if (run(next)) return true;
      path.pop_back();
    }
    dead_end.insert(cur);
    return false;
  }
};

}  // namespace

std::optional<NodePath> dimension_ordered_detour(
    const Topology& topo, const FaultSet& faults, NodeId u, NodeId v,
    const std::vector<bool>* banned) {
  assert(u != v);
  if (faults.node_failed(u) || faults.node_failed(v)) return std::nullopt;
  PermutationDfs dfs{topo, faults, banned, v,
                     hcube::route_dims(topo, u, v), {}, {u}};
  if (!dfs.run(u)) return std::nullopt;
  return std::move(dfs.path);
}

std::optional<NodePath> bfs_detour(const Topology& topo,
                                   const FaultSet& faults, NodeId u, NodeId v,
                                   const std::vector<bool>* banned) {
  assert(u != v);
  const NodeId sources[1] = {u};
  return constrained_bfs_detour(topo, faults, sources, v, {}, banned);
}

std::optional<NodePath> constrained_bfs_detour(
    const Topology& topo, const FaultSet& faults,
    std::span<const NodeId> sources, NodeId target, const ArcFilter& arc_ok,
    const std::vector<bool>* banned) {
  if (faults.node_failed(target)) return std::nullopt;
  constexpr NodeId kUnreached = ~NodeId{0};
  std::vector<NodeId> parent(topo.num_nodes(), kUnreached);
  std::deque<NodeId> frontier;
  for (const NodeId s : sources) {
    if (s == target) return std::nullopt;
    if (faults.node_failed(s) || parent[s] != kUnreached) continue;
    parent[s] = s;
    frontier.push_back(s);
  }
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (Dim d = 0; d < topo.dim(); ++d) {
      const Arc arc{cur, d};
      if (faults.arc_failed(arc)) continue;
      if (arc_ok && !arc_ok(arc)) continue;
      const NodeId next = topo.neighbor(cur, d);
      if (parent[next] != kUnreached) continue;
      if (next != target && !intermediate_usable(faults, banned, next)) {
        continue;
      }
      parent[next] = cur;
      if (next == target) {
        NodePath path{target};
        for (NodeId w = target; parent[w] != w; w = parent[w]) {
          path.push_back(parent[w]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::vector<NodeId> segment_endpoints(const Topology& topo,
                                      const NodePath& path) {
  assert(path.size() >= 2);
  std::vector<NodeId> out{path.front()};
  for (std::size_t i = 2; i < path.size(); ++i) {
    const Dim prev = hop_dim(path[i - 2], path[i - 1]);
    const Dim cur = hop_dim(path[i - 1], path[i]);
    // Within one E-cube segment the traversed dimensions strictly
    // descend in resolution order; any ascent forces a software relay.
    const bool follows = topo.resolution() == hcube::Resolution::HighToLow
                             ? cur < prev
                             : cur > prev;
    if (!follows) out.push_back(path[i - 1]);
  }
  out.push_back(path.back());
  return out;
}

}  // namespace hypercast::fault
