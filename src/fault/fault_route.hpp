#ifndef HYPERCAST_FAULT_FAULT_ROUTE_HPP
#define HYPERCAST_FAULT_FAULT_ROUTE_HPP

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "fault/fault_set.hpp"

namespace hypercast::fault {

/// Detour-routing primitives for repairing multicast trees over a
/// faulted cube. Both searches return a *node path* (u; w1; ...; v):
/// consecutive nodes adjacent, every traversed arc live, every
/// intermediate node live. The wrapper in fault_aware.cpp decomposes
/// such a path into E-cube-exact segments (see segment_endpoints).

using NodePath = std::vector<NodeId>;

/// Greedy dimension-permutation search for a *shortest* fault-free
/// detour: a path from u to v of length distance(u, v) that corrects
/// the differing dimensions in some order other than the (blocked)
/// E-cube order. Dimensions are tried in resolution-order preference at
/// every step, with backtracking and failed-state memoisation, so the
/// result stays as close to dimension order as faults permit (fewer
/// E-cube segments). `banned` (optional, node-indexed) excludes nodes
/// from *intermediate* positions, on top of dead nodes.
/// Returns nullopt when every shortest permutation path is blocked.
std::optional<NodePath> dimension_ordered_detour(
    const Topology& topo, const FaultSet& faults, NodeId u, NodeId v,
    const std::vector<bool>* banned = nullptr);

/// Relay fallback: breadth-first shortest path from u to v through the
/// surviving cube (possibly longer than distance(u, v)). Same `banned`
/// contract. Returns nullopt only when u and v are disconnected in the
/// surviving (and unbanned) cube.
std::optional<NodePath> bfs_detour(const Topology& topo,
                                   const FaultSet& faults, NodeId u, NodeId v,
                                   const std::vector<bool>* banned = nullptr);

/// Admission predicate over directed arcs — the hook the disjoint-path
/// router (paths/disjoint.hpp) uses to exclude channels owned by other
/// spanning trees. Arcs the fault set kills are excluded regardless.
using ArcFilter = std::function<bool(Arc)>;

/// The generalized search the two detours above are special cases of: a
/// breadth-first shortest path from *any* node of `sources` to `target`
/// through the surviving cube, restricted to arcs `arc_ok` admits (an
/// empty filter admits everything). The returned path starts at the
/// chosen source; because the search is multi-source, the path never
/// passes through another source as an intermediate (it would have been
/// a shorter origin). Same `banned` contract as above. Returns nullopt
/// when no admitted live route exists.
std::optional<NodePath> constrained_bfs_detour(
    const Topology& topo, const FaultSet& faults,
    std::span<const NodeId> sources, NodeId target, const ArcFilter& arc_ok,
    const std::vector<bool>* banned = nullptr);

/// Split a node path into maximal runs that an E-cube router would
/// follow verbatim: within a run the traversed dimensions strictly
/// descend in the topology's resolution order, so the run *is* the
/// E-cube path between its endpoints. Returns the run boundaries
/// [u, w1, ..., v]; each wi must relay the message in software.
std::vector<NodeId> segment_endpoints(const Topology& topo,
                                      const NodePath& path);

}  // namespace hypercast::fault

#endif  // HYPERCAST_FAULT_FAULT_ROUTE_HPP
