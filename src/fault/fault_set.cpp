#include "fault/fault_set.hpp"

#include <deque>
#include <sstream>
#include <stdexcept>

namespace hypercast::fault {

Link link_of(const Topology& topo, Arc a) {
  const NodeId other = topo.neighbor(a.from, a.dim);
  return Link{std::min(a.from, other), a.dim};
}

FaultSet::FaultSet(const Topology& topo)
    : topo_(topo),
      link_down_(topo.num_arcs(), false),
      dead_node_(topo.num_nodes(), false) {}

void FaultSet::fail_link(NodeId u, Dim d) {
  if (!topo_.contains(u) || !topo_.valid_dim(d)) {
    throw std::invalid_argument("fail_link: endpoint or dimension outside cube");
  }
  const Link link = link_of(topo_, Arc{u, d});
  const std::size_t idx = topo_.arc_index(Arc{link.low, link.dim});
  if (link_down_[idx]) return;
  link_down_[idx] = true;
  failed_links_.push_back(link);
}

void FaultSet::fail_node(NodeId u) {
  if (!topo_.contains(u)) {
    throw std::invalid_argument("fail_node: node outside cube");
  }
  if (dead_node_[u]) return;
  dead_node_[u] = true;
  failed_nodes_.push_back(u);
}

bool FaultSet::link_failed(NodeId u, Dim d) const {
  const Link link = link_of(topo_, Arc{u, d});
  return link_down_[topo_.arc_index(Arc{link.low, link.dim})];
}

bool FaultSet::arc_failed(Arc a) const {
  return link_failed(a.from, a.dim) || dead_node_[a.from] ||
         dead_node_[topo_.neighbor(a.from, a.dim)];
}

bool FaultSet::path_blocked(NodeId u, NodeId v) const {
  if (dead_node_[u] || dead_node_[v]) return true;
  NodeId cur = u;
  for (const Dim d : hcube::route_dims(topo_, u, v)) {
    if (arc_failed(Arc{cur, d})) return true;
    cur = topo_.neighbor(cur, d);
  }
  return false;
}

std::vector<NodeId> FaultSet::live_nodes() const {
  std::vector<NodeId> out;
  out.reserve(topo_.num_nodes() - failed_nodes_.size());
  for (NodeId u = 0; u < static_cast<NodeId>(topo_.num_nodes()); ++u) {
    if (!dead_node_[u]) out.push_back(u);
  }
  return out;
}

bool FaultSet::surviving_connected() const {
  const auto live = live_nodes();
  if (live.size() <= 1) return true;
  std::vector<bool> seen(topo_.num_nodes(), false);
  std::deque<NodeId> frontier{live.front()};
  seen[live.front()] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (Dim d = 0; d < topo_.dim(); ++d) {
      if (arc_failed(Arc{u, d})) continue;
      const NodeId v = topo_.neighbor(u, d);
      if (!seen[v]) {
        seen[v] = true;
        ++reached;
        frontier.push_back(v);
      }
    }
  }
  return reached == live.size();
}

std::uint64_t FaultSet::fingerprint(std::uint64_t seed) const {
  // FNV-1a 64 with a splitmix64 tail, matching core::hash_words'
  // spirit without pulling core/ in: fold the link (low, dim) pairs and
  // the dead nodes with distinct tags so a link and a node never alias.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = 0xcbf29ce484222325ull ^ (seed * 0x9e3779b97f4a7c15ull);
  auto fold = [&h](std::uint64_t w) {
    h ^= w;
    h *= kPrime;
  };
  for (const Link& l : failed_links_) {
    fold((std::uint64_t{1} << 62) | (std::uint64_t{l.low} << 8) |
         static_cast<std::uint64_t>(l.dim));
  }
  for (const NodeId n : failed_nodes_) {
    fold((std::uint64_t{2} << 62) | std::uint64_t{n});
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::string FaultSet::format() const {
  std::ostringstream os;
  os << failed_links_.size() << " failed link"
     << (failed_links_.size() == 1 ? "" : "s");
  if (!failed_links_.empty()) {
    os << " (";
    for (std::size_t i = 0; i < failed_links_.size(); ++i) {
      if (i) os << ", ";
      const Link& l = failed_links_[i];
      os << topo_.format(l.low) << '-'
         << topo_.format(topo_.neighbor(l.low, l.dim));
    }
    os << ')';
  }
  os << ", " << failed_nodes_.size() << " dead node"
     << (failed_nodes_.size() == 1 ? "" : "s");
  if (!failed_nodes_.empty()) {
    os << " (";
    for (std::size_t i = 0; i < failed_nodes_.size(); ++i) {
      if (i) os << ", ";
      os << topo_.format(failed_nodes_[i]);
    }
    os << ')';
  }
  return os.str();
}

}  // namespace hypercast::fault
