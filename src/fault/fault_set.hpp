#ifndef HYPERCAST_FAULT_FAULT_SET_HPP
#define HYPERCAST_FAULT_FAULT_SET_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hcube/ecube.hpp"
#include "hcube/topology.hpp"

namespace hypercast::fault {

using hcube::Arc;
using hcube::Dim;
using hcube::NodeId;
using hcube::Topology;

/// An undirected hypercube link, named by its lower endpoint and the
/// dimension it spans. Failing a link kills both directed arcs.
struct Link {
  NodeId low = 0;  ///< the endpoint with the dimension bit clear
  Dim dim = 0;

  friend constexpr bool operator==(const Link&, const Link&) = default;
};

/// Canonical link of an arc (normalizes direction).
Link link_of(const Topology& topo, Arc a);

/// The set of failed links and failed nodes of one hypercube instance.
///
/// A failed node is completely dead: it can neither source, sink nor
/// *relay* messages, so every E-cube path through it is unusable and all
/// of its incident links are implicitly down. A failed link keeps both
/// endpoints alive but makes both directed arcs unacquirable.
///
/// Membership queries are O(1) (flat bitmaps over the dense arc/node
/// numbering); the class is cheap to copy for cube dimensions that fit
/// in memory anyway.
class FaultSet {
 public:
  explicit FaultSet(const Topology& topo);

  const Topology& topo() const { return topo_; }

  /// Fail the undirected link (both arcs). Idempotent. Throws
  /// std::invalid_argument for endpoints/dimensions outside the cube.
  void fail_link(NodeId u, Dim d);

  /// Fail a node and (implicitly) every incident link. Idempotent.
  void fail_node(NodeId u);

  bool node_failed(NodeId u) const { return dead_node_[u]; }
  bool link_failed(NodeId u, Dim d) const;

  /// True iff the directed arc is unusable: its link failed or either
  /// endpoint is dead.
  bool arc_failed(Arc a) const;

  /// True iff the E-cube route u -> v crosses a failed arc or a dead
  /// node (endpoints included). u == v is never blocked unless u dead.
  bool path_blocked(NodeId u, NodeId v) const;

  std::size_t num_failed_links() const { return failed_links_.size(); }
  std::size_t num_failed_nodes() const { return failed_nodes_.size(); }
  bool empty() const { return failed_links_.empty() && failed_nodes_.empty(); }

  /// The explicitly failed links / nodes, in insertion order.
  const std::vector<Link>& failed_links() const { return failed_links_; }
  const std::vector<NodeId>& failed_nodes() const { return failed_nodes_; }

  /// All nodes that are alive, ascending.
  std::vector<NodeId> live_nodes() const;

  /// True iff every live node can reach every other live node through
  /// live links (BFS over the surviving cube). A cube with <= 1 live
  /// node is trivially connected.
  bool surviving_connected() const;

  /// Human-readable one-line summary, e.g.
  /// "3 failed links (0010-0110, ...), 1 dead node (0101)".
  std::string format() const;

  /// 64-bit fingerprint of the fault membership, mixed from `seed` —
  /// what the striping layer salts degraded cache entries with so two
  /// fault sets never alias within one fault epoch. Insertion-order
  /// dependent (two equal sets built in different orders may differ):
  /// that costs at most a cache miss, never a wrong hit, because the
  /// salt only partitions the key space.
  std::uint64_t fingerprint(std::uint64_t seed = 0) const;

 private:
  Topology topo_;
  std::vector<bool> link_down_;  ///< indexed by arc_index of the low arc
  std::vector<bool> dead_node_;
  std::vector<Link> failed_links_;
  std::vector<NodeId> failed_nodes_;
};

}  // namespace hypercast::fault

#endif  // HYPERCAST_FAULT_FAULT_SET_HPP
