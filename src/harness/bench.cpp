#include "harness/bench.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "harness/experiment.hpp"
#include "metrics/json.hpp"
#include "obs/registry.hpp"

namespace hypercast::bench {

namespace {

std::vector<Benchmark>& registry() {
  static std::vector<Benchmark> benchmarks;
  return benchmarks;
}

std::string format_x(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", x);
  return buf;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

void write_machine(metrics::JsonWriter& w) {
  w.key("machine").begin_object();
#if defined(__linux__)
  w.key("os").value("linux");
#elif defined(__APPLE__)
  w.key("os").value("darwin");
#else
  w.key("os").value("unknown");
#endif
#if defined(__VERSION__)
  w.key("compiler").value(__VERSION__);
#else
  w.key("compiler").value("unknown");
#endif
#if defined(NDEBUG)
  w.key("assertions").value(false);
#else
  w.key("assertions").value(true);
#endif
  w.key("hardware_threads")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("pointer_bits").value(static_cast<std::uint64_t>(sizeof(void*) * 8));
  w.key("timestamp_utc").value(utc_timestamp());
  w.end_object();
}

namespace {

void write_series(metrics::JsonWriter& w, const metrics::Series& series) {
  w.begin_object();
  w.key("title").value(series.title());
  w.key("x_label").value(series.x_label());
  w.key("y_label").value(series.y_label());
  w.key("curves").begin_array();
  for (const metrics::Curve& curve : series.curves()) {
    w.begin_object();
    w.key("name").value(curve.name);
    w.key("points").begin_array();
    for (const metrics::Point& p : curve.points) {
      w.begin_object();
      w.key("x").value(p.x);
      w.key("mean").value(p.stats.mean());
      w.key("min").value(p.stats.min());
      w.key("max").value(p.stats.max());
      w.key("stddev").value(p.stats.stddev());
      w.key("ci95").value(p.stats.ci95_half_width());
      w.key("count").value(static_cast<std::uint64_t>(p.stats.count()));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

/// The built-in smoke benchmark: a fast end-to-end pass through the
/// schedule builders, the stepwise model and the wormhole DES, small
/// enough for CI and the golden-schema test.
void run_smoke(const Context& ctx, Report& report) {
  harness::StepSweepConfig step;
  step.title = "smoke: stepwise 4-cube";
  step.n = 4;
  step.sizes = {3, 7, 15};
  step.sets_per_point = 4;
  step.seed = ctx.seed;
  step.threads = ctx.threads;
  summarize_series(report, harness::run_step_sweep(step));

  harness::DelaySweepConfig delay;
  delay.title = "smoke: delay 4-cube";
  delay.n = 4;
  delay.sizes = {5, 15};
  delay.sets_per_point = 3;
  delay.seed = ctx.seed;
  delay.threads = ctx.threads;
  const auto start = std::chrono::steady_clock::now();
  const auto result = harness::run_delay_sweep(delay);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  summarize_series(report, result.avg);
  summarize_series(report, result.max);
  report.metric("events", static_cast<double>(result.events));
  report.metric("events_per_sec",
                seconds > 0.0 ? static_cast<double>(result.events) / seconds
                              : 0.0);
  report.metric("blocked_acquisitions",
                static_cast<double>(result.blocked_acquisitions));
}

const Registration smoke_registration{
    {"smoke", Kind::Micro,
     "end-to-end smoke pass: schedule builders + stepwise model + DES on a "
     "4-cube (schema/CI check)",
     run_smoke}};

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::Figure:
      return "figure";
    case Kind::Ablation:
      return "ablation";
    case Kind::Micro:
      return "micro";
  }
  return "unknown";
}

Registration::Registration(Benchmark benchmark) {
  registry().push_back(std::move(benchmark));
}

std::vector<const Benchmark*> all_benchmarks() {
  std::vector<const Benchmark*> out;
  out.reserve(registry().size());
  for (const Benchmark& b : registry()) out.push_back(&b);
  std::sort(out.begin(), out.end(),
            [](const Benchmark* a, const Benchmark* b) {
              return a->name < b->name;
            });
  return out;
}

bool matches(const Benchmark& benchmark, const std::string& filter) {
  if (filter.empty()) return true;
  if (benchmark.name.find(filter) != std::string::npos) return true;
  return filter == kind_name(benchmark.kind);
}

std::string artifact_name(const Benchmark& benchmark, const RunOptions& opts) {
  return opts.cache ? benchmark.name + "_cached" : benchmark.name;
}

std::string benchmark_json(const Benchmark& benchmark, const RunOptions& opts,
                           const Report& report,
                           const std::vector<double>& wall_seconds,
                           const obs::Registry* stats) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("schema").value("hypercast-bench-v1");
  w.key("name").value(artifact_name(benchmark, opts));
  w.key("kind").value(kind_name(benchmark.kind));
  w.key("description").value(benchmark.description);
  w.key("config").begin_object();
  w.key("quick").value(opts.quick);
  w.key("threads").value(static_cast<std::int64_t>(opts.threads));
  w.key("repeat").value(static_cast<std::int64_t>(opts.repeat));
  w.key("seed").value(static_cast<std::uint64_t>(opts.seed));
  w.key("cache").value(opts.cache);
  w.end_object();
  w.key("wall_seconds").begin_array();
  for (const double s : wall_seconds) w.value(s);
  w.end_array();
  w.key("metrics").begin_object();
  for (const auto& [name, value] : report.metrics()) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("series").begin_array();
  for (const metrics::Series& s : report.series()) write_series(w, s);
  w.end_array();
  if (stats != nullptr) {
    w.key("stats");
    stats->write_json(w);
  }
  write_machine(w);
  w.end_object();
  return std::move(w).str();
}

std::vector<RunRecord> run_benchmarks(const RunOptions& opts) {
  if (opts.repeat < 1) {
    throw std::invalid_argument("--repeat must be at least 1");
  }
  std::vector<const Benchmark*> selected;
  for (const Benchmark* b : all_benchmarks()) {
    if (matches(*b, opts.filter)) selected.push_back(b);
  }

  Context ctx;
  ctx.quick = opts.quick;
  ctx.threads = opts.threads;
  ctx.seed = opts.seed;
  ctx.cache = opts.cache;
  ctx.cache_shards = opts.cache_shards;
  ctx.cache_bytes = opts.cache_bytes;

  if (!opts.out_dir.empty()) {
    std::filesystem::create_directories(opts.out_dir);
  }

  // --stats scope: collection on for the whole run, prior flag state
  // restored on exit (benchmarks that flip the flags themselves, like
  // micro_obs_overhead, save/restore with their own FlagsGuard).
  obs::FlagsGuard obs_flags;
  if (opts.stats) obs::set_stats_enabled(true);

  std::vector<RunRecord> records;
  records.reserve(selected.size());
  std::size_t index = 0;
  for (const Benchmark* b : selected) {
    ++index;
    if (opts.verbose) {
      std::printf("[%zu/%zu] %s (%s)\n", index, selected.size(),
                  b->name.c_str(), kind_name(b->kind));
      std::fflush(stdout);
    }
    RunRecord record;
    record.name = artifact_name(*b, opts);
    Report report;
    // Each artifact's stats block covers exactly its own benchmark.
    if (opts.stats) obs::default_registry().reset();
    for (int r = 0; r < opts.repeat; ++r) {
      report = Report();
      const auto start = std::chrono::steady_clock::now();
      b->fn(ctx, report);
      record.wall_seconds.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    }
    record.json = benchmark_json(*b, opts, report, record.wall_seconds,
                                 opts.stats ? &obs::default_registry()
                                            : nullptr);
    if (!opts.out_dir.empty()) {
      const std::filesystem::path path =
          std::filesystem::path(opts.out_dir) /
          ("BENCH_" + record.name + ".json");
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << record.json << '\n';
      if (!out) {
        throw std::runtime_error("failed to write " + path.string());
      }
      record.json_path = path.string();
    }
    if (opts.verbose) {
      std::printf("    %.3fs%s%s\n", record.wall_seconds.back(),
                  record.json_path.empty() ? "" : " -> ",
                  record.json_path.c_str());
      std::fflush(stdout);
    }
    records.push_back(std::move(record));
  }
  return records;
}

void report_delay_sweep(Report& report,
                        const harness::DelaySweepResult& result,
                        double seconds, bool want_avg, bool want_max) {
  if (want_avg) summarize_series(report, result.avg);
  if (want_max) summarize_series(report, result.max);
  report.metric("events", static_cast<double>(result.events));
  report.metric("events_per_sec",
                seconds > 0.0 ? static_cast<double>(result.events) / seconds
                              : 0.0);
  report.metric("blocked_acquisitions",
                static_cast<double>(result.blocked_acquisitions));
}

void summarize_series(Report& report, const metrics::Series& series) {
  for (const metrics::Curve& curve : series.curves()) {
    if (curve.points.empty()) continue;
    const metrics::Point* last = &curve.points.front();
    for (const metrics::Point& p : curve.points) {
      if (p.x > last->x) last = &p;
    }
    report.metric(curve.name + " " + series.y_label() + " @ x=" +
                      format_x(last->x),
                  last->stats.mean());
  }
  report.add_series(series);
}

}  // namespace hypercast::bench
