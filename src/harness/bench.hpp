#ifndef HYPERCAST_HARNESS_BENCH_HPP
#define HYPERCAST_HARNESS_BENCH_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "metrics/series.hpp"

namespace hypercast::harness {
struct DelaySweepResult;
}

namespace hypercast::obs {
class Registry;
}

namespace hypercast::metrics {
class JsonWriter;
}

namespace hypercast::bench {

/// What a benchmark reproduces: a paper figure, an ablation study, or a
/// micro-benchmark of one subsystem.
enum class Kind { Figure, Ablation, Micro };

const char* kind_name(Kind kind);

/// Per-run knobs handed to every benchmark body.
struct Context {
  bool quick = false;  ///< shrink sweeps / timing budgets (CI smoke)
  int threads = 1;     ///< worker threads for parallel sweeps
  std::uint64_t seed = 0x5C93C0DE;  ///< experiment seed (sweep instances)

  /// Schedule-cache mode for cache-sensitive benchmarks (--cache flags).
  /// Benchmarks that exist to compare cached vs uncached measure both
  /// regardless; collective-level benchmarks honour `cache` directly.
  bool cache = false;
  std::size_t cache_shards = 0;     ///< 0 = auto
  std::size_t cache_bytes = 0;      ///< 0 = library default

  /// Timing budget for rate measurements: the full budget, or a small
  /// fixed one under --quick.
  double min_time(double full_seconds) const {
    return quick ? 0.05 : full_seconds;
  }
};

/// What a benchmark reports back: named scalar metrics (insertion
/// order preserved) and any number of sweep series. Everything lands in
/// the BENCH_<name>.json artifact.
class Report {
 public:
  void metric(std::string name, double value) {
    metrics_.emplace_back(std::move(name), value);
  }
  void add_series(metrics::Series series) {
    series_.push_back(std::move(series));
  }

  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }
  const std::vector<metrics::Series>& series() const { return series_; }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<metrics::Series> series_;
};

using BenchFn = void (*)(const Context&, Report&);

struct Benchmark {
  std::string name;         ///< e.g. "fig09_steps_6cube"
  Kind kind = Kind::Micro;
  std::string description;  ///< one line, shown by --list
  BenchFn fn = nullptr;
};

/// Static registration hook; define one per benchmark translation unit:
///   const bench::Registration reg{{"fig09_steps_6cube",
///       bench::Kind::Figure, "Figure 9: ...", run}};
struct Registration {
  explicit Registration(Benchmark benchmark);
};

/// Every registered benchmark, sorted by name (stable across link order).
std::vector<const Benchmark*> all_benchmarks();

/// Filter predicate used by --filter: empty accepts everything,
/// otherwise substring match on the name or exact match on the kind
/// name ("figure", "ablation", "micro").
bool matches(const Benchmark& benchmark, const std::string& filter);

struct RunOptions {
  std::string filter;
  int repeat = 1;   ///< timed repetitions per benchmark
  int threads = 1;
  bool quick = false;
  std::uint64_t seed = 0x5C93C0DE;
  std::string out_dir = ".";  ///< BENCH_<name>.json directory; "" disables
  bool verbose = true;        ///< per-benchmark progress on stdout

  /// Schedule-cache mode. When `cache` is on, artifacts are emitted as
  /// BENCH_<name>_cached.json (with "name": "<name>_cached") so the
  /// cached configuration gates against its own committed baseline
  /// instead of being diffed against uncached numbers.
  bool cache = false;
  std::size_t cache_shards = 0;
  std::size_t cache_bytes = 0;

  /// Enable obs stats collection for the run and embed each benchmark's
  /// registry exposition (reset before every benchmark) as a "stats"
  /// object in its artifact.
  bool stats = false;
};

struct RunRecord {
  std::string name;
  std::string json;       ///< the BENCH_<name>.json document
  std::string json_path;  ///< file written; empty when out_dir == ""
  std::vector<double> wall_seconds;  ///< one entry per repeat
};

/// Run every registered benchmark accepted by opts.filter, repeat times
/// each, and write one BENCH_<name>.json per benchmark into
/// opts.out_dir (created if needed). Returns the records in run order;
/// metrics/series come from the final repetition, wall_seconds from all.
std::vector<RunRecord> run_benchmarks(const RunOptions& opts);

/// The artifact name for this run: the benchmark name, plus a "_cached"
/// suffix when opts.cache is on (cached runs gate against their own
/// baselines).
std::string artifact_name(const Benchmark& benchmark, const RunOptions& opts);

/// The JSON document for one benchmark result — exposed so tests can
/// validate the schema without spawning the runner binary. When `stats`
/// is non-null its exposition is embedded under the "stats" key.
std::string benchmark_json(const Benchmark& benchmark, const RunOptions& opts,
                           const Report& report,
                           const std::vector<double>& wall_seconds,
                           const obs::Registry* stats = nullptr);

// ---- helpers shared by benchmark definitions ----------------------------

/// Write the artifact's "machine" provenance object (os, compiler,
/// assertion mode, hardware threads, UTC timestamp). Shared by every
/// artifact writer, including the net load generator.
void write_machine(metrics::JsonWriter& w);

/// Append `series` to the report plus one summary metric per curve:
/// "<curve> <y label> @ x=<last x>" -> the mean at the curve's largest x.
void summarize_series(Report& report, const metrics::Series& series);

/// Record a delay sweep: the selected series (summarized) plus the DES
/// totals — events, events_per_sec over `seconds`, blocked_acquisitions.
void report_delay_sweep(Report& report,
                        const harness::DelaySweepResult& result,
                        double seconds, bool want_avg, bool want_max);

/// Wall-clock stopwatch for events/sec style metrics.
class Stopwatch {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Result of measure_rate: iterations completed in `seconds` wall time.
struct Rate {
  std::uint64_t iterations = 0;
  double seconds = 0.0;
  double per_second() const {
    return seconds > 0.0 ? static_cast<double>(iterations) / seconds : 0.0;
  }
};

/// Repeat fn() until at least min_seconds of wall time has elapsed
/// (after one untimed warm-up call).
template <typename Fn>
Rate measure_rate(double min_seconds, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  Rate rate;
  const auto start = clock::now();
  auto now = start;
  do {
    fn();
    ++rate.iterations;
    now = clock::now();
  } while (std::chrono::duration<double>(now - start).count() < min_seconds);
  rate.seconds = std::chrono::duration<double>(now - start).count();
  return rate;
}

}  // namespace hypercast::bench

#endif  // HYPERCAST_HARNESS_BENCH_HPP
