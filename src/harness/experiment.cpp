#include "harness/experiment.hpp"

#include <atomic>
#include <cassert>
#include <exception>
#include <mutex>
#include <thread>

#include "workload/random_sets.hpp"

namespace hypercast::harness {

namespace {

/// Draw the (source, destinations) instance for a sweep point/trial.
/// Seeds derive from (experiment seed, m, trial) so every instance is
/// identical across algorithms and independent of sweep order.
std::pair<hcube::NodeId, std::vector<hcube::NodeId>> draw_instance(
    const SweepBase& config, const hcube::Topology& topo, std::size_t m,
    std::size_t trial) {
  workload::Rng rng(workload::derive_seed(config.seed, m, trial));
  std::uniform_int_distribution<hcube::NodeId> src_dist(
      0, static_cast<hcube::NodeId>(topo.num_nodes() - 1));
  const hcube::NodeId source = src_dist(rng);
  auto dests = workload::random_destinations(topo, source, m, rng);
  return {source, std::move(dests)};
}

/// Run fn(task) for every task in [0, count) on `threads` workers (the
/// calling thread included). Tasks must be independent; the first
/// exception thrown by any task is rethrown here after all workers stop.
template <typename Fn>
void run_tasks(std::size_t count, int threads, Fn&& fn) {
  const int workers =
      static_cast<int>(std::min<std::size_t>(count, std::max(1, threads)));
  if (workers <= 1) {
    for (std::size_t t = 0; t < count; ++t) fn(t);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= count) return;
      try {
        fn(t);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // drain remaining
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

/// Resolve algorithm names once, up front: registry lookups then happen
/// on the calling thread only and misspellings fail before any work.
std::vector<const core::AlgorithmEntry*> resolve_algorithms(
    const SweepBase& config) {
  std::vector<const core::AlgorithmEntry*> out;
  out.reserve(config.algorithms.size());
  for (const std::string& name : config.algorithms) {
    out.push_back(&core::find_algorithm(name));
  }
  return out;
}

}  // namespace

metrics::Series run_step_sweep(const StepSweepConfig& config) {
  const hcube::Topology topo(config.n, config.resolution);
  const auto algos = resolve_algorithms(config);
  const std::size_t num_algos = algos.size();
  const std::size_t tasks = config.sizes.size() * config.sets_per_point;

  // One (m, trial) instance per task; each records one sample per
  // algorithm into its own flat slice, so workers never share state.
  std::vector<double> steps_by_task(tasks * num_algos, 0.0);
  run_tasks(tasks, config.threads, [&](std::size_t task) {
    const std::size_t m = config.sizes[task / config.sets_per_point];
    const std::size_t trial = task % config.sets_per_point;
    assert(m <= topo.num_nodes() - 1);
    const auto [source, dests] = draw_instance(config, topo, m, trial);
    const core::MulticastRequest req{topo, source, dests};
    for (std::size_t a = 0; a < num_algos; ++a) {
      const auto schedule = algos[a]->build(req);
      const auto steps =
          core::assign_steps(schedule, config.port, req.destinations);
      steps_by_task[task * num_algos + a] =
          static_cast<double>(steps.total_steps);
    }
  });

  // Deterministic merge in sweep order, regardless of thread count.
  metrics::Series series(config.title, "destinations", "steps");
  for (std::size_t task = 0; task < tasks; ++task) {
    const std::size_t m = config.sizes[task / config.sets_per_point];
    for (std::size_t a = 0; a < num_algos; ++a) {
      series.add_sample(algos[a]->display, static_cast<double>(m),
                        steps_by_task[task * num_algos + a]);
    }
  }
  return series;
}

DelaySweepResult run_delay_sweep(const DelaySweepConfig& config) {
  const hcube::Topology topo(config.n, config.resolution);
  const auto algos = resolve_algorithms(config);
  const std::size_t num_algos = algos.size();
  const std::size_t tasks = config.sizes.size() * config.sets_per_point;

  sim::SimConfig sim_config;
  sim_config.cost = config.cost;
  sim_config.port = config.port;
  sim_config.message_bytes = config.message_bytes;

  struct Sample {
    double avg_us = 0.0;
    double max_us = 0.0;
    std::uint64_t blocked = 0;
    std::uint64_t events = 0;
  };
  std::vector<Sample> samples(tasks * num_algos);
  run_tasks(tasks, config.threads, [&](std::size_t task) {
    const std::size_t m = config.sizes[task / config.sets_per_point];
    const std::size_t trial = task % config.sets_per_point;
    assert(m <= topo.num_nodes() - 1);
    const auto [source, dests] = draw_instance(config, topo, m, trial);
    const core::MulticastRequest req{topo, source, dests};
    for (std::size_t a = 0; a < num_algos; ++a) {
      const auto schedule = algos[a]->build(req);
      const auto sim_result = sim::simulate_multicast(schedule, sim_config);
      samples[task * num_algos + a] = Sample{
          sim_result.avg_delay(req.destinations) / 1000.0,
          sim::to_microseconds(sim_result.max_delay(req.destinations)),
          sim_result.stats.blocked_acquisitions, sim_result.stats.events};
    }
  });

  DelaySweepResult result{
      metrics::Series(config.title + " (average)", "destinations",
                      "avg delay (us)"),
      metrics::Series(config.title + " (maximum)", "destinations",
                      "max delay (us)"),
      0, 0};
  for (std::size_t task = 0; task < tasks; ++task) {
    const std::size_t m = config.sizes[task / config.sets_per_point];
    for (std::size_t a = 0; a < num_algos; ++a) {
      const Sample& s = samples[task * num_algos + a];
      result.blocked_acquisitions += s.blocked;
      result.events += s.events;
      result.avg.add_sample(algos[a]->display, static_cast<double>(m),
                            s.avg_us);
      result.max.add_sample(algos[a]->display, static_cast<double>(m),
                            s.max_us);
    }
  }
  return result;
}

std::vector<std::size_t> size_range(std::size_t from, std::size_t to,
                                    std::size_t step) {
  // from > to is a valid empty range (the tests rely on it); only a
  // zero step is a caller bug.
  assert(step > 0);
  std::vector<std::size_t> out;
  for (std::size_t m = from; m <= to; m += step) out.push_back(m);
  return out;
}

}  // namespace hypercast::harness
