#include "harness/experiment.hpp"

#include <cassert>

#include "workload/random_sets.hpp"

namespace hypercast::harness {

namespace {

/// Draw the (source, destinations) instance for a sweep point/trial.
/// Seeds derive from (experiment seed, m, trial) so every instance is
/// identical across algorithms and independent of sweep order.
std::pair<hcube::NodeId, std::vector<hcube::NodeId>> draw_instance(
    const SweepBase& config, const hcube::Topology& topo, std::size_t m,
    std::size_t trial) {
  workload::Rng rng(workload::derive_seed(config.seed, m, trial));
  std::uniform_int_distribution<hcube::NodeId> src_dist(
      0, static_cast<hcube::NodeId>(topo.num_nodes() - 1));
  const hcube::NodeId source = src_dist(rng);
  auto dests = workload::random_destinations(topo, source, m, rng);
  return {source, std::move(dests)};
}

}  // namespace

metrics::Series run_step_sweep(const StepSweepConfig& config) {
  const hcube::Topology topo(config.n, config.resolution);
  metrics::Series series(config.title, "destinations", "steps");
  for (const std::size_t m : config.sizes) {
    assert(m <= topo.num_nodes() - 1);
    for (std::size_t trial = 0; trial < config.sets_per_point; ++trial) {
      const auto [source, dests] = draw_instance(config, topo, m, trial);
      const core::MulticastRequest req{topo, source, dests};
      for (const std::string& name : config.algorithms) {
        const auto& algo = core::find_algorithm(name);
        const auto schedule = algo.build(req);
        const auto steps =
            core::assign_steps(schedule, config.port, req.destinations);
        series.add_sample(algo.display, static_cast<double>(m),
                          static_cast<double>(steps.total_steps));
      }
    }
  }
  return series;
}

DelaySweepResult run_delay_sweep(const DelaySweepConfig& config) {
  const hcube::Topology topo(config.n, config.resolution);
  DelaySweepResult result{
      metrics::Series(config.title + " (average)", "destinations",
                      "avg delay (us)"),
      metrics::Series(config.title + " (maximum)", "destinations",
                      "max delay (us)"),
      0};

  sim::SimConfig sim_config;
  sim_config.cost = config.cost;
  sim_config.port = config.port;
  sim_config.message_bytes = config.message_bytes;

  for (const std::size_t m : config.sizes) {
    assert(m <= topo.num_nodes() - 1);
    for (std::size_t trial = 0; trial < config.sets_per_point; ++trial) {
      const auto [source, dests] = draw_instance(config, topo, m, trial);
      const core::MulticastRequest req{topo, source, dests};
      for (const std::string& name : config.algorithms) {
        const auto& algo = core::find_algorithm(name);
        const auto schedule = algo.build(req);
        const auto sim_result = sim::simulate_multicast(schedule, sim_config);
        result.blocked_acquisitions += sim_result.stats.blocked_acquisitions;
        result.avg.add_sample(algo.display, static_cast<double>(m),
                              sim_result.avg_delay(req.destinations) / 1000.0);
        result.max.add_sample(algo.display, static_cast<double>(m),
                              sim::to_microseconds(
                                  sim_result.max_delay(req.destinations)));
      }
    }
  }
  return result;
}

std::vector<std::size_t> size_range(std::size_t from, std::size_t to,
                                    std::size_t step) {
  assert(step > 0 && from <= to);
  std::vector<std::size_t> out;
  for (std::size_t m = from; m <= to; m += step) out.push_back(m);
  return out;
}

}  // namespace hypercast::harness
