#ifndef HYPERCAST_HARNESS_EXPERIMENT_HPP
#define HYPERCAST_HARNESS_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/stepwise.hpp"
#include "metrics/series.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::harness {

using hcube::Resolution;

/// Common sweep shape: for each destination-set size m, draw
/// `sets_per_point` random destination sets (random source too — the
/// algorithms are XOR-translation equivariant, so this only widens
/// coverage) and run every named algorithm on the same sets.
struct SweepBase {
  hcube::Dim n = 6;
  Resolution resolution = Resolution::HighToLow;
  core::PortModel port = core::PortModel::all_port();
  std::vector<std::size_t> sizes;
  std::size_t sets_per_point = 100;
  std::uint64_t seed = 0x5C93C0DE;  ///< default experiment seed
  std::vector<std::string> algorithms = {"ucube", "maxport", "combine",
                                         "wsort"};
  /// Worker threads for the embarrassingly-parallel (m, trial) points.
  /// Results are bit-identical for any thread count: instances derive
  /// their seeds from (seed, m, trial) and samples are merged in sweep
  /// order. Callers must not mutate the algorithm registry concurrently.
  int threads = 1;
};

/// Section 5.1's metric: the number of steps needed to reach the last
/// destination, under the stepwise model of core::assign_steps.
struct StepSweepConfig : SweepBase {
  std::string title = "stepwise comparison";
};

metrics::Series run_step_sweep(const StepSweepConfig& config);

/// Sections 5.2/5.3's metric: per-destination delay of a 4096-byte
/// multicast through the wormhole DES, reported as the average and the
/// maximum over destinations (in microseconds).
struct DelaySweepConfig : SweepBase {
  sim::CostModel cost = sim::CostModel::ncube2();
  std::size_t message_bytes = 4096;
  std::string title = "delay comparison";
};

struct DelaySweepResult {
  metrics::Series avg;  ///< mean-over-destinations, averaged across sets
  metrics::Series max;  ///< max-over-destinations, averaged across sets
  std::uint64_t blocked_acquisitions = 0;  ///< summed over all runs
  std::uint64_t events = 0;                ///< DES events, summed over all runs
};

DelaySweepResult run_delay_sweep(const DelaySweepConfig& config);

/// Helper: {from, from+step, ..., <= to} (inclusive when it lands on it).
std::vector<std::size_t> size_range(std::size_t from, std::size_t to,
                                    std::size_t step);

}  // namespace hypercast::harness

#endif  // HYPERCAST_HARNESS_EXPERIMENT_HPP
