#include "harness/figures.hpp"

#include <cstdio>

#include "metrics/table.hpp"

namespace hypercast::harness {

namespace {

/// Sweep sizes mirroring the paper's x axes: every size in small cubes,
/// a uniform grid plus the broadcast point in the 10-cube.
std::vector<std::size_t> six_cube_sizes() { return size_range(1, 63, 2); }

std::vector<std::size_t> ten_cube_sizes() {
  auto sizes = size_range(50, 1000, 50);
  sizes.push_back(1023);  // broadcast
  return sizes;
}

std::vector<std::size_t> five_cube_sizes() { return size_range(1, 31, 1); }

}  // namespace

StepSweepConfig fig9_config(bool quick) {
  StepSweepConfig config;
  config.title = "Figure 9: stepwise comparisons on a 6-cube";
  config.n = 6;
  config.sizes = quick ? size_range(4, 60, 8) : six_cube_sizes();
  config.sets_per_point = quick ? 10 : 100;
  return config;
}

StepSweepConfig fig10_config(bool quick) {
  StepSweepConfig config;
  config.title = "Figure 10: stepwise comparisons on a 10-cube";
  config.n = 10;
  config.sizes = quick ? size_range(100, 1000, 300) : ten_cube_sizes();
  config.sets_per_point = quick ? 5 : 100;
  return config;
}

DelaySweepConfig fig11_12_config(bool quick) {
  DelaySweepConfig config;
  config.title = "Figures 11/12: 4096-byte multicast delay on a 5-cube";
  config.n = 5;
  config.sizes = quick ? size_range(4, 28, 8) : five_cube_sizes();
  config.sets_per_point = quick ? 5 : 20;
  return config;
}

DelaySweepConfig fig13_14_config(bool quick) {
  DelaySweepConfig config;
  config.title = "Figures 13/14: 4096-byte multicast delay on a 10-cube";
  config.n = 10;
  config.sizes = quick ? size_range(100, 1000, 300) : ten_cube_sizes();
  config.sets_per_point = quick ? 5 : 100;
  return config;
}

metrics::Series run_and_report_steps(const StepSweepConfig& config,
                                     const std::string& csv_path) {
  auto series = run_step_sweep(config);
  std::fputs(metrics::format_table(series).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(metrics::format_ascii_plot(series).c_str(), stdout);
  if (!csv_path.empty()) {
    metrics::write_csv(series, csv_path);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return series;
}

DelaySweepResult run_and_report_delays(const DelaySweepConfig& config,
                                       const std::string& which,
                                       const std::string& csv_base) {
  auto result = run_delay_sweep(config);
  const bool want_avg = which == "avg" || which == "both";
  const bool want_max = which == "max" || which == "both";
  if (want_avg) {
    std::fputs(metrics::format_table(result.avg).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(metrics::format_ascii_plot(result.avg).c_str(), stdout);
    if (!csv_base.empty()) {
      metrics::write_csv(result.avg, csv_base + "-avg.csv");
      std::printf("wrote %s-avg.csv\n", csv_base.c_str());
    }
  }
  if (want_max) {
    std::fputs(metrics::format_table(result.max).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(metrics::format_ascii_plot(result.max).c_str(), stdout);
    if (!csv_base.empty()) {
      metrics::write_csv(result.max, csv_base + "-max.csv");
      std::printf("wrote %s-max.csv\n", csv_base.c_str());
    }
  }
  std::printf("total blocked channel acquisitions across runs: %llu\n",
              static_cast<unsigned long long>(result.blocked_acquisitions));
  return result;
}

}  // namespace hypercast::harness
