#ifndef HYPERCAST_HARNESS_FIGURES_HPP
#define HYPERCAST_HARNESS_FIGURES_HPP

#include "harness/experiment.hpp"

namespace hypercast::harness {

/// Ready-made configurations for every evaluation figure of the paper
/// (Section 5). `quick` shrinks trial counts for use in tests; the bench
/// binaries run the full configuration.

/// Figure 9: average (over 100 random sets) of the max steps to reach
/// all destinations in a 6-cube, all-port stepwise model.
StepSweepConfig fig9_config(bool quick = false);

/// Figure 10: the same on a 10-cube.
StepSweepConfig fig10_config(bool quick = false);

/// Figures 11/12: average/maximum delay of a 4096-byte multicast in a
/// 5-cube under the nCUBE-2 cost model, 20 random sets per point.
/// One delay sweep produces both figures.
DelaySweepConfig fig11_12_config(bool quick = false);

/// Figures 13/14: average/maximum delay in a 10-cube, 100 sets per
/// point (the paper's MultiSim experiment).
DelaySweepConfig fig13_14_config(bool quick = false);

/// Shared driver used by the bench runner: run the sweep, print the
/// paper-style table plus an ASCII shape plot, and write `csv_path`
/// (skipped when empty). Returns the measured series so callers can
/// record it in machine-readable artifacts.
metrics::Series run_and_report_steps(const StepSweepConfig& config,
                                     const std::string& csv_path);

/// As above for delay sweeps; `which` selects avg ("avg"), max ("max")
/// or both ("both") for reporting, and csv files get -avg/-max suffixes.
DelaySweepResult run_and_report_delays(const DelaySweepConfig& config,
                                       const std::string& which,
                                       const std::string& csv_base);

}  // namespace hypercast::harness

#endif  // HYPERCAST_HARNESS_FIGURES_HPP
