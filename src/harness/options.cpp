#include "harness/options.hpp"

#include <stdexcept>

#include "fault/fault_inject.hpp"

namespace hypercast::harness {

Options Options::parse(int argc, const char* const* argv, int first) {
  Options out;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw std::invalid_argument("expected --option, got '" + arg + "'");
    }
    std::string key;
    std::string value;
    bool bare = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      // --key=value: the escape hatch for values that themselves start
      // with "--" (labels, pass-through arguments).
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
      if (key.empty()) {
        throw std::invalid_argument("malformed option '" + arg +
                                    "': empty key before '='");
      }
    } else {
      key = arg.substr(2);
      value = "true";
      bare = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
        bare = false;
      }
    }
    // Repeated keys accumulate (multi-value options like --header); the
    // single-value getters read the last occurrence, so overrides
    // appended to a base command line win.
    Entry& entry = out.values_[key];
    entry.values.push_back(std::move(value));
    entry.bare = bare;
  }
  return out;
}

std::string Options::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::invalid_argument("missing required option --" + key);
  }
  return it->second.last();
}

std::string Options::get_or(const std::string& key,
                            std::string fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second.last();
}

std::vector<std::string> Options::get_all(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::vector<std::string>{} : it->second.values;
}

const std::string& Options::typed_value(const std::string& key,
                                        const char* what) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::invalid_argument("missing required option --" + key);
  }
  if (it->second.bare) {
    throw std::invalid_argument("--" + key + " expects " + what +
                                " but was given as a bare flag; use --" +
                                key + "=<value> or --" + key + " <value>");
  }
  return it->second.last();
}

long Options::get_int(const std::string& key) const {
  const std::string& v = typed_value(key, "an integer");
  std::size_t pos = 0;
  long out = 0;
  try {
    out = std::stol(v, &pos);
  } catch (const std::exception&) {
    pos = 0;  // fall through to the diagnostic below
  }
  if (pos != v.size() || v.empty()) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                v + "'");
  }
  return out;
}

long Options::get_int_or(const std::string& key, long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

double Options::get_double(const std::string& key) const {
  const std::string& v = typed_value(key, "a number");
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;  // fall through to the diagnostic below
  }
  if (pos != v.size() || v.empty()) {
    throw std::invalid_argument("--" + key + " expects a number, got '" + v +
                                "'");
  }
  return out;
}

std::vector<hcube::NodeId> Options::get_nodes(const std::string& key) const {
  const std::string v = get(key);
  std::vector<hcube::NodeId> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::string token =
        v.substr(start, comma == std::string::npos ? std::string::npos
                                                   : comma - start);
    if (token.empty()) {
      throw std::invalid_argument("--" + key + ": empty node in list '" + v +
                                  "'");
    }
    std::size_t pos = 0;
    const unsigned long node = std::stoul(token, &pos);
    if (pos != token.size()) {
      throw std::invalid_argument("--" + key + ": bad node '" + token + "'");
    }
    out.push_back(static_cast<hcube::NodeId>(node));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

hcube::Resolution Options::resolution() const {
  const std::string v = get_or("res", "high");
  if (v == "high") return hcube::Resolution::HighToLow;
  if (v == "low") return hcube::Resolution::LowToHigh;
  throw std::invalid_argument("--res expects 'high' or 'low', got '" + v +
                              "'");
}

core::PortModel Options::port() const {
  const std::string v = get_or("port", "all");
  if (v == "all") return core::PortModel::all_port();
  if (v == "one") return core::PortModel::one_port();
  if (v.rfind("k:", 0) == 0) {
    const int k = static_cast<int>(std::stol(v.substr(2)));
    if (k < 1) throw std::invalid_argument("--port k:<n> needs n >= 1");
    return core::PortModel::k_port(k);
  }
  throw std::invalid_argument("--port expects 'one', 'all' or 'k:<n>'");
}

std::optional<fault::FaultSet> Options::fault_set(
    const hcube::Topology& topo) const {
  if (!has("faults") && !has("fail-links") && !has("fail-nodes")) {
    return std::nullopt;
  }
  fault::FaultSet fs(topo);
  if (has("faults")) {
    const double spec = get_double("faults");
    std::size_t count = 0;
    if (spec > 0.0 && spec < 1.0) {
      count = fault::links_for_rate(topo, spec);
    } else if (spec >= 1.0 && spec == static_cast<double>(
                                         static_cast<std::size_t>(spec))) {
      count = static_cast<std::size_t>(spec);
    } else {
      throw std::invalid_argument(
          "--faults expects a link count (>= 1) or a rate in (0, 1)");
    }
    workload::Rng rng(
        static_cast<std::uint64_t>(get_int_or("fault-seed", 1)));
    const fault::FaultSet drawn = fault::random_link_faults(topo, count, rng);
    for (const fault::Link& l : drawn.failed_links()) {
      fs.fail_link(l.low, l.dim);
    }
  }
  if (has("fail-links")) {
    // "u:d" pairs: low endpoint and dimension of each failed link.
    const std::string v = get("fail-links");
    std::size_t start = 0;
    while (start < v.size()) {
      std::size_t comma = v.find(',', start);
      if (comma == std::string::npos) comma = v.size();
      const std::string token = v.substr(start, comma - start);
      const std::size_t colon = token.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--fail-links expects u:d pairs, got '" +
                                    token + "'");
      }
      fs.fail_link(static_cast<hcube::NodeId>(std::stoul(token.substr(0, colon))),
                   static_cast<hcube::Dim>(std::stol(token.substr(colon + 1))));
      start = comma + 1;
    }
  }
  if (has("fail-nodes")) {
    for (const hcube::NodeId u : get_nodes("fail-nodes")) fs.fail_node(u);
  }
  return fs;
}

Options::CacheOptions Options::cache(bool default_enabled) const {
  CacheOptions out;
  out.enabled = default_enabled;
  if (has("cache")) {
    if (is_bare_flag("cache")) {
      out.enabled = true;  // bare --cache opts in
    } else {
      const std::string v = get("cache");
      if (v == "on" || v == "true" || v == "1") {
        out.enabled = true;
      } else if (v == "off" || v == "false" || v == "0") {
        out.enabled = false;
      } else {
        throw std::invalid_argument("--cache expects on|off, got '" + v + "'");
      }
    }
  }
  const long shards = get_int_or("cache-shards", 0);
  if (shards < 0) {
    throw std::invalid_argument("--cache-shards needs n >= 0 (0 = auto)");
  }
  out.shards = static_cast<std::size_t>(shards);
  const long bytes = get_int_or("cache-bytes", 0);
  if (bytes < 0) {
    throw std::invalid_argument("--cache-bytes needs b >= 0 (0 = default)");
  }
  out.max_bytes = static_cast<std::size_t>(bytes);
  return out;
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace hypercast::harness
