#include "harness/options.hpp"

#include <stdexcept>

namespace hypercast::harness {

Options Options::parse(int argc, const char* const* argv, int first) {
  Options out;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw std::invalid_argument("expected --option, got '" + arg + "'");
    }
    const std::string key = arg.substr(2);
    std::string value = "true";  // bare flag
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (!out.values_.emplace(key, value).second) {
      throw std::invalid_argument("duplicate option --" + key);
    }
  }
  return out;
}

std::string Options::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::invalid_argument("missing required option --" + key);
  }
  return it->second;
}

std::string Options::get_or(const std::string& key,
                            std::string fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

long Options::get_int(const std::string& key) const {
  const std::string v = get(key);
  std::size_t pos = 0;
  const long out = std::stol(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                v + "'");
  }
  return out;
}

long Options::get_int_or(const std::string& key, long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

std::vector<hcube::NodeId> Options::get_nodes(const std::string& key) const {
  const std::string v = get(key);
  std::vector<hcube::NodeId> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::string token =
        v.substr(start, comma == std::string::npos ? std::string::npos
                                                   : comma - start);
    if (token.empty()) {
      throw std::invalid_argument("--" + key + ": empty node in list '" + v +
                                  "'");
    }
    std::size_t pos = 0;
    const unsigned long node = std::stoul(token, &pos);
    if (pos != token.size()) {
      throw std::invalid_argument("--" + key + ": bad node '" + token + "'");
    }
    out.push_back(static_cast<hcube::NodeId>(node));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

hcube::Resolution Options::resolution() const {
  const std::string v = get_or("res", "high");
  if (v == "high") return hcube::Resolution::HighToLow;
  if (v == "low") return hcube::Resolution::LowToHigh;
  throw std::invalid_argument("--res expects 'high' or 'low', got '" + v +
                              "'");
}

core::PortModel Options::port() const {
  const std::string v = get_or("port", "all");
  if (v == "all") return core::PortModel::all_port();
  if (v == "one") return core::PortModel::one_port();
  if (v.rfind("k:", 0) == 0) {
    const int k = static_cast<int>(std::stol(v.substr(2)));
    if (k < 1) throw std::invalid_argument("--port k:<n> needs n >= 1");
    return core::PortModel::k_port(k);
  }
  throw std::invalid_argument("--port expects 'one', 'all' or 'k:<n>'");
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace hypercast::harness
