#ifndef HYPERCAST_HARNESS_OPTIONS_HPP
#define HYPERCAST_HARNESS_OPTIONS_HPP

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stepwise.hpp"
#include "fault/fault_set.hpp"
#include "hcube/types.hpp"

namespace hypercast::harness {

/// Minimal --key value / --key=value / --flag command-line parser shared
/// by the CLI tool; kept in the library so it is unit-testable.
class Options {
 public:
  /// Parse argv[first..argc). Throws std::invalid_argument on malformed
  /// input (an option without the leading "--", an empty key). Two value
  /// syntaxes: `--key value` (the value must not start with "--", or it
  /// is taken as the next option) and `--key=value` (the value may be
  /// anything, including strings starting with "--").
  ///
  /// A key may repeat: `--header a:1 --header b:2` accumulates both
  /// values in argv order. Single-value getters (get, get_int, ...)
  /// see the *last* occurrence — "later flags win", so a script can
  /// append overrides to a base command line — while get_all returns
  /// every occurrence for genuinely multi-valued options.
  static Options parse(int argc, const char* const* argv, int first = 1);

  bool has(const std::string& key) const { return values_.contains(key); }

  /// Number of times the key was given (0 when absent).
  std::size_t count(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? 0 : it->second.values.size();
  }

  /// True iff the key's last occurrence was a bare `--flag` (no value).
  /// Typed getters reject bare flags with a diagnostic suggesting
  /// `--key=<v>`.
  bool is_bare_flag(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() && it->second.bare;
  }

  /// Value lookups; `get` throws std::invalid_argument when the key is
  /// missing, the *_or forms substitute a default. For repeated keys
  /// these return the last occurrence; use get_all for all of them.
  std::string get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;

  /// Every value given for the key, in argv order (empty vector when the
  /// key is absent). Bare occurrences contribute "true".
  std::vector<std::string> get_all(const std::string& key) const;
  long get_int(const std::string& key) const;
  long get_int_or(const std::string& key, long fallback) const;
  double get_double(const std::string& key) const;

  /// Comma-separated node list, e.g. "3,5,12".
  std::vector<hcube::NodeId> get_nodes(const std::string& key) const;

  /// "high" / "low" -> Resolution. Defaults to HighToLow.
  hcube::Resolution resolution() const;

  /// "one", "all" or "k:<n>" -> PortModel. Defaults to all-port.
  core::PortModel port() const;

  /// Fault-injection flags shared by the CLI and benches:
  ///   --faults <k|p>       k >= 1 random failed links, or a link fault
  ///                        rate p in (0, 1) (seeded by --fault-seed,
  ///                        default 1)
  ///   --fail-links u:d,... explicit links (low endpoint : dimension)
  ///   --fail-nodes a,b     explicit dead nodes
  /// The three compose. Returns nullopt when none is present.
  std::optional<fault::FaultSet> fault_set(const hcube::Topology& topo) const;

  /// Schedule-cache flags shared by the CLI and the bench runner:
  ///   --cache on|off       serving-cache mode (also bare --cache = on)
  ///   --cache-shards n     lock stripes (0 = auto)
  ///   --cache-bytes b      total byte budget across shards
  /// Kept as a plain struct so the harness stays independent of the
  /// coll layer; callers translate it into coll::ScheduleCache::Config.
  struct CacheOptions {
    bool enabled = false;
    std::size_t shards = 0;    ///< 0 = auto
    std::size_t max_bytes = 0; ///< 0 = library default
  };

  /// Parse the cache flags; `default_enabled` is what the absence of
  /// --cache means for this tool. Throws std::invalid_argument for
  /// values other than on/off/true/false/1/0.
  CacheOptions cache(bool default_enabled = false) const;

  /// Keys the caller never consumed (typo detection).
  std::vector<std::string> keys() const;

 private:
  struct Entry {
    std::vector<std::string> values;  ///< one per occurrence, argv order
    bool bare = false;  ///< last occurrence was `--flag` (value "true")

    const std::string& last() const { return values.back(); }
  };

  /// Value lookup for typed getters: throws for missing keys and for
  /// bare flags (`what` names the expected value kind).
  const std::string& typed_value(const std::string& key,
                                 const char* what) const;

  std::unordered_map<std::string, Entry> values_;
};

}  // namespace hypercast::harness

#endif  // HYPERCAST_HARNESS_OPTIONS_HPP
