#ifndef HYPERCAST_HARNESS_OPTIONS_HPP
#define HYPERCAST_HARNESS_OPTIONS_HPP

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stepwise.hpp"
#include "fault/fault_set.hpp"
#include "hcube/types.hpp"

namespace hypercast::harness {

/// Minimal --key value / --flag command-line parser shared by the CLI
/// tool; kept in the library so it is unit-testable.
class Options {
 public:
  /// Parse argv[first..argc). Throws std::invalid_argument on malformed
  /// input (an option without the leading "--", duplicate keys).
  static Options parse(int argc, const char* const* argv, int first = 1);

  bool has(const std::string& key) const { return values_.contains(key); }

  /// Value lookups; `get` throws std::invalid_argument when the key is
  /// missing, the *_or forms substitute a default.
  std::string get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  long get_int(const std::string& key) const;
  long get_int_or(const std::string& key, long fallback) const;
  double get_double(const std::string& key) const;

  /// Comma-separated node list, e.g. "3,5,12".
  std::vector<hcube::NodeId> get_nodes(const std::string& key) const;

  /// "high" / "low" -> Resolution. Defaults to HighToLow.
  hcube::Resolution resolution() const;

  /// "one", "all" or "k:<n>" -> PortModel. Defaults to all-port.
  core::PortModel port() const;

  /// Fault-injection flags shared by the CLI and benches:
  ///   --faults <k|p>       k >= 1 random failed links, or a link fault
  ///                        rate p in (0, 1) (seeded by --fault-seed,
  ///                        default 1)
  ///   --fail-links u:d,... explicit links (low endpoint : dimension)
  ///   --fail-nodes a,b     explicit dead nodes
  /// The three compose. Returns nullopt when none is present.
  std::optional<fault::FaultSet> fault_set(const hcube::Topology& topo) const;

  /// Keys the caller never consumed (typo detection).
  std::vector<std::string> keys() const;

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace hypercast::harness

#endif  // HYPERCAST_HARNESS_OPTIONS_HPP
