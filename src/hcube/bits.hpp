#ifndef HYPERCAST_HCUBE_BITS_HPP
#define HYPERCAST_HCUBE_BITS_HPP

#include <bit>
#include <cassert>
#include <cstdint>

#include "hcube/types.hpp"

namespace hypercast::hcube {

/// Number of set bits: the paper's ||v|| notation, i.e. the Hamming
/// weight of an address (and the Hamming distance when applied to u^v).
constexpr int popcount(std::uint32_t v) { return std::popcount(v); }

/// Hamming distance between two node addresses = E-cube path length.
constexpr int hamming(NodeId u, NodeId v) { return popcount(u ^ v); }

/// Index of the highest set bit. Precondition: v != 0.
constexpr Dim highest_bit(std::uint32_t v) {
  assert(v != 0);
  return 31 - std::countl_zero(v);
}

/// Index of the lowest set bit. Precondition: v != 0.
constexpr Dim lowest_bit(std::uint32_t v) {
  assert(v != 0);
  return std::countr_zero(v);
}

/// True iff bit d of v is set.
constexpr bool test_bit(std::uint32_t v, Dim d) { return (v >> d) & 1u; }

/// Reverse the low `n` bits of v (bits at and above n must be zero).
/// This is the isomorphism between the two address-resolution orders:
/// LowToHigh routing on address a behaves exactly like HighToLow routing
/// on bit_reverse(a, n).
constexpr std::uint32_t bit_reverse(std::uint32_t v, int n) {
  assert(n >= 0 && n <= 32);
  assert(n == 32 || (v >> n) == 0);
  std::uint32_t out = 0;
  for (int i = 0; i < n; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

}  // namespace hypercast::hcube

#endif  // HYPERCAST_HCUBE_BITS_HPP
