#include "hcube/chain.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace hypercast::hcube {

bool dimension_order_less(const Topology& topo, NodeId a, NodeId b) {
  return topo.key(a) < topo.key(b);
}

std::uint32_t relative_key(const Topology& topo, NodeId d0, NodeId u) {
  assert(topo.contains(d0) && topo.contains(u));
  return topo.key(u) ^ topo.key(d0);
}

void make_relative_chain_into(const Topology& topo, NodeId source,
                              std::span<const NodeId> destinations,
                              std::vector<NodeId>& chain) {
  chain.resize(destinations.size() + 1);
  chain[0] = source;
  std::copy(destinations.begin(), destinations.end(), chain.begin() + 1);
  // Relative keys are XOR-translations of canonical keys, and XOR by a
  // constant preserves nothing about order in general — but comparing
  // translated keys is exactly the paper's d0-relative dimension order.
  const std::uint32_t skey = topo.key(source);
  std::sort(chain.begin() + 1, chain.end(), [&](NodeId a, NodeId b) {
    return (topo.key(a) ^ skey) < (topo.key(b) ^ skey);
  });
#ifndef NDEBUG
  for (std::size_t i = 1; i < chain.size(); ++i) {
    assert(chain[i] != source && "destinations must not include the source");
    assert((i == 1 || chain[i] != chain[i - 1]) &&
           "destinations must be distinct");
  }
#endif
}

std::vector<NodeId> make_relative_chain(const Topology& topo, NodeId source,
                                        std::span<const NodeId> destinations) {
  std::vector<NodeId> chain;
  make_relative_chain_into(topo, source, destinations, chain);
  return chain;
}

bool is_relative_dimension_ordered(const Topology& topo,
                                   std::span<const NodeId> chain) {
  if (chain.empty()) return true;
  const NodeId d0 = chain.front();
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    if (relative_key(topo, d0, chain[i]) >= relative_key(topo, d0, chain[i + 1]))
      return false;
  }
  return true;
}

bool is_cube_ordered(const Topology& topo, std::span<const NodeId> chain) {
  if (chain.size() <= 2) return true;
  const NodeId d0 = chain.front();
  // For each subcube level, the sequence of group ids (relative key with
  // the free bits shifted away) must never revisit a group it has left.
  for (Dim level = 1; level < topo.dim(); ++level) {
    std::unordered_set<std::uint32_t> closed;
    std::uint32_t current = relative_key(topo, d0, chain[0]) >> level;
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const std::uint32_t group = relative_key(topo, d0, chain[i]) >> level;
      if (group == current) continue;
      if (!closed.insert(current).second) return false;  // unreachable guard
      if (closed.contains(group)) return false;
      current = group;
    }
  }
  return true;
}

bool is_cube_ordered_reference(const Topology& topo,
                               std::span<const NodeId> chain) {
  // Definition 5 verbatim: for all subcubes S and i <= j <= k, if
  // d_i, d_k in S then d_j in S. Subcube membership is checked on raw
  // addresses; XOR-translation invariance means this agrees with the
  // relative-key version used by is_cube_ordered (tests rely on that).
  for (Dim ns = 0; ns <= topo.dim(); ++ns) {
    for (const Subcube& s : all_subcubes(topo, ns)) {
      std::ptrdiff_t first = -1;
      std::ptrdiff_t last = -1;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (s.contains(topo, chain[i])) {
          if (first < 0) first = static_cast<std::ptrdiff_t>(i);
          last = static_cast<std::ptrdiff_t>(i);
        }
      }
      if (first < 0) continue;
      for (std::ptrdiff_t j = first; j <= last; ++j) {
        if (!s.contains(topo, chain[static_cast<std::size_t>(j)])) return false;
      }
    }
  }
  return true;
}

}  // namespace hypercast::hcube
