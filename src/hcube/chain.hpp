#ifndef HYPERCAST_HCUBE_CHAIN_HPP
#define HYPERCAST_HCUBE_CHAIN_HPP

#include <span>
#include <vector>

#include "hcube/subcube.hpp"
#include "hcube/topology.hpp"

namespace hypercast::hcube {

/// Dimension-ordered and cube-ordered chains (Sections 4.1 / 4.2).
///
/// A chain is a sequence of node addresses; the chain-based multicast
/// algorithms all take the source at position 0 followed by the
/// destinations in some order. "Dimension order" relative to the source
/// d0 compares the keys of d0 ^ d_i; "cube order" (Definition 5) requires
/// the chain's members of every subcube to be contiguous.

/// The paper's binary relation a <_d b ("dimension order") on addresses.
/// In key space this is plain integer order.
bool dimension_order_less(const Topology& topo, NodeId a, NodeId b);

/// The key used to sort node u into a d0-relative dimension-ordered
/// chain: key(u) ^ key(d0). XOR-translation by the source maps subcubes
/// to subcubes, so all subcube reasoning may be done on relative keys.
std::uint32_t relative_key(const Topology& topo, NodeId d0, NodeId u);

/// Build the d0-relative dimension-ordered chain {d0, d1, ..., dm}:
/// source first, destinations sorted ascending by relative key.
/// Preconditions: destinations are distinct and do not include the source.
std::vector<NodeId> make_relative_chain(const Topology& topo, NodeId source,
                                        std::span<const NodeId> destinations);

/// Same, into a caller-provided buffer (resized to destinations.size()
/// + 1), so sweeps can recycle one chain allocation across builds.
/// `destinations` must not alias `chain`.
void make_relative_chain_into(const Topology& topo, NodeId source,
                              std::span<const NodeId> destinations,
                              std::vector<NodeId>& chain);

/// True iff the chain (source at position 0) is a d0-relative
/// dimension-ordered chain: relative keys strictly increasing.
bool is_relative_dimension_ordered(const Topology& topo,
                                   std::span<const NodeId> chain);

/// True iff the chain is cube-ordered (Definition 5): for every subcube
/// S, the chain elements belonging to S occupy contiguous positions.
/// Checked on relative keys (cube order is XOR-translation invariant);
/// O(n * m) via per-level group contiguity.
bool is_cube_ordered(const Topology& topo, std::span<const NodeId> chain);

/// Exhaustive O(m^3)-flavoured reference implementation of Definition 5,
/// used to cross-check is_cube_ordered in tests.
bool is_cube_ordered_reference(const Topology& topo,
                               std::span<const NodeId> chain);

}  // namespace hypercast::hcube

#endif  // HYPERCAST_HCUBE_CHAIN_HPP
