#include "hcube/ecube.hpp"

#include <algorithm>
#include <cassert>

namespace hypercast::hcube {

std::optional<Dim> delta(const Topology& topo, NodeId u, NodeId v) {
  assert(topo.contains(u) && topo.contains(v));
  if (u == v) return std::nullopt;
  const std::uint32_t diff = u ^ v;
  return topo.resolution() == Resolution::HighToLow ? highest_bit(diff)
                                                    : lowest_bit(diff);
}

Dim delta_distinct(const Topology& topo, NodeId u, NodeId v) {
  const auto d = delta(topo, u, v);
  assert(d.has_value());
  return *d;
}

std::vector<Dim> route_dims(const Topology& topo, NodeId u, NodeId v) {
  assert(topo.contains(u) && topo.contains(v));
  std::vector<Dim> dims;
  dims.reserve(static_cast<std::size_t>(hamming(u, v)));
  const std::uint32_t diff = u ^ v;
  if (topo.resolution() == Resolution::HighToLow) {
    for (Dim d = topo.dim() - 1; d >= 0; --d) {
      if (test_bit(diff, d)) dims.push_back(d);
    }
  } else {
    for (Dim d = 0; d < topo.dim(); ++d) {
      if (test_bit(diff, d)) dims.push_back(d);
    }
  }
  return dims;
}

std::vector<NodeId> ecube_path(const Topology& topo, NodeId u, NodeId v) {
  std::vector<NodeId> path;
  path.reserve(static_cast<std::size_t>(hamming(u, v)) + 1);
  path.push_back(u);
  NodeId cur = u;
  for (const Dim d : route_dims(topo, u, v)) {
    cur = topo.neighbor(cur, d);
    path.push_back(cur);
  }
  assert(cur == v);
  return path;
}

std::vector<Arc> ecube_arcs(const Topology& topo, NodeId u, NodeId v) {
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(hamming(u, v)));
  for_each_ecube_arc(topo, u, v, [&](Arc a) { arcs.push_back(a); });
  return arcs;
}

bool arc_disjoint(const Topology& topo, NodeId u, NodeId v, NodeId x, NodeId y) {
  const auto a = ecube_arcs(topo, u, v);
  const auto b = ecube_arcs(topo, x, y);
  for (const Arc& p : a) {
    if (std::find(b.begin(), b.end(), p) != b.end()) return false;
  }
  return true;
}

}  // namespace hypercast::hcube
