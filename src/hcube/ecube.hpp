#ifndef HYPERCAST_HCUBE_ECUBE_HPP
#define HYPERCAST_HCUBE_ECUBE_HPP

#include <optional>
#include <vector>

#include "hcube/topology.hpp"

namespace hypercast::hcube {

/// Deterministic dimension-ordered (E-cube) routing: the unique shortest
/// path P(u, v) that corrects differing address bits in the topology's
/// resolution order (Section 3.1 of the paper).

/// delta(u, v): the first dimension in which an E-cube route from u to v
/// travels — Definition 1 of the paper (the highest-ordered differing bit
/// for HighToLow resolution, the lowest for LowToHigh). Undefined when
/// u == v, represented here as std::nullopt.
std::optional<Dim> delta(const Topology& topo, NodeId u, NodeId v);

/// delta for nodes known to be distinct; asserts u != v.
Dim delta_distinct(const Topology& topo, NodeId u, NodeId v);

/// The ordered list of dimensions an E-cube route from u to v traverses.
std::vector<Dim> route_dims(const Topology& topo, NodeId u, NodeId v);

/// The node sequence (u; w1; ...; wp; v) of P(u, v). Size = distance + 1.
std::vector<NodeId> ecube_path(const Topology& topo, NodeId u, NodeId v);

/// The directed external channels P(u, v) occupies, in traversal order.
/// Size = distance(u, v).
std::vector<Arc> ecube_arcs(const Topology& topo, NodeId u, NodeId v);

/// Visit the arcs of P(u, v) in traversal order without materialising a
/// vector — the allocation-free workhorse behind ecube_arcs, the
/// simulator's path acquisition and the channel-load analyser.
template <typename Fn>
void for_each_ecube_arc(const Topology& topo, NodeId u, NodeId v, Fn&& fn) {
  const std::uint32_t diff = u ^ v;
  NodeId cur = u;
  if (topo.resolution() == Resolution::HighToLow) {
    for (Dim d = topo.dim() - 1; d >= 0; --d) {
      if (test_bit(diff, d)) {
        fn(Arc{cur, d});
        cur = topo.neighbor(cur, d);
      }
    }
  } else {
    for (Dim d = 0; d < topo.dim(); ++d) {
      if (test_bit(diff, d)) {
        fn(Arc{cur, d});
        cur = topo.neighbor(cur, d);
      }
    }
  }
}

/// True iff P(u, v) and P(x, y) share no directed external channel. The
/// theorems of Section 3.3 give cheap sufficient conditions for this;
/// this function is the exact (brute-force) predicate the theorems are
/// tested against, and the workhorse of the contention checker.
bool arc_disjoint(const Topology& topo, NodeId u, NodeId v, NodeId x, NodeId y);

}  // namespace hypercast::hcube

#endif  // HYPERCAST_HCUBE_ECUBE_HPP
