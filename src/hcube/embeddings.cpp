#include "hcube/embeddings.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace hypercast::hcube {

std::uint32_t gray_decode(std::uint32_t g) {
  std::uint32_t out = 0;
  while (g != 0) {
    out ^= g;
    g >>= 1;
  }
  return out;
}

std::vector<NodeId> gray_ring(const Topology& topo) {
  std::vector<NodeId> ring;
  ring.reserve(topo.num_nodes());
  for (std::uint32_t i = 0; i < topo.num_nodes(); ++i) {
    ring.push_back(static_cast<NodeId>(gray_code(i)));
  }
  return ring;
}

std::vector<NodeId> embed_ring(const Topology& topo, std::size_t length) {
  if (length < 2 || length > topo.num_nodes() || length % 2 != 0) {
    throw std::invalid_argument(
        "ring length must be even and within the cube (hypercubes are "
        "bipartite: odd cycles cannot embed)");
  }
  // A cycle of even length 2k embeds as a "reflected" walk: take the
  // Gray ring of the smallest subcube holding k pairs... The classic
  // construction: walk the Gray code of ceil(log2(length)) dimensions,
  // using the sequence for length values; for length < 2^d the reflected
  // Gray code of the first length/2 values in dimension d-1, mirrored
  // with the top bit set, forms a cycle.
  const Dim d = [&] {
    Dim out = 1;
    while ((std::size_t{1} << out) < length) ++out;
    return out;
  }();
  std::vector<NodeId> ring;
  ring.reserve(length);
  const std::size_t half = length / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ring.push_back(static_cast<NodeId>(gray_code(static_cast<std::uint32_t>(i))));
  }
  for (std::size_t i = half; i-- > 0;) {
    ring.push_back(static_cast<NodeId>(
        gray_code(static_cast<std::uint32_t>(i)) | (1u << (d - 1))));
  }
  return ring;
}

std::vector<NodeId> embed_grid(const Topology& topo, std::size_t rows,
                               std::size_t cols) {
  if (rows == 0 || cols == 0 || !std::has_single_bit(rows) ||
      !std::has_single_bit(cols) || rows * cols > topo.num_nodes()) {
    throw std::invalid_argument(
        "grid dimensions must be powers of two with rows*cols <= N");
  }
  const int col_bits = std::countr_zero(cols);
  std::vector<NodeId> grid;
  grid.reserve(rows * cols);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      grid.push_back(static_cast<NodeId>((gray_code(r) << col_bits) |
                                         gray_code(c)));
    }
  }
  return grid;
}

}  // namespace hypercast::hcube
