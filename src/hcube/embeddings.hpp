#ifndef HYPERCAST_HCUBE_EMBEDDINGS_HPP
#define HYPERCAST_HCUBE_EMBEDDINGS_HPP

#include <vector>

#include "hcube/topology.hpp"

namespace hypercast::hcube {

/// Gray-code machinery and classic topology embeddings. The paper's
/// introduction motivates collective communication with data-parallel
/// programs; those programs reach the hypercube through exactly these
/// maps — a logical ring or grid of processes laid onto cube nodes so
/// that logical neighbours are physical neighbours.

/// The i-th binary reflected Gray code value, i in [0, 2^n).
constexpr std::uint32_t gray_code(std::uint32_t i) { return i ^ (i >> 1); }

/// Inverse of gray_code for values below 2^n.
std::uint32_t gray_decode(std::uint32_t g);

/// The Gray-code ring of an n-cube: a Hamiltonian cycle visiting every
/// node exactly once, consecutive nodes (and last/first) adjacent.
std::vector<NodeId> gray_ring(const Topology& topo);

/// Embed a ring of `length` processes (2 <= length <= N, length even) so
/// that ring neighbours are cube neighbours. Even lengths are exactly
/// the embeddable ones (the hypercube is bipartite). Throws
/// std::invalid_argument otherwise.
std::vector<NodeId> embed_ring(const Topology& topo, std::size_t length);

/// Embed a rows x cols grid (both powers of two, rows*cols <= N) with
/// grid neighbours mapped to cube neighbours (product of Gray codes).
/// result[r * cols + c] is the node hosting grid position (r, c).
/// Wrap-around neighbours are also adjacent (it embeds the torus).
std::vector<NodeId> embed_grid(const Topology& topo, std::size_t rows,
                               std::size_t cols);

}  // namespace hypercast::hcube

#endif  // HYPERCAST_HCUBE_EMBEDDINGS_HPP
