#include "hcube/subcube.hpp"

#include <cassert>

namespace hypercast::hcube {

Subcube smallest_common_subcube_keys(const Topology& topo, std::uint32_t a,
                                     std::uint32_t b) {
  Dim ns = 0;
  while (ns < topo.dim() && (a >> ns) != (b >> ns)) ++ns;
  return Subcube{ns, a >> ns};
}

Subcube smallest_common_subcube(const Topology& topo, NodeId u, NodeId v) {
  assert(topo.contains(u) && topo.contains(v));
  return smallest_common_subcube_keys(topo, topo.key(u), topo.key(v));
}

std::vector<NodeId> subcube_members(const Topology& topo, const Subcube& s) {
  assert(s.ns >= 0 && s.ns <= topo.dim());
  assert((s.mask >> (topo.dim() - s.ns)) == 0);
  std::vector<NodeId> members;
  members.reserve(s.size());
  for (std::uint32_t low = 0; low < (std::uint32_t{1} << s.ns); ++low) {
    members.push_back(topo.unkey(s.first_key() | low));
  }
  return members;
}

std::vector<Subcube> all_subcubes(const Topology& topo, Dim ns) {
  assert(ns >= 0 && ns <= topo.dim());
  std::vector<Subcube> out;
  const std::uint32_t count = std::uint32_t{1} << (topo.dim() - ns);
  out.reserve(count);
  for (std::uint32_t mask = 0; mask < count; ++mask) {
    out.push_back(Subcube{ns, mask});
  }
  return out;
}

}  // namespace hypercast::hcube
