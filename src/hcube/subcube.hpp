#ifndef HYPERCAST_HCUBE_SUBCUBE_HPP
#define HYPERCAST_HCUBE_SUBCUBE_HPP

#include <span>
#include <vector>

#include "hcube/topology.hpp"

namespace hypercast::hcube {

/// A subcube S = (n_S, M_S) — Definition 2 of the paper: the set of nodes
/// whose earliest-resolved (n - n_S) address bits equal the mask M_S, with
/// the remaining n_S bits ranging freely.
///
/// The paper states the definition for high-to-low resolution ("the
/// explicitly-stated address bits are the high order bits"). We state it
/// in *key space* (Topology::key) so the same structure serves both
/// resolution orders: a subcube always fixes the bits that E-cube routing
/// resolves first. Membership of an address u is tested on key(u).
struct Subcube {
  Dim ns = 0;             ///< free dimensions (subcube dimensionality)
  std::uint32_t mask = 0; ///< value of the fixed earliest-resolved bits

  /// Membership in key space.
  constexpr bool contains_key(std::uint32_t key) const {
    return (key >> ns) == mask;
  }

  /// Membership of a node address under the given topology.
  bool contains(const Topology& topo, NodeId u) const {
    return contains_key(topo.key(u));
  }

  /// Number of member nodes, 2^ns.
  std::size_t size() const { return std::size_t{1} << ns; }

  /// The smallest member key; member keys are exactly
  /// [first_key(), first_key() + size()) — Lemma 2 (contiguity).
  std::uint32_t first_key() const { return mask << ns; }

  /// The (ns-1)-dimensional half with bit (ns-1) clear / set.
  /// Precondition: ns >= 1.
  Subcube lower_half() const { return Subcube{ns - 1, mask << 1}; }
  Subcube upper_half() const { return Subcube{ns - 1, (mask << 1) | 1u}; }

  /// The (ns+1)-dimensional subcube containing this one.
  Subcube parent() const { return Subcube{ns + 1, mask >> 1}; }

  friend constexpr bool operator==(const Subcube&, const Subcube&) = default;
};

/// The whole n-cube as a subcube.
inline Subcube whole_cube(const Topology& topo) {
  return Subcube{topo.dim(), 0};
}

/// The smallest subcube containing both keys.
Subcube smallest_common_subcube_keys(const Topology& topo, std::uint32_t a,
                                     std::uint32_t b);

/// The smallest subcube containing both node addresses.
Subcube smallest_common_subcube(const Topology& topo, NodeId u, NodeId v);

/// All member addresses of a subcube, in ascending key order.
std::vector<NodeId> subcube_members(const Topology& topo, const Subcube& s);

/// All subcubes of the given dimensionality (2^(n - ns) of them).
std::vector<Subcube> all_subcubes(const Topology& topo, Dim ns);

}  // namespace hypercast::hcube

#endif  // HYPERCAST_HCUBE_SUBCUBE_HPP
