#include "hcube/topology.hpp"

namespace hypercast::hcube {

std::string Topology::format(NodeId u) const {
  assert(contains(u));
  if (n_ == 0) return "0";
  std::string out(static_cast<std::size_t>(n_), '0');
  for (Dim d = 0; d < n_; ++d) {
    if (test_bit(u, d)) out[static_cast<std::size_t>(n_ - 1 - d)] = '1';
  }
  return out;
}

}  // namespace hypercast::hcube
