#ifndef HYPERCAST_HCUBE_TOPOLOGY_HPP
#define HYPERCAST_HCUBE_TOPOLOGY_HPP

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "hcube/bits.hpp"
#include "hcube/types.hpp"

namespace hypercast::hcube {

/// A directed external channel of the hypercube network: the physical arc
/// leaving node `from` along dimension `dim` (towards `from ^ (1 << dim)`).
/// Each undirected hypercube link carries two such arcs, one per
/// direction, which may be used simultaneously (Section 1 of the paper).
struct Arc {
  NodeId from = 0;
  Dim dim = 0;

  friend constexpr bool operator==(const Arc&, const Arc&) = default;
};

/// Static description of an n-dimensional hypercube together with the
/// address-resolution order used by its deterministic E-cube router.
///
/// The topology is purely arithmetic (no O(N) tables): neighbours, arcs
/// and distances are all bit operations on addresses. It still carries a
/// canonical dense numbering for arcs so that simulators and checkers can
/// index per-channel state in flat arrays.
class Topology {
 public:
  explicit Topology(Dim n, Resolution res = Resolution::HighToLow)
      : n_(n), res_(res) {
    assert(n >= 0 && n <= kMaxDim);
  }

  Dim dim() const { return n_; }
  Resolution resolution() const { return res_; }

  /// Number of nodes, N = 2^n.
  std::size_t num_nodes() const { return std::size_t{1} << n_; }

  /// Number of directed external channels, N * n.
  std::size_t num_arcs() const { return num_nodes() * static_cast<std::size_t>(n_); }

  bool contains(NodeId u) const { return (u >> n_) == 0; }

  bool valid_dim(Dim d) const { return d >= 0 && d < n_; }

  /// The neighbour of u along dimension d.
  NodeId neighbor(NodeId u, Dim d) const {
    assert(contains(u) && valid_dim(d));
    return u ^ (NodeId{1} << d);
  }

  bool adjacent(NodeId u, NodeId v) const {
    assert(contains(u) && contains(v));
    return hamming(u, v) == 1;
  }

  /// Hop distance of the (unique shortest) E-cube route.
  int distance(NodeId u, NodeId v) const {
    assert(contains(u) && contains(v));
    return hamming(u, v);
  }

  /// Dense index of a directed arc, in [0, num_arcs()).
  std::size_t arc_index(Arc a) const {
    assert(contains(a.from) && valid_dim(a.dim));
    return static_cast<std::size_t>(a.from) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(a.dim);
  }

  Arc arc_at(std::size_t index) const {
    assert(index < num_arcs());
    return Arc{static_cast<NodeId>(index / static_cast<std::size_t>(n_)),
               static_cast<Dim>(index % static_cast<std::size_t>(n_))};
  }

  /// The canonical key of an address: the value whose plain binary order
  /// matches this topology's dimension order. For HighToLow resolution
  /// the key is the address itself; for LowToHigh it is the bit-reversed
  /// address. All chain sorting and subcube reasoning in the core library
  /// happens in key space, which makes the two resolution orders exact
  /// mirror images.
  NodeId key(NodeId u) const {
    assert(contains(u));
    return res_ == Resolution::HighToLow ? u : bit_reverse(u, n_);
  }

  /// Inverse of key() (bit reversal is an involution).
  NodeId unkey(NodeId k) const {
    assert(contains(k));
    return res_ == Resolution::HighToLow ? k : bit_reverse(k, n_);
  }

  /// Zero-padded binary rendering of an address, e.g. "0101" in a 4-cube.
  std::string format(NodeId u) const;

  friend bool operator==(const Topology& a, const Topology& b) {
    return a.n_ == b.n_ && a.res_ == b.res_;
  }

 private:
  Dim n_;
  Resolution res_;
};

}  // namespace hypercast::hcube

#endif  // HYPERCAST_HCUBE_TOPOLOGY_HPP
