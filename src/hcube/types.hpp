#ifndef HYPERCAST_HCUBE_TYPES_HPP
#define HYPERCAST_HCUBE_TYPES_HPP

#include <cstdint>
#include <string_view>

namespace hypercast::hcube {

/// A node address in an n-cube. Bit d of the address selects the node's
/// coordinate along dimension d; two nodes are neighbours iff their
/// addresses differ in exactly one bit.
using NodeId = std::uint32_t;

/// A dimension index in [0, n).
using Dim = int;

/// Largest cube dimensionality the library supports (2^20 nodes). The
/// limit exists only so that address arithmetic stays comfortably inside
/// 32 bits; every structure scales as O(N) or better.
inline constexpr Dim kMaxDim = 20;

/// Order in which E-cube routing resolves address bits.
///
/// The paper's examples resolve from the high-order bit down; the nCUBE-2
/// hardware resolves from the low-order bit up. The paper notes (and our
/// tests verify) that the two are exact isomorphisms under bit reversal,
/// so all results hold for either choice.
enum class Resolution : std::uint8_t {
  HighToLow,  ///< route the highest differing dimension first (paper's examples)
  LowToHigh,  ///< route the lowest differing dimension first (nCUBE-2)
};

constexpr std::string_view to_string(Resolution r) {
  return r == Resolution::HighToLow ? "high-to-low" : "low-to-high";
}

}  // namespace hypercast::hcube

#endif  // HYPERCAST_HCUBE_TYPES_HPP
