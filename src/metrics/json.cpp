#include "metrics/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace hypercast::metrics {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;  // value completes a "key": pair; no comma, no element mark
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  if (!std::isfinite(d)) return null();
  comma_if_needed();
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc{}) return null();
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma_if_needed();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  comma_if_needed();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() && { return std::move(out_); }

}  // namespace hypercast::metrics
