#ifndef HYPERCAST_METRICS_JSON_HPP
#define HYPERCAST_METRICS_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hypercast::metrics {

/// Minimal streaming JSON writer (no external dependencies): produces
/// compact, deterministic output for the machine-readable bench
/// artifacts. Keys are emitted in call order; the writer tracks nesting
/// and inserts commas, so callers just alternate key()/value() calls.
///
/// Usage:
///   JsonWriter w;
///   w.begin_object().key("name").value("fig09").key("xs").begin_array()
///    .value(1.0).value(2.0).end_array().end_object();
///   std::string doc = std::move(w).str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or container opener.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  /// Doubles use shortest round-trip formatting; NaN/Inf become null
  /// (JSON has no spelling for them).
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// The finished document. Call after every container is closed.
  std::string str() &&;
  const std::string& str() const& { return out_; }

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true once the first element has been
  /// written (a comma is due before the next one).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// JSON string escaping (quotes not included).
std::string json_escape(std::string_view s);

}  // namespace hypercast::metrics

#endif  // HYPERCAST_METRICS_JSON_HPP
