#include "metrics/series.hpp"

#include <algorithm>
#include <set>

namespace hypercast::metrics {

const Point* Curve::find(double x) const {
  for (const Point& p : points) {
    if (p.x == x) return &p;
  }
  return nullptr;
}

void Series::add_sample(const std::string& name, double x, double y) {
  Curve* curve = nullptr;
  for (Curve& c : curves_) {
    if (c.name == name) {
      curve = &c;
      break;
    }
  }
  if (curve == nullptr) {
    curves_.push_back(Curve{name, {}});
    curve = &curves_.back();
  }
  for (Point& p : curve->points) {
    if (p.x == x) {
      p.stats.add(y);
      return;
    }
  }
  curve->points.push_back(Point{x, {}});
  curve->points.back().stats.add(y);
}

const Curve* Series::find_curve(const std::string& name) const {
  for (const Curve& c : curves_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<double> Series::xs() const {
  std::set<double> xs;
  for (const Curve& c : curves_) {
    for (const Point& p : c.points) xs.insert(p.x);
  }
  return {xs.begin(), xs.end()};
}

}  // namespace hypercast::metrics
