#ifndef HYPERCAST_METRICS_SERIES_HPP
#define HYPERCAST_METRICS_SERIES_HPP

#include <map>
#include <string>
#include <vector>

#include "metrics/stats.hpp"

namespace hypercast::metrics {

/// One measured point of a sweep curve.
struct Point {
  double x = 0.0;
  OnlineStats stats;  ///< samples across trials at this x
};

/// A named curve over a sweep variable (e.g. "W-sort" over #destinations).
struct Curve {
  std::string name;
  std::vector<Point> points;

  const Point* find(double x) const;
};

/// A family of curves sharing x values — the content of one paper figure.
class Series {
 public:
  Series(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  const std::string& title() const { return title_; }
  const std::string& x_label() const { return x_label_; }
  const std::string& y_label() const { return y_label_; }

  /// Record one sample for curve `name` at sweep position x, creating
  /// curve/point on first use.
  void add_sample(const std::string& name, double x, double y);

  const std::vector<Curve>& curves() const { return curves_; }
  const Curve* find_curve(const std::string& name) const;

  /// All distinct x values in ascending order.
  std::vector<double> xs() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Curve> curves_;
};

}  // namespace hypercast::metrics

#endif  // HYPERCAST_METRICS_SERIES_HPP
