#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hypercast::metrics {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double d1 = x - mean_;
  mean_ += d1 / static_cast<double>(count_);
  const double d2 = x - mean_;
  m2_ += d1 * d2;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

}  // namespace hypercast::metrics
