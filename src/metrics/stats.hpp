#ifndef HYPERCAST_METRICS_STATS_HPP
#define HYPERCAST_METRICS_STATS_HPP

#include <cstddef>

namespace hypercast::metrics {

/// Numerically stable running summary (Welford) of a sample stream.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Half-width of the ~95% confidence interval for the mean under the
  /// normal approximation (1.96 * stderr); 0 for fewer than two samples.
  double ci95_half_width() const;

  /// Merge another summary into this one (parallel reduction friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hypercast::metrics

#endif  // HYPERCAST_METRICS_STATS_HPP
