#include "metrics/table.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hypercast::metrics {

std::string format_table(const Series& series, const TableOptions& opts) {
  std::ostringstream os;
  os << series.title() << '\n';
  os << std::left << std::setw(opts.column_width) << series.x_label();
  for (const Curve& c : series.curves()) {
    os << std::right << std::setw(opts.column_width) << c.name;
    if (opts.show_ci) {
      os << std::right << std::setw(opts.column_width) << "+-95%";
    }
  }
  os << "    (" << series.y_label() << ")\n";

  os << std::fixed << std::setprecision(opts.precision);
  for (const double x : series.xs()) {
    os << std::left << std::setw(opts.column_width) << x;
    for (const Curve& c : series.curves()) {
      const Point* p = c.find(x);
      if (p == nullptr) {
        os << std::right << std::setw(opts.column_width) << "-";
        if (opts.show_ci) {
          os << std::right << std::setw(opts.column_width) << "-";
        }
        continue;
      }
      os << std::right << std::setw(opts.column_width) << p->stats.mean();
      if (opts.show_ci) {
        os << std::right << std::setw(opts.column_width)
           << p->stats.ci95_half_width();
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string format_csv(const Series& series, bool include_ci) {
  std::ostringstream os;
  os << "x";
  for (const Curve& c : series.curves()) {
    os << ',' << c.name;
    if (include_ci) os << ',' << c.name << "_ci95";
  }
  os << '\n';
  os << std::setprecision(10);
  for (const double x : series.xs()) {
    os << x;
    for (const Curve& c : series.curves()) {
      const Point* p = c.find(x);
      if (p == nullptr) {
        os << ',';
        if (include_ci) os << ',';
        continue;
      }
      os << ',' << p->stats.mean();
      if (include_ci) os << ',' << p->stats.ci95_half_width();
    }
    os << '\n';
  }
  return os.str();
}

void write_csv(const Series& series, const std::string& path,
               bool include_ci) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  out << format_csv(series, include_ci);
  if (!out) {
    throw std::runtime_error("write failed for " + path);
  }
}

std::string format_ascii_plot(const Series& series, int height) {
  const auto xs = series.xs();
  if (xs.empty() || height < 2) return "";

  double y_max = 0.0;
  for (const Curve& c : series.curves()) {
    for (const Point& p : c.points) y_max = std::max(y_max, p.stats.mean());
  }
  if (y_max <= 0.0) y_max = 1.0;

  const int width = static_cast<int>(xs.size());
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const char* glyphs = "ABCDEFGH";
  for (std::size_t ci = 0; ci < series.curves().size(); ++ci) {
    const Curve& c = series.curves()[ci];
    const char glyph = glyphs[ci % 8];
    for (int xi = 0; xi < width; ++xi) {
      const Point* p = c.find(xs[static_cast<std::size_t>(xi)]);
      if (p == nullptr) continue;
      int row = height - 1 -
                static_cast<int>(std::lround((p->stats.mean() / y_max) *
                                             (height - 1)));
      row = std::clamp(row, 0, height - 1);
      auto& cell = grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(xi)];
      cell = (cell == ' ') ? glyph : '*';  // '*' marks overlapping curves
    }
  }

  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << series.y_label() << " (max " << y_max << ")\n";
  for (const std::string& row : grid) {
    os << '|' << row << '\n';
  }
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "> "
     << series.x_label() << '\n';
  for (std::size_t ci = 0; ci < series.curves().size(); ++ci) {
    os << "  " << glyphs[ci % 8] << " = " << series.curves()[ci].name << '\n';
  }
  return os.str();
}

}  // namespace hypercast::metrics
