#ifndef HYPERCAST_METRICS_TABLE_HPP
#define HYPERCAST_METRICS_TABLE_HPP

#include <iosfwd>
#include <string>

#include "metrics/series.hpp"

namespace hypercast::metrics {

/// Rendering options for figure series.
struct TableOptions {
  int precision = 2;       ///< fractional digits for means
  bool show_ci = false;    ///< append the +-ci95 column per curve
  int column_width = 12;
};

/// Fixed-width text table: one row per x, one column per curve mean.
/// This is the "same rows/series the paper reports" output every bench
/// binary prints.
std::string format_table(const Series& series, const TableOptions& opts = {});

/// Comma-separated values with a header row, for plotting externally.
std::string format_csv(const Series& series, bool include_ci = true);

/// Write CSV to a file path; throws std::runtime_error on I/O failure.
void write_csv(const Series& series, const std::string& path,
               bool include_ci = true);

/// A rough ASCII plot (y mean vs x) for quick visual shape checks in
/// terminal output; one character column per x position.
std::string format_ascii_plot(const Series& series, int height = 18);

}  // namespace hypercast::metrics

#endif  // HYPERCAST_METRICS_TABLE_HPP
