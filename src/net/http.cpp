#include "net/http.hpp"

#include <algorithm>
#include <cctype>

#include "metrics/json.hpp"

namespace hypercast::net {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Tiny recursive-descent JSON reader covering exactly the schedule
/// request shape: one object of unsigned integers, strings, and flat
/// arrays of unsigned integers. Anything else is a ProtocolError.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_if(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') fail("escape sequences are not supported here");
      out.push_back(c);
    }
  }

  std::uint64_t uint(std::uint64_t max) {
    skip_ws();
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      fail("expected a non-negative integer");
    }
    std::uint64_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      if (v > max) fail("integer out of range");
      ++pos_;
    }
    return v;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ProtocolError("bad JSON request at byte " + std::to_string(pos_) +
                        ": " + what);
  }

  std::size_t pos() const { return pos_; }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

bool looks_like_http(std::string_view prefix) {
  // The binary protocol's first four bytes are a length prefix, so an
  // ASCII method verb + space is unambiguous.
  for (const std::string_view method :
       {"GET ", "POST ", "HEAD ", "PUT ", "DELETE "}) {
    if (prefix.substr(0, method.size()) == method) return true;
  }
  return false;
}

std::size_t parse_http_request(std::string_view buffer, std::size_t max_bytes,
                               HttpRequest& out) {
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > max_bytes) {
      throw ProtocolError("HTTP request head exceeds " +
                          std::to_string(max_bytes) + " bytes");
    }
    return 0;
  }
  out = HttpRequest{};
  const std::string_view head = buffer.substr(0, head_end);

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
    throw ProtocolError("malformed HTTP request line");
  }
  out.method = std::string(line.substr(0, sp1));
  std::transform(out.method.begin(), out.method.end(), out.method.begin(),
                 [](unsigned char c) {
                   return static_cast<char>(std::toupper(c));
                 });
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  if (q != std::string_view::npos) {
    out.query = std::string(target.substr(q + 1));
    target = target.substr(0, q);
  }
  out.target = std::string(target);
  out.keep_alive = line.substr(sp2 + 1) != "HTTP/1.0";

  // Headers.
  std::size_t content_length = 0;
  std::size_t cursor = line_end == std::string_view::npos
                           ? head.size()
                           : line_end + 2;
  while (cursor < head.size()) {
    std::size_t next = head.find("\r\n", cursor);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view header_line = head.substr(cursor, next - cursor);
    cursor = next + 2;
    const std::size_t colon = header_line.find(':');
    if (colon == std::string_view::npos) {
      throw ProtocolError("malformed HTTP header line");
    }
    std::string key = to_lower(trim(header_line.substr(0, colon)));
    std::string value(trim(header_line.substr(colon + 1)));
    if (key == "content-length") {
      try {
        content_length = std::stoul(value);
      } catch (const std::exception&) {
        throw ProtocolError("bad Content-Length");
      }
      if (content_length > max_bytes) {
        throw ProtocolError("HTTP body exceeds " + std::to_string(max_bytes) +
                            " bytes");
      }
    } else if (key == "connection") {
      const std::string lowered = to_lower(value);
      if (lowered == "close") out.keep_alive = false;
      if (lowered == "keep-alive") out.keep_alive = true;
    } else if (key == "transfer-encoding") {
      throw ProtocolError("chunked transfer encoding is not supported");
    }
    out.headers.emplace_back(std::move(key), std::move(value));
  }

  const std::size_t total = head_end + 4 + content_length;
  if (buffer.size() < total) return 0;
  out.body = std::string(buffer.substr(head_end + 4, content_length));
  return total;
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    reason_phrase(status) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

RequestMsg parse_schedule_json(std::string_view body) {
  JsonReader r(body);
  RequestMsg out;
  bool have_n = false;
  r.expect('{');
  if (!r.consume_if('}')) {
    do {
      const std::string key = r.string();
      r.expect(':');
      if (key == "id") {
        out.id = r.uint(~std::uint64_t{0});
      } else if (key == "n") {
        out.dim = static_cast<hcube::Dim>(r.uint(hcube::kMaxDim));
        have_n = true;
      } else if (key == "source") {
        out.source = static_cast<hcube::NodeId>(r.uint(0xffffffffull));
      } else if (key == "res") {
        const std::string res = r.string();
        if (res == "high") {
          out.resolution = hcube::Resolution::HighToLow;
        } else if (res == "low") {
          out.resolution = hcube::Resolution::LowToHigh;
        } else {
          r.fail("\"res\" must be \"high\" or \"low\"");
        }
      } else if (key == "dests") {
        r.expect('[');
        if (!r.consume_if(']')) {
          do {
            out.destinations.push_back(
                static_cast<hcube::NodeId>(r.uint(0xffffffffull)));
          } while (r.consume_if(','));
          r.expect(']');
        }
      } else {
        r.fail("unknown key \"" + key + "\"");
      }
    } while (r.consume_if(','));
    r.expect('}');
  }
  if (!r.at_end()) r.fail("trailing bytes after the request object");
  if (!have_n || out.dim < 1) r.fail("missing required key \"n\"");
  return out;
}

std::string schedule_to_json(const core::MulticastSchedule& schedule) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("source").value(static_cast<std::uint64_t>(schedule.source()));
  w.key("sends").begin_array();
  for (const hcube::NodeId from : schedule.senders()) {
    for (const core::Send& send : schedule.sends_from(from)) {
      w.begin_object();
      w.key("from").value(static_cast<std::uint64_t>(from));
      w.key("to").value(static_cast<std::uint64_t>(send.to));
      w.key("payload").begin_array();
      for (const hcube::NodeId node : send.payload) {
        w.value(static_cast<std::uint64_t>(node));
      }
      w.end_array();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

}  // namespace hypercast::net
