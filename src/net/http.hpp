#ifndef HYPERCAST_NET_HTTP_HPP
#define HYPERCAST_NET_HTTP_HPP

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/protocol.hpp"

namespace hypercast::net {

/// Minimal HTTP/1.1 support for the serving front end's fallback
/// endpoints (`POST /schedule` with a JSON body, `GET /metrics`
/// Prometheus exposition, `GET /stats`, `GET /healthz`). This is not a
/// general web server: exactly the subset the endpoints need — request
/// line + headers + Content-Length body, keep-alive by default, no
/// chunked transfer, no multipart.

struct HttpRequest {
  std::string method;  ///< "GET" / "POST" (uppercased by the parser)
  std::string target;  ///< path only; any "?query" is split off
  std::string query;   ///< bytes after '?', if any
  std::vector<std::pair<std::string, std::string>> headers;  ///< lowercased keys
  std::string body;
  bool keep_alive = true;

  /// Header lookup by lowercase name; empty string when absent.
  std::string_view header(std::string_view name) const;
};

/// True when the start of a connection's first bytes look like an HTTP
/// method rather than a binary frame. Needs at most 8 bytes; callable
/// on shorter prefixes (returns false until enough bytes arrive, which
/// is fine — binary frames also need 4 bytes before progress).
bool looks_like_http(std::string_view prefix);

/// Extract one complete HTTP request from the front of `buffer`.
/// Returns the bytes consumed when complete, 0 when more input is
/// needed. Throws ProtocolError on malformed input or when the head or
/// body exceeds `max_bytes`.
std::size_t parse_http_request(std::string_view buffer, std::size_t max_bytes,
                               HttpRequest& out);

/// Serialize a response with Content-Length framing.
std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive);

/// Parse a JSON schedule request body:
///   {"id": 7, "n": 8, "source": 3, "dests": [1,2,3], "res": "high"}
/// "id" and "res" are optional (default 0 / "high"). Unknown keys are
/// rejected — a typo should fail loudly, not silently serve defaults.
/// Throws ProtocolError with a position diagnostic on bad JSON.
RequestMsg parse_schedule_json(std::string_view body);

/// JSON rendering of a schedule (the HTTP mirror of encode_schedule):
///   {"source": u, "sends": [{"from": u, "to": v, "payload": [...]},...]}
/// Sends appear grouped by sender in ascending node order, preserving
/// each sender's issue order — the same deterministic order as the
/// binary encoding.
std::string schedule_to_json(const core::MulticastSchedule& schedule);

}  // namespace hypercast::net

#endif  // HYPERCAST_NET_HTTP_HPP
