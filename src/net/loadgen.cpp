#include "net/loadgen.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "harness/bench.hpp"
#include "metrics/json.hpp"
#include "obs/obs.hpp"
#include "workload/random_sets.hpp"

namespace hypercast::net {

namespace {

/// Client request ids pack (connection, sequence) so responses —
/// which a batching server may reorder — map back to their send
/// timestamps.
constexpr int kSeqBits = 40;
constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::invalid_argument("bad loadgen host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Per-connection tallies merged after the join.
struct ConnStats {
  std::uint64_t sent = 0;
  std::uint64_t counts[6] = {0, 0, 0, 0, 0, 0};  ///< indexed by Status
  std::uint64_t io_errors = 0;
  std::uint64_t outstanding_at_exit = 0;
  std::vector<std::uint64_t> latencies_ns;
};

/// One client connection's whole life, run on its own thread.
class ConnDriver {
 public:
  ConnDriver(const LoadgenConfig& config, int index,
             const std::vector<std::vector<hcube::NodeId>>& shapes,
             std::uint64_t stop_at_ns, std::uint64_t budget)
      : config_(config),
        index_(index),
        shapes_(shapes),
        stop_at_ns_(stop_at_ns),
        budget_(budget),
        rng_(workload::derive_seed(config.seed, 0x4c4f4144ull,
                                   static_cast<std::uint64_t>(index))),
        topo_(static_cast<hcube::Dim>(config.dim)) {}

  ConnStats run() {
    int fd = -1;
    try {
      fd = connect_to(config_.host, config_.port);
    } catch (const std::exception&) {
      stats_.io_errors = 1;
      return std::move(stats_);
    }
    drive(fd);
    ::close(fd);
    stats_.outstanding_at_exit = outstanding_;
    return std::move(stats_);
  }

 private:
  void drive(int fd) {
    const double per_conn_rate =
        config_.open_rate / std::max(1, config_.connections);
    const std::uint64_t interval_ns =
        per_conn_rate > 0.0
            ? static_cast<std::uint64_t>(1e9 / per_conn_rate)
            : 0;
    std::uint64_t next_send_ns = obs::now_ns();
    std::uint64_t drain_deadline_ns = 0;

    while (true) {
      const std::uint64_t now = obs::now_ns();
      if (!done_sending_) {
        if (interval_ns == 0) {
          done_sending_ = now >= stop_at_ns_ || stats_.sent >= budget_;
        } else {
          // Open loop: the *schedule*, not the wall clock, decides when
          // sending is over. next_send_ns only advances when an arrival
          // is actually generated, so a send that blocked (buffer cap
          // below) still owes every arrival scheduled before stop — the
          // offered count cannot drift under backpressure. The grace
          // window bounds how long a dead server can hold us past stop.
          done_sending_ = next_send_ns >= stop_at_ns_ ||
                          stats_.sent >= budget_;
          if (!done_sending_ && stop_at_ns_ != ~std::uint64_t{0} &&
              now >= stop_at_ns_ + static_cast<std::uint64_t>(
                                       config_.drain_timeout_s * 1e9)) {
            done_sending_ = true;  // give up on the blocked backlog
          }
        }
      }
      if (done_sending_) {
        if (outstanding_ == 0 && out_.empty()) return;
        if (drain_deadline_ns == 0) {
          drain_deadline_ns =
              now + static_cast<std::uint64_t>(config_.drain_timeout_s * 1e9);
        }
        if (now >= drain_deadline_ns) return;
      } else if (out_.size() < std::size_t{1} << 20) {
        // Generate what's due; the buffer cap propagates server-side
        // backpressure (paused reads) into the arrival process instead
        // of buffering unboundedly.
        if (interval_ns == 0) {
          while (!done_sending_ && outstanding_ < config_.depth &&
                 stats_.sent < budget_) {
            enqueue_request(now);
          }
        } else {
          while (now >= next_send_ns && next_send_ns < stop_at_ns_ &&
                 stats_.sent < budget_ &&
                 out_.size() < std::size_t{1} << 20) {
            enqueue_request(now);
            next_send_ns += interval_ns;
          }
        }
      }

      if (!flush(fd)) return;

      // While the buffer cap has generation paused, wait for drain
      // (POLLOUT / responses) instead of spinning on the past-due
      // schedule.
      int timeout_ms = 50;
      if (!done_sending_ && interval_ns != 0 &&
          out_.size() < std::size_t{1} << 20) {
        const std::uint64_t later = obs::now_ns();
        timeout_ms = later >= next_send_ns
                         ? 0
                         : static_cast<int>(
                               std::min<std::uint64_t>(
                                   (next_send_ns - later) / 1000000 + 1, 50));
      }
      pollfd pfd{fd, POLLIN, 0};
      if (!out_.empty()) pfd.events |= POLLOUT;
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0 && errno != EINTR) {
        stats_.io_errors += 1;
        return;
      }
      if (rc > 0 && (pfd.revents & POLLIN) && !read_responses(fd)) return;
    }
  }

  void enqueue_request(std::uint64_t now_ns) {
    RequestMsg msg;
    msg.id = (static_cast<std::uint64_t>(index_) << kSeqBits) | stats_.sent;
    msg.dim = static_cast<hcube::Dim>(config_.dim);
    msg.resolution = hcube::Resolution::HighToLow;
    if (config_.mix == "random") {
      msg.source = static_cast<hcube::NodeId>(rng_() % topo_.num_nodes());
      msg.destinations = workload::random_destinations(
          topo_, msg.source, config_.dest_count, rng_);
    } else {
      // XOR-translate a pooled canonical (source 0) shape to a random
      // source: every request is distinct on the wire yet hits the
      // translation cache's relative entry.
      const auto& shape = shapes_[stats_.sent % shapes_.size()];
      const auto t = static_cast<hcube::NodeId>(rng_() % topo_.num_nodes());
      msg.source = t;
      msg.destinations.resize(shape.size());
      for (std::size_t i = 0; i < shape.size(); ++i) {
        msg.destinations[i] = shape[i] ^ t;
      }
    }
    encode_request(msg, out_);
    send_ns_.push_back(now_ns);
    ++stats_.sent;
    ++outstanding_;
  }

  bool flush(int fd) {
    while (out_off_ < out_.size()) {
      const ssize_t n = ::send(fd, out_.data() + out_off_,
                               out_.size() - out_off_, MSG_NOSIGNAL);
      if (n > 0) {
        out_off_ += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      stats_.io_errors += 1;
      return false;
    }
    if (out_off_ == out_.size()) {
      out_.clear();
      out_off_ = 0;
    }
    return true;
  }

  bool read_responses(int fd) {
    char buf[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        in_.append(buf, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        if (n == 0 && outstanding_ == 0 && done_sending_) return false;
        stats_.io_errors += 1;
        return false;
      }
      break;
    }

    std::size_t consumed = 0;
    while (true) {
      std::size_t size = 0;
      try {
        size = frame_size(std::string_view(in_).substr(consumed),
                          kMaxFrameBytes);
        if (size == 0) break;
        const ResponseMsg response = decode_response(
            std::string_view(in_).substr(consumed + 4, size - 4));
        consumed += size;
        const auto status = static_cast<std::size_t>(response.status);
        stats_.counts[status] += 1;
        if (outstanding_ > 0) --outstanding_;
        const std::uint64_t seq = response.id & kSeqMask;
        if (response.status == Status::Ok && seq < send_ns_.size()) {
          stats_.latencies_ns.push_back(obs::now_ns() - send_ns_[seq]);
        }
      } catch (const ProtocolError&) {
        stats_.io_errors += 1;
        return false;
      }
    }
    in_.erase(0, consumed);
    return true;
  }

  const LoadgenConfig& config_;
  const int index_;
  const std::vector<std::vector<hcube::NodeId>>& shapes_;
  const std::uint64_t stop_at_ns_;
  const std::uint64_t budget_;

  workload::Rng rng_;
  hcube::Topology topo_;
  ConnStats stats_;
  std::vector<std::uint64_t> send_ns_;  ///< indexed by sequence number
  std::string out_;
  std::size_t out_off_ = 0;
  std::string in_;
  std::size_t outstanding_ = 0;
  bool done_sending_ = false;
};

}  // namespace

std::uint64_t LoadgenResult::latency_ns(double q) const {
  if (latencies_ns.empty()) return 0;
  const auto last = latencies_ns.size() - 1;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(last));
  return latencies_ns[std::min(rank, last)];
}

LoadgenResult run_loadgen(const LoadgenConfig& config) {
  if (config.connections < 1) {
    throw std::invalid_argument("loadgen needs at least one connection");
  }
  if (config.dim < 1 || config.dim > static_cast<int>(hcube::kMaxDim)) {
    throw std::invalid_argument("loadgen dim outside [1, kMaxDim]");
  }
  const hcube::Topology topo(static_cast<hcube::Dim>(config.dim));
  if (config.dest_count + 1 > topo.num_nodes()) {
    throw std::invalid_argument("dest_count must leave room for the source");
  }

  // The canonical shape pool all connections share ("translated" mix).
  std::vector<std::vector<hcube::NodeId>> shapes;
  shapes.reserve(std::max<std::size_t>(config.shape_pool, 1));
  workload::Rng shape_rng(
      workload::derive_seed(config.seed, 0x53484150ull, 0));
  for (std::size_t i = 0; i < std::max<std::size_t>(config.shape_pool, 1);
       ++i) {
    shapes.push_back(
        workload::random_destinations(topo, 0, config.dest_count, shape_rng));
  }

  const std::uint64_t start_ns = obs::now_ns();
  const std::uint64_t stop_at_ns =
      config.total_requests > 0
          ? ~std::uint64_t{0}
          : start_ns + static_cast<std::uint64_t>(config.duration_s * 1e9);
  const std::uint64_t budget =
      config.total_requests > 0
          ? (config.total_requests +
             static_cast<std::uint64_t>(config.connections) - 1) /
                static_cast<std::uint64_t>(config.connections)
          : ~std::uint64_t{0};

  std::vector<ConnStats> per_conn(
      static_cast<std::size_t>(config.connections));
  std::vector<std::thread> threads;
  threads.reserve(per_conn.size());
  for (int i = 0; i < config.connections; ++i) {
    threads.emplace_back([&, i] {
      ConnDriver driver(config, i, shapes, stop_at_ns, budget);
      per_conn[static_cast<std::size_t>(i)] = driver.run();
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall =
      static_cast<double>(obs::now_ns() - start_ns) / 1e9;

  LoadgenResult result;
  result.wall_seconds = wall;
  for (const ConnStats& c : per_conn) {
    result.sent += c.sent;
    result.ok += c.counts[static_cast<std::size_t>(Status::Ok)];
    result.shed_queue_full +=
        c.counts[static_cast<std::size_t>(Status::ShedQueueFull)];
    result.shed_deadline +=
        c.counts[static_cast<std::size_t>(Status::ShedDeadline)];
    result.bad_request +=
        c.counts[static_cast<std::size_t>(Status::BadRequest)];
    result.shutting_down +=
        c.counts[static_cast<std::size_t>(Status::ShuttingDown)];
    result.internal_error +=
        c.counts[static_cast<std::size_t>(Status::InternalError)];
    result.io_errors += c.io_errors;
    result.lost += c.outstanding_at_exit;
    result.latencies_ns.insert(result.latencies_ns.end(),
                               c.latencies_ns.begin(), c.latencies_ns.end());
  }
  std::sort(result.latencies_ns.begin(), result.latencies_ns.end());
  return result;
}

std::string bench_artifact_json(const LoadgenConfig& config,
                                const LoadgenResult& result) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("schema").value("hypercast-bench-v1");
  w.key("name").value("serve_net");
  w.key("kind").value("micro");
  w.key("description")
      .value(std::string(config.open_rate > 0.0 ? "open" : "closed") +
             "-loop loopback SLO bench of the net serving front end");
  w.key("config").begin_object();
  w.key("connections")
      .value(static_cast<std::uint64_t>(config.connections));
  w.key("depth").value(static_cast<std::uint64_t>(config.depth));
  w.key("open_rate").value(config.open_rate);
  w.key("duration_s").value(config.duration_s);
  w.key("total_requests").value(config.total_requests);
  w.key("seed").value(config.seed);
  w.key("dim").value(static_cast<std::uint64_t>(config.dim));
  w.key("dest_count").value(static_cast<std::uint64_t>(config.dest_count));
  w.key("mix").value(config.mix);
  w.end_object();
  w.key("wall_seconds").begin_array().value(result.wall_seconds).end_array();
  w.key("metrics").begin_object();
  w.key("requests_per_sec").value(result.requests_per_sec());
  w.key("sent").value(static_cast<double>(result.sent));
  w.key("ok").value(static_cast<double>(result.ok));
  w.key("shed_rate").value(result.shed_rate());
  w.key("shed_queue_full").value(static_cast<double>(result.shed_queue_full));
  w.key("shed_deadline").value(static_cast<double>(result.shed_deadline));
  w.key("bad_request").value(static_cast<double>(result.bad_request));
  w.key("lost").value(static_cast<double>(result.lost));
  w.key("io_errors").value(static_cast<double>(result.io_errors));
  w.key("latency_p50_us")
      .value(static_cast<double>(result.latency_ns(0.50)) / 1e3);
  w.key("latency_p99_us")
      .value(static_cast<double>(result.latency_ns(0.99)) / 1e3);
  w.key("latency_p999_us")
      .value(static_cast<double>(result.latency_ns(0.999)) / 1e3);
  w.end_object();
  w.key("series").begin_array().end_array();
  bench::write_machine(w);
  w.end_object();
  return std::move(w).str();
}

}  // namespace hypercast::net
