#ifndef HYPERCAST_NET_LOADGEN_HPP
#define HYPERCAST_NET_LOADGEN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace hypercast::net {

/// Closed- and open-loop load generator for the binary serving
/// protocol. Deterministic by construction: the request mix is derived
/// from (seed, connection index, sequence number), so two runs against
/// the same server configuration issue byte-identical request streams.
struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  int connections = 4;  ///< one client thread per connection

  /// Closed loop (open_rate == 0): each connection keeps `depth`
  /// requests outstanding — throughput finds the server's capacity.
  std::size_t depth = 16;

  /// Open loop (open_rate > 0): requests arrive on a schedule at this
  /// aggregate rate (req/s across all connections), regardless of how
  /// fast responses come back — latency under a fixed offered load.
  double open_rate = 0.0;

  /// Stop criterion: a total request budget, or a wall-clock duration
  /// when the budget is 0.
  std::uint64_t total_requests = 0;
  double duration_s = 2.0;

  std::uint64_t seed = 0x5EEDCAFEull;

  /// Request shape: m destinations on an n-cube.
  int dim = 10;
  std::size_t dest_count = 48;
  std::size_t shape_pool = 64;  ///< distinct canonical destination sets

  /// "translated": every request is an XOR-translation of a pooled
  /// canonical shape (exercises the translation cache's steady state).
  /// "random": a fresh destination set per request (miss-heavy).
  std::string mix = "translated";

  double drain_timeout_s = 5.0;  ///< wait for trailing responses
};

struct LoadgenResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t internal_error = 0;
  std::uint64_t lost = 0;  ///< sent but never answered (drain timeout)
  std::uint64_t io_errors = 0;  ///< connections that died mid-run
  double wall_seconds = 0.0;

  /// One entry per Ok response: admission-to-decode nanoseconds,
  /// sorted ascending after the run.
  std::vector<std::uint64_t> latencies_ns;

  std::uint64_t answered() const {
    return ok + shed_queue_full + shed_deadline + bad_request +
           shutting_down + internal_error;
  }
  std::uint64_t shed() const { return shed_queue_full + shed_deadline; }
  double requests_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(ok) / wall_seconds : 0.0;
  }
  double shed_rate() const {
    return sent > 0 ? static_cast<double>(shed()) / static_cast<double>(sent)
                    : 0.0;
  }
  /// Latency quantile in nanoseconds (q in [0, 1]); 0 when empty.
  std::uint64_t latency_ns(double q) const;
};

/// Run the configured load against a listening server and block until
/// the budget/duration is exhausted and outstanding responses drained.
/// Throws std::system_error when no connection can be established.
LoadgenResult run_loadgen(const LoadgenConfig& config);

/// Render the result as a "hypercast-bench-v1" artifact (name
/// "serve_net") so the standard gates apply: requests_per_sec is the
/// rate metric check_bench_regression.py compares, latency quantiles
/// and the shed rate ride along as informational metrics.
std::string bench_artifact_json(const LoadgenConfig& config,
                                const LoadgenResult& result);

}  // namespace hypercast::net

#endif  // HYPERCAST_NET_LOADGEN_HPP
