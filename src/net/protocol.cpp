#include "net/protocol.hpp"

#include <cstring>

namespace hypercast::net {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Sequential reader over a frame body; every read checks bounds and
/// throws ProtocolError past the end.
class Reader {
 public:
  explicit Reader(std::string_view body) : body_(body) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(body_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    const auto* p = reinterpret_cast<const unsigned char*>(body_.data() + pos_);
    pos_ += 4;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::string_view bytes(std::size_t n) {
    need(n);
    const std::string_view out = body_.substr(pos_, n);
    pos_ += n;
    return out;
  }
  std::string_view rest() {
    const std::string_view out = body_.substr(pos_);
    pos_ = body_.size();
    return out;
  }
  std::size_t remaining() const { return body_.size() - pos_; }
  void expect_end(const char* what) const {
    if (pos_ != body_.size()) {
      throw ProtocolError(std::string(what) + ": " +
                          std::to_string(body_.size() - pos_) +
                          " trailing byte(s)");
    }
  }

 private:
  void need(std::size_t n) const {
    if (body_.size() - pos_ < n) {
      throw ProtocolError("truncated message body");
    }
  }

  std::string_view body_;
  std::size_t pos_ = 0;
};

/// Patch the reserved length prefix once the body size is known.
class FrameWriter {
 public:
  explicit FrameWriter(std::string& out) : out_(out), header_at_(out.size()) {
    put_u32(out_, 0);
  }
  ~FrameWriter() {
    const std::size_t body = out_.size() - header_at_ - 4;
    const auto v = static_cast<std::uint32_t>(body);
    out_[header_at_ + 0] = static_cast<char>(v & 0xff);
    out_[header_at_ + 1] = static_cast<char>((v >> 8) & 0xff);
    out_[header_at_ + 2] = static_cast<char>((v >> 16) & 0xff);
    out_[header_at_ + 3] = static_cast<char>((v >> 24) & 0xff);
  }

 private:
  std::string& out_;
  std::size_t header_at_;
};

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::ShedQueueFull: return "shed-queue-full";
    case Status::ShedDeadline: return "shed-deadline";
    case Status::BadRequest: return "bad-request";
    case Status::ShuttingDown: return "shutting-down";
    case Status::InternalError: return "internal-error";
  }
  return "unknown";
}

core::MulticastRequest RequestMsg::to_request() const {
  return core::MulticastRequest{hcube::Topology(dim, resolution), source,
                                destinations};
}

std::size_t frame_size(std::string_view buffer, std::size_t max_body) {
  if (buffer.size() < 4) return 0;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer.data());
  const std::uint32_t body = static_cast<std::uint32_t>(p[0]) |
                             (static_cast<std::uint32_t>(p[1]) << 8) |
                             (static_cast<std::uint32_t>(p[2]) << 16) |
                             (static_cast<std::uint32_t>(p[3]) << 24);
  if (body > max_body) {
    throw ProtocolError("frame body of " + std::to_string(body) +
                        " bytes exceeds the " + std::to_string(max_body) +
                        "-byte limit");
  }
  if (buffer.size() - 4 < body) return 0;
  return 4 + static_cast<std::size_t>(body);
}

void encode_request(const RequestMsg& msg, std::string& out) {
  FrameWriter frame(out);
  out.push_back(static_cast<char>(kScheduleRequest));
  put_u64(out, msg.id);
  out.push_back(static_cast<char>(msg.dim));
  out.push_back(static_cast<char>(msg.resolution));
  put_u32(out, msg.source);
  put_u32(out, static_cast<std::uint32_t>(msg.destinations.size()));
  for (const hcube::NodeId d : msg.destinations) put_u32(out, d);
}

void encode_schedule(const core::MulticastSchedule& schedule,
                     std::string& out) {
  put_u32(out, schedule.source());
  const std::vector<hcube::NodeId> senders = schedule.senders();
  put_u32(out, static_cast<std::uint32_t>(senders.size()));
  for (const hcube::NodeId from : senders) {
    put_u32(out, from);
    const auto sends = schedule.sends_from(from);
    put_u32(out, static_cast<std::uint32_t>(sends.size()));
    for (const core::Send& send : sends) {
      put_u32(out, send.to);
      put_u32(out, static_cast<std::uint32_t>(send.payload.size()));
      for (const hcube::NodeId node : send.payload) put_u32(out, node);
    }
  }
}

void encode_ok_response(std::uint64_t id,
                        const core::MulticastSchedule& schedule,
                        std::string& out) {
  FrameWriter frame(out);
  out.push_back(static_cast<char>(kScheduleResponse));
  put_u64(out, id);
  out.push_back(static_cast<char>(Status::Ok));
  encode_schedule(schedule, out);
}

void encode_error_response(std::uint64_t id, Status status,
                           std::string_view message, std::string& out) {
  FrameWriter frame(out);
  out.push_back(static_cast<char>(kScheduleResponse));
  put_u64(out, id);
  out.push_back(static_cast<char>(status));
  put_u32(out, static_cast<std::uint32_t>(message.size()));
  out.append(message);
}

RequestMsg decode_request(std::string_view body) {
  Reader r(body);
  const std::uint8_t type = r.u8();
  if (type != kScheduleRequest) {
    throw ProtocolError("unexpected message type " + std::to_string(type) +
                        " (want schedule request)");
  }
  RequestMsg out;
  out.id = r.u64();
  out.dim = static_cast<hcube::Dim>(r.u8());
  if (out.dim < 1 || out.dim > hcube::kMaxDim) {
    throw ProtocolError("cube dimension " + std::to_string(out.dim) +
                        " outside [1, " + std::to_string(hcube::kMaxDim) +
                        "]");
  }
  const std::uint8_t res = r.u8();
  if (res > 1) {
    throw ProtocolError("bad resolution byte " + std::to_string(res));
  }
  out.resolution = static_cast<hcube::Resolution>(res);
  out.source = r.u32();
  const std::uint32_t count = r.u32();
  if (static_cast<std::size_t>(count) * 4 != r.remaining()) {
    throw ProtocolError("destination count " + std::to_string(count) +
                        " disagrees with body length");
  }
  out.destinations.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.destinations.push_back(r.u32());
  }
  r.expect_end("schedule request");
  return out;
}

ResponseMsg decode_response(std::string_view body) {
  Reader r(body);
  const std::uint8_t type = r.u8();
  if (type != kScheduleResponse) {
    throw ProtocolError("unexpected message type " + std::to_string(type) +
                        " (want schedule response)");
  }
  ResponseMsg out;
  out.id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::InternalError)) {
    throw ProtocolError("bad status byte " + std::to_string(status));
  }
  out.status = static_cast<Status>(status);
  if (out.status == Status::Ok) {
    out.schedule_body = r.rest();
  } else {
    const std::uint32_t len = r.u32();
    out.message = std::string(r.bytes(len));
    r.expect_end("schedule response");
  }
  return out;
}

}  // namespace hypercast::net
