#ifndef HYPERCAST_NET_PROTOCOL_HPP
#define HYPERCAST_NET_PROTOCOL_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/multicast.hpp"

namespace hypercast::net {

/// The "hypercast-net-v1" wire protocol: length-prefixed binary frames
/// over TCP (the primary format; see docs/SERVING.md for the byte-level
/// spec) with an HTTP/1.1 + JSON fallback on the same port, detected
/// per connection from the first bytes.
///
/// Frame = u32 little-endian body length, then the body. Request and
/// response bodies both start with a one-byte message type and the
/// caller's u64 request id; everything multi-byte is little-endian.
/// Encoding is deterministic: the same schedule always serializes to
/// the same bytes (the loopback tests compare server responses against
/// locally encoded ServePipeline::serve output byte for byte).

/// Per-request outcome carried in every response.
enum class Status : std::uint8_t {
  Ok = 0,            ///< schedule follows
  ShedQueueFull = 1, ///< rejected at admission: server queue full
  ShedDeadline = 2,  ///< admitted but shed: deadline passed in queue
  BadRequest = 3,    ///< malformed request (message follows)
  ShuttingDown = 4,  ///< server draining, no new work accepted
  InternalError = 5, ///< serving threw (message follows)
};

const char* status_name(Status status);

inline constexpr std::uint8_t kScheduleRequest = 1;
inline constexpr std::uint8_t kScheduleResponse = 2;

/// Default cap on a frame body. A 20-cube broadcast request is ~4 MiB
/// of destinations and its schedule reply several times that, so the
/// ceiling is comfortably above any legal request while still bounding
/// a malicious length prefix.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

/// Thrown by every decoder on malformed input. The server maps it to a
/// BadRequest response (binary) or a 400 (HTTP) rather than dying.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A schedule request as it travels the wire: the MulticastRequest
/// fields plus the topology parameters and the caller's correlation id.
struct RequestMsg {
  std::uint64_t id = 0;
  hcube::Dim dim = 0;
  hcube::Resolution resolution = hcube::Resolution::HighToLow;
  hcube::NodeId source = 0;
  std::vector<hcube::NodeId> destinations;

  /// Materialize the core request (topology built from dim/resolution).
  /// Does not validate: the server validates centrally so that the
  /// error response is uniform.
  core::MulticastRequest to_request() const;
};

/// Decoded response header; `message` carries the error text for
/// non-Ok statuses, `schedule_body` the raw schedule bytes for Ok (kept
/// raw so clients that only measure latency never pay a deep decode).
struct ResponseMsg {
  std::uint64_t id = 0;
  Status status = Status::Ok;
  std::string message;
  std::string_view schedule_body;  ///< view into the decoded body
};

// ---- framing -------------------------------------------------------------

/// Size (header + body) of the first frame in `buffer`, or 0 when more
/// bytes are needed. Throws ProtocolError when the declared body length
/// exceeds `max_body` — the caller should drop the connection, since
/// the stream cannot be resynchronized.
std::size_t frame_size(std::string_view buffer, std::size_t max_body);

// ---- encoding ------------------------------------------------------------

/// Append one framed schedule request.
void encode_request(const RequestMsg& msg, std::string& out);

/// Deterministic schedule serialization (no frame, no header): source,
/// then per sender in ascending node order its ordered sends with
/// payloads. Shared by the Ok response encoder and by tests comparing
/// server bytes against locally built schedules.
void encode_schedule(const core::MulticastSchedule& schedule,
                     std::string& out);

/// Append one framed Ok response carrying `schedule`.
void encode_ok_response(std::uint64_t id,
                        const core::MulticastSchedule& schedule,
                        std::string& out);

/// Append one framed non-Ok response with a diagnostic message.
void encode_error_response(std::uint64_t id, Status status,
                           std::string_view message, std::string& out);

// ---- decoding ------------------------------------------------------------

/// Decode a request frame body (the bytes after the length prefix).
RequestMsg decode_request(std::string_view body);

/// Decode a response frame body. The returned schedule_body view points
/// into `body` and shares its lifetime.
ResponseMsg decode_response(std::string_view body);

}  // namespace hypercast::net

#endif  // HYPERCAST_NET_PROTOCOL_HPP
