#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <unordered_map>

#include "metrics/json.hpp"
#include "net/http.hpp"
#include "obs/registry.hpp"

namespace hypercast::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

int http_status_for(Status status) {
  switch (status) {
    case Status::Ok: return 200;
    case Status::ShedQueueFull:
    case Status::ShedDeadline: return 429;
    case Status::BadRequest: return 400;
    case Status::ShuttingDown: return 503;
    case Status::InternalError: return 500;
  }
  return 500;
}

std::string http_error_body(Status status, std::string_view message) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("status").value(status_name(status));
  if (!message.empty()) w.key("error").value(message);
  w.end_object();
  return std::move(w).str();
}

}  // namespace

/// Instrument handles resolved once against the default registry; the
/// server's counters also back the /metrics endpoint, so they bump
/// unconditionally (the network path dwarfs a striped relaxed add) —
/// only latency/batch histograms stay behind the stats flag.
struct Server::Metrics {
  obs::Counter* accepted;
  obs::Counter* closed;
  obs::Counter* requests;       ///< admitted into the queue
  obs::Counter* responses;      ///< Ok responses serialized
  obs::Counter* shed_queue_full;
  obs::Counter* shed_deadline;
  obs::Counter* bad_requests;
  obs::Counter* http_requests;  ///< HTTP requests of any kind
  obs::Histogram* request_ns;   ///< admission -> response serialized
  obs::Histogram* batch_size;

  static const Metrics& get() {
    static const Metrics m = [] {
      obs::Registry& r = obs::default_registry();
      return Metrics{&r.counter("net.accepted"),
                     &r.counter("net.closed"),
                     &r.counter("net.requests"),
                     &r.counter("net.responses"),
                     &r.counter("net.shed_queue_full"),
                     &r.counter("net.shed_deadline"),
                     &r.counter("net.bad_requests"),
                     &r.counter("net.http_requests"),
                     &r.histogram("net.request_ns"),
                     &r.histogram("net.batch_size")};
    }();
    return m;
  }
};

/// Per-connection state, owned by the event loop.
struct Server::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;          ///< unparsed received bytes
  std::string out;         ///< unsent response bytes
  std::size_t out_off = 0;
  std::size_t inflight = 0;  ///< admitted, response not yet in `out`
  bool decided = false;    ///< protocol sniffed?
  bool http = false;
  bool http_keep_alive = true;  ///< from the most recent HTTP request
  bool close_after_flush = false;

  bool wants_write() const { return out.size() > out_off; }
};

struct Server::ConnTable {
  std::unordered_map<int, std::unique_ptr<Conn>> by_fd;
  std::unordered_map<std::uint64_t, Conn*> by_id;
  std::atomic<std::size_t> count{0};
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), conns_(std::make_unique<ConnTable>()) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.high_watermark == 0 || config_.high_watermark >
                                         config_.queue_capacity) {
    config_.high_watermark = config_.queue_capacity * 3 / 4;
    if (config_.high_watermark == 0) config_.high_watermark = 1;
  }
  if (config_.low_watermark == 0 ||
      config_.low_watermark > config_.high_watermark) {
    config_.low_watermark = config_.queue_capacity / 2;
  }
}

Server::~Server() {
  stop();
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void Server::start() {
  if (started_) throw std::logic_error("Server::start: already running");

  // Build the serving stack first: an unknown algorithm should fail
  // here, before any socket exists. Nothing registers with the metrics
  // registry until every throwing step has succeeded, so a failed
  // start() never leaves a gauge callback pointing at a dead server.
  if (config_.cache) {
    coll::ScheduleCache::Config cc;
    cc.shards = config_.cache_shards;
    if (config_.cache_bytes != 0) cc.max_bytes = config_.cache_bytes;
    cache_ = std::make_shared<coll::ScheduleCache>(cc);
  }
  pipeline_ = std::make_unique<coll::ServePipeline>(config_.algorithm, cache_);
  metrics_ = &Metrics::get();

  // A serving process wants its own latency percentiles on /metrics
  // without a separate flag, so stats collection rides with the server.
  obs::set_stats_enabled(true);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("bad bind address '" + config_.bind_address +
                                "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind/listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "getsockname");
  }
  bound_port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "pipe");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  // Past this point nothing throws: registrations and threads are safe.
  if (cache_) cache_->attach_to_registry(obs::default_registry(), "cache");
  obs::default_registry().register_gauge_source("net", [this] {
    std::vector<std::pair<std::string, double>> out;
    out.emplace_back("connections",
                     static_cast<double>(conns_->count.load()));
    out.emplace_back("queue_depth", static_cast<double>(queue_depth()));
    out.emplace_back("outstanding", static_cast<double>(outstanding()));
    out.emplace_back("reads_paused", reads_paused_.load() ? 1.0 : 0.0);
    out.emplace_back("queue_capacity",
                     static_cast<double>(config_.queue_capacity));
    return out;
  });

  stop_requested_ = false;
  draining_ = false;
  worker_stop_ = false;
  started_ = true;
  loop_thread_ = std::thread([this] { event_loop(); });
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 's';
    [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::stop() {
  if (!started_) return;
  request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    worker_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  obs::default_registry().unregister_gauge_source("net");
  if (cache_) cache_->detach_from_registry();
  for (int* fd : {&listen_fd_, &wake_read_fd_, &wake_write_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  {
    // Drop any work the drain timeout abandoned.
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
  }
  completions_.clear();
  started_ = false;
}

void Server::wake() {
  const char byte = 'w';
  [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
}

void Server::drain_wake_pipe() {
  char buf[256];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

// ---- event loop ----------------------------------------------------------

void Server::event_loop() {
  using clock = std::chrono::steady_clock;
  clock::time_point drain_deadline{};

  while (true) {
    if (!draining_ && stop_requested_.load(std::memory_order_acquire)) {
      // Enter the drain: no new connections, no new reads; everything
      // already admitted is still served and flushed.
      draining_ = true;
      drain_deadline = clock::now() +
                       std::chrono::milliseconds(config_.drain_timeout_ms);
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
    }

    apply_completions();

    if (draining_) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_empty = queue_.empty();
      }
      bool flushed = true;
      for (const auto& [fd, conn] : conns_->by_fd) {
        if (conn->wants_write()) {
          flushed = false;
          break;
        }
      }
      if ((queue_empty && outstanding_.load() == 0 && flushed) ||
          clock::now() >= drain_deadline) {
        break;
      }
    }

    // Build the poll set for this round.
    std::vector<pollfd> fds;
    fds.reserve(conns_->by_fd.size() + 2);
    fds.push_back({wake_read_fd_, POLLIN, 0});
    const bool accepting =
        !draining_ && listen_fd_ >= 0 &&
        conns_->by_fd.size() < config_.max_connections;
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t conns_at = fds.size();
    std::vector<Conn*> polled;
    polled.reserve(conns_->by_fd.size());
    for (auto& [fd, conn] : conns_->by_fd) {
      short events = 0;
      const bool read_ok = !draining_ && !reads_paused_.load() &&
                           conn->inflight < config_.max_inflight_per_conn &&
                           !(conn->http && conn->inflight > 0) &&
                           !conn->close_after_flush;
      if (read_ok) events |= POLLIN;
      if (conn->wants_write()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({fd, events, 0});
      polled.push_back(conn.get());
    }

    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    if (fds[0].revents != 0) drain_wake_pipe();
    if (accepting && fds[1].revents != 0) accept_ready();
    for (std::size_t i = conns_at; i < fds.size(); ++i) {
      Conn* conn = polled[i - conns_at];
      // The conn may have been closed by an earlier event this round.
      if (conns_->by_fd.find(fds[i].fd) == conns_->by_fd.end()) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with readable data still pending is handled by the
        // read path returning 0/error; just close.
        close_conn(conn->fd);
        continue;
      }
      if (fds[i].revents & POLLIN) handle_readable(*conn);
      if (conns_->by_fd.find(fds[i].fd) == conns_->by_fd.end()) continue;
      if (fds[i].revents & POLLOUT) handle_writable(*conn);
    }
  }

  // Drain complete (or timed out): close everything still open.
  std::vector<int> open;
  open.reserve(conns_->by_fd.size());
  for (const auto& [fd, conn] : conns_->by_fd) open.push_back(fd);
  for (const int fd : open) close_conn(fd);
}

void Server::accept_ready() {
  while (conns_->by_fd.size() < config_.max_connections) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors: try again next round
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conns_->by_id.emplace(conn->id, conn.get());
    conns_->by_fd.emplace(fd, std::move(conn));
    conns_->count.store(conns_->by_fd.size());
    metrics_->accepted->inc();
  }
}

void Server::close_conn(int fd) {
  const auto it = conns_->by_fd.find(fd);
  if (it == conns_->by_fd.end()) return;
  conns_->by_id.erase(it->second->id);
  conns_->by_fd.erase(it);
  conns_->count.store(conns_->by_fd.size());
  ::close(fd);
  metrics_->closed->inc();
}

void Server::handle_readable(Conn& conn) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed its write side. Any fully buffered requests were
      // already parsed on arrival; drop the connection.
      close_conn(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    close_conn(conn.fd);
    return;
  }
  parse_input(conn);
}

void Server::parse_input(Conn& conn) {
  if (draining_) return;
  if (!conn.decided) {
    if (looks_like_http(conn.in)) {
      conn.decided = true;
      conn.http = true;
    } else if (conn.in.size() >= 8) {
      conn.decided = true;
      conn.http = false;
    } else {
      return;  // need more bytes to sniff
    }
  }
  if (conn.http) {
    parse_http(conn);
  } else {
    parse_binary(conn);
  }
}

void Server::parse_binary(Conn& conn) {
  std::size_t consumed = 0;
  while (conn.inflight < config_.max_inflight_per_conn) {
    const std::string_view rest =
        std::string_view(conn.in).substr(consumed);
    std::size_t size = 0;
    try {
      size = frame_size(rest, config_.max_frame_bytes);
    } catch (const ProtocolError& e) {
      // An over-limit length prefix cannot be resynchronized; answer
      // and hang up.
      std::string out;
      encode_error_response(0, Status::BadRequest, e.what(), out);
      conn.out += out;
      conn.close_after_flush = true;
      metrics_->bad_requests->inc();
      break;
    }
    if (size == 0) break;
    const std::string_view body = rest.substr(4, size - 4);

    RequestMsg msg;
    try {
      msg = decode_request(body);
    } catch (const ProtocolError& e) {
      // The frame boundary held, so the stream stays usable; only this
      // request fails.
      encode_error_response(0, Status::BadRequest, e.what(), conn.out);
      metrics_->bad_requests->inc();
      consumed += size;
      continue;
    }
    consumed += size;

    Pending pending;
    pending.conn_id = conn.id;
    pending.http = false;
    const std::uint64_t id = msg.id;
    pending.msg = std::move(msg);
    switch (try_enqueue(std::move(pending))) {
      case Admit::Ok:
        ++conn.inflight;
        break;
      case Admit::QueueFull:
        encode_error_response(id, Status::ShedQueueFull,
                              "server queue full", conn.out);
        metrics_->shed_queue_full->inc();
        break;
      case Admit::Draining:
        encode_error_response(id, Status::ShuttingDown, "server draining",
                              conn.out);
        break;
    }
  }
  conn.in.erase(0, consumed);
}

void Server::handle_http_request(Conn& conn, const HttpRequest& request) {
  metrics_->http_requests->inc();
  conn.http_keep_alive = request.keep_alive;
  const auto respond = [&](int status, std::string_view type,
                           std::string_view body) {
    conn.out += http_response(status, type, body, request.keep_alive);
    if (!request.keep_alive) conn.close_after_flush = true;
  };

  if (request.method == "GET") {
    if (request.target == "/metrics") {
      respond(200, "text/plain; version=0.0.4",
              obs::default_registry().to_prometheus());
      return;
    }
    if (request.target == "/stats") {
      respond(200, "application/json",
              obs::default_registry().to_json());
      return;
    }
    if (request.target == "/healthz") {
      respond(200, "text/plain", draining_ ? "draining\n" : "ok\n");
      return;
    }
    respond(404, "application/json",
            http_error_body(Status::BadRequest, "unknown path"));
    return;
  }
  if (request.method != "POST" || request.target != "/schedule") {
    respond(request.method == "POST" ? 404 : 405, "application/json",
            http_error_body(Status::BadRequest,
                            "use POST /schedule, GET /metrics, GET /stats "
                            "or GET /healthz"));
    return;
  }

  RequestMsg msg;
  try {
    msg = parse_schedule_json(request.body);
  } catch (const ProtocolError& e) {
    respond(400, "application/json",
            http_error_body(Status::BadRequest, e.what()));
    metrics_->bad_requests->inc();
    return;
  }
  Pending pending;
  pending.conn_id = conn.id;
  pending.http = true;
  pending.http_keep_alive = request.keep_alive;
  pending.msg = std::move(msg);
  switch (try_enqueue(std::move(pending))) {
    case Admit::Ok:
      ++conn.inflight;
      break;
    case Admit::QueueFull:
      respond(429, "application/json",
              http_error_body(Status::ShedQueueFull, "server queue full"));
      metrics_->shed_queue_full->inc();
      break;
    case Admit::Draining:
      respond(503, "application/json",
              http_error_body(Status::ShuttingDown, "server draining"));
      break;
  }
}

void Server::parse_http(Conn& conn) {
  // One queued schedule request at a time per HTTP connection keeps
  // keep-alive responses in request order without response reordering
  // machinery; diagnostics endpoints are answered inline and don't
  // count.
  while (conn.inflight == 0 && !conn.close_after_flush) {
    HttpRequest request;
    std::size_t consumed = 0;
    try {
      consumed = parse_http_request(conn.in, config_.max_frame_bytes,
                                    request);
    } catch (const ProtocolError& e) {
      conn.out += http_response(
          400, "application/json",
          http_error_body(Status::BadRequest, e.what()), false);
      conn.close_after_flush = true;
      metrics_->bad_requests->inc();
      return;
    }
    if (consumed == 0) return;
    conn.in.erase(0, consumed);
    handle_http_request(conn, request);
  }
}

void Server::handle_writable(Conn& conn) {
  while (conn.wants_write()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_conn(conn.fd);
    return;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.close_after_flush) close_conn(conn.fd);
}

Server::Admit Server::try_enqueue(Pending&& pending) {
  if (draining_) return Admit::Draining;
  pending.enqueue_ns = obs::now_ns();
  bool pause = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= config_.queue_capacity) return Admit::QueueFull;
    queue_.push_back(std::move(pending));
    pause = queue_.size() >= config_.high_watermark;
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  metrics_->requests->inc();
  if (pause) reads_paused_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_one();
  return Admit::Ok;
}

void Server::apply_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  if (batch.empty()) return;
  for (Completion& done : batch) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    const auto it = conns_->by_id.find(done.conn_id);
    if (it == conns_->by_id.end()) continue;  // client went away
    Conn& conn = *it->second;
    conn.out += done.bytes;
    if (conn.inflight > 0) --conn.inflight;
    // A response slot freed up: bytes buffered behind the per-conn
    // inflight cap (or an HTTP keep-alive turn) may now be parseable.
    if (!conn.in.empty()) parse_input(conn);
    // Flush eagerly; most responses fit the socket buffer and waiting
    // for the next poll round would add latency.
    handle_writable(conn);
  }
}

void Server::maybe_resume_reads() {
  if (!reads_paused_.load(std::memory_order_relaxed)) return;
  if (queue_depth() <= config_.low_watermark) {
    reads_paused_.store(false, std::memory_order_relaxed);
    wake();
  }
}

// ---- workers -------------------------------------------------------------

void Server::worker_loop() {
  std::vector<Pending> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return worker_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // worker_stop_ and drained
      const std::size_t take = std::min(config_.batch_max, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    maybe_resume_reads();

    const Metrics& m = *metrics_;
    if (obs::stats_enabled()) {
      m.batch_size->record(batch.size());
    }
    const std::uint64_t deadline_window =
        config_.deadline_ms * std::uint64_t{1000000};

    std::vector<Completion> done;
    done.reserve(batch.size());
    const auto respond = [&](const Pending& p,
                             const core::MulticastSchedule* schedule,
                             Status status, std::string_view message) {
      Completion c;
      c.conn_id = p.conn_id;
      if (p.http) {
        if (schedule != nullptr) {
          c.bytes = http_response(200, "application/json",
                                  schedule_to_json(*schedule),
                                  p.http_keep_alive);
        } else {
          c.bytes = http_response(http_status_for(status), "application/json",
                                  http_error_body(status, message),
                                  p.http_keep_alive);
        }
      } else if (schedule != nullptr) {
        encode_ok_response(p.msg.id, *schedule, c.bytes);
      } else {
        encode_error_response(p.msg.id, status, message, c.bytes);
      }
      if (schedule != nullptr) {
        m.responses->inc();
        if (obs::stats_enabled()) {
          m.request_ns->record(obs::now_ns() - p.enqueue_ns);
        }
      }
      done.push_back(std::move(c));
    };

    // Shed already-expired requests and validate the rest into the
    // serve batch; a malformed request must fail alone, not abort its
    // whole batch. Each live request keeps its *own* absolute deadline
    // (admission + window): collapsing them into one batch deadline
    // would let the oldest request ride the newest one's slack and be
    // served past its SLO instead of shed.
    std::vector<core::MulticastRequest> requests;
    std::vector<std::size_t> live;
    std::vector<std::uint64_t> deadlines;
    requests.reserve(batch.size());
    live.reserve(batch.size());
    deadlines.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Pending& p = batch[i];
      const std::uint64_t deadline =
          deadline_window == 0 ? 0 : p.enqueue_ns + deadline_window;
      if (deadline != 0 && obs::now_ns() > deadline) {
        m.shed_deadline->inc();
        respond(p, nullptr, Status::ShedDeadline, "deadline passed in queue");
        continue;
      }
      try {
        core::MulticastRequest request = p.msg.to_request();
        request.validate();
        requests.push_back(std::move(request));
        live.push_back(i);
        deadlines.push_back(deadline);
      } catch (const std::exception& e) {
        m.bad_requests->inc();
        respond(p, nullptr, Status::BadRequest, e.what());
      }
    }

    if (!requests.empty()) {
      const coll::ServePipeline::BatchPolicy policy{1, 0, deadlines};
      std::vector<std::shared_ptr<const core::MulticastSchedule>> schedules;
      coll::CoschedPlan plan;
      try {
        if (config_.cosched && requests.size() > 1) {
          auto cosched = pipeline_->serve_batch_cosched(
              requests, policy, config_.cosched_policy);
          schedules = std::move(cosched.schedules);
          plan = std::move(cosched.plan);
        } else {
          schedules = pipeline_->serve_batch(requests, policy);
        }
      } catch (const std::exception& e) {
        for (const std::size_t i : live) {
          respond(batch[i], nullptr, Status::InternalError, e.what());
        }
        live.clear();
      }
      const auto respond_slot = [&](std::size_t k) {
        const Pending& p = batch[live[k]];
        if (schedules[k] != nullptr) {
          respond(p, schedules[k].get(), Status::Ok, {});
        } else {
          // Exactly one net.shed_deadline increment per shed request:
          // the pipeline's serve.deadline_shed counter is a different
          // namespace, and a request shed at pop time never reaches
          // this path.
          m.shed_deadline->inc();
          respond(p, nullptr, Status::ShedDeadline,
                  "deadline passed before construction");
        }
      };
      if (!live.empty() && !plan.waves.empty()) {
        // Wave launch order: responses release clients wave by wave, so
        // the co-schedule's stagger survives the wire.
        std::vector<bool> responded(live.size(), false);
        for (const auto& wave : plan.waves) {
          for (const std::size_t k : wave.members) {
            respond_slot(k);
            responded[k] = true;
          }
        }
        for (std::size_t k = 0; k < live.size(); ++k) {
          if (!responded[k]) respond_slot(k);  // shed slots, not planned
        }
      } else {
        for (std::size_t k = 0; k < live.size(); ++k) respond_slot(k);
      }
    }

    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      for (Completion& c : done) completions_.push_back(std::move(c));
    }
    wake();
  }
}

}  // namespace hypercast::net
