#ifndef HYPERCAST_NET_SERVER_HPP
#define HYPERCAST_NET_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coll/serve_pipeline.hpp"
#include "net/protocol.hpp"

namespace hypercast::net {

/// Tuning knobs for the serving front end. Defaults are sized for the
/// loopback SLO bench (BENCH_serve_net); production deployments mostly
/// tune `workers`, `queue_capacity` and `deadline_ms`.
struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via Server::port())

  /// Schedule-serving pipeline behind the socket.
  std::string algorithm = "wsort";
  bool cache = true;
  std::size_t cache_shards = 0;  ///< 0 = auto
  std::size_t cache_bytes = 0;   ///< 0 = library default

  int workers = 2;  ///< serving worker threads (>= 1)

  /// Bounded request queue between the event loop and the workers.
  /// Admission past `queue_capacity` is shed (ShedQueueFull / HTTP 429).
  /// Reads pause once the depth crosses `high_watermark` and resume
  /// below `low_watermark` (0 = derive: 3/4 and 1/2 of capacity) — TCP
  /// backpressure toward clients instead of unbounded memory.
  std::size_t queue_capacity = 4096;
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;

  std::size_t max_connections = 256;      ///< accept cap; excess refused
  std::size_t max_inflight_per_conn = 128;  ///< per-conn admission cap
  std::size_t batch_max = 64;  ///< requests coalesced per serve_batch call

  /// Queue-time SLO: a request still queued this long after admission
  /// is shed (ShedDeadline) instead of served late. 0 disables. The
  /// deadline is per request (admission time + window): a request whose
  /// window expires while queued — or while batched behind
  /// later-admitted peers — is shed with the same ShedDeadline / 429
  /// accounting as one caught at pop time, never served late.
  std::uint64_t deadline_ms = 0;

  /// Contention-aware co-scheduling of each served batch (opt-in;
  /// --cosched). When on, the worker plans every batch's schedules into
  /// waves under `cosched_policy` (see coll::CoschedPolicy) and emits
  /// responses in wave launch order, so clients that fire requests on
  /// receipt inherit the contention-bounded stagger.
  bool cosched = false;
  coll::CoschedPolicy cosched_policy{};

  std::size_t max_frame_bytes = kMaxFrameBytes;

  /// stop() flushes admitted work for at most this long before
  /// force-closing (a drain, not an accept timeout).
  int drain_timeout_ms = 5000;
};

/// The async serving front end: one poll()-based event-loop thread owns
/// every socket (accept, framed reads, buffered writes); a pool of
/// worker threads pops coalesced batches from a bounded queue, serves
/// them through one shared coll::ServePipeline, and hands serialized
/// responses back through a completion queue + wake pipe. Binary
/// ("hypercast-net-v1" frames) and HTTP/JSON clients are detected per
/// connection on the same port; HTTP additionally exposes /metrics
/// (Prometheus), /stats (hypercast-stats-v1) and /healthz.
///
/// Shutdown is a drain: request_stop() (async-signal-safe — callable
/// from a SIGTERM handler) stops accepting and reading, every admitted
/// request is still served and its response flushed, then sockets
/// close. No admitted request is lost or answered twice.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  ///< stops (graceful drain) if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the event loop + workers. Throws
  /// std::system_error on socket errors and std::invalid_argument for
  /// an unknown algorithm.
  void start();

  /// The bound port (after start(); useful with config.port = 0).
  std::uint16_t port() const { return bound_port_; }

  bool running() const { return started_; }

  /// Begin the drain from any thread or signal handler: one atomic
  /// store and one write() on the wake pipe.
  void request_stop();

  /// request_stop(), then join everything once the drain completes (or
  /// the drain timeout forces the issue). Idempotent.
  void stop();

  const ServerConfig& config() const { return config_; }
  const std::shared_ptr<coll::ScheduleCache>& cache() const { return cache_; }

  /// Requests admitted and not yet answered (queued or being served).
  std::size_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  std::size_t queue_depth() const;

 private:
  struct Conn;

  /// One admitted request travelling from the event loop to a worker.
  struct Pending {
    std::uint64_t conn_id = 0;
    bool http = false;
    bool http_keep_alive = true;
    RequestMsg msg;
    std::uint64_t enqueue_ns = 0;
  };

  /// One serialized response travelling back.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string bytes;
  };

  struct Metrics;

  void event_loop();
  void worker_loop();

  void accept_ready();
  void handle_readable(Conn& conn);
  void parse_input(Conn& conn);
  void parse_binary(Conn& conn);
  void parse_http(Conn& conn);
  void handle_http_request(Conn& conn, const struct HttpRequest& request);
  void handle_writable(Conn& conn);
  void close_conn(int fd);
  void apply_completions();
  void maybe_resume_reads();

  enum class Admit { Ok, QueueFull, Draining };
  Admit try_enqueue(Pending&& pending);

  void wake();
  void drain_wake_pipe();

  ServerConfig config_;
  std::shared_ptr<coll::ScheduleCache> cache_;
  std::unique_ptr<coll::ServePipeline> pipeline_;
  const Metrics* metrics_ = nullptr;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;  ///< event-loop private
  std::atomic<bool> reads_paused_{false};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool worker_stop_ = false;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<std::size_t> outstanding_{0};

  /// Event-loop-private connection table (fd- and id-indexed).
  struct ConnTable;
  std::unique_ptr<ConnTable> conns_;
  std::uint64_t next_conn_id_ = 1;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace hypercast::net

#endif  // HYPERCAST_NET_SERVER_HPP
