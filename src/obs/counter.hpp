#ifndef HYPERCAST_OBS_COUNTER_HPP
#define HYPERCAST_OBS_COUNTER_HPP

#include <array>
#include <atomic>
#include <cstdint>

#include "obs/obs.hpp"

namespace hypercast::obs {

/// Sharded relaxed-atomic counter: increments land on one of kStripes
/// cache-line-padded slots selected by the caller's thread_slot(), so
/// concurrent writers from different threads never bounce one line.
/// value() is a racy-but-exact-sum snapshot (every increment is counted
/// once; concurrent increments may or may not be included). Usable
/// standalone (e.g. ScheduleCache's per-instance stats) or registered by
/// name in an obs::Registry.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;  // power of two

  void add(std::uint64_t n) {
    slots_[thread_slot() & (kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kStripes> slots_{};
};

}  // namespace hypercast::obs

#endif  // HYPERCAST_OBS_COUNTER_HPP
