#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace hypercast::obs {

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  std::uint64_t min = ~std::uint64_t{0};
  for (const Stripe& s : stripes_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    min = std::min(min, s.min.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t c : out.buckets) out.count += c;
  // A racy snapshot can observe a stripe's bucket increment before its
  // min/max CAS lands, leaving count > 0 with the min still at its
  // ~0 sentinel (and the max at 0). Clamp min to the observed max so
  // the snapshot's [min, max] is always an ordered interval —
  // percentile() clamps into it.
  out.min = out.count == 0 ? 0 : std::min(min, out.max);
  return out;
}

void Histogram::reset() {
  for (Stripe& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Snapshots assembled from racing stripes (or merged across shards)
  // can carry an inconsistent min > max — e.g. a bucket increment
  // observed before the recording thread's min CAS landed. Order the
  // clamp interval defensively: std::clamp(v, lo, hi) with lo > hi is
  // undefined behaviour, and percentiles must stay monotone regardless.
  const std::uint64_t lo_bound = std::min(min, max);
  const std::uint64_t hi_bound = max;
  // The rank we want: the ceil(q * count)-th smallest sample (1-based),
  // at least the 1st.
  const double target =
      std::max(1.0, std::ceil(q * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Midpoint interpolation inside the bucket, against the tightest
      // bounds we know: the bucket's range intersected with [min, max].
      const double lo =
          static_cast<double>(std::max(bucket_lower(i), lo_bound));
      const double hi = static_cast<double>(std::min(
          bucket_upper(i),
          hi_bound == ~std::uint64_t{0} ? hi_bound : hi_bound + 1));
      const double frac =
          (target - 0.5 - static_cast<double>(cum)) / static_cast<double>(c);
      const double v = lo + frac * std::max(hi - lo, 0.0);
      return std::clamp(v, static_cast<double>(lo_bound),
                        static_cast<double>(hi_bound));
    }
    cum += c;
  }
  return static_cast<double>(max);  // unreachable unless counts raced
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

}  // namespace hypercast::obs
