#ifndef HYPERCAST_OBS_HISTOGRAM_HPP
#define HYPERCAST_OBS_HISTOGRAM_HPP

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "obs/obs.hpp"

namespace hypercast::obs {

/// Mergeable point-in-time view of a Histogram (or several: merge()).
/// Percentiles interpolate linearly inside the winning log2 bucket,
/// clamped to the observed [min, max], so they are monotone in q and an
/// empty snapshot reports 0 everywhere.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;

  /// Inclusive lower / exclusive upper value bound of bucket i. Bucket 0
  /// holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i); the top bucket
  /// additionally absorbs everything >= 2^(kBuckets-1) (overflow).
  static std::uint64_t bucket_lower(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  static std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 1;
    if (i >= kBuckets - 1) return ~std::uint64_t{0};
    return std::uint64_t{1} << i;
  }

  bool empty() const { return count == 0; }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// q in [0, 1] (clamped). Monotone in q; 0 for an empty snapshot.
  double percentile(double q) const;

  /// Fold `other` into this snapshot (bucket-wise addition, min/max
  /// union). Merging snapshots taken from disjoint histograms is exact.
  void merge(const HistogramSnapshot& other);
};

/// Log2-bucketed histogram of unsigned samples (latencies in ns, sizes,
/// ...). record() is wait-free and sharded: each thread's samples land
/// in a cache-line-padded stripe (bucket increment + sum add + min/max
/// CAS, all relaxed), so concurrent recorders do not contend. snapshot()
/// sums the stripes — a racy snapshot, like every exposition here.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;
  static constexpr std::size_t kStripes = 8;  // power of two

  static std::size_t bucket_index(std::uint64_t v) {
    if (v == 0) return 0;
    const auto w = static_cast<std::size_t>(std::bit_width(v));
    return w < kBuckets ? w : kBuckets - 1;
  }

  void record(std::uint64_t v) {
    Stripe& s = stripes_[thread_slot() & (kStripes - 1)];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    update_max(s.max, v);
    update_min(s.min, v);
  }

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  static void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  };
  std::array<Stripe, kStripes> stripes_{};
};

}  // namespace hypercast::obs

#endif  // HYPERCAST_OBS_HISTOGRAM_HPP
