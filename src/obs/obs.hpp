#ifndef HYPERCAST_OBS_OBS_HPP
#define HYPERCAST_OBS_OBS_HPP

#include <atomic>
#include <chrono>
#include <cstdint>

/// Observability substrate: process-wide enable flags, the monotonic
/// clock every instrument shares, and the per-thread stripe index the
/// sharded counters/histograms hash on.
///
/// Two independent switches, both off by default:
///  * stats   — counters and latency histograms on the serving/sim hot
///    paths. Off, an instrumented call site costs one relaxed load and a
///    predicted branch; -DHYPERCAST_OBS_DISABLE turns that load into a
///    compile-time constant so the instrumentation folds away entirely.
///  * tracing — scoped spans collected for Chrome trace-event export.
///    Separately gated because span recording allocates (event storage)
///    and is meant for --trace-out style debugging runs, not steady-state
///    serving.
namespace hypercast::obs {

#if defined(HYPERCAST_OBS_DISABLE)
inline constexpr bool kCompiled = false;
#else
inline constexpr bool kCompiled = true;
#endif

namespace detail {
inline std::atomic<bool> g_stats{false};
inline std::atomic<bool> g_tracing{false};
inline std::atomic<unsigned> g_next_thread_slot{0};
}  // namespace detail

inline bool stats_enabled() {
  return kCompiled && detail::g_stats.load(std::memory_order_relaxed);
}
inline void set_stats_enabled(bool on) {
  detail::g_stats.store(on, std::memory_order_relaxed);
}

inline bool tracing_enabled() {
  return kCompiled && detail::g_tracing.load(std::memory_order_relaxed);
}
inline void set_tracing_enabled(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

/// RAII save/restore of both flags — benchmarks that flip the globals to
/// measure on/off modes must not leak the change into later benchmarks.
class FlagsGuard {
 public:
  FlagsGuard() : stats_(stats_enabled()), tracing_(tracing_enabled()) {}
  ~FlagsGuard() {
    set_stats_enabled(stats_);
    set_tracing_enabled(tracing_);
  }
  FlagsGuard(const FlagsGuard&) = delete;
  FlagsGuard& operator=(const FlagsGuard&) = delete;

 private:
  bool stats_;
  bool tracing_;
};

/// Small dense per-thread id, assigned on first use; doubles as the
/// stripe selector of sharded instruments and the tid of span events.
inline unsigned thread_slot() {
  thread_local const unsigned slot =
      detail::g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Monotonic nanoseconds (steady_clock). ~30ns per call on typical
/// Linux, which is why per-request stage timing samples (see
/// serve_pipeline.cpp) instead of stamping every request.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace hypercast::obs

#endif  // HYPERCAST_OBS_OBS_HPP
