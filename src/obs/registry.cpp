#include "obs/registry.hpp"

#include <cstdio>
#include <sstream>

#include "metrics/json.hpp"

namespace hypercast::obs {

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::register_gauge_source(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(fn);
}

void Registry::unregister_gauge_source(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.erase(name);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
  tracer_.clear();
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot out;
  std::vector<std::pair<std::string, GaugeFn>> gauge_fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      out.counters.emplace_back(name, c->value());
    }
    out.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      out.histograms.emplace_back(name, h->snapshot());
    }
    gauge_fns.reserve(gauges_.size());
    for (const auto& [name, fn] : gauges_) gauge_fns.emplace_back(name, fn);
  }
  // Gauge callbacks run unlocked: they read live objects (cache stats
  // take shard locks) and must be free to do so without holding mu_.
  out.gauges.reserve(gauge_fns.size());
  for (const auto& [name, fn] : gauge_fns) {
    out.gauges.emplace_back(name, fn());
  }
  out.trace_spans = tracer_.size();
  out.trace_dropped = tracer_.dropped();
  return out;
}

void Registry::write_json(metrics::JsonWriter& w) const {
  const Snapshot snap = snapshot();
  w.begin_object();
  w.key("schema").value("hypercast-stats-v1");
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("mean").value(h.mean());
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("p50").value(h.percentile(0.50));
    w.key("p95").value(h.percentile(0.95));
    w.key("p99").value(h.percentile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      w.begin_object();
      w.key("le").value(HistogramSnapshot::bucket_upper(i));
      w.key("count").value(h.buckets[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [source, fields] : snap.gauges) {
    w.key(source).begin_object();
    for (const auto& [field, value] : fields) {
      w.key(field).value(value);
    }
    w.end_object();
  }
  w.end_object();
  w.key("trace_spans").value(static_cast<std::uint64_t>(snap.trace_spans));
  w.key("trace_dropped").value(snap.trace_dropped);
  w.end_object();
}

std::string Registry::to_json() const {
  metrics::JsonWriter w;
  write_json(w);
  return std::move(w).str();
}

std::string Registry::format_text() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    os << "counter   " << name << " = " << value << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "histogram %s  count=%llu mean=%.1f p50=%.0f p95=%.0f "
                  "p99=%.0f max=%llu",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.percentile(0.50), h.percentile(0.95),
                  h.percentile(0.99),
                  static_cast<unsigned long long>(h.max));
    os << line << '\n';
  }
  for (const auto& [source, fields] : snap.gauges) {
    os << "gauges    " << source << ":";
    for (const auto& [field, value] : fields) {
      char item[96];
      std::snprintf(item, sizeof(item), " %s=%g", field.c_str(), value);
      os << item;
    }
    os << '\n';
  }
  if (snap.trace_spans > 0 || snap.trace_dropped > 0) {
    os << "tracer    spans=" << snap.trace_spans
       << " dropped=" << snap.trace_dropped << '\n';
  }
  return os.str();
}

namespace {

/// Prometheus metric-name sanitization: project the instrument name
/// into [a-zA-Z0-9_:] under the "hypercast_" namespace prefix.
std::string prom_name(const std::string& name) {
  std::string out = "hypercast_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prom_value(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void prom_value(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string Registry::to_prometheus() const {
  const Snapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name) + "_total";
    out += "# TYPE " + n + " counter\n" + n + " ";
    prom_value(out, value);
    out += '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    // Cumulative buckets over the log2 boundaries. Only boundaries whose
    // bucket is populated are emitted (any subset is valid Prometheus as
    // long as counts are cumulative), plus the mandatory +Inf sample;
    // the top (overflow) bucket has no finite upper bound and therefore
    // only ever lands in +Inf.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      out += n + "_bucket{le=\"";
      prom_value(out, HistogramSnapshot::bucket_upper(i));
      out += "\"} ";
      prom_value(out, cumulative);
      out += '\n';
    }
    out += n + "_bucket{le=\"+Inf\"} ";
    prom_value(out, h.count);
    out += '\n';
    out += n + "_sum ";
    prom_value(out, h.sum);
    out += '\n';
    out += n + "_count ";
    prom_value(out, h.count);
    out += '\n';
  }
  for (const auto& [source, fields] : snap.gauges) {
    for (const auto& [field, value] : fields) {
      const std::string n = prom_name(source + "_" + field);
      out += "# TYPE " + n + " gauge\n" + n + " ";
      prom_value(out, value);
      out += '\n';
    }
  }
  out += "# TYPE hypercast_trace_spans gauge\nhypercast_trace_spans ";
  prom_value(out, static_cast<std::uint64_t>(snap.trace_spans));
  out += "\n# TYPE hypercast_trace_dropped gauge\nhypercast_trace_dropped ";
  prom_value(out, snap.trace_dropped);
  out += '\n';
  return out;
}

Registry& default_registry() {
  static Registry* registry = new Registry();  // never destroyed: span
  return *registry;  // guards in static-destruction order may still record
}

}  // namespace hypercast::obs
