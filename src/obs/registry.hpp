#ifndef HYPERCAST_OBS_REGISTRY_HPP
#define HYPERCAST_OBS_REGISTRY_HPP

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/counter.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "obs/tracer.hpp"

namespace hypercast::metrics {
class JsonWriter;
}

namespace hypercast::obs {

/// Process-wide instrument registry: named counters and histograms
/// (created on first lookup, stable addresses — call sites resolve once
/// and keep the pointer), gauge sources (callbacks snapshotting live
/// objects such as a ScheduleCache at exposition time), and the span
/// tracer. Expositions are racy snapshots by design.
///
/// JSON schema ("hypercast-stats-v1", validated by
/// tools/check_stats_schema.py):
///   { "schema": "hypercast-stats-v1",
///     "counters":   { "<name>": <uint>, ... },
///     "histograms": { "<name>": { "count", "sum", "mean", "min", "max",
///                                 "p50", "p95", "p99",
///                                 "buckets": [ {"le": u, "count": c} ] } },
///     "gauges":     { "<source>": { "<field>": <number>, ... } },
///     "trace_spans": <uint>, "trace_dropped": <uint> }
/// Keys are sorted by name, so two snapshots of the same state are
/// byte-identical.
class Registry {
 public:
  /// A gauge source returns (field, value) pairs computed on demand.
  /// Sources run outside the registry lock but must not call back into
  /// this registry.
  using GaugeFn =
      std::function<std::vector<std::pair<std::string, double>>()>;

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  Tracer& tracer() { return tracer_; }

  void register_gauge_source(const std::string& name, GaugeFn fn);
  void unregister_gauge_source(const std::string& name);

  /// Zero every counter and histogram and clear the tracer; names and
  /// gauge sources stay registered.
  void reset();

  /// Write the exposition object through `w` (caller may be embedding it
  /// in a larger document, e.g. a bench artifact's "stats" key).
  void write_json(metrics::JsonWriter& w) const;
  std::string to_json() const;

  /// Human-readable exposition, one instrument per line, sorted.
  std::string format_text() const;

  /// Prometheus text exposition (version 0.0.4) of the same snapshot:
  ///  * counters    -> `hypercast_<name>_total` (TYPE counter)
  ///  * histograms  -> `hypercast_<name>` (TYPE histogram) with
  ///    *cumulative* `_bucket{le="..."}` samples ending at le="+Inf",
  ///    plus `_sum` and `_count`
  ///  * gauge sources -> `hypercast_<source>_<field>` (TYPE gauge)
  ///  * the tracer  -> `hypercast_trace_spans` / `hypercast_trace_dropped`
  /// Instrument names are sanitized into the Prometheus charset
  /// ([a-zA-Z0-9_:]; '.', '-', '/' and anything else become '_').
  /// Deterministic like the other expositions: same state, same bytes.
  std::string to_prometheus() const;

 private:
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::string, double>>>>
        gauges;
    std::size_t trace_spans = 0;
    std::uint64_t trace_dropped = 0;
  };
  Snapshot snapshot() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, GaugeFn> gauges_;
  Tracer tracer_;
};

/// The process-wide registry every built-in instrument registers with.
Registry& default_registry();

/// Scoped span: captures obs::now_ns() on entry and records a SpanEvent
/// into default_registry().tracer() on exit — if and only if tracing was
/// enabled at entry. `name` must outlive the guard (string literals).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      start_ = now_ns();
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) {
      default_registry().tracer().record(name_, start_, now_ns() - start_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace hypercast::obs

// Statement macro for scoped spans. Compiles to nothing under
// -DHYPERCAST_OBS_DISABLE; otherwise costs one relaxed load when tracing
// is off.
#if defined(HYPERCAST_OBS_DISABLE)
#define HYPERCAST_OBS_SPAN(name) static_cast<void>(0)
#else
#define HYPERCAST_OBS_CONCAT_(a, b) a##b
#define HYPERCAST_OBS_CONCAT(a, b) HYPERCAST_OBS_CONCAT_(a, b)
#define HYPERCAST_OBS_SPAN(name)               \
  const ::hypercast::obs::SpanGuard HYPERCAST_OBS_CONCAT( \
      hypercast_obs_span_, __LINE__)(name)
#endif

#endif  // HYPERCAST_OBS_REGISTRY_HPP
