#include "obs/tracer.hpp"

#include <algorithm>

#include "metrics/json.hpp"

namespace hypercast::obs {

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(SpanEvent{name, thread_slot(), start_ns, dur_ns});
}

std::vector<SpanEvent> Tracer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out = std::move(events_);
  events_.clear();
  dropped_ = 0;
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

namespace {

std::uint64_t earliest_of(const std::vector<SpanEvent>& events) {
  std::uint64_t earliest = 0;
  bool any = false;
  for (const SpanEvent& e : events) {
    if (!any || e.start_ns < earliest) earliest = e.start_ns;
    any = true;
  }
  return earliest;
}

void write_events(metrics::JsonWriter& w, const std::vector<SpanEvent>& events,
                  std::uint64_t epoch_ns) {
  for (const SpanEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("span");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(e.start_ns - epoch_ns) / 1000.0);
    w.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
    w.key("pid").value(std::int64_t{0});
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.end_object();
  }
}

}  // namespace

std::uint64_t Tracer::earliest_start_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return earliest_of(events_);
}

void Tracer::write_chrome_events(metrics::JsonWriter& w,
                                 std::uint64_t epoch_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  write_events(w, events_, epoch_ns);
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  metrics::JsonWriter w;
  w.begin_array();
  write_events(w, events_, earliest_of(events_));
  w.end_array();
  return std::move(w).str();
}

}  // namespace hypercast::obs
