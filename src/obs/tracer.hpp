#ifndef HYPERCAST_OBS_TRACER_HPP
#define HYPERCAST_OBS_TRACER_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace hypercast::metrics {
class JsonWriter;
}

namespace hypercast::obs {

/// One completed span: a named interval on one thread.
struct SpanEvent {
  std::string name;
  std::uint32_t tid = 0;       ///< obs::thread_slot() of the recorder
  std::uint64_t start_ns = 0;  ///< obs::now_ns() at span entry
  std::uint64_t dur_ns = 0;
};

/// Collects spans for Chrome trace-event export. Recording takes one
/// uncontended mutex (tracing is an explicit debugging mode, not a
/// steady-state path — the hot-path cost of an *untraced* span is a
/// relaxed flag load, see SpanGuard). The buffer is capped: events past
/// kMaxEvents are counted in dropped() instead of stored, so a traced
/// long-running serve loop cannot exhaust memory.
class Tracer {
 public:
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 20;

  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Move the collected events out (oldest first) and reset dropped().
  std::vector<SpanEvent> drain();

  std::size_t size() const;
  std::uint64_t dropped() const;
  void clear();

  /// Append the collected spans (without draining) as Chrome trace-event
  /// objects — complete ("ph":"X") events with microsecond timestamps
  /// relative to `epoch_ns` (pass 0 to keep absolute steady-clock time).
  /// The caller owns the enclosing JSON array.
  void write_chrome_events(metrics::JsonWriter& w,
                           std::uint64_t epoch_ns) const;

  /// A standalone chrome://tracing / Perfetto loadable document: a JSON
  /// array of the spans, timestamps rebased to the earliest span.
  std::string to_chrome_json() const;

  /// Earliest span start, or 0 when empty — the natural rebasing epoch
  /// when merging tracer spans with other event sources.
  std::uint64_t earliest_start_ns() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hypercast::obs

#endif  // HYPERCAST_OBS_TRACER_HPP
