#include "paths/disjoint.hpp"

namespace hypercast::paths {

std::optional<fault::NodePath> disjoint_route(
    const Topology& topo, const fault::FaultSet& faults,
    const core::ArcOwnerTable& owners, std::span<const NodeId> sources,
    NodeId target, const std::vector<bool>* banned) {
  return fault::constrained_bfs_detour(
      topo, faults, sources, target,
      [&owners](hcube::Arc a) { return owners.owner(a) < 0; }, banned);
}

}  // namespace hypercast::paths
