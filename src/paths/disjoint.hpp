#ifndef HYPERCAST_PATHS_DISJOINT_HPP
#define HYPERCAST_PATHS_DISJOINT_HPP

#include <optional>
#include <span>
#include <vector>

#include "core/ist.hpp"
#include "fault/fault_route.hpp"
#include "fault/fault_set.hpp"

namespace hypercast::paths {

using hcube::Arc;
using hcube::Dim;
using hcube::NodeId;
using hcube::Topology;

/// Disjoint-path routing for damaged spanning trees.
///
/// The striped collectives of coll/striped.hpp ride on the n
/// arc-disjoint IST trees; a detour that borrows another tree's channel
/// silently destroys the contention-freedom the whole scheme rests on.
/// This router constructs detours that are arc-disjoint from every
/// surviving tree *by construction*, in the spirit of the many-to-many
/// disjoint-path constructions for faulty hypercubes (PAPERS.md:
/// "Many-to-many disjoint paths in hypercubes with faulty vertices";
/// the real-time node-to-node disjoint-path algorithm): the already
/// claimed arcs are removed from the cube, and the detour is found in
/// the *free* surviving subgraph — so disjointness needs no after-the-
/// fact checking, only (optionally) confirmation via
/// core::verify_arc_disjoint's owner table, which shares the same
/// ArcOwnerTable representation.
///
/// The search is many-to-one: the set of nodes already holding the
/// message acts as a single super-source (fault/fault_route.hpp's
/// constrained_bfs_detour), which is what makes repairs of deep trees
/// feasible — any holder may originate the patch, not just the broken
/// send's parent.

/// Shortest route from any holder in `sources` to `target` through
/// arcs that are live under `faults` AND unclaimed in `owners`. The
/// returned path starts at the chosen holder. `banned` (node-indexed,
/// optional) additionally excludes nodes from intermediate positions.
/// Returns nullopt when the free surviving subgraph has no such route —
/// a *certified* negative: every live route would collide with a
/// claimed arc.
std::optional<fault::NodePath> disjoint_route(
    const Topology& topo, const fault::FaultSet& faults,
    const core::ArcOwnerTable& owners, std::span<const NodeId> sources,
    NodeId target, const std::vector<bool>* banned = nullptr);

}  // namespace hypercast::paths

#endif  // HYPERCAST_PATHS_DISJOINT_HPP
