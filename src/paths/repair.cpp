#include "paths/repair.hpp"

#include <cassert>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "fault/fault_aware.hpp"
#include "hcube/bits.hpp"
#include "hcube/ecube.hpp"
#include "obs/registry.hpp"

namespace hypercast::paths {

namespace {

using core::MulticastSchedule;
using core::Send;
using fault::FaultSet;

constexpr NodeId kNoParent = ~NodeId{0};

/// Repairs one damaged tree against a shared arc-ownership table.
/// Mirrors fault_aware.cpp's Repairer (BFS-order processing, deferral
/// until more of the tree has delivered) but every reroute goes through
/// the free surviving subgraph only, so disjointness from the other
/// claimed trees holds by construction. Works on a private copy of the
/// table; the caller commits it only on success.
class DisjointRepairer {
 public:
  DisjointRepairer(const MulticastSchedule& base,
                   std::span<const NodeId> destinations,
                   const FaultSet& faults, const core::ArcOwnerTable& owners,
                   int self)
      : base_(base),
        faults_(faults),
        topo_(base.topo()),
        out_(base.topo(), base.source()),
        table_(owners),
        self_(self),
        planned_(topo_.num_nodes(), false),
        received_(topo_.num_nodes(), false),
        released_(topo_.num_nodes(), 0),
        base_parent_(topo_.num_nodes(), kNoParent),
        base_send_(topo_.num_nodes(), nullptr) {
    if (faults_.node_failed(base_.source())) {
      throw std::invalid_argument("disjoint repair: source is dead");
    }
    for (const NodeId d : destinations) {
      if (faults_.node_failed(d)) {
        throw fault::UnrepairableFault("destination " + topo_.format(d) +
                                       " is dead; no repair can deliver");
      }
    }
    for (const NodeId r : base_.recipients()) {
      if (!faults_.node_failed(r)) planned_[r] = true;
    }
    received_[base_.source()] = true;
    holders_.push_back(base_.source());
    // Index the base tree (parent and Send per recipient) and pre-claim
    // its footprint under `self`. A pre-claim can lose an arc to a
    // previously committed non-disjoint tree (the planner force-claims
    // greedy fallbacks so later repairs still avoid them); the affected
    // send then simply fails the owns-path test and gets rerouted.
    for (const NodeId u : base_.senders()) {
      for (const Send& s : base_.sends_from(u)) {
        base_parent_[s.to] = u;
        base_send_[s.to] = &s;
        hcube::for_each_ecube_arc(topo_, u, s.to,
                                  [&](hcube::Arc a) { table_.try_claim(a, self_); });
      }
    }
  }

  std::optional<DisjointRepairResult> run(core::ArcOwnerTable& owners) {
    enqueue_sends(base_.source(), base_.source());
    while (!queue_.empty() && !failed_) {
      Item item = queue_.front();
      queue_.pop_front();
      process(item);
    }
    if (failed_) return std::nullopt;
    owners = std::move(table_);
    return DisjointRepairResult{std::move(out_), std::move(report_)};
  }

 private:
  struct Item {
    NodeId from;
    const Send* send;
    bool deferred = false;
  };

  void enqueue_sends(NodeId actual_from, NodeId tree_node) {
    for (const Send& s : base_.sends_from(tree_node)) {
      queue_.push_back({actual_from, &s});
    }
  }

  void deliver(NodeId from, NodeId to, std::span<const NodeId> payload) {
    out_.add_send(from, to, payload);  // copied into out_'s payload pool
    received_[to] = true;
    holders_.push_back(to);
    consecutive_defers_ = 0;
  }

  /// Return the base incoming arcs of `to` to the free pool — called
  /// exactly when that send will not be emitted (broken, skipped
  /// because a chain already fed `to`, or `to` is dead). Only arcs the
  /// pre-claim actually won are released.
  void release_base_arcs(NodeId to) {
    if (released_[to]) return;
    released_[to] = 1;
    const NodeId p = base_parent_[to];
    if (p == kNoParent) return;
    hcube::for_each_ecube_arc(topo_, p, to, [&](hcube::Arc a) {
      if (table_.owner(a) == self_) table_.release(a);
    });
  }

  bool owns_path(NodeId from, NodeId to) const {
    bool mine = true;
    hcube::for_each_ecube_arc(topo_, from, to, [&](hcube::Arc a) {
      if (table_.owner(a) != self_) mine = false;
    });
    return mine;
  }

  void process(Item item) {
    const NodeId from = item.from;
    const NodeId to = item.send->to;
    if (!item.deferred) ++report_.unicasts_checked;
    if (received_[to]) {
      // A repair chain already fed `to` (its delivery moved onto the
      // chain): skip the base send, free its arcs, and let the subtree
      // flow from `to` as planned.
      release_base_arcs(to);
      enqueue_sends(to, to);
      return;
    }
    if (faults_.node_failed(to)) {
      // Dead relay (destinations were screened in the constructor).
      ++report_.dead_relays_bypassed;
      release_base_arcs(to);
      enqueue_sends(from, to);
      return;
    }
    if (!faults_.path_blocked(from, to) && owns_path(from, to)) {
      deliver(from, to, item.send->payload);
      enqueue_sends(to, to);
      return;
    }
    if (!item.deferred) ++report_.broken;
    release_base_arcs(to);
    std::optional<fault::NodePath> path = disjoint_route(
        topo_, faults_, table_, holders_, to);
    if (path) {
      emit(from, *item.send, *path);
      enqueue_sends(to, to);
      return;
    }
    // No free live route *yet*. More holders appear (and skipped sends
    // free more arcs) as the rest of the tree processes, so defer; a
    // full queue cycle with no delivery certifies there is no disjoint
    // repair at all.
    item.deferred = true;
    if (++consecutive_defers_ > queue_.size() + 1) {
      failed_ = true;
      return;
    }
    queue_.push_back(item);
  }

  void emit(NodeId orig_from, const Send& send, const fault::NodePath& path) {
    const NodeId to = send.to;
    const std::vector<NodeId> endpoints = fault::segment_endpoints(topo_, path);
    // The route used free arcs only; claim them before anything else
    // re-routes. Within a segment the E-cube route IS the path run, so
    // walking the raw path claims exactly the emitted footprint.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Dim d = hcube::lowest_bit(path[i] ^ path[i + 1]);
      const bool fresh = table_.try_claim(hcube::Arc{path[i], d}, self_);
      assert(fresh && "disjoint_route returned a claimed arc");
      (void)fresh;
    }
    NodeId carrier = endpoints.front();
    for (std::size_t i = 1; i < endpoints.size(); ++i) {
      const NodeId z = endpoints[i];
      if (z == to) {
        deliver(carrier, z, send.payload);
      } else {
        // A relay's payload is its strict descendants in the *final*
        // tree: the rest of the chain, the target and its subtree, and
        // — for every chain-fed endpoint from z itself downward — that
        // endpoint's base subtree, which will flow out of it once the
        // chain has fed it. (Interior endpoints are never holders — the
        // multi-source BFS would have started there — so the planned
        // and not-received test below is exact.)
        relay_payload_.assign(
            endpoints.begin() + static_cast<std::ptrdiff_t>(i) + 1,
            endpoints.end());
        relay_payload_.insert(relay_payload_.end(), send.payload.begin(),
                              send.payload.end());
        for (std::size_t j = i; j + 1 < endpoints.size(); ++j) {
          const NodeId e = endpoints[j];
          if (planned_[e] && !received_[e] && base_send_[e] != nullptr) {
            relay_payload_.insert(relay_payload_.end(),
                                  base_send_[e]->payload.begin(),
                                  base_send_[e]->payload.end());
          }
        }
        if (planned_[z] && !received_[z]) {
          // Chain feeding: this planned recipient's delivery moves onto
          // the chain; its base incoming send is skipped when it
          // dequeues, and its own base sends still run from it.
          ++report_.chain_fed;
          release_base_arcs(z);
        } else if (!planned_[z]) {
          planned_[z] = true;
          ++report_.relay_nodes_added;
        }
        deliver(carrier, z, relay_payload_);
      }
      carrier = z;
    }
    ++report_.rerouted;
    report_.extra_hops += static_cast<int>(path.size()) - 1 -
                          topo_.distance(orig_from, to);
  }

  const MulticastSchedule& base_;
  const FaultSet& faults_;
  Topology topo_;
  MulticastSchedule out_;
  core::ArcOwnerTable table_;
  int self_;
  std::vector<bool> planned_;
  std::vector<bool> received_;
  std::vector<char> released_;
  std::vector<NodeId> base_parent_;
  std::vector<const Send*> base_send_;
  std::vector<NodeId> holders_;
  std::deque<Item> queue_;
  std::vector<NodeId> relay_payload_;
  std::size_t consecutive_defers_ = 0;
  bool failed_ = false;
  DisjointRepairReport report_;
};

}  // namespace

std::string DisjointRepairReport::summary() const {
  std::ostringstream os;
  os << "disjoint repair: " << unicasts_checked << " unicasts checked, "
     << broken << " broken, " << rerouted << " chains routed, " << chain_fed
     << " chain-fed, " << relay_nodes_added << " relay nodes added, "
     << dead_relays_bypassed << " dead relays bypassed, +" << extra_hops
     << " hops";
  return os.str();
}

std::optional<DisjointRepairResult> repair_disjoint(
    const core::MulticastSchedule& base, std::span<const NodeId> destinations,
    const fault::FaultSet& faults, core::ArcOwnerTable& owners, int self) {
  HYPERCAST_OBS_SPAN("paths.repair_disjoint");
  std::optional<DisjointRepairResult> out =
      DisjointRepairer(base, destinations, faults, owners, self).run(owners);
  if (obs::stats_enabled()) {
    obs::Registry& r = obs::default_registry();
    r.counter("paths.repair_calls").inc();
    if (out) {
      r.counter("paths.repair_certified").inc();
      r.counter("paths.chains_routed").add(out->report.rerouted);
      r.counter("paths.chain_fed").add(out->report.chain_fed);
    } else {
      r.counter("paths.repair_infeasible").inc();
    }
  }
  return out;
}

}  // namespace hypercast::paths
