#ifndef HYPERCAST_PATHS_REPAIR_HPP
#define HYPERCAST_PATHS_REPAIR_HPP

#include <optional>
#include <span>
#include <string>

#include "core/ist.hpp"
#include "paths/disjoint.hpp"

namespace hypercast::paths {

/// What a certified disjoint repair did to one damaged tree.
struct DisjointRepairReport {
  std::size_t unicasts_checked = 0;
  std::size_t broken = 0;     ///< base sends a fault blocked
  std::size_t rerouted = 0;   ///< repair chains emitted (one per broken send)
  std::size_t chain_fed = 0;  ///< planned recipients whose delivery moved
                              ///< onto a repair chain (their base send is
                              ///< skipped — the tree property is kept)
  std::size_t relay_nodes_added = 0;  ///< fresh relay recipients introduced
  std::size_t dead_relays_bypassed = 0;
  int extra_hops = 0;  ///< transmitted chain hops minus E-cube distance

  std::string summary() const;
};

/// A repaired schedule plus its accounting. The schedule is NOT
/// finalized (callers finalize after any further surgery).
struct DisjointRepairResult {
  core::MulticastSchedule schedule;
  DisjointRepairReport report;
};

/// Repair `base` against `faults` such that the result is arc-disjoint
/// from everything already claimed in `owners` — the certified
/// alternative to fault::repair_schedule's greedy detours.
///
/// `owners` must hold the E-cube footprints of every *other* surviving
/// tree (claimed under their ids); `base`'s own arcs are claimed under
/// `self` internally. Broken, skipped and dead-bypassed base sends
/// release their arcs back to the free pool, and every repair chain is
/// routed by disjoint_route through free arcs only, so the invariant
/// "one owner per directed arc" holds at every step — on success
/// `owners` has absorbed exactly the result's footprint under `self`
/// and the repaired family verifies under core::verify_arc_disjoint.
///
/// Broken sends are rerouted from the *set of nodes already holding the
/// message* (many-to-one), and a chain is allowed to pass through a
/// planned-but-not-yet-delivered recipient: that node's delivery simply
/// moves onto the chain (carrying its subtree payload) and its original
/// incoming send is skipped — the "chain feeding" that makes even
/// root-blocked trees repairable once a dropped tree has freed arcs.
///
/// Returns nullopt — leaving `owners` untouched — when some broken send
/// has no disjoint repair (a certified fallback signal: every live
/// route collides with a claimed arc). Throws std::invalid_argument
/// when the source is dead and fault::UnrepairableFault when a
/// destination is dead (no routing of any kind can deliver).
std::optional<DisjointRepairResult> repair_disjoint(
    const core::MulticastSchedule& base, std::span<const NodeId> destinations,
    const fault::FaultSet& faults, core::ArcOwnerTable& owners, int self);

}  // namespace hypercast::paths

#endif  // HYPERCAST_PATHS_REPAIR_HPP
