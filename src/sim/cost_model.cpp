#include "sim/cost_model.hpp"

// CostModel is header-only arithmetic; this translation unit exists so the
// library has a home for future out-of-line additions and so that the
// header's constexpr definitions are compiled at least once.

namespace hypercast::sim {

static_assert(CostModel{}.unicast_latency(0, 0) ==
              CostModel{}.send_startup + CostModel{}.recv_overhead);
static_assert(CostModel::ncube2().body_time(4096) ==
              4096 * CostModel::ncube2().ns_per_byte);

}  // namespace hypercast::sim
