#ifndef HYPERCAST_SIM_COST_MODEL_HPP
#define HYPERCAST_SIM_COST_MODEL_HPP

#include <cstdint>

namespace hypercast::sim {

/// Simulated time in nanoseconds. All latencies are integral to keep the
/// discrete-event simulation exactly deterministic.
using SimTime = std::int64_t;

constexpr SimTime microseconds(std::int64_t us) { return us * 1000; }
constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) / 1000.0;
}

/// Communication cost parameters of a wormhole-routed machine.
///
/// The defaults approximate published nCUBE-2 figures (the machine of
/// Section 5.2): software send startup on the order of 160 us, receive
/// overhead of tens of us, a ~2 us per-hop router latency, and DMA link
/// bandwidth around 2.2 MB/s (~0.45 us/byte). Absolute values are
/// configurable; the paper's observed *shapes* — startup-dominated
/// steps, distance-insensitive unicast latency, serialization penalties —
/// depend only on their ratios.
struct CostModel {
  SimTime send_startup = microseconds(160);  ///< CPU cost per send call
  SimTime recv_overhead = microseconds(80);  ///< CPU cost per receive
  SimTime per_hop = microseconds(2);         ///< header routing per channel
  std::int64_t ns_per_byte = 450;            ///< link streaming rate

  /// Time for the message body to stream across the path once the
  /// header has arrived (wormhole pipelining: one link's worth).
  constexpr SimTime body_time(std::size_t bytes) const {
    return static_cast<SimTime>(bytes) * ns_per_byte;
  }

  /// Closed-form latency of a contention-free unicast over `hops`
  /// channels: startup + header walk + body streaming + receive.
  /// The DES reproduces this exactly when nothing blocks (tested).
  constexpr SimTime unicast_latency(int hops, std::size_t bytes) const {
    return send_startup + hops * per_hop + body_time(bytes) + recv_overhead;
  }

  static constexpr CostModel ncube2() { return CostModel{}; }

  /// A hypothetical fast-network machine (low startup, fast links);
  /// useful in ablations to show which conclusions survive different
  /// cost regimes.
  static constexpr CostModel fast_network() {
    return CostModel{microseconds(10), microseconds(5), 500, 10};
  }
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_COST_MODEL_HPP
