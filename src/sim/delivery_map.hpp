#ifndef HYPERCAST_SIM_DELIVERY_MAP_HPP
#define HYPERCAST_SIM_DELIVERY_MAP_HPP

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hcube/types.hpp"
#include "sim/cost_model.hpp"

namespace hypercast::sim {

/// Map from destination node to delivery time, built once per simulated
/// job and then read.
///
/// A drop-in subset of the std::unordered_map interface the simulators
/// used to fill, but flat: entries live densely in one vector (insertion
/// order — deterministic for a deterministic simulation) and lookups go
/// through an open-addressed index of entry positions. Filling a
/// 1K-destination result costs two allocations total instead of one
/// heap node per recipient — the node churn was ~15% of a whole 10-cube
/// broadcast replay — and iteration is a linear walk over packed pairs.
///
/// Equality is order-independent (set semantics, like unordered_map),
/// so results assembled in different insertion orders — a sharded run
/// vs. a joint run — still compare equal when the times agree.
class DeliveryMap {
 public:
  using value_type = std::pair<hcube::NodeId, SimTime>;
  using const_iterator = std::vector<value_type>::const_iterator;

  /// Pre-size for `n` recipients: one entry-array and one index
  /// allocation up front, no rehash during the fill.
  void reserve(std::size_t n) {
    entries_.reserve(n);
    rehash(slot_count_for(n));
  }

  /// Insert node -> t unless the node is already present. Returns the
  /// address of the (existing or new) time and whether it was inserted —
  /// the shape of unordered_map::emplace the simulators' duplicate
  /// checks rely on.
  std::pair<SimTime*, bool> emplace(hcube::NodeId node, SimTime t) {
    if (2 * (entries_.size() + 1) > slots_.size()) {
      rehash(slot_count_for(entries_.size() + 1));
    }
    const std::size_t s = find_slot(node);
    if (slots_[s] != kEmpty) {
      return {&entries_[slots_[s]].second, false};
    }
    slots_[s] = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back(node, t);
    return {&entries_.back().second, true};
  }

  const SimTime* find(hcube::NodeId node) const {
    if (entries_.empty()) return nullptr;
    const std::size_t s = find_slot(node);
    return slots_[s] == kEmpty ? nullptr : &entries_[slots_[s]].second;
  }

  bool contains(hcube::NodeId node) const { return find(node) != nullptr; }

  SimTime at(hcube::NodeId node) const {
    const SimTime* p = find(node);
    if (p == nullptr) {
      throw std::out_of_range("DeliveryMap::at: node was not delivered to");
    }
    return *p;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Drop every entry but keep both allocations — a job loop replaying
  /// many collectives (e.g. the n jobs of a striped launch) refills the
  /// same map with zero further heap traffic.
  void clear() {
    entries_.clear();
    std::fill(slots_.begin(), slots_.end(), kEmpty);
  }

  /// Iteration in insertion order over packed (node, time) pairs.
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  friend bool operator==(const DeliveryMap& a, const DeliveryMap& b) {
    if (a.size() != b.size()) return false;
    for (const auto& [node, t] : a.entries_) {
      const SimTime* p = b.find(node);
      if (p == nullptr || *p != t) return false;
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  static std::size_t slot_count_for(std::size_t n) {
    // Power-of-two table at most half full: probes stay short and the
    // hash folds to a mask.
    return std::bit_ceil(std::max<std::size_t>(8, 2 * n));
  }

  /// Slot holding `node`, or the empty slot where it would go.
  /// Precondition: slots_ is non-empty and not full.
  std::size_t find_slot(hcube::NodeId node) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t s = (node * 2654435761u) & mask;  // Fibonacci hashing
    while (true) {
      const std::uint32_t e = slots_[s];
      if (e == kEmpty || entries_[e].first == node) return s;
      s = (s + 1) & mask;
    }
  }

  void rehash(std::size_t nslots) {
    if (nslots <= slots_.size()) return;
    slots_.assign(nslots, kEmpty);
    const std::size_t mask = nslots - 1;
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      std::size_t s = (entries_[i].first * 2654435761u) & mask;
      while (slots_[s] != kEmpty) s = (s + 1) & mask;
      slots_[s] = i;
    }
  }

  std::vector<value_type> entries_;    ///< packed, insertion order
  std::vector<std::uint32_t> slots_;   ///< open-addressed index into
                                       ///< entries_ (kEmpty = free)
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_DELIVERY_MAP_HPP
