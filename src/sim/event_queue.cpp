#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace hypercast::sim {

void EventQueue::schedule(SimTime at, Action action) {
  assert(at >= now_ && "cannot schedule an event in the past");
  heap_.push(Item{at, next_seq_++, std::move(action)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out
  // before pop. const_cast is contained here and safe: the item is
  // removed immediately after.
  Item item = std::move(const_cast<Item&>(heap_.top()));
  heap_.pop();
  now_ = item.at;
  ++processed_;
  item.action();
  return true;
}

void EventQueue::run_to_completion(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (run_next()) {
    if (++fired > max_events) {
      throw std::runtime_error("event budget exhausted: runaway simulation?");
    }
  }
}

}  // namespace hypercast::sim
