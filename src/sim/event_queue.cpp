#include "sim/event_queue.hpp"

#include <stdexcept>
#include <string>

namespace hypercast::sim {

void EventQueue::schedule(SimTime at, Action action) {
  if (at < now_) {
    throw std::logic_error("cannot schedule an event in the past (at=" +
                           std::to_string(at) +
                           ", now=" + std::to_string(now_) + ")");
  }
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::move(action));
  } else {
    slot = free_.back();
    free_.pop_back();
    pool_[slot] = std::move(action);
  }
  heap_.push(Ticket{at, next_seq_++, slot});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  const Ticket ticket = heap_.top();
  heap_.pop();
  Action action = std::move(pool_[ticket.slot]);
  free_.push_back(ticket.slot);
  now_ = ticket.at;
  ++processed_;
  action();
  return true;
}

void EventQueue::run_to_completion(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (!heap_.empty()) {
    if (fired == max_events) {
      throw std::runtime_error("event budget exhausted: runaway simulation?");
    }
    run_next();
    ++fired;
  }
}

}  // namespace hypercast::sim
