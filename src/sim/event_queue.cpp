#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <string>

namespace hypercast::sim {
namespace {

constexpr std::size_t kMinBands = 16;
constexpr std::size_t kMaxBands = std::size_t{1} << 16;

/// A sorted current band absorbing this many tickets means the window
/// width was badly over-estimated (every push folds into the cursor's
/// bucket and the calendar is degenerating to insertion sort) — spill
/// the window back to the ladder and re-estimate. Deliberately high:
/// below it, binary-search + memmove inserts into one warm bucket beat
/// window churn by a wide margin (measured ~6× on a 10-cube broadcast,
/// whose steady state is a few hundred pending events), so this is a
/// big-run safety valve, not the common path.
constexpr std::size_t kRespillLimit = 512;

}  // namespace

void EventQueue::throw_past_schedule(SimTime at) const {
  throw std::logic_error("cannot schedule an event in the past (at=" +
                         std::to_string(at) +
                         ", now=" + std::to_string(now_) + ")");
}

void EventQueue::throw_seq_exhausted() {
  throw std::runtime_error(
      "event seq counter exhausted: FIFO tie-break would wrap");
}

void EventQueue::reserve(std::size_t tickets, std::size_t actions) {
  overflow_.reserve(tickets);
  pool_.reserve(actions);
  free_.reserve(actions);
}

void EventQueue::schedule(SimTime at, Action action) {
  check_schedule(at);
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::move(action));
  } else {
    slot = free_.back();
    free_.pop_back();
    pool_[slot] = std::move(action);
  }
  push_ticket(Ticket{at, bump_seq(), slot, 0});
}

std::uint16_t EventQueue::register_handler(RawHandler fn, void* ctx) {
  if (handlers_.size() >= std::numeric_limits<std::uint16_t>::max()) {
    throw std::runtime_error("too many raw event handlers registered");
  }
  handlers_.push_back(Handler{fn, ctx});
  return static_cast<std::uint16_t>(handlers_.size());
}

void EventQueue::push_current_band(Ticket t) {
  // At or before the band the cursor drains: fold into the current
  // bucket; the (at, seq) sort keeps it correctly ordered there.
  std::vector<Ticket>& b = buckets_[cur_];
  if (cur_sorted_) {
    if (b.size() >= kRespillLimit && b.front().at != b.back().at) {
      // Only a band whose tickets actually span some time is worth
      // re-splitting; a same-instant pile-up can't be bucketed finer.
      respill(t);
      return;
    }
    // Keep descending order so pops stay pop_back. Same-time events
    // insert before lower seqs, i.e. fire after them: FIFO. (A heap
    // here benches ~40% slower: the sorted drain is pure pop_back and
    // the mid-drain insert is rare enough that its memmove loses to
    // per-pop sift-downs.)
    b.insert(std::upper_bound(b.begin(), b.end(), t, After{}), t);
  } else {
    b.push_back(t);
  }
  occupied_[cur_ >> 6] |= std::uint64_t{1} << (cur_ & 63);
  ++in_window_;
}

void EventQueue::respill(Ticket t) {
  // The window's width came from a stale or unrepresentative estimate
  // and the cursor band keeps absorbing sorted inserts. Dump every
  // in-window ticket back on the ladder; the next pop re-opens a window
  // whose width reflects the real pending distribution. At most one
  // respill per window: this empties it, and nothing can fold until the
  // next open_window(). Ordering is untouched — tickets carry their
  // (at, seq) wherever they sit.
  overflow_.push_back(t);
  for (std::size_t w = cur_ >> 6; w < occupied_.size(); ++w) {
    std::uint64_t word = occupied_[w];
    occupied_[w] = 0;
    while (word != 0) {
      const std::size_t band = (w << 6) + std::countr_zero(word);
      word &= word - 1;
      std::vector<Ticket>& b = buckets_[band];
      overflow_.insert(overflow_.end(), b.begin(), b.end());
      b.clear();
    }
  }
  in_window_ = 0;
}

void EventQueue::open_window() {
  // Precondition: window empty, overflow non-empty.
  const std::size_t k = overflow_.size();
  // Width ≈ 2× the mean inter-event gap rounded up to a power of two,
  // so a band holds a couple of events on average and classification is
  // one shift; an all-same-time overflow degenerates to width 1 with
  // everything in band 0. A skewed pending set can over-estimate the
  // width (a wide window whose cursor band absorbs everything); that is
  // *cheaper* than fine widths at small scale — a few hundred pending
  // events drain fastest as one warm sorted bucket — and at large scale
  // the respill valve re-opens the window before inserts hit O(n). (A
  // median-gap estimate was tried instead and lost ~6×: its fine widths
  // give tiny horizons, so steady-state scheduling at now+δ constantly
  // outruns the window and every few hundred pops pay an O(pending)
  // re-open.)
  SimTime mn = overflow_.front().at;
  SimTime mx = mn;
  for (const Ticket& t : overflow_) {
    mn = std::min(mn, t.at);
    mx = std::max(mx, t.at);
  }
  const SimTime raw =
      std::max<SimTime>(1, 2 * ((mx - mn) / static_cast<SimTime>(k)));
  shift_ = static_cast<int>(
      std::bit_width(static_cast<std::uint64_t>(raw - 1)));
  const std::size_t nbands = std::bit_ceil(std::clamp(k, kMinBands, kMaxBands));
  if (buckets_.size() < nbands) buckets_.resize(nbands);
  occupied_.assign(nbands / 64 + 1, 0);
  nbands_ = nbands;
  epoch_ = mn;
  // Overflow-safe horizon: a huge width saturates to "everything fits".
  const SimTime maxt = std::numeric_limits<SimTime>::max();
  if ((static_cast<std::uint64_t>(maxt - epoch_) >> shift_) <
      static_cast<std::uint64_t>(nbands_)) {
    horizon_ = maxt;
  } else {
    horizon_ = epoch_ + (static_cast<SimTime>(nbands_) << shift_);
  }
  // Re-bucket what fits; the rest stays on the ladder for the next
  // window. The minimum lands in band 0, so every window makes progress.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < overflow_.size(); ++i) {
    const Ticket t = overflow_[i];
    if (t.at < horizon_) {
      const std::size_t idx = static_cast<std::size_t>(
          static_cast<std::uint64_t>(t.at - epoch_) >> shift_);
      buckets_[idx].push_back(t);
      occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      ++in_window_;
    } else {
      overflow_[kept++] = t;
    }
  }
  overflow_.resize(kept);
  cur_ = 0;
  cur_sorted_ = false;
}

EventQueue::Ticket EventQueue::pop_ticket() {
  if (in_window_ == 0) open_window();
  // Fast path: the cursor's bucket is mid-drain (sorted, nonempty) —
  // it holds the minimum, because pushes at or before it fold into it.
  // Only when it runs dry does the cursor jump, by find-first-set over
  // the occupancy bitmap, to the next occupied band (one exists:
  // in_window_ > 0) and sort it.
  if (!cur_sorted_ || buckets_[cur_].empty()) {
    std::size_t w = cur_ >> 6;
    std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (cur_ & 63));
    while (word == 0) word = occupied_[++w];
    cur_ = (w << 6) + std::countr_zero(word);
    std::vector<Ticket>& nb = buckets_[cur_];
    if (nb.size() > 1) std::sort(nb.begin(), nb.end(), After{});
    cur_sorted_ = true;
  }
  std::vector<Ticket>& b = buckets_[cur_];
  const Ticket t = b.back();
  b.pop_back();
  if (b.empty()) {
    occupied_[cur_ >> 6] &= ~(std::uint64_t{1} << (cur_ & 63));
  }
  --in_window_;
  --size_;
  return t;
}

void EventQueue::run_pooled(std::uint32_t slot) {
  Action action = std::move(pool_[slot]);
  free_.push_back(slot);
  action();
}

bool EventQueue::run_next() {
  if (size_ == 0) return false;
  const Ticket ticket = pop_ticket();
  now_ = ticket.at;
  ++processed_;
  if (ticket.kind != 0) {
    const Handler h = handlers_[ticket.kind - 1];
    h.fn(h.ctx, ticket.slot);
  } else {
    run_pooled(ticket.slot);
  }
  return true;
}

void EventQueue::run_to_completion(std::uint64_t max_events) {
  // The drain loop inlines the dispatch rather than calling run_next():
  // raw handlers are the expected bulk of a big run, so the hot loop
  // carries no Action storage in its frame — the pooled path lives in
  // run_pooled(), behind a predicted-not-taken branch.
  std::uint64_t fired = 0;
  while (size_ != 0) {
    if (fired == max_events) {
      throw std::runtime_error("event budget exhausted: runaway simulation?");
    }
    const Ticket ticket = pop_ticket();
    now_ = ticket.at;
    ++processed_;
    if (ticket.kind != 0) {
      const Handler h = handlers_[ticket.kind - 1];
      h.fn(h.ctx, ticket.slot);
    } else {
      run_pooled(ticket.slot);
    }
    ++fired;
  }
}

std::size_t EventQueue::memory_bytes() const {
  std::size_t bytes = 0;
  for (const std::vector<Ticket>& b : buckets_) {
    bytes += b.capacity() * sizeof(Ticket);
  }
  bytes += occupied_.capacity() * sizeof(std::uint64_t);
  bytes += overflow_.capacity() * sizeof(Ticket);
  bytes += pool_.capacity() * sizeof(Action);
  bytes += free_.capacity() * sizeof(std::uint32_t);
  bytes += handlers_.capacity() * sizeof(Handler);
  return bytes;
}

}  // namespace hypercast::sim
