#ifndef HYPERCAST_SIM_EVENT_QUEUE_HPP
#define HYPERCAST_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/inplace_function.hpp"

namespace hypercast::sim {

/// A deterministic discrete-event queue: events fire in (time, insertion
/// order). Scheduling in the past is a programming error and throws
/// std::logic_error in every build type — a release build silently
/// running time backwards would corrupt every delay figure downstream.
///
/// Hot-path layout: the heap orders small POD tickets {time, seq, slot};
/// the actions themselves live in a pooled slot array (slots are
/// recycled through a free list), so heap sift operations move 24-byte
/// PODs and an action is constructed and moved exactly once each,
/// with no per-event heap allocation (see InplaceFunction).
class EventQueue {
 public:
  using Action = InplaceFunction<void(), 48>;

  /// Current simulated time: the firing time of the event being
  /// processed, 0 before the first event.
  SimTime now() const { return now_; }

  std::uint64_t events_processed() const { return processed_; }

  bool empty() const { return heap_.empty(); }

  /// Throws std::logic_error when `at` lies before now().
  void schedule(SimTime at, Action action);

  /// Convenience: schedule relative to now().
  void schedule_in(SimTime delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  /// Pop and run the earliest event. Returns false when empty.
  bool run_next();

  /// Drain the queue. Fires at most `max_events` events: as soon as a
  /// further event would exceed the budget, throws std::runtime_error
  /// (runaway-simulation guard) with exactly `max_events` fired.
  void run_to_completion(std::uint64_t max_events = 100'000'000);

 private:
  struct Ticket {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Ticket& a, const Ticket& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Ticket, std::vector<Ticket>, Later> heap_;
  std::vector<Action> pool_;          ///< slot -> pending action
  std::vector<std::uint32_t> free_;   ///< recycled pool slots
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_EVENT_QUEUE_HPP
