#ifndef HYPERCAST_SIM_EVENT_QUEUE_HPP
#define HYPERCAST_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/inplace_function.hpp"

namespace hypercast::sim {

/// A deterministic discrete-event queue: events fire in (time, insertion
/// order). Scheduling in the past is a programming error and throws
/// std::logic_error in every build type — a release build silently
/// running time backwards would corrupt every delay figure downstream.
///
/// Scheduling structure: a calendar queue (Brown-style bucketed time
/// bands) instead of a binary heap. The active *window* covers
/// [epoch, epoch + width * buckets); a ticket due inside the window is
/// appended to its band's unsorted bucket in O(1), a ticket past the
/// horizon spills to an overflow ladder. Pops drain band by band — a
/// bucket is sorted once when the cursor reaches it, then popped from
/// the back — and when the window runs dry the overflow is re-bucketed
/// into a fresh window whose width/band-count are re-estimated from the
/// pending events' spacing (width is a power of two, so classifying a
/// ticket into its band is one shift). Insert and pop are O(1) amortized; the
/// worst case (every event beyond every horizon) degrades to the
/// O(log n)-ish ladder re-distribution, never to an unsorted scan per
/// pop. Ordering is exactly the old heap's: (time, global insertion
/// seq), so same-timestamp events still fire FIFO and every golden
/// delay figure is bit-identical.
///
/// Hot-path layout: buckets order small POD tickets {time, seq, slot,
/// kind}; 24 bytes, the same pooled-ticket layout the heap used. A
/// generic action lives in a pooled slot array (slots recycled through
/// a free list, constructed and moved exactly once, no per-event heap
/// allocation — see InplaceFunction). Simulation engines that fire
/// millions of homogeneous continuations can skip the action pool
/// entirely: register_handler() returns a kind tag and schedule_raw()
/// enqueues just {time, kind, 32-bit arg}, dispatched through a flat
/// handler table with no callable construction at all.
class EventQueue {
 public:
  using Action = InplaceFunction<void(), 48>;

  /// A raw continuation: called as fn(ctx, arg). Registered once per
  /// engine; `ctx` must stay valid for the queue's lifetime.
  using RawHandler = void (*)(void* ctx, std::uint32_t arg);

  /// Current simulated time: the firing time of the event being
  /// processed, 0 before the first event.
  SimTime now() const { return now_; }

  std::uint64_t events_processed() const { return processed_; }

  bool empty() const { return size_ == 0; }

  std::size_t pending() const { return size_; }

  /// Pre-size the ticket storage for about `tickets` concurrently
  /// pending events (and optionally the action pool for `actions`
  /// concurrently pending pooled callables), so a large run reaches its
  /// steady state without growth reallocations. Raw-handler engines pass
  /// actions = 0: their tickets carry no callable.
  void reserve(std::size_t tickets, std::size_t actions = 0);

  /// Throws std::logic_error when `at` lies before now().
  void schedule(SimTime at, Action action);

  /// Convenience: schedule relative to now().
  void schedule_in(SimTime delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  /// Register a raw continuation handler; the returned kind tag is
  /// valid for this queue forever (handlers are never unregistered).
  std::uint16_t register_handler(RawHandler fn, void* ctx);

  /// Schedule a raw continuation: fires fn(ctx, arg) at `at`, ordered
  /// exactly like any other event (global insertion seq breaks ties).
  /// Costs one 24-byte ticket append — no action-pool traffic.
  void schedule_raw(SimTime at, std::uint16_t kind, std::uint32_t arg) {
    check_schedule(at);
    push_ticket(Ticket{at, bump_seq(), arg, kind});
  }

  void schedule_raw_in(SimTime delay, std::uint16_t kind,
                       std::uint32_t arg) {
    schedule_raw(now_ + delay, kind, arg);
  }

  /// Pop and run the earliest event. Returns false when empty.
  bool run_next();

  /// Drain the queue. Fires at most `max_events` events: as soon as a
  /// further event would exceed the budget, throws std::runtime_error
  /// (runaway-simulation guard) with exactly `max_events` fired.
  void run_to_completion(std::uint64_t max_events = 100'000'000);

  /// Heap bytes currently pinned by the scheduler (buckets, overflow
  /// ladder, action pool) — capacity, not size.
  std::size_t memory_bytes() const;

 private:
  /// kind 0 = pooled Action in pool_[slot]; kind >= 1 = raw handler
  /// handlers_[kind - 1] called with arg `slot`. Same 24-byte POD the
  /// binary heap used to sift; buckets move these, never actions.
  struct Ticket {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint16_t kind;
  };
  static_assert(sizeof(Ticket) == 24, "pooled ticket layout");

  /// Descending (time, seq): the next event to fire sits at the back of
  /// a sorted bucket, so draining a band is pop_back. A struct (not a
  /// function pointer) so std::sort inlines the comparison.
  struct After {
    bool operator()(const Ticket& a, const Ticket& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Inline compare with a cold out-of-line throw: this guard runs on
  /// every schedule call of every event in a run.
  void check_schedule(SimTime at) const {
    if (at < now_) throw_past_schedule(at);
  }
  [[noreturn]] void throw_past_schedule(SimTime at) const;

  /// Seq wraparound guard: the tie-break counter is never recycled, so
  /// a queue that processed 2^64 - 1 events (585 years at 1 G events/s)
  /// would wrap FIFO order silently. Trap it instead — one predictable
  /// branch per schedule, and run_to_completion's event budget fires
  /// astronomically earlier in any real run.
  std::uint64_t bump_seq() {
    if (next_seq_ == ~std::uint64_t{0}) {
      throw_seq_exhausted();
    }
    return next_seq_++;
  }
  [[noreturn]] static void throw_seq_exhausted();

  /// Inline fast path: one shift classifies the ticket into its band
  /// (band width is a power of two) and an append lands it. Folding into
  /// the partially-drained current band and overflow spills are the cold
  /// paths.
  void push_ticket(Ticket t) {
    ++size_;
    if (in_window_ != 0 && t.at < horizon_) {
      const std::size_t idx = static_cast<std::size_t>(
          static_cast<std::uint64_t>(t.at - epoch_) >> shift_);
      if (idx > cur_) {
        buckets_[idx].push_back(t);
        occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        ++in_window_;
      } else {
        push_current_band(t);
      }
    } else {
      overflow_.push_back(t);
    }
  }
  /// Fold into the cursor's (possibly mid-drain) bucket — or, when that
  /// bucket shows the window width was badly over-estimated, respill the
  /// whole window to the ladder for re-estimation. Maintains occupied_
  /// and in_window_ itself (a respill zeroes both).
  void push_current_band(Ticket t);
  void respill(Ticket t);
  /// Cold dispatch arm for pooled Actions: kept out of the drain loop so
  /// the raw-handler hot path carries no Action storage in its frame.
  void run_pooled(std::uint32_t slot);
  Ticket pop_ticket();
  /// Open a fresh window over the overflow ladder (requires a non-empty
  /// overflow): re-estimates width/band count, re-buckets what fits.
  void open_window();

  std::vector<std::vector<Ticket>> buckets_;
  /// One bit per band: band i nonempty. The pop cursor advances by
  /// find-first-set over these words instead of walking (and cache
  /// missing on) thousands of empty buckets' headers.
  std::vector<std::uint64_t> occupied_;
  std::vector<Ticket> overflow_;  ///< tickets at/past the horizon
  SimTime epoch_ = 0;             ///< window start (inclusive)
  int shift_ = 0;                 ///< band width = 1 << shift_ ns
  SimTime horizon_ = 0;           ///< window end (exclusive)
  std::size_t nbands_ = 0;        ///< active band count this window
  std::size_t cur_ = 0;           ///< band the pop cursor is on
  bool cur_sorted_ = false;       ///< buckets_[cur_] sorted descending
  std::size_t in_window_ = 0;     ///< tickets in buckets_
  std::size_t size_ = 0;          ///< total pending tickets

  std::vector<Action> pool_;          ///< slot -> pending action
  std::vector<std::uint32_t> free_;   ///< recycled pool slots
  struct Handler {
    RawHandler fn;
    void* ctx;
  };
  std::vector<Handler> handlers_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_EVENT_QUEUE_HPP
