#ifndef HYPERCAST_SIM_EVENT_QUEUE_HPP
#define HYPERCAST_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/cost_model.hpp"

namespace hypercast::sim {

/// A deterministic discrete-event queue: events fire in (time, insertion
/// order). Scheduling in the past is a programming error (asserted).
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time: the firing time of the event being
  /// processed, 0 before the first event.
  SimTime now() const { return now_; }

  std::uint64_t events_processed() const { return processed_; }

  bool empty() const { return heap_.empty(); }

  void schedule(SimTime at, Action action);

  /// Convenience: schedule relative to now().
  void schedule_in(SimTime delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  /// Pop and run the earliest event. Returns false when empty.
  bool run_next();

  /// Drain the queue. Throws std::runtime_error if more than
  /// `max_events` fire (runaway-simulation guard).
  void run_to_completion(std::uint64_t max_events = 100'000'000);

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_EVENT_QUEUE_HPP
