#include "sim/flit_sim.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>

#include "hcube/ecube.hpp"
#include "sim/event_queue.hpp"

namespace hypercast::sim {

namespace {

using hcube::NodeId;
using hcube::Topology;

using WormId = std::uint32_t;

/// A worm's flits are numbered 0 (header) .. flit_count-1 (tail).
struct Worm {
  NodeId from = 0;
  NodeId to = 0;
  std::vector<std::size_t> links;  ///< dense arc indices, path order
  std::size_t flit_count = 0;
  std::vector<SimTime> flit_ns;  ///< transfer time per flit
  /// done[i] = flits that completed crossing link index i (0-based
  /// within this worm's path).
  std::vector<std::size_t> done;
  bool injection_held = false;
  bool cons_acquired = false;
  bool header_queued = false;  ///< header sits in some link's wait queue
  SimTime block_start = 0;
  MessageTrace trace;
};

struct Link {
  static constexpr WormId kFree = ~WormId{0};
  WormId owner = kFree;
  bool busy = false;  ///< a flit is mid-transfer
  /// Headers waiting for ownership: (worm, its path index for this link).
  std::deque<std::pair<WormId, std::size_t>> waiters;
};

struct Pool {
  int capacity = 1;
  int in_use = 0;
  std::deque<WormId> waiters;
};

class FlitEngine {
 public:
  FlitEngine(const core::MulticastSchedule& schedule, const FlitConfig& config)
      : schedule_(schedule), config_(config), topo_(schedule.topo()) {
    links_.resize(topo_.num_arcs());
    const int pool_cap =
        std::max(1, config.port.concurrency(topo_.dim()));
    injection_.assign(topo_.num_nodes(), Pool{pool_cap, 0, {}});
    consumption_.assign(topo_.num_nodes(), Pool{pool_cap, 0, {}});
    cpu_free_.assign(topo_.num_nodes(), 0);
    assert(config.flit_bytes > 0 && config.buffer_flits >= 1);
  }

  FlitResult run() {
    start_node(schedule_.source(), 0);
    queue_.run_to_completion();
    finish();
    return std::move(result_);
  }

 private:
  SimTime flit_time(std::size_t bytes) const {
    return static_cast<SimTime>(bytes) * config_.cost.ns_per_byte;
  }

  void start_node(NodeId node, SimTime ready) {
    SimTime cpu = std::max(cpu_free_[node], ready);
    for (const core::Send& send : schedule_.sends_from(node)) {
      const WormId id = static_cast<WormId>(worms_.size());
      Worm w;
      w.from = node;
      w.to = send.to;
      for (const hcube::Arc& a : hcube::ecube_arcs(topo_, node, send.to)) {
        w.links.push_back(topo_.arc_index(a));
      }
      const std::size_t body_flits =
          (config_.message_bytes + config_.flit_bytes - 1) /
          config_.flit_bytes;
      w.flit_count = 1 + std::max<std::size_t>(1, body_flits);
      w.flit_ns.resize(w.flit_count, flit_time(config_.flit_bytes));
      if (config_.message_bytes > 0) {
        const std::size_t last = config_.message_bytes -
                                 (body_flits - 1) * config_.flit_bytes;
        w.flit_ns.back() = flit_time(last);
      }
      w.done.assign(w.links.size(), 0);
      w.trace.from = node;
      w.trace.to = send.to;
      w.trace.hops = static_cast<int>(w.links.size());
      w.trace.issue = cpu;
      cpu += config_.cost.send_startup;
      w.trace.header_start = cpu;
      worms_.push_back(std::move(w));
      ++result_.stats.messages;
      queue_.schedule(worms_[id].trace.header_start,
                      [this, id] { acquire_injection(id); });
    }
    cpu_free_[node] = cpu;
  }

  void acquire_injection(WormId id) {
    Worm& w = worms_[id];
    Pool& pool = injection_[w.from];
    if (pool.in_use < pool.capacity) {
      ++pool.in_use;
      w.injection_held = true;
      try_cross(id, 0);
      return;
    }
    pool.waiters.push_back(id);
    w.block_start = queue_.now();
    ++result_.stats.blocked_acquisitions;
  }

  void injection_granted(WormId id) {
    Worm& w = worms_[id];
    w.injection_held = true;
    note_unblocked(w);
    try_cross(id, 0);
  }

  void note_unblocked(Worm& w) {
    const SimTime waited = queue_.now() - w.block_start;
    w.trace.blocked_ns += waited;
    ++w.trace.blocked_times;
    result_.stats.total_blocked_ns += waited;
  }

  /// Attempt to start the next flit crossing of path link `i`.
  void try_cross(WormId id, std::size_t i) {
    Worm& w = worms_[id];
    const std::size_t h = w.links.size();
    assert(i < h);
    const std::size_t j = w.done[i];  // next flit over this link
    if (j >= w.flit_count) return;    // all flits already across

    // Flit availability: the header needs the injection slot; later
    // flits must have finished the previous link (or sit at the source).
    if (i == 0) {
      if (!w.injection_held) return;
    } else if (j >= w.done[i - 1]) {
      return;
    }

    Link& link = links_[w.links[i]];

    // Channel ownership first (even while a foreign flit is mid-flight,
    // the header must register as a waiter or it would never be woken):
    // body flits only flow on links the worm owns; the header acquires
    // ownership or queues for it, once.
    if (link.owner != id) {
      if (j != 0) return;  // body flit cannot run ahead of the header
      if (link.owner != Link::kFree) {
        if (!w.header_queued) {
          w.header_queued = true;
          link.waiters.emplace_back(id, i);
          w.block_start = queue_.now();
          ++result_.stats.blocked_acquisitions;
        }
        return;
      }
      link.owner = id;
    }

    if (link.busy) return;

    // Downstream buffer space: routers hold at most buffer_flits flits
    // of one worm; the destination sink absorbs freely once the
    // consumption slot is held.
    if (i + 1 < h) {
      const std::size_t occupancy = w.done[i] - w.done[i + 1];
      if (occupancy >= static_cast<std::size_t>(config_.buffer_flits)) return;
    } else if (j != 0 && !w.cons_acquired) {
      return;
    }

    link.busy = true;
    const SimTime duration =
        (j == 0 ? config_.cost.per_hop : 0) + w.flit_ns[j];
    ++result_.stats.flit_transfers;
    queue_.schedule_in(duration, [this, id, i] { crossed(id, i); });
  }

  void crossed(WormId id, std::size_t i) {
    Worm& w = worms_[id];
    const std::size_t h = w.links.size();
    const std::size_t j = w.done[i];
    Link& link = links_[w.links[i]];
    link.busy = false;
    ++w.done[i];

    if (j == 0) {
      // Header progress.
      if (i + 1 == h) {
        acquire_consumption(id);
      }
    }

    if (j + 1 == w.flit_count) {
      // The tail has crossed: release this link to the next header.
      assert(link.owner == id);
      link.owner = Link::kFree;
      if (!link.waiters.empty()) {
        const auto [next, path_index] = link.waiters.front();
        link.waiters.pop_front();
        worms_[next].header_queued = false;
        note_unblocked(worms_[next]);
        try_cross(next, path_index);
      }
      if (i == 0) release_injection(id);
      if (i + 1 == h) delivered(id);
    }

    // Wake everything this crossing may have unblocked: the next flit
    // on this link, this flit on the next link, and the upstream link
    // whose buffer gained a slot.
    try_cross(id, i);
    if (i + 1 < h) try_cross(id, i + 1);
    if (i > 0) try_cross(id, i - 1);
  }

  void acquire_consumption(WormId id) {
    Worm& w = worms_[id];
    Pool& pool = consumption_[w.to];
    if (pool.in_use < pool.capacity) {
      ++pool.in_use;
      w.cons_acquired = true;
      w.trace.path_acquired = queue_.now();
      return;
    }
    pool.waiters.push_back(id);
    w.block_start = queue_.now();
    ++result_.stats.blocked_acquisitions;
  }

  void consumption_granted(WormId id) {
    Worm& w = worms_[id];
    w.cons_acquired = true;
    note_unblocked(w);
    w.trace.path_acquired = queue_.now();
    try_cross(id, w.links.size() - 1);
  }

  void release_injection(WormId id) {
    Pool& pool = injection_[worms_[id].from];
    assert(pool.in_use > 0);
    --pool.in_use;
    if (!pool.waiters.empty() && pool.in_use < pool.capacity) {
      const WormId next = pool.waiters.front();
      pool.waiters.pop_front();
      ++pool.in_use;
      queue_.schedule_in(0, [this, next] { injection_granted(next); });
    }
  }

  void release_consumption(WormId id) {
    Pool& pool = consumption_[worms_[id].to];
    assert(pool.in_use > 0);
    --pool.in_use;
    if (!pool.waiters.empty() && pool.in_use < pool.capacity) {
      const WormId next = pool.waiters.front();
      pool.waiters.pop_front();
      ++pool.in_use;
      queue_.schedule_in(0, [this, next] { consumption_granted(next); });
    }
  }

  void delivered(WormId id) {
    Worm& w = worms_[id];
    w.trace.tail = queue_.now();
    release_consumption(id);
    const SimTime done =
        std::max(cpu_free_[w.to], queue_.now()) + config_.cost.recv_overhead;
    cpu_free_[w.to] = done;
    w.trace.done = done;
    const auto [it, inserted] = result_.delivery.emplace(w.to, done);
    (void)it;
    assert(inserted && "schedule delivers to a node twice");
    queue_.schedule(done,
                    [this, node = w.to, done] { start_node(node, done); });
  }

  void finish() {
    result_.stats.events = queue_.events_processed();
    if (result_.delivery.size() != result_.stats.messages) {
      throw std::logic_error(
          "flit simulation drained with undelivered messages (deadlock?)");
    }
    for (const Link& link : links_) {
      if (link.owner != Link::kFree || link.busy || !link.waiters.empty()) {
        throw std::logic_error("flit simulation leaked channel state");
      }
    }
    if (config_.record_trace) {
      for (const Worm& w : worms_) result_.trace.messages.push_back(w.trace);
    }
  }

  const core::MulticastSchedule& schedule_;
  FlitConfig config_;
  Topology topo_;
  EventQueue queue_;
  std::vector<Worm> worms_;
  std::vector<Link> links_;
  std::vector<Pool> injection_;
  std::vector<Pool> consumption_;
  std::vector<SimTime> cpu_free_;
  FlitResult result_;
};

}  // namespace

SimTime FlitResult::max_delay(std::span<const hcube::NodeId> targets) const {
  SimTime worst = 0;
  if (targets.empty()) {
    for (const auto& [node, t] : delivery) worst = std::max(worst, t);
  } else {
    for (const hcube::NodeId n : targets) worst = std::max(worst, delivery.at(n));
  }
  return worst;
}

FlitResult simulate_multicast_flit(const core::MulticastSchedule& schedule,
                                   const FlitConfig& config) {
  return FlitEngine(schedule, config).run();
}

SimTime flit_unicast_latency(const FlitConfig& config, int hops,
                             std::size_t bytes) {
  const SimTime header_flit =
      static_cast<SimTime>(config.flit_bytes) * config.cost.ns_per_byte;
  return config.cost.send_startup +
         hops * (config.cost.per_hop + header_flit) +
         config.cost.body_time(bytes) + config.cost.recv_overhead;
}

}  // namespace hypercast::sim
