#ifndef HYPERCAST_SIM_FLIT_SIM_HPP
#define HYPERCAST_SIM_FLIT_SIM_HPP

#include "core/multicast.hpp"
#include "sim/wormhole_sim.hpp"

namespace hypercast::sim {

/// Flit-level wormhole simulation — the fine-grained counterpart of the
/// message-level engine in wormhole_sim.hpp, used to validate it (the
/// same methodological move the paper makes by validating MultiSim
/// against the nCUBE-2).
///
/// Model: a message is one header flit plus ceil(bytes / flit_bytes)
/// body flits, the last body flit being the tail. Each directed channel
/// transfers one flit at a time (flit_bytes * ns_per_byte each; the
/// header additionally pays the per_hop routing decision); each router
/// buffers at most `buffer_flits` flits per in-transit worm, so a
/// blocked header backpressures its body flits hop by hop. A channel is
/// owned by one worm from the moment its header starts crossing until
/// its TAIL has crossed — i.e. channels release *early*, as real
/// wormhole hardware does, unlike the message-level engine's
/// hold-until-delivery approximation. Injection slots release when the
/// tail leaves the source; consumption slots when the tail arrives.
///
/// For contention-free schedules the two engines agree exactly up to
/// the header pipelining term (the flit header pays t_flit per hop that
/// the message-level header does not); under contention the flit engine
/// is never slower — both properties are asserted in tests.
struct FlitConfig {
  CostModel cost = CostModel::ncube2();
  PortModel port = core::PortModel::all_port();
  std::size_t message_bytes = 4096;
  std::size_t flit_bytes = 64;  ///< physical flit payload
  int buffer_flits = 2;         ///< per-router FIFO depth per worm
  bool record_trace = false;
};

struct FlitStats {
  std::uint64_t messages = 0;
  std::uint64_t flit_transfers = 0;      ///< link crossings simulated
  std::uint64_t blocked_acquisitions = 0; ///< header waits on owned channels
  SimTime total_blocked_ns = 0;
  std::uint64_t events = 0;
};

struct FlitResult {
  std::unordered_map<hcube::NodeId, SimTime> delivery;
  FlitStats stats;
  Trace trace;

  SimTime delay(hcube::NodeId node) const { return delivery.at(node); }
  SimTime max_delay(std::span<const hcube::NodeId> targets = {}) const;
};

/// Replay a multicast schedule at flit granularity. CPU modelling
/// (send startups, receive overheads) matches the message-level engine.
FlitResult simulate_multicast_flit(const core::MulticastSchedule& schedule,
                                   const FlitConfig& config);

/// Closed-form contention-free unicast latency under the flit model:
/// startup + h * (per_hop + header t_flit) + body streaming + receive.
SimTime flit_unicast_latency(const FlitConfig& config, int hops,
                             std::size_t bytes);

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_FLIT_SIM_HPP
