#ifndef HYPERCAST_SIM_INPLACE_FUNCTION_HPP
#define HYPERCAST_SIM_INPLACE_FUNCTION_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hypercast::sim {

/// A move-only type-erased callable with guaranteed inline storage: the
/// captured state lives inside the object, never on the heap. This is
/// the event payload of the discrete-event simulator — scheduling an
/// event must not allocate, whatever the capture size, which
/// std::function only promises for tiny captures.
///
/// Callables larger than `Capacity` bytes are rejected at compile time;
/// widen the capacity at the typedef if an event ever legitimately needs
/// more state.
template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InplaceFunction>)
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    static_assert(sizeof(D) <= Capacity,
                  "callable too large for inline event storage");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable over-aligned for inline event storage");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "event callables must be nothrow movable");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    ops_ = &ops_for<D>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args...);
    void (*relocate)(void* dst, void* src);  ///< move into dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops ops_for{
      [](void* s, Args... args) -> R {
        return (*static_cast<D*>(s))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { static_cast<D*>(s)->~D(); },
  };

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_INPLACE_FUNCTION_HPP
