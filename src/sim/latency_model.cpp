#include "sim/latency_model.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "hcube/ecube.hpp"

namespace hypercast::sim {

std::optional<LatencyPrediction> predict_delays(
    const core::MulticastSchedule& schedule, const CostModel& cost,
    std::size_t message_bytes, bool allow_blocking_schedules) {
  const hcube::Topology& topo = schedule.topo();
  LatencyPrediction out;

  std::unordered_map<hcube::NodeId, SimTime> ready;
  ready[schedule.source()] = 0;
  std::deque<hcube::NodeId> frontier{schedule.source()};
  while (!frontier.empty()) {
    const hcube::NodeId u = frontier.front();
    frontier.pop_front();
    std::set<hcube::Dim> channels;
    SimTime cpu = ready.at(u);
    for (const core::Send& send : schedule.sends_from(u)) {
      if (!channels.insert(hcube::delta_distinct(topo, u, send.to)).second &&
          !allow_blocking_schedules) {
        return std::nullopt;  // channel reuse: the closed form may lie
      }
      cpu += cost.send_startup;
      const SimTime done = cpu + topo.distance(u, send.to) * cost.per_hop +
                           cost.body_time(message_bytes) +
                           cost.recv_overhead;
      out.delivery.emplace(send.to, done);
      out.max_delay = std::max(out.max_delay, done);
      ready[send.to] = done;
      frontier.push_back(send.to);
    }
  }
  return out;
}

}  // namespace hypercast::sim
