#ifndef HYPERCAST_SIM_LATENCY_MODEL_HPP
#define HYPERCAST_SIM_LATENCY_MODEL_HPP

#include <optional>
#include <unordered_map>

#include "core/multicast.hpp"
#include "sim/cost_model.hpp"

namespace hypercast::sim {

/// Closed-form per-destination latency of a multicast tree on an
/// all-port machine, computable in O(m) without running the simulator:
///
///   done(source) = 0
///   done(v)      = done(parent) + (k+1) * send_startup   (k = issue idx)
///                  + hops(parent, v) * per_hop
///                  + body_time(bytes) + recv_overhead
///
/// The formula is *exact* (tested against the DES) whenever no worm of
/// the schedule ever waits for a channel or port, which Theorem 6
/// guarantees for Maxport and W-sort trees on all-port nodes. For
/// schedules that can block (U-cube or Combine on all-port, anything on
/// one-port) it is a lower bound; predict_delays then returns nullopt
/// unless `allow_blocking_schedules` is set. This is what a runtime
/// system would use to choose trees at multicast-issue time.
struct LatencyPrediction {
  std::unordered_map<hcube::NodeId, SimTime> delivery;
  SimTime max_delay = 0;
};

/// Predict per-recipient completion times. Returns nullopt when the
/// schedule reuses an outgoing channel at some sender (the tell-tale
/// for possible blocking) and `allow_blocking_schedules` is false.
std::optional<LatencyPrediction> predict_delays(
    const core::MulticastSchedule& schedule, const CostModel& cost,
    std::size_t message_bytes, bool allow_blocking_schedules = false);

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_LATENCY_MODEL_HPP
