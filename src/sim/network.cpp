#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hypercast::sim {

Network::Network(const Topology& topo, PortModel port,
                 const fault::FaultSet* faults)
    : topo_(topo),
      faults_(faults),
      num_external_(static_cast<std::uint32_t>(topo.num_arcs())) {
  const std::size_t total = topo.num_arcs() + 2 * topo.num_nodes();
  const int pool_capacity =
      std::clamp(port.concurrency(topo.dim()), 1, 255);
  units_.assign(total, std::uint16_t{1});
  for (std::size_t i = topo.num_arcs(); i < total; ++i) {
    units_[i] = static_cast<std::uint16_t>(pool_capacity);
  }
  waiter_tail_.assign(total, kNone);
}

std::vector<ResourceId> Network::path_resources(NodeId from, NodeId to) const {
  std::vector<ResourceId> out;
  out.reserve(static_cast<std::size_t>(topo_.distance(from, to)) + 2);
  append_path_resources(from, to, out);
  return out;
}

void Network::append_path_resources(NodeId from, NodeId to,
                                    std::vector<ResourceId>& out) const {
  assert(from != to);
  if (faults_ != nullptr &&
      (faults_->node_failed(from) || faults_->node_failed(to))) {
    throw std::logic_error("worm injected at/addressed to dead node " +
                           topo_.format(faults_->node_failed(from) ? from
                                                                   : to));
  }
  // No reserve here: an exact reserve on every append would defeat the
  // geometric growth of the engine's pooled path buffer (quadratic
  // copying); callers wanting tight capacity reserve up front.
  out.push_back(injection_pool(from));
  hcube::for_each_ecube_arc(topo_, from, to, [&](hcube::Arc a) {
    if (faults_ != nullptr && faults_->arc_failed(a)) {
      throw std::logic_error(
          "worm " + topo_.format(from) + " -> " + topo_.format(to) +
          " routed into failed channel " + topo_.format(a.from) + " -> " +
          topo_.format(topo_.neighbor(a.from, a.dim)) +
          " (schedule is not fault-aware?)");
    }
    out.push_back(external_arc(a));
  });
  out.push_back(consumption_pool(to));
}

void Network::enqueue(ResourceId r, MessageId m) {
  assert(!available(r));
  if (m >= waiter_next_.size()) {
    waiter_next_.resize(static_cast<std::size_t>(m) + 1, kNone);
  }
  ++waiting_;
  const MessageId tail = waiter_tail_[r.index];
  if (tail == kNone) {
    waiter_next_[m] = m;  // singleton circle: m is head and tail
  } else {
    waiter_next_[m] = waiter_next_[tail];  // new tail wraps to the head
    waiter_next_[tail] = m;
  }
  waiter_tail_[r.index] = m;
}

std::size_t Network::waiting_count(ResourceId r) const {
  const MessageId tail = waiter_tail_[r.index];
  if (tail == kNone) return 0;
  std::size_t n = 1;
  for (MessageId m = waiter_next_[tail]; m != tail; m = waiter_next_[m]) {
    ++n;
  }
  return n;
}

void Network::reset() {
  for (std::uint16_t& u : units_) u &= 0xff;  // clear in-use, keep capacity
  std::fill(waiter_tail_.begin(), waiter_tail_.end(), kNone);
  waiter_next_.clear();  // keeps capacity; regrown by the next enqueue
  busy_ = 0;
  waiting_ = 0;
}

std::size_t Network::memory_bytes() const {
  return units_.capacity() * sizeof(std::uint16_t) +
         waiter_tail_.capacity() * sizeof(MessageId) +
         waiter_next_.capacity() * sizeof(MessageId);
}

}  // namespace hypercast::sim
