#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hypercast::sim {

Network::Network(const Topology& topo, PortModel port,
                 const fault::FaultSet* faults)
    : topo_(topo),
      faults_(faults),
      num_external_(static_cast<std::uint32_t>(topo.num_arcs())) {
  const std::size_t total = topo.num_arcs() + 2 * topo.num_nodes();
  const int pool_capacity = std::max(1, port.concurrency(topo.dim()));
  capacity_.assign(total, 1);
  for (std::size_t i = topo.num_arcs(); i < total; ++i) {
    capacity_[i] = pool_capacity;
  }
  in_use_.assign(total, 0);
  waiters_.assign(total, WaitList{});
}

std::vector<ResourceId> Network::path_resources(NodeId from, NodeId to) const {
  std::vector<ResourceId> out;
  out.reserve(static_cast<std::size_t>(topo_.distance(from, to)) + 2);
  append_path_resources(from, to, out);
  return out;
}

void Network::append_path_resources(NodeId from, NodeId to,
                                    std::vector<ResourceId>& out) const {
  assert(from != to);
  if (faults_ != nullptr &&
      (faults_->node_failed(from) || faults_->node_failed(to))) {
    throw std::logic_error("worm injected at/addressed to dead node " +
                           topo_.format(faults_->node_failed(from) ? from
                                                                   : to));
  }
  // No reserve here: an exact reserve on every append would defeat the
  // geometric growth of the engine's pooled path buffer (quadratic
  // copying); callers wanting tight capacity reserve up front.
  out.push_back(injection_pool(from));
  hcube::for_each_ecube_arc(topo_, from, to, [&](hcube::Arc a) {
    if (faults_ != nullptr && faults_->arc_failed(a)) {
      throw std::logic_error(
          "worm " + topo_.format(from) + " -> " + topo_.format(to) +
          " routed into failed channel " + topo_.format(a.from) + " -> " +
          topo_.format(topo_.neighbor(a.from, a.dim)) +
          " (schedule is not fault-aware?)");
    }
    out.push_back(external_arc(a));
  });
  out.push_back(consumption_pool(to));
}

void Network::take(ResourceId r) {
  assert(available(r));
  ++in_use_[r.index];
}

void Network::enqueue(ResourceId r, MessageId m) {
  assert(!available(r));
  if (m >= waiter_next_.size()) {
    waiter_next_.resize(static_cast<std::size_t>(m) + 1, kNone);
  }
  waiter_next_[m] = kNone;
  WaitList& list = waiters_[r.index];
  if (list.head == kNone) {
    list.head = list.tail = m;
  } else {
    waiter_next_[list.tail] = m;
    list.tail = m;
  }
}

std::optional<MessageId> Network::release(ResourceId r) {
  assert(in_use_[r.index] > 0);
  --in_use_[r.index];
  WaitList& list = waiters_[r.index];
  if (list.head != kNone) {
    const MessageId m = list.head;
    list.head = waiter_next_[m];
    if (list.head == kNone) list.tail = kNone;
    ++in_use_[r.index];  // re-grant the freed unit to the head waiter
    return m;
  }
  return std::nullopt;
}

std::size_t Network::waiting_count(ResourceId r) const {
  std::size_t n = 0;
  for (MessageId m = waiters_[r.index].head; m != kNone;
       m = waiter_next_[m]) {
    ++n;
  }
  return n;
}

bool Network::quiescent() const {
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    if (in_use_[i] != 0 || waiters_[i].head != kNone) return false;
  }
  return true;
}

}  // namespace hypercast::sim
