#include "sim/network.hpp"

#include <cassert>
#include <stdexcept>

namespace hypercast::sim {

Network::Network(const Topology& topo, PortModel port,
                 const fault::FaultSet* faults)
    : topo_(topo),
      faults_(faults),
      num_external_(static_cast<std::uint32_t>(topo.num_arcs())) {
  const std::size_t total = topo.num_arcs() + 2 * topo.num_nodes();
  const int pool_capacity = std::max(1, port.concurrency(topo.dim()));
  capacity_.assign(total, 1);
  for (std::size_t i = topo.num_arcs(); i < total; ++i) {
    capacity_[i] = pool_capacity;
  }
  in_use_.assign(total, 0);
  waiters_.resize(total);
}

std::vector<ResourceId> Network::path_resources(NodeId from, NodeId to) const {
  assert(from != to);
  if (faults_ != nullptr &&
      (faults_->node_failed(from) || faults_->node_failed(to))) {
    throw std::logic_error("worm injected at/addressed to dead node " +
                           topo_.format(faults_->node_failed(from) ? from
                                                                   : to));
  }
  std::vector<ResourceId> out;
  const auto arcs = hcube::ecube_arcs(topo_, from, to);
  out.reserve(arcs.size() + 2);
  out.push_back(injection_pool(from));
  for (const hcube::Arc& a : arcs) {
    if (faults_ != nullptr && faults_->arc_failed(a)) {
      throw std::logic_error(
          "worm " + topo_.format(from) + " -> " + topo_.format(to) +
          " routed into failed channel " + topo_.format(a.from) + " -> " +
          topo_.format(topo_.neighbor(a.from, a.dim)) +
          " (schedule is not fault-aware?)");
    }
    out.push_back(external_arc(a));
  }
  out.push_back(consumption_pool(to));
  return out;
}

void Network::take(ResourceId r) {
  assert(available(r));
  ++in_use_[r.index];
}

void Network::enqueue(ResourceId r, MessageId m) {
  assert(!available(r));
  waiters_[r.index].push_back(m);
}

std::optional<MessageId> Network::release(ResourceId r) {
  assert(in_use_[r.index] > 0);
  --in_use_[r.index];
  if (!waiters_[r.index].empty()) {
    const MessageId m = waiters_[r.index].front();
    waiters_[r.index].pop_front();
    ++in_use_[r.index];  // re-grant the freed unit to the head waiter
    return m;
  }
  return std::nullopt;
}

bool Network::quiescent() const {
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    if (in_use_[i] != 0 || !waiters_[i].empty()) return false;
  }
  return true;
}

}  // namespace hypercast::sim
