#ifndef HYPERCAST_SIM_NETWORK_HPP
#define HYPERCAST_SIM_NETWORK_HPP

#include <optional>
#include <vector>

#include "core/stepwise.hpp"
#include "fault/fault_set.hpp"
#include "hcube/ecube.hpp"

namespace hypercast::sim {

using core::PortModel;
using hcube::NodeId;
using hcube::Topology;

/// Index of a message inside one simulation run.
using MessageId = std::uint32_t;

/// Index into the network's flat resource table.
struct ResourceId {
  std::uint32_t index = 0;
};

/// The contended hardware of a wormhole-routed hypercube, reduced to
/// FIFO-granted resources:
///
///  * every directed external channel (capacity 1) — the arcs worms
///    acquire hop by hop and hold while blocked;
///  * per node, an injection pool and a consumption pool modelling the
///    internal processor<->router channels of the port model (Section 1):
///    capacity 1 for one-port, k for k-port, and n for all-port. An
///    all-port pool never actually binds — two worms sharing an internal
///    channel necessarily share the adjacent external channel too — but
///    is kept for uniformity.
///
/// All per-resource state is held in flat arrays indexed by the dense
/// resource index (arc index, then pools); waiter FIFOs are intrusive
/// singly-linked lists threaded through a per-message next array, so
/// constructing and running a network performs no per-resource or
/// per-wait heap allocation.
///
/// The Network knows nothing about time; the simulator drives it and
/// interprets grants.
class Network {
 public:
  /// `faults` (optional, caller-owned, must outlive the network) marks
  /// failed links and dead nodes: their channels are never acquirable.
  /// Routing a worm into a faulted resource is a *hard error* — the
  /// deterministic E-cube router cannot route around faults, so any
  /// schedule that reaches a faulted channel is a planning bug (the
  /// fault-aware repair layer exists to make this impossible).
  Network(const Topology& topo, PortModel port,
          const fault::FaultSet* faults = nullptr);

  const Topology& topo() const { return topo_; }

  /// The ordered resources a unicast from `from` to `to` must acquire:
  /// injection slot, each E-cube arc in traversal order, consumption
  /// slot. Precondition: from != to. Throws std::logic_error when the
  /// route crosses a failed arc or dead node of the fault set.
  std::vector<ResourceId> path_resources(NodeId from, NodeId to) const;

  /// Allocation-free variant: append the same resources to `out`
  /// (reusing its capacity) instead of returning a fresh vector — the
  /// engine pools every worm's path in one flat buffer this way.
  void append_path_resources(NodeId from, NodeId to,
                             std::vector<ResourceId>& out) const;

  /// True iff an ext-channel resource (whose acquisition costs a header
  /// hop) as opposed to an internal pool slot.
  bool is_external(ResourceId r) const {
    return r.index < num_external_;
  }

  bool available(ResourceId r) const {
    return in_use_[r.index] < capacity_[r.index];
  }

  /// Take one unit. Precondition: available(r).
  void take(ResourceId r);

  /// Enqueue a message waiting for one unit of r. A message may wait on
  /// at most one resource at a time (worms acquire their path in order).
  void enqueue(ResourceId r, MessageId m);

  /// Release one unit of r. If a message is waiting, one unit is
  /// immediately re-granted to the head waiter, which is returned so the
  /// simulator can resume it.
  std::optional<MessageId> release(ResourceId r);

  std::size_t waiting_count(ResourceId r) const;

  /// All units idle and no waiters — the invariant at the end of a run.
  bool quiescent() const;

 private:
  static constexpr MessageId kNone = static_cast<MessageId>(-1);

  struct WaitList {
    MessageId head = kNone;
    MessageId tail = kNone;
  };

  ResourceId external_arc(hcube::Arc a) const {
    return ResourceId{static_cast<std::uint32_t>(topo_.arc_index(a))};
  }
  ResourceId injection_pool(NodeId u) const {
    return ResourceId{static_cast<std::uint32_t>(num_external_ + u)};
  }
  ResourceId consumption_pool(NodeId u) const {
    return ResourceId{static_cast<std::uint32_t>(num_external_ +
                                                 topo_.num_nodes() + u)};
  }

  Topology topo_;
  const fault::FaultSet* faults_;
  std::uint32_t num_external_;
  std::vector<int> capacity_;
  std::vector<int> in_use_;
  std::vector<WaitList> waiters_;
  /// waiter_next_[m] = the message behind m in whichever wait list m is
  /// on (kNone for the tail); grown on demand as messages enqueue.
  std::vector<MessageId> waiter_next_;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_NETWORK_HPP
