#ifndef HYPERCAST_SIM_NETWORK_HPP
#define HYPERCAST_SIM_NETWORK_HPP

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/stepwise.hpp"
#include "fault/fault_set.hpp"
#include "hcube/ecube.hpp"

namespace hypercast::sim {

using core::PortModel;
using hcube::NodeId;
using hcube::Topology;

/// Index of a message inside one simulation run.
using MessageId = std::uint32_t;

/// Index into the network's flat resource table.
struct ResourceId {
  std::uint32_t index = 0;
};

/// The contended hardware of a wormhole-routed hypercube, reduced to
/// FIFO-granted resources:
///
///  * every directed external channel (capacity 1) — the arcs worms
///    acquire hop by hop and hold while blocked;
///  * per node, an injection pool and a consumption pool modelling the
///    internal processor<->router channels of the port model (Section 1):
///    capacity 1 for one-port, k for k-port, and n for all-port. An
///    all-port pool never actually binds — two worms sharing an internal
///    channel necessarily share the adjacent external channel too — but
///    is kept for uniformity.
///
/// All per-resource state is held in flat arrays indexed by the dense
/// resource index (arc index, then pools); waiter FIFOs are intrusive
/// singly-linked lists threaded through a per-message next array, so
/// constructing and running a network performs no per-resource or
/// per-wait heap allocation.
///
/// The Network knows nothing about time; the simulator drives it and
/// interprets grants.
class Network {
 public:
  /// `faults` (optional, caller-owned, must outlive the network) marks
  /// failed links and dead nodes: their channels are never acquirable.
  /// Routing a worm into a faulted resource is a *hard error* — the
  /// deterministic E-cube router cannot route around faults, so any
  /// schedule that reaches a faulted channel is a planning bug (the
  /// fault-aware repair layer exists to make this impossible).
  Network(const Topology& topo, PortModel port,
          const fault::FaultSet* faults = nullptr);

  const Topology& topo() const { return topo_; }

  /// The ordered resources a unicast from `from` to `to` must acquire:
  /// injection slot, each E-cube arc in traversal order, consumption
  /// slot. Precondition: from != to. Throws std::logic_error when the
  /// route crosses a failed arc or dead node of the fault set.
  std::vector<ResourceId> path_resources(NodeId from, NodeId to) const;

  /// Allocation-free variant: append the same resources to `out`
  /// (reusing its capacity) instead of returning a fresh vector — the
  /// engine pools every worm's path in one flat buffer this way.
  void append_path_resources(NodeId from, NodeId to,
                             std::vector<ResourceId>& out) const;

  /// True iff an ext-channel resource (whose acquisition costs a header
  /// hop) as opposed to an internal pool slot.
  bool is_external(ResourceId r) const {
    return r.index < num_external_;
  }

  bool available(ResourceId r) const {
    // One 16-bit load covers both counts: in-use (high byte) vs
    // capacity (low byte). This predicate runs once per hop of every
    // worm in a run — splitting it over two arrays would touch two
    // cache lines.
    const std::uint16_t u = units_[r.index];
    return (u >> 8) < (u & 0xff);
  }

  /// Take one unit. Precondition: available(r).
  void take(ResourceId r) {
    assert(available(r));
    units_[r.index] += 0x100;
    ++busy_;
  }

  /// Enqueue a message waiting for one unit of r. A message may wait on
  /// at most one resource at a time (worms acquire their path in order).
  void enqueue(ResourceId r, MessageId m);

  /// Release one unit of r. If a message is waiting, one unit is
  /// immediately re-granted to the head waiter, which is returned so the
  /// simulator can resume it. Inline: runs once per path resource of
  /// every delivered worm, and the common case is no waiter.
  std::optional<MessageId> release(ResourceId r) {
    assert((units_[r.index] >> 8) > 0);
    units_[r.index] -= 0x100;
    --busy_;
    const MessageId tail = waiter_tail_[r.index];
    if (tail != kNone) {
      const MessageId m = waiter_next_[tail];  // circular: tail -> head
      if (m == tail) {
        waiter_tail_[r.index] = kNone;
      } else {
        waiter_next_[tail] = waiter_next_[m];
      }
      units_[r.index] += 0x100;  // re-grant the freed unit to the waiter
      ++busy_;
      --waiting_;
      return m;
    }
    return std::nullopt;
  }

  std::size_t waiting_count(ResourceId r) const;

  /// All units idle and no waiters — the invariant at the end of a run.
  /// O(1): tracked by counters, not a scan of the (for a big cube,
  /// multi-megabyte) resource arrays — engines check this per run.
  bool quiescent() const { return busy_ == 0 && waiting_ == 0; }

  /// Restore the freshly-constructed invariants (all units idle, no
  /// waiters) while keeping every allocation, so a reused engine doesn't
  /// pay construction again — and `waiter_next_`, which grows to the max
  /// MessageId ever enqueued, stops accumulating across jobs. Mirrors
  /// MulticastSchedule::reset().
  void reset();

  /// Heap bytes pinned by per-resource and per-waiter state (capacity,
  /// not size) — the bulk of a large cube's simulation footprint.
  std::size_t memory_bytes() const;

 private:
  static constexpr MessageId kNone = static_cast<MessageId>(-1);

  ResourceId external_arc(hcube::Arc a) const {
    return ResourceId{static_cast<std::uint32_t>(topo_.arc_index(a))};
  }
  ResourceId injection_pool(NodeId u) const {
    return ResourceId{static_cast<std::uint32_t>(num_external_ + u)};
  }
  ResourceId consumption_pool(NodeId u) const {
    return ResourceId{static_cast<std::uint32_t>(num_external_ +
                                                 topo_.num_nodes() + u)};
  }

  Topology topo_;
  const fault::FaultSet* faults_;
  std::uint32_t num_external_;
  /// Per-resource unit counts, packed (in_use << 8) | capacity: an arc
  /// has capacity 1 and a pool at most the port concurrency (≤ kMaxDim
  /// = 20), so a byte holds any real value with a 255 clamp as a
  /// formality. A 20-cube has ~22M resources — int fields here would
  /// cost ~160 MB of pure padding, and splitting the two counts over
  /// separate arrays doubles the hot path's cache traffic.
  std::vector<std::uint16_t> units_;
  /// Per-resource wait FIFO as a *circular* intrusive list: this array
  /// holds only the tail message (kNone = empty) and the tail's next
  /// pointer wraps to the head, so a resource costs 4 bytes of waiter
  /// state instead of a head+tail pair — at 20-cube scale that halves
  /// ~180 MB of wait-list headers, and the construction-time fill (paid
  /// per simulation run) shrinks with it.
  std::vector<MessageId> waiter_tail_;
  /// waiter_next_[m] = the message behind m in whichever wait list m is
  /// on (the tail wraps to the head); grown on demand as messages
  /// enqueue.
  std::vector<MessageId> waiter_next_;
  std::uint64_t busy_ = 0;     ///< total units currently taken
  std::uint64_t waiting_ = 0;  ///< total messages on wait lists
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_NETWORK_HPP
