#include "sim/shard.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <thread>
#include <utility>

#include "core/channel_load.hpp"

namespace hypercast::sim {

namespace {

/// Union-find over job indices, path-halving + union by size.
class JobDsu {
 public:
  explicit JobDsu(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

constexpr std::uint32_t kUnowned = static_cast<std::uint32_t>(-1);

}  // namespace

ShardPlan partition_collective_jobs(std::span<const CollectiveJob> jobs) {
  ShardPlan plan;
  if (jobs.empty()) return plan;
  const hcube::Topology& topo = jobs.front().schedule->topo();

  JobDsu dsu(jobs.size());
  // First job to stamp an arc / node owns it; later jobs touching the
  // same resource union with the owner. One pass over all footprints.
  std::vector<std::uint32_t> arc_owner(topo.num_arcs(), kUnowned);
  std::vector<std::uint32_t> node_owner(topo.num_nodes(), kUnowned);
  const auto claim = [&](std::vector<std::uint32_t>& owner, std::size_t index,
                         std::size_t job) {
    if (owner[index] == kUnowned) {
      owner[index] = static_cast<std::uint32_t>(job);
    } else {
      dsu.unite(job, owner[index]);
    }
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const core::MulticastSchedule& s = *jobs[j].schedule;
    assert(s.topo() == topo && "all jobs must share one topology");
    const core::ArcFootprint fp = core::arc_footprint(topo, s);
    for (const auto& [arc, count] : fp.arcs) {
      (void)count;
      claim(arc_owner, arc, j);
    }
    claim(node_owner, s.source(), j);
    for (const hcube::NodeId n : s.recipients()) {
      claim(node_owner, n, j);
    }
  }

  // Emit components ordered by smallest member, members ascending.
  std::vector<std::uint32_t> shard_of(jobs.size(), kUnowned);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t root = dsu.find(j);
    if (shard_of[root] == kUnowned) {
      shard_of[root] = static_cast<std::uint32_t>(plan.shards.size());
      plan.shards.emplace_back();
    }
    plan.shards[shard_of[root]].push_back(j);
  }
  return plan;
}

MultiSimResult simulate_collectives_sharded(
    std::span<const CollectiveJob> jobs, const SimConfig& config,
    unsigned threads) {
  if (jobs.empty()) {
    return simulate_collectives(jobs, config);
  }
  const ShardPlan plan = partition_collective_jobs(jobs);
  // One shard means every job interacts: nothing to parallelize, and
  // the joint run *is* the exact simulation.
  if (plan.shards.size() == 1) {
    MultiSimResult result = simulate_collectives(jobs, config);
    result.shards = 1;
    return result;
  }

  // Materialize each shard's contiguous job list once, up front.
  std::vector<std::vector<CollectiveJob>> shard_jobs(plan.shards.size());
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    shard_jobs[s].reserve(plan.shards[s].size());
    for (const std::size_t j : plan.shards[s]) {
      shard_jobs[s].push_back(jobs[j]);
    }
  }

  // Workers claim shards from an atomic cursor; results land in
  // per-shard slots, so completion order never shows in the output.
  std::vector<MultiSimResult> shard_results(plan.shards.size());
  std::vector<std::exception_ptr> shard_errors(plan.shards.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= plan.shards.size()) return;
      try {
        shard_results[s] = simulate_collectives(
            std::span<const CollectiveJob>(shard_jobs[s]), config);
      } catch (...) {
        shard_errors[s] = std::current_exception();
      }
    }
  };

  const std::size_t nworkers = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, plan.shards.size()));
  if (nworkers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nworkers);
    for (std::size_t t = 0; t < nworkers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  // Rethrow deterministically: the first failing shard in plan order.
  for (const std::exception_ptr& e : shard_errors) {
    if (e) std::rethrow_exception(e);
  }

  // Merge in plan order (shard 0 first), scattering per-job results
  // back to original indices: fully deterministic at any thread count.
  MultiSimResult merged;
  merged.per_job.resize(jobs.size());
  merged.shards = plan.shards.size();
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    MultiSimResult& r = shard_results[s];
    merged.stats.messages += r.stats.messages;
    merged.stats.blocked_acquisitions += r.stats.blocked_acquisitions;
    merged.stats.total_blocked_ns += r.stats.total_blocked_ns;
    merged.stats.events += r.stats.events;
    for (std::size_t k = 0; k < plan.shards[s].size(); ++k) {
      merged.per_job[plan.shards[s][k]] = std::move(r.per_job[k]);
    }
    if (config.record_trace) {
      merged.trace.messages.insert(
          merged.trace.messages.end(),
          std::make_move_iterator(r.trace.messages.begin()),
          std::make_move_iterator(r.trace.messages.end()));
    }
  }
  return merged;
}

}  // namespace hypercast::sim
