#ifndef HYPERCAST_SIM_SHARD_HPP
#define HYPERCAST_SIM_SHARD_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "sim/wormhole_sim.hpp"

namespace hypercast::sim {

/// A partition of a CollectiveJob set into independent shards.
///
/// Two jobs conflict when their network footprints can interact: their
/// E-cube arc sets intersect, or they share a participating node
/// (source or any recipient — participants' injection/consumption pools
/// and CPUs serialize work across jobs). Shards are the connected
/// components of this conflict graph: jobs in different shards touch
/// provably disjoint simulator state, so simulating each shard on its
/// own EventQueue + Network is *exact*, not an approximation — every
/// delivery time, blocking count, and event count matches the joint
/// single-queue simulation.
struct ShardPlan {
  /// Each shard lists original job indices in ascending order; shards
  /// are ordered by their smallest member. The plan is a pure function
  /// of the job list — never of thread count.
  std::vector<std::vector<std::size_t>> shards;

  std::size_t num_jobs() const {
    std::size_t n = 0;
    for (const auto& s : shards) n += s.size();
    return n;
  }
};

/// Group jobs into independent shards (union-find over the conflict
/// graph, with dense per-arc and per-node owner stamps: O(total
/// footprint + topo size), no pairwise comparisons). All jobs must share
/// one topology and have finalized schedules.
ShardPlan partition_collective_jobs(std::span<const CollectiveJob> jobs);

/// Conservative parallel replay: partition `jobs`, simulate each shard
/// on its own EventQueue + Network across `threads` workers, and merge
/// per-job results back into original job order. Deterministic by
/// construction — the partition ignores thread count and shard runs
/// share no state — so any `threads` value produces bit-identical
/// merged results (the serving guarantee every sweep in this repo
/// keeps). With a single shard (all jobs conflicting) this degrades to
/// simulate_collectives on one thread.
///
/// Merged aggregate stats are sums over shards; a job's
/// SimStats::events reports its *shard's* event count (the joint-run
/// convention of "events of the run you were part of", kept per shard).
/// MultiSimResult::shards records the partition size.
MultiSimResult simulate_collectives_sharded(
    std::span<const CollectiveJob> jobs, const SimConfig& config,
    unsigned threads = 1);

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_SHARD_HPP
