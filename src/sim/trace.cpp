#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hypercast::sim {

std::string Trace::format(const hcube::Topology& topo) const {
  std::vector<const MessageTrace*> order;
  order.reserve(messages.size());
  for (const MessageTrace& m : messages) order.push_back(&m);
  std::stable_sort(order.begin(), order.end(),
                   [](const MessageTrace* a, const MessageTrace* b) {
                     return a->issue < b->issue;
                   });
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (const MessageTrace* m : order) {
    os << topo.format(m->from) << " -> " << topo.format(m->to) << "  ("
       << m->hops << " hop" << (m->hops == 1 ? "" : "s") << ")"
       << "  issue " << std::setw(9) << to_microseconds(m->issue)
       << "  inject " << std::setw(9) << to_microseconds(m->header_start)
       << "  path " << std::setw(9) << to_microseconds(m->path_acquired)
       << "  tail " << std::setw(9) << to_microseconds(m->tail)
       << "  done " << std::setw(9) << to_microseconds(m->done);
    if (m->blocked_ns > 0) {
      os << "  BLOCKED " << to_microseconds(m->blocked_ns) << " us";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hypercast::sim
