#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

#include "metrics/json.hpp"

namespace hypercast::sim {

std::string Trace::format(const hcube::Topology& topo) const {
  std::vector<const MessageTrace*> order;
  order.reserve(messages.size());
  for (const MessageTrace& m : messages) order.push_back(&m);
  std::stable_sort(order.begin(), order.end(),
                   [](const MessageTrace* a, const MessageTrace* b) {
                     return a->issue < b->issue;
                   });
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (const MessageTrace* m : order) {
    os << topo.format(m->from) << " -> " << topo.format(m->to) << "  ("
       << m->hops << " hop" << (m->hops == 1 ? "" : "s") << ")"
       << "  issue " << std::setw(9) << to_microseconds(m->issue)
       << "  inject " << std::setw(9) << to_microseconds(m->header_start)
       << "  path " << std::setw(9) << to_microseconds(m->path_acquired)
       << "  tail " << std::setw(9) << to_microseconds(m->tail)
       << "  done " << std::setw(9) << to_microseconds(m->done);
    if (m->blocked_ns > 0) {
      os << "  BLOCKED " << to_microseconds(m->blocked_ns) << " us";
    }
    os << '\n';
  }
  return os.str();
}

SimTime Trace::earliest_issue() const {
  SimTime earliest = 0;
  bool any = false;
  for (const MessageTrace& m : messages) {
    if (!any || m.issue < earliest) earliest = m.issue;
    any = true;
  }
  return earliest;
}

namespace {

/// One complete event on the destination's row. `begin`/`end` are
/// absolute SimTimes; Chrome wants microseconds relative to the epoch.
void write_phase(metrics::JsonWriter& w, const char* name,
                 const MessageTrace& m, SimTime begin, SimTime end,
                 SimTime epoch, bool blocked_args) {
  w.begin_object();
  w.key("name").value(name);
  w.key("cat").value("worm");
  w.key("ph").value("X");
  w.key("ts").value(to_microseconds(begin - epoch));
  w.key("dur").value(to_microseconds(end - begin));
  w.key("pid").value(std::int64_t{0});
  w.key("tid").value(static_cast<std::int64_t>(m.to));
  w.key("args").begin_object();
  w.key("from").value(static_cast<std::int64_t>(m.from));
  w.key("to").value(static_cast<std::int64_t>(m.to));
  w.key("hops").value(static_cast<std::int64_t>(m.hops));
  if (blocked_args) {
    w.key("blocked_us").value(to_microseconds(m.blocked_ns));
    w.key("blocked_times").value(static_cast<std::int64_t>(m.blocked_times));
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void Trace::write_chrome_events(metrics::JsonWriter& w,
                                const hcube::Topology& topo,
                                SimTime epoch) const {
  // Name each destination row once so the viewer shows node labels
  // instead of bare tids.
  std::set<hcube::NodeId> named;
  for (const MessageTrace& m : messages) {
    if (!named.insert(m.to).second) continue;
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(std::int64_t{0});
    w.key("tid").value(static_cast<std::int64_t>(m.to));
    w.key("args").begin_object();
    w.key("name").value("node " + topo.format(m.to));
    w.end_object();
    w.end_object();
  }
  for (const MessageTrace& m : messages) {
    write_phase(w, "startup", m, m.issue, m.header_start, epoch, false);
    write_phase(w, "header", m, m.header_start, m.path_acquired, epoch, true);
    write_phase(w, "body", m, m.path_acquired, m.tail, epoch, false);
    write_phase(w, "recv", m, m.tail, m.done, epoch, false);
  }
}

std::string Trace::to_chrome_json(const hcube::Topology& topo) const {
  metrics::JsonWriter w;
  w.begin_array();
  write_chrome_events(w, topo, earliest_issue());
  w.end_array();
  return std::move(w).str();
}

}  // namespace hypercast::sim
