#ifndef HYPERCAST_SIM_TRACE_HPP
#define HYPERCAST_SIM_TRACE_HPP

#include <string>
#include <vector>

#include "hcube/topology.hpp"
#include "sim/cost_model.hpp"

namespace hypercast::sim {

/// Per-message timeline recorded by the simulator when tracing is on.
struct MessageTrace {
  hcube::NodeId from = 0;
  hcube::NodeId to = 0;
  int hops = 0;
  SimTime issue = 0;          ///< send call begins (startup starts)
  SimTime header_start = 0;   ///< startup done, header enters the network
  SimTime path_acquired = 0;  ///< header reached the destination router
  SimTime tail = 0;           ///< body fully streamed (channels released)
  SimTime done = 0;           ///< receive overhead finished at the target
  SimTime blocked_ns = 0;     ///< total time spent waiting on busy channels
  int blocked_times = 0;      ///< number of acquisitions that had to wait
};

struct Trace {
  std::vector<MessageTrace> messages;

  /// Multi-line rendering, one message per line, ordered by issue time.
  std::string format(const hcube::Topology& topo) const;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_TRACE_HPP
