#ifndef HYPERCAST_SIM_TRACE_HPP
#define HYPERCAST_SIM_TRACE_HPP

#include <string>
#include <vector>

#include "hcube/topology.hpp"
#include "sim/cost_model.hpp"

namespace hypercast::metrics {
class JsonWriter;
}

namespace hypercast::sim {

/// Per-message timeline recorded by the simulator when tracing is on.
struct MessageTrace {
  hcube::NodeId from = 0;
  hcube::NodeId to = 0;
  int hops = 0;
  SimTime issue = 0;          ///< send call begins (startup starts)
  SimTime header_start = 0;   ///< startup done, header enters the network
  SimTime path_acquired = 0;  ///< header reached the destination router
  SimTime tail = 0;           ///< body fully streamed (channels released)
  SimTime done = 0;           ///< receive overhead finished at the target
  SimTime blocked_ns = 0;     ///< total time spent waiting on busy channels
  int blocked_times = 0;      ///< number of acquisitions that had to wait
};

struct Trace {
  std::vector<MessageTrace> messages;

  /// Multi-line rendering, one message per line, ordered by issue time.
  std::string format(const hcube::Topology& topo) const;

  /// Chrome trace-event JSON (chrome://tracing / Perfetto loadable): a
  /// bare array of events. Each MessageTrace becomes four complete
  /// ("ph":"X") events on the *destination node's* row (tid = to, so a
  /// row reads as that node's incoming worm pipeline), timestamps in
  /// microseconds rebased to the earliest issue:
  ///   "startup" [issue, header_start)        — CPU send startup
  ///   "header"  [header_start, path_acquired) — header traversal; worm
  ///             blocking is part of this interval (the engine folds
  ///             waits on busy channels into path acquisition), reported
  ///             via args.blocked_us / args.blocked_times rather than as
  ///             separate events
  ///   "body"    [path_acquired, tail)         — body flits streaming
  ///   "recv"    [tail, done)                  — receive overhead
  /// plus one "M" thread_name metadata event per destination node.
  /// See docs/OBSERVABILITY.md for the full mapping rationale.
  std::string to_chrome_json(const hcube::Topology& topo) const;

  /// Append the same events through `w` (no enclosing array) with
  /// timestamps rebased to `epoch` — for merging simulator worms and
  /// obs::Tracer spans into one document.
  void write_chrome_events(metrics::JsonWriter& w, const hcube::Topology& topo,
                           SimTime epoch) const;

  /// Earliest issue timestamp, or 0 when empty (the natural epoch).
  SimTime earliest_issue() const;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_TRACE_HPP
