#include "sim/worm_engine.hpp"

#include <cassert>

namespace hypercast::sim {

MessageId WormEngine::inject(hcube::NodeId from, hcube::NodeId to,
                             std::size_t bytes, SimTime header_start,
                             DeliveryCallback on_delivered) {
  const MessageId id = static_cast<MessageId>(worms_.size());
  Worm w;
  w.to = to;
  w.bytes = bytes;
  w.path_begin = static_cast<std::uint32_t>(path_pool_.size());
  net_.append_path_resources(from, to, path_pool_);
  w.path_len = static_cast<std::uint16_t>(path_pool_.size() - w.path_begin);
  w.on_delivered = std::move(on_delivered);
  w.trace.from = from;
  w.trace.to = to;
  w.trace.hops = static_cast<int>(w.path_len) - 2;
  w.trace.header_start = header_start;
  worms_.push_back(std::move(w));
  queue_.schedule(header_start, [this, id] { advance(id); });
  return id;
}

void WormEngine::advance(MessageId id) {
  Worm& w = worms_[id];
  while (true) {
    if (w.next == w.path_len) {
      header_arrived(id);
      return;
    }
    const ResourceId r = path_at(w, w.next);
    if (!net_.available(r)) {
      net_.enqueue(r, id);
      w.block_start = queue_.now();
      ++w.trace.blocked_times;
      ++blocked_;
      return;
    }
    net_.take(r);
    ++w.next;
    if (net_.is_external(r)) {
      queue_.schedule_in(cost_.per_hop, [this, id] { advance(id); });
      return;
    }
  }
}

void WormEngine::resume(MessageId id) {
  Worm& w = worms_[id];
  const SimTime waited = queue_.now() - w.block_start;
  w.trace.blocked_ns += waited;
  total_blocked_ += waited;
  const ResourceId r = path_at(w, w.next);
  ++w.next;  // release() already took the unit on our behalf
  if (net_.is_external(r)) {
    queue_.schedule_in(cost_.per_hop, [this, id] { advance(id); });
  } else {
    advance(id);
  }
}

void WormEngine::header_arrived(MessageId id) {
  Worm& w = worms_[id];
  w.trace.path_acquired = queue_.now();
  queue_.schedule_in(cost_.body_time(w.bytes),
                     [this, id] { tail_arrived(id); });
}

void WormEngine::tail_arrived(MessageId id) {
  Worm& w = worms_[id];
  w.trace.tail = queue_.now();
  for (std::size_t i = 0; i < w.path_len; ++i) {
    if (const auto granted = net_.release(path_at(w, i))) {
      const MessageId g = *granted;
      queue_.schedule_in(0, [this, g] { resume(g); });
    }
  }
  ++delivered_;
  assert(w.on_delivered);
  // Moved to a local: the callback may inject new worms, and a growing
  // worms_ vector must not relocate the callable mid-invocation.
  DeliveryCallback deliver = std::move(w.on_delivered);
  deliver(id, queue_.now());
}

}  // namespace hypercast::sim
