#include "sim/worm_engine.hpp"

#include <cassert>

namespace hypercast::sim {

MessageId WormEngine::inject(hcube::NodeId from, hcube::NodeId to,
                             std::size_t bytes, SimTime header_start) {
  assert(on_delivered_ != nullptr);
  const MessageId id = static_cast<MessageId>(paths_.size());
  PathRef p;
  p.begin = static_cast<std::uint32_t>(path_pool_.size());
  net_.append_path_resources(from, to, path_pool_);
  p.len = static_cast<std::uint16_t>(path_pool_.size() - p.begin);
  p.next = 0;
  paths_.push_back(p);
  to_.push_back(to);
  bytes_.push_back(bytes);
  blocking_.emplace_back();
  if (record_trace_) {
    MessageTrace t;
    t.from = from;
    t.to = to;
    t.hops = static_cast<int>(p.len) - 2;
    t.header_start = header_start;
    traces_.push_back(t);
  }
  queue_.schedule_raw(header_start, kind_advance_, id);
  return id;
}

void WormEngine::advance(MessageId id) {
  PathRef& p = paths_[id];
  while (true) {
    if (p.next == p.len) {
      header_arrived(id);
      return;
    }
    const ResourceId r = path_at(p, p.next);
    if (!net_.available(r)) {
      net_.enqueue(r, id);
      Blocking& acct = blocking_[id];
      acct.start = queue_.now();
      ++acct.times;
      ++blocked_;
      return;
    }
    net_.take(r);
    ++p.next;
    if (net_.is_external(r)) {
      queue_.schedule_raw_in(cost_.per_hop, kind_advance_, id);
      return;
    }
  }
}

void WormEngine::resume(MessageId id) {
  PathRef& p = paths_[id];
  const SimTime waited = queue_.now() - blocking_[id].start;
  blocking_[id].ns += waited;
  total_blocked_ += waited;
  const ResourceId r = path_at(p, p.next);
  ++p.next;  // release() already took the unit on our behalf
  if (net_.is_external(r)) {
    queue_.schedule_raw_in(cost_.per_hop, kind_advance_, id);
  } else {
    advance(id);
  }
}

void WormEngine::header_arrived(MessageId id) {
  if (record_trace_) traces_[id].path_acquired = queue_.now();
  queue_.schedule_raw_in(cost_.body_time(bytes_[id]), kind_tail_, id);
}

void WormEngine::tail_arrived(MessageId id) {
  const PathRef p = paths_[id];
  for (std::size_t i = 0; i < p.len; ++i) {
    if (const auto granted = net_.release(path_at(p, i))) {
      queue_.schedule_raw_in(0, kind_resume_, *granted);
    }
  }
  ++delivered_;
  if (record_trace_) {
    MessageTrace& t = traces_[id];
    t.tail = queue_.now();
    t.blocked_ns = blocking_[id].ns;
    t.blocked_times = static_cast<int>(blocking_[id].times);
  }
  // The handler may inject new worms; per-worm state is read before the
  // call, so SoA growth during it is safe.
  on_delivered_(delivered_ctx_, id, queue_.now());
}

void WormEngine::reserve(std::size_t messages,
                         std::size_t path_slots_per_message) {
  paths_.reserve(messages);
  to_.reserve(messages);
  bytes_.reserve(messages);
  blocking_.reserve(messages);
  if (record_trace_) traces_.reserve(messages);
  path_pool_.reserve(messages * path_slots_per_message);
}

void WormEngine::reset() {
  paths_.clear();
  to_.clear();
  bytes_.clear();
  blocking_.clear();
  traces_.clear();
  path_pool_.clear();
  net_.reset();
  blocked_ = 0;
  total_blocked_ = 0;
  delivered_ = 0;
}

std::size_t WormEngine::memory_bytes() const {
  return paths_.capacity() * sizeof(PathRef) +
         to_.capacity() * sizeof(hcube::NodeId) +
         bytes_.capacity() * sizeof(std::uint64_t) +
         blocking_.capacity() * sizeof(Blocking) +
         traces_.capacity() * sizeof(MessageTrace) +
         path_pool_.capacity() * sizeof(ResourceId) + net_.memory_bytes();
}

}  // namespace hypercast::sim
