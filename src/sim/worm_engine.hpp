#ifndef HYPERCAST_SIM_WORM_ENGINE_HPP
#define HYPERCAST_SIM_WORM_ENGINE_HPP

#include <functional>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace hypercast::sim {

/// Low-level wormhole transport shared by the multicast and reduction
/// simulators: callers inject unicast worms; the engine walks each worm
/// through injection slot -> E-cube arcs -> consumption slot (FIFO
/// blocking, path held while blocked, whole path released when the tail
/// arrives) and invokes the caller's callback at tail time.
///
/// The engine owns the network resources and shares the caller's event
/// queue; processor modelling (startups, receive overheads) is the
/// caller's business.
class WormEngine {
 public:
  /// Called at tail-arrival time; the network path has been released.
  using DeliveryCallback = std::function<void(MessageId, SimTime)>;

  /// `faults` (optional, caller-owned) is forwarded to the Network:
  /// injecting a worm whose E-cube route touches a failed resource is a
  /// hard error (std::logic_error), never a silent reroute.
  WormEngine(const Topology& topo, const CostModel& cost, PortModel port,
             EventQueue& queue, const fault::FaultSet* faults = nullptr)
      : cost_(cost), net_(topo, port, faults), queue_(queue) {}

  /// Launch a worm: the header enters the network at `header_start`
  /// (callers account for send startup) carrying `bytes` of payload.
  MessageId inject(hcube::NodeId from, hcube::NodeId to, std::size_t bytes,
                   SimTime header_start, DeliveryCallback on_delivered);

  /// Per-message timeline. from/to/hops/header_start/path_acquired/
  /// tail/blocked_ns are filled by the engine; issue/done belong to the
  /// caller's processor model.
  MessageTrace& trace(MessageId id) { return worms_[id].trace; }
  const MessageTrace& trace(MessageId id) const { return worms_[id].trace; }

  std::size_t num_messages() const { return worms_.size(); }
  std::uint64_t blocked_acquisitions() const { return blocked_; }
  SimTime total_blocked_ns() const { return total_blocked_; }

  /// True when every injected worm has delivered and every resource is
  /// free — the end-of-run invariant.
  bool quiescent() const {
    return delivered_ == worms_.size() && net_.quiescent();
  }

 private:
  struct Worm {
    hcube::NodeId to = 0;
    std::size_t bytes = 0;
    std::vector<ResourceId> path;
    std::size_t next = 0;
    SimTime block_start = 0;
    DeliveryCallback on_delivered;
    MessageTrace trace;
  };

  void advance(MessageId id);
  void resume(MessageId id);
  void header_arrived(MessageId id);
  void tail_arrived(MessageId id);

  CostModel cost_;
  Network net_;
  EventQueue& queue_;
  std::vector<Worm> worms_;
  std::uint64_t blocked_ = 0;
  SimTime total_blocked_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_WORM_ENGINE_HPP
