#ifndef HYPERCAST_SIM_WORM_ENGINE_HPP
#define HYPERCAST_SIM_WORM_ENGINE_HPP

#include <vector>

#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/inplace_function.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace hypercast::sim {

/// Low-level wormhole transport shared by the multicast and reduction
/// simulators: callers inject unicast worms; the engine walks each worm
/// through injection slot -> E-cube arcs -> consumption slot (FIFO
/// blocking, path held while blocked, whole path released when the tail
/// arrives) and invokes the caller's callback at tail time.
///
/// The engine owns the network resources and shares the caller's event
/// queue; processor modelling (startups, receive overheads) is the
/// caller's business.
///
/// Hot-path layout: every worm's resource path is a slice of one shared
/// flat buffer (indexed by path_begin/path_len), and delivery callbacks
/// use inline storage — injecting a worm costs no heap allocation beyond
/// amortised buffer growth.
class WormEngine {
 public:
  /// Called at tail-arrival time; the network path has been released.
  /// Inline-storage callable: captures up to 48 bytes, never allocates.
  using DeliveryCallback = InplaceFunction<void(MessageId, SimTime), 48>;

  /// `faults` (optional, caller-owned) is forwarded to the Network:
  /// injecting a worm whose E-cube route touches a failed resource is a
  /// hard error (std::logic_error), never a silent reroute.
  WormEngine(const Topology& topo, const CostModel& cost, PortModel port,
             EventQueue& queue, const fault::FaultSet* faults = nullptr)
      : cost_(cost), net_(topo, port, faults), queue_(queue) {}

  /// Launch a worm: the header enters the network at `header_start`
  /// (callers account for send startup) carrying `bytes` of payload.
  MessageId inject(hcube::NodeId from, hcube::NodeId to, std::size_t bytes,
                   SimTime header_start, DeliveryCallback on_delivered);

  /// Per-message timeline. from/to/hops/header_start/path_acquired/
  /// tail/blocked_ns are filled by the engine; issue/done belong to the
  /// caller's processor model.
  MessageTrace& trace(MessageId id) { return worms_[id].trace; }
  const MessageTrace& trace(MessageId id) const { return worms_[id].trace; }

  std::size_t num_messages() const { return worms_.size(); }
  std::uint64_t blocked_acquisitions() const { return blocked_; }
  SimTime total_blocked_ns() const { return total_blocked_; }

  /// True when every injected worm has delivered and every resource is
  /// free — the end-of-run invariant.
  bool quiescent() const {
    return delivered_ == worms_.size() && net_.quiescent();
  }

 private:
  struct Worm {
    hcube::NodeId to = 0;
    std::uint32_t path_begin = 0;  ///< offset into the shared path pool
    std::uint16_t path_len = 0;
    std::uint16_t next = 0;        ///< next path resource to acquire
    std::size_t bytes = 0;
    SimTime block_start = 0;
    DeliveryCallback on_delivered;
    MessageTrace trace;
  };

  ResourceId path_at(const Worm& w, std::size_t i) const {
    return path_pool_[w.path_begin + i];
  }

  void advance(MessageId id);
  void resume(MessageId id);
  void header_arrived(MessageId id);
  void tail_arrived(MessageId id);

  CostModel cost_;
  Network net_;
  EventQueue& queue_;
  std::vector<Worm> worms_;
  std::vector<ResourceId> path_pool_;  ///< all worms' paths, back to back
  std::uint64_t blocked_ = 0;
  SimTime total_blocked_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_WORM_ENGINE_HPP
