#ifndef HYPERCAST_SIM_WORM_ENGINE_HPP
#define HYPERCAST_SIM_WORM_ENGINE_HPP

#include <cstdint>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace hypercast::sim {

/// Low-level wormhole transport shared by the multicast and reduction
/// simulators: callers inject unicast worms; the engine walks each worm
/// through injection slot -> E-cube arcs -> consumption slot (FIFO
/// blocking, path held while blocked, whole path released when the tail
/// arrives) and invokes the caller's delivery handler at tail time.
///
/// The engine owns the network resources and shares the caller's event
/// queue; processor modelling (startups, receive overheads) is the
/// caller's business.
///
/// Hot-path layout: worm state is SoA. The fields advance/resume touch
/// per hop live in one packed 8-byte PathRef array (path offset/len and
/// the next-resource cursor); destination, payload size, and blocking
/// accounting sit in parallel arrays read once per worm; every worm's
/// resource path is a slice of one shared flat buffer. Continuations go
/// through the queue's raw-handler path (three kinds registered at
/// construction), so a hop costs a 24-byte ticket, not a callable.
/// Delivery notification is one engine-wide handler, not a per-worm
/// callback: a million-worm run stores zero per-message callables.
///
/// Full MessageTrace timelines are recorded only when `record_trace` is
/// set at construction — a 1M-node broadcast doesn't pay ~80 bytes per
/// message of timeline state it never reads. The aggregate accessors
/// (destination / blocked_times / blocked_ns) are always available.
class WormEngine {
 public:
  /// Called at tail-arrival time; the network path has been released.
  /// One handler for the whole engine; `ctx` must outlive the engine.
  using DeliveryHandler = void (*)(void* ctx, MessageId id, SimTime at);

  /// `faults` (optional, caller-owned) is forwarded to the Network:
  /// injecting a worm whose E-cube route touches a failed resource is a
  /// hard error (std::logic_error), never a silent reroute.
  WormEngine(const Topology& topo, const CostModel& cost, PortModel port,
             EventQueue& queue, const fault::FaultSet* faults = nullptr,
             bool record_trace = false)
      : cost_(cost),
        net_(topo, port, faults),
        queue_(queue),
        record_trace_(record_trace) {
    kind_advance_ = queue_.register_handler(&WormEngine::advance_thunk, this);
    kind_resume_ = queue_.register_handler(&WormEngine::resume_thunk, this);
    kind_tail_ = queue_.register_handler(&WormEngine::tail_thunk, this);
  }

  /// Install the delivery handler. Must be set before the first tail
  /// arrives; injecting with no handler set is a programming error.
  void set_delivery_handler(DeliveryHandler fn, void* ctx) {
    on_delivered_ = fn;
    delivered_ctx_ = ctx;
  }

  /// Launch a worm: the header enters the network at `header_start`
  /// (callers account for send startup) carrying `bytes` of payload.
  MessageId inject(hcube::NodeId from, hcube::NodeId to, std::size_t bytes,
                   SimTime header_start);

  /// Per-message timeline; only populated when recording_traces().
  /// from/to/hops/header_start/path_acquired/tail/blocked_* are filled
  /// by the engine; issue/done belong to the caller's processor model.
  MessageTrace& trace(MessageId id) { return traces_[id]; }
  const MessageTrace& trace(MessageId id) const { return traces_[id]; }
  bool recording_traces() const { return record_trace_; }

  hcube::NodeId destination(MessageId id) const { return to_[id]; }
  std::uint32_t blocked_times(MessageId id) const {
    return blocking_[id].times;
  }
  SimTime blocked_ns(MessageId id) const { return blocking_[id].ns; }

  std::size_t num_messages() const { return paths_.size(); }
  std::uint64_t blocked_acquisitions() const { return blocked_; }
  SimTime total_blocked_ns() const { return total_blocked_; }

  /// True when every injected worm has delivered and every resource is
  /// free — the end-of-run invariant.
  bool quiescent() const {
    return delivered_ == paths_.size() && net_.quiescent();
  }

  /// Pre-size per-worm arrays for `messages` worms averaging
  /// `path_slots_per_message` path resources each.
  void reserve(std::size_t messages, std::size_t path_slots_per_message);

  /// Forget every worm and restore the network to idle, keeping all
  /// allocations — a reused engine starts the next job at steady state.
  /// The shared event queue must be drained first (quiescent run end).
  void reset();

  /// Heap bytes pinned by worm state + the network (capacity, not size).
  std::size_t memory_bytes() const;

 private:
  /// The per-hop hot fields, packed to 8 bytes so advance/resume touch
  /// one cache line per eight in-flight worms.
  struct PathRef {
    std::uint32_t begin;  ///< offset into the shared path pool
    std::uint16_t len;
    std::uint16_t next;   ///< next path resource to acquire
  };
  static_assert(sizeof(PathRef) == 8, "packed hot worm state");

  ResourceId path_at(PathRef p, std::size_t i) const {
    return path_pool_[p.begin + i];
  }

  static void advance_thunk(void* ctx, std::uint32_t arg) {
    static_cast<WormEngine*>(ctx)->advance(arg);
  }
  static void resume_thunk(void* ctx, std::uint32_t arg) {
    static_cast<WormEngine*>(ctx)->resume(arg);
  }
  static void tail_thunk(void* ctx, std::uint32_t arg) {
    static_cast<WormEngine*>(ctx)->tail_arrived(arg);
  }

  void advance(MessageId id);
  void resume(MessageId id);
  void header_arrived(MessageId id);
  void tail_arrived(MessageId id);

  CostModel cost_;
  Network net_;
  EventQueue& queue_;
  bool record_trace_;
  std::uint16_t kind_advance_ = 0;
  std::uint16_t kind_resume_ = 0;
  std::uint16_t kind_tail_ = 0;
  DeliveryHandler on_delivered_ = nullptr;
  void* delivered_ctx_ = nullptr;

  /// Per-worm blocking accounting, grouped: the three fields are only
  /// touched together (on block, on resume, at tail time), so one array
  /// of structs costs one push_back per inject and one cache line per
  /// touch where three parallel arrays cost three of each.
  struct Blocking {
    SimTime start = 0;  ///< when the current wait began
    SimTime ns = 0;     ///< total time spent blocked
    std::uint32_t times = 0;
  };

  // SoA worm state, all indexed by MessageId.
  std::vector<PathRef> paths_;
  std::vector<hcube::NodeId> to_;
  std::vector<std::uint64_t> bytes_;
  std::vector<Blocking> blocking_;
  std::vector<MessageTrace> traces_;   ///< empty unless record_trace_
  std::vector<ResourceId> path_pool_;  ///< all worms' paths, back to back

  std::uint64_t blocked_ = 0;
  SimTime total_blocked_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_WORM_ENGINE_HPP
