#include "sim/wormhole_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/worm_engine.hpp"

namespace hypercast::sim {

namespace {

/// Registry handles resolved once; the simulator publishes aggregate
/// run/message/event counts plus a per-delivery latency histogram.
struct SimMetrics {
  obs::Counter* runs;
  obs::Counter* jobs;
  obs::Counter* messages;
  obs::Counter* events;
  obs::Counter* blocked_acquisitions;
  obs::Histogram* delay_ns;
};

const SimMetrics& sim_metrics() {
  static const SimMetrics m = [] {
    obs::Registry& r = obs::default_registry();
    return SimMetrics{&r.counter("sim.runs"),
                      &r.counter("sim.jobs"),
                      &r.counter("sim.messages"),
                      &r.counter("sim.events"),
                      &r.counter("sim.blocked_acquisitions"),
                      &r.histogram("sim.delay_ns")};
  }();
  return m;
}

/// Replays multicast schedules over a shared WormEngine, adding the
/// processor model: send startups and receive overheads serialize on
/// each node's CPU across every job it participates in.
class Engine {
 public:
  Engine(std::span<const CollectiveJob> jobs, const SimConfig& config)
      : jobs_(jobs),
        config_(config),
        topo_(jobs.empty() ? Topology(0) : jobs.front().schedule->topo()),
        worms_(topo_, config.cost, config.port, queue_, config.faults) {
    result_.per_job.resize(jobs.size());
    cpu_free_.assign(topo_.num_nodes(), 0);
#ifndef NDEBUG
    for (const CollectiveJob& job : jobs_) {
      assert(job.schedule != nullptr);
      assert(job.schedule->topo() == topo_ &&
             "all jobs must share one topology");
      assert(job.start >= 0);
    }
#endif
  }

  MultiSimResult run() {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const SimTime start = jobs_[j].start;
      queue_.schedule(start, [this, j, start] {
        start_node(j, jobs_[j].schedule->source(), start);
      });
    }
    queue_.run_to_completion();
    finish();
    return std::move(result_);
  }

 private:
  /// The node's processor issues this job's sends, startup by startup,
  /// beginning no earlier than `ready` and no earlier than the CPU is
  /// free from other work.
  void start_node(std::size_t job, hcube::NodeId node, SimTime ready) {
    SimTime cpu = std::max(cpu_free_[node], ready);
    for (const core::Send& send : jobs_[job].schedule->sends_from(node)) {
      const SimTime issue = cpu;
      cpu += config_.cost.send_startup;
      const MessageId id = worms_.inject(
          node, send.to, config_.message_bytes, cpu,
          [this, job](MessageId m, SimTime tail) { delivered(job, m, tail); });
      worms_.trace(id).issue = issue;
      job_of_.push_back(job);
      ++result_.stats.messages;
      ++result_.per_job[job].stats.messages;
    }
    cpu_free_[node] = cpu;
  }

  void delivered(std::size_t job, MessageId id, SimTime tail) {
    // The receiving processor copies the message out of the network
    // (serialized with whatever else that CPU is doing), then continues
    // this job's forwarding.
    const hcube::NodeId node = worms_.trace(id).to;
    const SimTime done =
        std::max(cpu_free_[node], tail) + config_.cost.recv_overhead;
    cpu_free_[node] = done;
    worms_.trace(id).done = done;
    const auto [it, inserted] =
        result_.per_job[job].delivery.emplace(node, done);
    (void)it;
    assert(inserted && "schedule delivers to a node twice");
    queue_.schedule(done, [this, job, node, done] {
      start_node(job, node, done);
    });
  }

  void finish() {
    result_.stats.events = queue_.events_processed();
    result_.stats.blocked_acquisitions = worms_.blocked_acquisitions();
    result_.stats.total_blocked_ns = worms_.total_blocked_ns();
    std::size_t delivered_total = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      delivered_total += result_.per_job[j].delivery.size();
      result_.per_job[j].stats.events = result_.stats.events;
    }
    if (delivered_total != result_.stats.messages || !worms_.quiescent()) {
      throw std::logic_error(
          "simulation drained with undelivered messages (deadlock?)");
    }
    // Per-job blocking stats and traces come from the worm timelines.
    for (MessageId id = 0; id < worms_.num_messages(); ++id) {
      const MessageTrace& t = worms_.trace(id);
      const std::size_t job = job_of_[id];
      result_.per_job[job].stats.blocked_acquisitions +=
          static_cast<std::uint64_t>(t.blocked_times);
      result_.per_job[job].stats.total_blocked_ns += t.blocked_ns;
      if (config_.record_trace) {
        result_.trace.messages.push_back(t);
        result_.per_job[job].trace.messages.push_back(t);
      }
    }
    if (obs::stats_enabled()) {
      const SimMetrics& m = sim_metrics();
      m.runs->inc();
      m.jobs->add(jobs_.size());
      m.messages->add(result_.stats.messages);
      m.events->add(result_.stats.events);
      m.blocked_acquisitions->add(result_.stats.blocked_acquisitions);
      for (const SimResult& r : result_.per_job) {
        for (const auto& [node, done] : r.delivery) {
          (void)node;
          m.delay_ns->record(static_cast<std::uint64_t>(done));
        }
      }
    }
    return;
  }

  std::span<const CollectiveJob> jobs_;
  SimConfig config_;
  Topology topo_;
  EventQueue queue_;
  WormEngine worms_;
  std::vector<std::size_t> job_of_;  ///< indexed by MessageId
  std::vector<SimTime> cpu_free_;
  MultiSimResult result_;
};

}  // namespace

SimTime SimResult::max_delay(std::span<const hcube::NodeId> targets) const {
  SimTime worst = 0;
  if (targets.empty()) {
    for (const auto& [node, t] : delivery) worst = std::max(worst, t);
  } else {
    for (const hcube::NodeId n : targets) worst = std::max(worst, delivery.at(n));
  }
  return worst;
}

double SimResult::avg_delay(std::span<const hcube::NodeId> targets) const {
  if (targets.empty()) {
    if (delivery.empty()) return 0.0;
    double sum = 0;
    for (const auto& [node, t] : delivery) sum += static_cast<double>(t);
    return sum / static_cast<double>(delivery.size());
  }
  double sum = 0;
  for (const hcube::NodeId n : targets) {
    sum += static_cast<double>(delivery.at(n));
  }
  return sum / static_cast<double>(targets.size());
}

SimTime MultiSimResult::makespan() const {
  SimTime worst = 0;
  for (const SimResult& r : per_job) {
    worst = std::max(worst, r.max_delay());
  }
  return worst;
}

MultiSimResult simulate_collectives(std::span<const CollectiveJob> jobs,
                                    const SimConfig& config) {
  HYPERCAST_OBS_SPAN("sim.run");
  return Engine(jobs, config).run();
}

SimResult simulate_multicast(const core::MulticastSchedule& schedule,
                             const SimConfig& config) {
  const CollectiveJob job{&schedule, 0};
  auto multi = simulate_collectives(std::span<const CollectiveJob>(&job, 1),
                                    config);
  SimResult out = std::move(multi.per_job.front());
  out.stats.events = multi.stats.events;
  return out;
}

SimTime simulate_unicast(const hcube::Topology& topo, const SimConfig& config,
                         hcube::NodeId from, hcube::NodeId to) {
  core::MulticastSchedule schedule(topo, from);
  schedule.add_send(from, to);
  return simulate_multicast(schedule, config).delay(to);
}

}  // namespace hypercast::sim
