#include "sim/wormhole_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/worm_engine.hpp"

namespace hypercast::sim {

namespace {

/// Registry handles resolved once; the simulator publishes aggregate
/// run/message/event counts plus a per-delivery latency histogram.
struct SimMetrics {
  obs::Counter* runs;
  obs::Counter* jobs;
  obs::Counter* messages;
  obs::Counter* events;
  obs::Counter* blocked_acquisitions;
  obs::Histogram* delay_ns;
};

const SimMetrics& sim_metrics() {
  static const SimMetrics m = [] {
    obs::Registry& r = obs::default_registry();
    return SimMetrics{&r.counter("sim.runs"),
                      &r.counter("sim.jobs"),
                      &r.counter("sim.messages"),
                      &r.counter("sim.events"),
                      &r.counter("sim.blocked_acquisitions"),
                      &r.histogram("sim.delay_ns")};
  }();
  return m;
}

/// Replays multicast schedules over a shared WormEngine, adding the
/// processor model: send startups and receive overheads serialize on
/// each node's CPU across every job it participates in.
///
/// Every hot continuation goes through the event queue's raw-handler
/// path: worm deliveries arrive via the engine-wide delivery handler,
/// and a node's post-receive forwarding is a raw ticket whose arg is the
/// MessageId (job and node recovered from job_of_/destination, the time
/// from now()). Only the per-job kick-off events use pooled actions.
class Engine {
 public:
  Engine(std::span<const CollectiveJob> jobs, const SimConfig& config)
      : jobs_(jobs),
        config_(config),
        topo_(jobs.empty() ? Topology(0) : jobs.front().schedule->topo()),
        worms_(topo_, config.cost, config.port, queue_, config.faults,
               config.record_trace) {
    worms_.set_delivery_handler(&Engine::delivered_thunk, this);
    kind_forward_ = queue_.register_handler(&Engine::forward_thunk, this);
    kind_job_start_ = queue_.register_handler(&Engine::job_start_thunk, this);
    result_.per_job.resize(jobs.size());
    cpu_free_.assign(topo_.num_nodes(), 0);
    std::size_t total_unicasts = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      total_unicasts += jobs[j].schedule->num_unicasts();
      result_.per_job[j].delivery.reserve(jobs[j].schedule->num_unicasts());
    }
    worms_.reserve(total_unicasts, topo_.dim() / 2 + 2);
    job_of_.reserve(total_unicasts);
    // MessageIds are assigned densely by injection order, so the flat
    // done-time table can be sized exactly once up front.
    done_.assign(total_unicasts, kUndelivered);
#ifndef NDEBUG
    for (const CollectiveJob& job : jobs_) {
      assert(job.schedule != nullptr);
      assert(job.schedule->topo() == topo_ &&
             "all jobs must share one topology");
      assert(job.start >= 0);
    }
#endif
  }

  MultiSimResult run() {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      queue_.schedule_raw(jobs_[j].start, kind_job_start_,
                          static_cast<std::uint32_t>(j));
    }
    queue_.run_to_completion();
    finish();
    return std::move(result_);
  }

 private:
  static void delivered_thunk(void* ctx, MessageId id, SimTime tail) {
    static_cast<Engine*>(ctx)->delivered(id, tail);
  }
  static void forward_thunk(void* ctx, std::uint32_t id) {
    Engine* e = static_cast<Engine*>(ctx);
    // Fires at the receive-done time: resume forwarding from there.
    e->start_node(e->job_of_[id], e->worms_.destination(id),
                  e->queue_.now());
  }
  static void job_start_thunk(void* ctx, std::uint32_t job) {
    Engine* e = static_cast<Engine*>(ctx);
    e->start_node(job, e->jobs_[job].schedule->source(), e->queue_.now());
  }

  /// The node's processor issues this job's sends, startup by startup,
  /// beginning no earlier than `ready` and no earlier than the CPU is
  /// free from other work.
  void start_node(std::size_t job, hcube::NodeId node, SimTime ready) {
    SimTime cpu = std::max(cpu_free_[node], ready);
    const std::size_t bytes = jobs_[job].message_bytes != 0
                                  ? jobs_[job].message_bytes
                                  : config_.message_bytes;
    for (const core::Send& send : jobs_[job].schedule->sends_from(node)) {
      const SimTime issue = cpu;
      cpu += config_.cost.send_startup;
      const MessageId id = worms_.inject(node, send.to, bytes, cpu);
      if (worms_.recording_traces()) worms_.trace(id).issue = issue;
      job_of_.push_back(static_cast<std::uint32_t>(job));
      ++result_.stats.messages;
      ++result_.per_job[job].stats.messages;
    }
    cpu_free_[node] = cpu;
  }

  void delivered(MessageId id, SimTime tail) {
    // The receiving processor copies the message out of the network
    // (serialized with whatever else that CPU is doing), then continues
    // this job's forwarding. The delivery-map entry is deferred to
    // finish(): hashing into per-job maps is batch work, not per-event
    // work.
    const hcube::NodeId node = worms_.destination(id);
    const SimTime done =
        std::max(cpu_free_[node], tail) + config_.cost.recv_overhead;
    cpu_free_[node] = done;
    if (worms_.recording_traces()) worms_.trace(id).done = done;
    done_[id] = done;
    queue_.schedule_raw(done, kind_forward_, id);
  }

  void finish() {
    result_.stats.events = queue_.events_processed();
    result_.stats.blocked_acquisitions = worms_.blocked_acquisitions();
    result_.stats.total_blocked_ns = worms_.total_blocked_ns();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      result_.per_job[j].stats.events = result_.stats.events;
    }
    // Materialize the per-job delivery maps from the flat done_ array.
    std::size_t delivered_total = 0;
    for (MessageId id = 0; id < done_.size(); ++id) {
      if (done_[id] == kUndelivered) continue;
      ++delivered_total;
      const auto [it, inserted] = result_.per_job[job_of_[id]].delivery.emplace(
          worms_.destination(id), done_[id]);
      (void)it;
      assert(inserted && "schedule delivers to a node twice");
    }
    if (delivered_total != result_.stats.messages || !worms_.quiescent()) {
      throw std::logic_error(
          "simulation drained with undelivered messages (deadlock?)");
    }
    // Per-job blocking stats (and traces when recorded) come from the
    // engine's per-worm accounting.
    for (MessageId id = 0; id < worms_.num_messages(); ++id) {
      const std::size_t job = job_of_[id];
      result_.per_job[job].stats.blocked_acquisitions +=
          static_cast<std::uint64_t>(worms_.blocked_times(id));
      result_.per_job[job].stats.total_blocked_ns += worms_.blocked_ns(id);
      if (config_.record_trace) {
        const MessageTrace& t = worms_.trace(id);
        result_.trace.messages.push_back(t);
        result_.per_job[job].trace.messages.push_back(t);
      }
    }
    if (obs::stats_enabled()) {
      const SimMetrics& m = sim_metrics();
      m.runs->inc();
      m.jobs->add(jobs_.size());
      m.messages->add(result_.stats.messages);
      m.events->add(result_.stats.events);
      m.blocked_acquisitions->add(result_.stats.blocked_acquisitions);
      for (const SimResult& r : result_.per_job) {
        for (const auto& [node, done] : r.delivery) {
          (void)node;
          m.delay_ns->record(static_cast<std::uint64_t>(done));
        }
      }
    }
    return;
  }

  std::span<const CollectiveJob> jobs_;
  SimConfig config_;
  Topology topo_;
  EventQueue queue_;
  WormEngine worms_;
  std::uint16_t kind_forward_ = 0;
  std::uint16_t kind_job_start_ = 0;
  std::vector<std::uint32_t> job_of_;  ///< indexed by MessageId
  static constexpr SimTime kUndelivered = -1;
  std::vector<SimTime> done_;  ///< indexed by MessageId; scattered into
                               ///< per-job delivery maps in finish()
  std::vector<SimTime> cpu_free_;
  MultiSimResult result_;
};

}  // namespace

SimTime SimResult::max_delay(std::span<const hcube::NodeId> targets) const {
  SimTime worst = 0;
  if (targets.empty()) {
    for (const auto& [node, t] : delivery) worst = std::max(worst, t);
  } else {
    for (const hcube::NodeId n : targets) worst = std::max(worst, delivery.at(n));
  }
  return worst;
}

double SimResult::avg_delay(std::span<const hcube::NodeId> targets) const {
  if (targets.empty()) {
    if (delivery.empty()) return 0.0;
    double sum = 0;
    for (const auto& [node, t] : delivery) sum += static_cast<double>(t);
    return sum / static_cast<double>(delivery.size());
  }
  double sum = 0;
  for (const hcube::NodeId n : targets) {
    sum += static_cast<double>(delivery.at(n));
  }
  return sum / static_cast<double>(targets.size());
}

SimTime MultiSimResult::makespan() const {
  SimTime worst = 0;
  for (const SimResult& r : per_job) {
    worst = std::max(worst, r.max_delay());
  }
  return worst;
}

MultiSimResult simulate_collectives(std::span<const CollectiveJob> jobs,
                                    const SimConfig& config) {
  HYPERCAST_OBS_SPAN("sim.run");
  return Engine(jobs, config).run();
}

SimResult simulate_multicast(const core::MulticastSchedule& schedule,
                             const SimConfig& config) {
  const CollectiveJob job{&schedule, 0};
  auto multi = simulate_collectives(std::span<const CollectiveJob>(&job, 1),
                                    config);
  SimResult out = std::move(multi.per_job.front());
  out.stats.events = multi.stats.events;
  return out;
}

SimTime simulate_unicast(const hcube::Topology& topo, const SimConfig& config,
                         hcube::NodeId from, hcube::NodeId to) {
  core::MulticastSchedule schedule(topo, from);
  schedule.add_send(from, to);
  return simulate_multicast(schedule, config).delay(to);
}

}  // namespace hypercast::sim
