#ifndef HYPERCAST_SIM_WORMHOLE_SIM_HPP
#define HYPERCAST_SIM_WORMHOLE_SIM_HPP

#include <span>

#include "core/multicast.hpp"
#include "core/stepwise.hpp"
#include "fault/fault_set.hpp"
#include "sim/cost_model.hpp"
#include "sim/delivery_map.hpp"
#include "sim/trace.hpp"

namespace hypercast::sim {

using core::PortModel;

/// Configuration of one simulation run.
struct SimConfig {
  CostModel cost = CostModel::ncube2();
  PortModel port = PortModel::all_port();
  std::size_t message_bytes = 4096;  ///< the paper's measurement size
  bool record_trace = false;
  /// Optional fault set (caller-owned, must outlive the run). Failed
  /// arcs are never acquirable: a schedule that routes a worm into one
  /// fails the run with std::logic_error — the hard proof that a
  /// repaired schedule really avoids every faulted resource.
  const fault::FaultSet* faults = nullptr;
};

struct SimStats {
  std::uint64_t messages = 0;
  std::uint64_t blocked_acquisitions = 0;  ///< channel waits (0 for
                                           ///< contention-free schedules)
  SimTime total_blocked_ns = 0;
  std::uint64_t events = 0;
};

/// Outcome of simulating one multicast schedule.
struct SimResult {
  /// Per recipient: the time its processor has fully received the
  /// message (tail arrived + receive overhead), relative to t = 0.
  /// A flat single-allocation map — filling it used to dominate small
  /// replays via per-node heap churn (see DeliveryMap).
  DeliveryMap delivery;
  SimStats stats;
  Trace trace;

  SimTime delay(hcube::NodeId node) const { return delivery.at(node); }

  /// Max and mean delay over `targets` (or all recipients when empty) —
  /// the quantities plotted in Figures 11-14.
  SimTime max_delay(std::span<const hcube::NodeId> targets = {}) const;
  double avg_delay(std::span<const hcube::NodeId> targets = {}) const;
};

/// One multicast participating in a shared-network simulation.
struct CollectiveJob {
  const core::MulticastSchedule* schedule = nullptr;
  SimTime start = 0;  ///< when the source's processor begins sending
  /// Per-job message size; 0 inherits SimConfig::message_bytes. Striped
  /// collectives launch n trees each carrying payload/n bytes, so jobs
  /// in one run legitimately differ in size.
  std::size_t message_bytes = 0;
};

/// Outcome of simulating several multicasts over one network.
struct MultiSimResult {
  std::vector<SimResult> per_job;  ///< same order as the job list;
                                   ///< delivery times are absolute
  SimStats stats;                  ///< aggregate across jobs
  Trace trace;                     ///< merged trace (if recorded)
  std::size_t shards = 1;          ///< independent partitions simulated
                                   ///< (1 unless run through the
                                   ///< sharded entry point in shard.hpp)

  /// Completion time of the whole phase: the latest delivery.
  SimTime makespan() const;
};

/// Replay one or more multicast schedules through the wormhole network
/// model, sharing channels, ports and processors:
///
///  * a node's processor serializes software costs (receive overhead,
///    then one send startup per unicast, in issue order) across every
///    job it participates in;
///  * each unicast's worm acquires its injection slot, its E-cube arcs
///    (one header hop of cost per_hop each) and its consumption slot in
///    order, holding everything it has while blocked (FIFO per channel);
///  * once the header reaches the destination, the body streams for
///    body_time(bytes); the tail then releases the whole path at once —
///    a message-level approximation of flit-by-flit tail release that is
///    exact for contention-free schedules and conservative otherwise;
///  * the port model sizes the injection/consumption pools (Section 1's
///    internal channels): this is where one-port serialization and the
///    all-port advantage physically live.
///
/// E-cube dimension ordering keeps channel acquisition acyclic, so the
/// network itself cannot deadlock; a defensive check throws if messages
/// remain undelivered when the event queue drains.
MultiSimResult simulate_collectives(std::span<const CollectiveJob> jobs,
                                    const SimConfig& config);

/// Single-multicast convenience wrapper.
SimResult simulate_multicast(const core::MulticastSchedule& schedule,
                             const SimConfig& config);

/// Single unicast convenience wrapper (tested against
/// CostModel::unicast_latency).
SimTime simulate_unicast(const hcube::Topology& topo, const SimConfig& config,
                         hcube::NodeId from, hcube::NodeId to);

}  // namespace hypercast::sim

#endif  // HYPERCAST_SIM_WORMHOLE_SIM_HPP
