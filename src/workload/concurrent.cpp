#include "workload/concurrent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hypercast::workload {

namespace {

/// Sample an unused node, preferring `tries` rejection-sampling draws
/// from `draw` before falling back to a linear probe (the batch sizes
/// here are far below the cube size, so the fallback is cold).
template <typename DrawFn>
NodeId distinct_node(std::vector<bool>& used, DrawFn&& draw,
                     std::size_t num_nodes) {
  for (int tries = 0; tries < 64; ++tries) {
    const NodeId u = draw();
    if (!used[u]) {
      used[u] = true;
      return u;
    }
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (!used[v]) {
      used[v] = true;
      return static_cast<NodeId>(v);
    }
  }
  throw std::invalid_argument("concurrent workload: more sources than nodes");
}

std::size_t bits_for(std::size_t count) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < count) ++bits;
  return bits;
}

}  // namespace

std::vector<ConcurrentRequest> multi_tenant_mix(const Topology& topo,
                                                std::size_t tenants,
                                                std::size_t per_tenant,
                                                std::size_t dests, Rng& rng) {
  if (tenants == 0 || per_tenant == 0) return {};
  const std::size_t tenant_bits = bits_for(tenants);
  const auto n = static_cast<std::size_t>(topo.dim());
  if (tenant_bits >= n) {
    throw std::invalid_argument("multi_tenant_mix: more tenants than subcubes");
  }
  const std::size_t sub_dim = n - tenant_bits;
  const std::size_t sub_size = std::size_t{1} << sub_dim;

  std::vector<ConcurrentRequest> out;
  out.reserve(tenants * per_tenant);
  std::vector<bool> used(topo.num_nodes(), false);
  for (std::size_t t = 0; t < tenants; ++t) {
    // Tenant t owns the subcube whose high address bits spell t; its
    // sources stay home while its destinations roam the whole cube, so
    // every tenant's trees fight over the inter-subcube channels.
    const NodeId prefix = static_cast<NodeId>(t << sub_dim);
    for (std::size_t j = 0; j < per_tenant; ++j) {
      ConcurrentRequest r;
      r.tenant = static_cast<int>(t);
      r.source = distinct_node(
          used,
          [&] { return static_cast<NodeId>(prefix | (rng() % sub_size)); },
          topo.num_nodes());
      r.destinations = random_destinations(topo, r.source, dests, rng);
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<ConcurrentRequest> bursty_arrivals(const Topology& topo,
                                               std::size_t bursts,
                                               std::size_t per_burst,
                                               std::size_t dests,
                                               std::uint64_t burst_gap_ns,
                                               Rng& rng) {
  std::vector<ConcurrentRequest> out;
  out.reserve(bursts * per_burst);
  std::vector<bool> used(topo.num_nodes(), false);
  for (std::size_t b = 0; b < bursts; ++b) {
    for (std::size_t j = 0; j < per_burst; ++j) {
      ConcurrentRequest r;
      r.tenant = static_cast<int>(b);
      r.arrival_ns = b * burst_gap_ns;
      r.source = distinct_node(
          used, [&] { return static_cast<NodeId>(rng() % topo.num_nodes()); },
          topo.num_nodes());
      r.destinations = random_destinations(topo, r.source, dests, rng);
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<ConcurrentRequest> hot_spot_mix(const Topology& topo,
                                            std::size_t requests,
                                            std::size_t dests,
                                            std::size_t hot_nodes, Rng& rng) {
  if (requests == 0) return {};
  if (dests + 1 > topo.num_nodes()) {
    throw std::invalid_argument("hot_spot_mix: dests must leave room for the source");
  }
  hot_nodes = std::min<std::size_t>(std::max<std::size_t>(hot_nodes, 1),
                                    topo.num_nodes() / 2);
  // The hot region is the subcube of the low `bits_for(hot_nodes)`
  // dimensions around a random centre: every route toward it funnels
  // through the same few high-dimension arcs, which is exactly the
  // convergence an oblivious superposition melts down on.
  const std::size_t hot_dim = bits_for(hot_nodes);
  const auto centre = static_cast<NodeId>(rng() % topo.num_nodes());
  std::vector<NodeId> hot;
  hot.reserve(std::size_t{1} << hot_dim);
  for (std::size_t v = 0; v < (std::size_t{1} << hot_dim); ++v) {
    hot.push_back(static_cast<NodeId>(centre ^ v));
  }

  std::vector<ConcurrentRequest> out;
  out.reserve(requests);
  std::vector<bool> used(topo.num_nodes(), false);
  for (const NodeId h : hot) used[h] = true;  // sources avoid the hot set
  std::vector<bool> in_set(topo.num_nodes(), false);
  for (std::size_t i = 0; i < requests; ++i) {
    ConcurrentRequest r;
    r.source = distinct_node(
        used, [&] { return static_cast<NodeId>(rng() % topo.num_nodes()); },
        topo.num_nodes());
    // ~3/4 of destinations in the hot region, the rest cube-wide.
    std::fill(in_set.begin(), in_set.end(), false);
    in_set[r.source] = true;
    const std::size_t want_hot = std::min(dests - dests / 4, hot.size());
    std::vector<NodeId> pool = hot;
    std::shuffle(pool.begin(), pool.end(), rng);
    for (std::size_t k = 0; k < pool.size() && r.destinations.size() < want_hot;
         ++k) {
      if (in_set[pool[k]]) continue;
      in_set[pool[k]] = true;
      r.destinations.push_back(pool[k]);
    }
    while (r.destinations.size() < dests) {
      const auto u = static_cast<NodeId>(rng() % topo.num_nodes());
      if (in_set[u]) continue;
      in_set[u] = true;
      r.destinations.push_back(u);
    }
    out.push_back(std::move(r));
  }
  return out;
}

void assign_log_uniform_payloads(std::span<ConcurrentRequest> requests,
                                 std::size_t min_bytes,
                                 std::size_t max_bytes, Rng& rng) {
  if (min_bytes < 1 || min_bytes > max_bytes) {
    throw std::invalid_argument(
        "assign_log_uniform_payloads: need 1 <= min_bytes <= max_bytes");
  }
  const double lo = std::log2(static_cast<double>(min_bytes));
  const double hi = std::log2(static_cast<double>(max_bytes));
  for (ConcurrentRequest& r : requests) {
    // 53 uniform mantissa bits -> u in [0, 1); exponentiate so each
    // octave of [min, max] is equally likely.
    const double u =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;
    const double bytes = std::exp2(lo + u * (hi - lo));
    r.payload_bytes = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(bytes)), min_bytes, max_bytes);
  }
}

}  // namespace hypercast::workload
