#ifndef HYPERCAST_WORKLOAD_CONCURRENT_HPP
#define HYPERCAST_WORKLOAD_CONCURRENT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "workload/random_sets.hpp"

namespace hypercast::workload {

/// Batch workloads for concurrent-multicast studies: many simultaneous
/// multicasts from *different* sources sharing one network — the
/// serving-time regime the paper's one-tree-at-a-time analysis (and
/// Theorem 3's common-source bound) says nothing about. Each generator
/// is deterministic in its Rng and emits arrival offsets so the same
/// batch drives both the co-scheduler (collapsed to one admission
/// instant) and arrival-faithful oblivious superposition.
struct ConcurrentRequest {
  NodeId source = 0;
  std::vector<NodeId> destinations;
  std::uint64_t arrival_ns = 0;  ///< offset from the batch epoch
  int tenant = 0;                ///< generator-specific grouping tag
  /// Message payload size; 0 = use the experiment's configured size.
  /// Mixed sizes drive the striping threshold study: requests at or
  /// above ServePipeline's stripe threshold take the n-tree path while
  /// the small ones stay on a single tree.
  std::size_t payload_bytes = 0;
};

/// Multi-tenant mix: `tenants` tenants, each anchored in its own
/// ns-dimensional subcube, issuing `per_tenant` multicasts whose
/// sources live inside the tenant's subcube and whose destinations are
/// sampled cube-wide. Tenants overlap on the shared inter-subcube
/// channels — the cross-traffic a per-request scheduler cannot see.
/// All arrivals are simultaneous (arrival_ns = 0).
std::vector<ConcurrentRequest> multi_tenant_mix(const Topology& topo,
                                                std::size_t tenants,
                                                std::size_t per_tenant,
                                                std::size_t dests, Rng& rng);

/// Bursty arrivals: `bursts` bursts of `per_burst` random-source
/// multicasts, consecutive bursts `burst_gap_ns` apart; requests inside
/// a burst arrive together. tenant = burst index.
std::vector<ConcurrentRequest> bursty_arrivals(const Topology& topo,
                                               std::size_t bursts,
                                               std::size_t per_burst,
                                               std::size_t dests,
                                               std::uint64_t burst_gap_ns,
                                               Rng& rng);

/// Hot-spot destinations: every multicast's destination set is drawn
/// mostly from one small hot region of the cube (plus a sprinkle of
/// background nodes), so the arcs converging on the region saturate
/// first — the adversarial case for oblivious superposition. Sources
/// are distinct and outside the hot region when possible. All arrivals
/// simultaneous.
std::vector<ConcurrentRequest> hot_spot_mix(const Topology& topo,
                                            std::size_t requests,
                                            std::size_t dests,
                                            std::size_t hot_nodes, Rng& rng);

/// Assign each request a payload size drawn log-uniformly from
/// [min_bytes, max_bytes] — the classic heavy-mix model where most
/// messages are small but most *bytes* ride the large ones, which is
/// the regime that makes a striping threshold worth tuning. min_bytes
/// must be >= 1 and <= max_bytes. Deterministic in the Rng.
void assign_log_uniform_payloads(std::span<ConcurrentRequest> requests,
                                 std::size_t min_bytes,
                                 std::size_t max_bytes, Rng& rng);

}  // namespace hypercast::workload

#endif  // HYPERCAST_WORKLOAD_CONCURRENT_HPP
