#include "workload/patterns.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "hcube/bits.hpp"

namespace hypercast::workload {

std::vector<NodeId> broadcast_destinations(const Topology& topo,
                                           NodeId source) {
  std::vector<NodeId> out;
  out.reserve(topo.num_nodes() - 1);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    if (u != source) out.push_back(u);
  }
  return out;
}

std::vector<NodeId> subcube_destinations(const Topology& topo, NodeId source,
                                         hcube::Dim ns, std::size_t m,
                                         Rng& rng) {
  assert(ns >= 0 && ns <= topo.dim());
  const auto cubes = hcube::all_subcubes(topo, ns);
  // Prefer a subcube not containing the source so every member is a
  // legal destination; fall back to the source's own subcube (and skip
  // the source) when the subcube is the whole cube.
  std::vector<hcube::Subcube> eligible;
  for (const auto& s : cubes) {
    if (!s.contains(topo, source)) eligible.push_back(s);
  }
  const hcube::Subcube chosen = [&] {
    if (eligible.empty()) return cubes.front();
    std::uniform_int_distribution<std::size_t> dist(0, eligible.size() - 1);
    return eligible[dist(rng)];
  }();

  auto members = hcube::subcube_members(topo, chosen);
  std::erase(members, source);
  assert(m <= members.size());
  std::shuffle(members.begin(), members.end(), rng);
  members.resize(m);
  return members;
}

std::vector<NodeId> clustered_destinations(const Topology& topo, NodeId source,
                                           std::size_t k, int radius,
                                           std::size_t m, Rng& rng) {
  assert(k >= 1 && radius >= 0);
  std::uniform_int_distribution<NodeId> node_dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  std::vector<NodeId> centres;
  centres.reserve(k);
  for (std::size_t i = 0; i < k; ++i) centres.push_back(node_dist(rng));

  std::uniform_int_distribution<std::size_t> centre_dist(0, k - 1);
  std::uniform_int_distribution<int> flips_dist(0, radius);
  std::uniform_int_distribution<int> dim_dist(0, topo.dim() - 1);

  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> out;
  out.reserve(m);
  // Rejection sampling; the loop bound protects against degenerate
  // parameter choices (e.g. m larger than the union of the balls).
  std::size_t attempts = 0;
  const std::size_t max_attempts = 1000 * (m + 1) + topo.num_nodes();
  while (out.size() < m && attempts++ < max_attempts) {
    NodeId u = centres[centre_dist(rng)];
    const int flips = flips_dist(rng);
    for (int f = 0; f < flips; ++f) {
      u = topo.neighbor(u, dim_dist(rng));
    }
    if (u == source || !chosen.insert(u).second) continue;
    out.push_back(u);
  }
  // Top up uniformly if the clusters could not supply m distinct nodes.
  while (out.size() < m) {
    const NodeId u = node_dist(rng);
    if (u == source || !chosen.insert(u).second) continue;
    out.push_back(u);
  }
  return out;
}

std::vector<NodeId> sphere_destinations(const Topology& topo, NodeId source,
                                        int d) {
  assert(d >= 1 && d <= topo.dim());
  std::vector<NodeId> out;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    if (hcube::hamming(u, source) == d) out.push_back(u);
  }
  return out;
}

}  // namespace hypercast::workload
