#ifndef HYPERCAST_WORKLOAD_PATTERNS_HPP
#define HYPERCAST_WORKLOAD_PATTERNS_HPP

#include <vector>

#include "hcube/subcube.hpp"
#include "workload/random_sets.hpp"

namespace hypercast::workload {

/// Structured destination patterns beyond Section 5's uniform-random
/// sets. These stress different corners of the algorithms (dense
/// subcubes reward W-sort's crowding heuristic; scattered singletons
/// reward Maxport's channel spreading) and feed the extra ablations.

/// Every node except the source: broadcast (the rightmost point of
/// Figures 9-12).
std::vector<NodeId> broadcast_destinations(const Topology& topo, NodeId source);

/// All destinations confined to one ns-dimensional subcube (chosen at
/// random among those not containing the source when possible); m
/// destinations sampled inside it.
std::vector<NodeId> subcube_destinations(const Topology& topo, NodeId source,
                                         hcube::Dim ns, std::size_t m,
                                         Rng& rng);

/// Clustered pattern: k cluster centres chosen uniformly, destinations
/// sampled within Hamming distance `radius` of a centre. Models the
/// locality of data-parallel neighbourhoods.
std::vector<NodeId> clustered_destinations(const Topology& topo, NodeId source,
                                           std::size_t k, int radius,
                                           std::size_t m, Rng& rng);

/// Every node at exactly Hamming distance d from the source (a "sphere";
/// adversarial for channel reuse since many routes share early arcs).
std::vector<NodeId> sphere_destinations(const Topology& topo, NodeId source,
                                        int d);

}  // namespace hypercast::workload

#endif  // HYPERCAST_WORKLOAD_PATTERNS_HPP
