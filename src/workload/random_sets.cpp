#include "workload/random_sets.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace hypercast::workload {

std::vector<NodeId> random_destinations(const Topology& topo, NodeId source,
                                        std::size_t m, Rng& rng) {
  const std::size_t n_nodes = topo.num_nodes();
  assert(topo.contains(source));
  assert(m <= n_nodes - 1 && "more destinations than non-source nodes");

  // Floyd's sampling over the N-1 candidates (all nodes except the
  // source). Candidate index c in [0, N-2] maps to node c, skipping the
  // source by shifting indices at and above it up by one.
  const auto candidate = [&](std::uint64_t c) -> NodeId {
    return static_cast<NodeId>(c >= source ? c + 1 : c);
  };

  const std::uint64_t pool = static_cast<std::uint64_t>(n_nodes) - 1;
  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> out;
  out.reserve(m);
  for (std::uint64_t j = pool - m; j < pool; ++j) {
    std::uniform_int_distribution<std::uint64_t> dist(0, j);
    const NodeId t = candidate(dist(rng));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      const NodeId u = candidate(j);
      chosen.insert(u);
      out.push_back(u);
    }
  }
  // Shuffle so the insertion bias of Floyd's algorithm never leaks into
  // order-sensitive consumers.
  std::shuffle(out.begin(), out.end(), rng);
  return out;
}

std::uint64_t derive_seed(std::uint64_t experiment_seed, std::uint64_t m,
                          std::uint64_t trial) {
  // SplitMix64-style mixing: cheap, well-distributed, endian-free.
  std::uint64_t z = experiment_seed + 0x9E3779B97F4A7C15ull * (m * 1'000'003ull + trial + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace hypercast::workload
