#ifndef HYPERCAST_WORKLOAD_RANDOM_SETS_HPP
#define HYPERCAST_WORKLOAD_RANDOM_SETS_HPP

#include <random>
#include <vector>

#include "hcube/topology.hpp"

namespace hypercast::workload {

using hcube::NodeId;
using hcube::Topology;

/// Deterministic RNG for workload generation. All experiments seed
/// explicitly so every figure is exactly reproducible.
using Rng = std::mt19937_64;

/// Section 5's workload: m destinations "randomly distributed throughout
/// the hypercube", distinct, excluding the source. Sampled with Floyd's
/// algorithm — O(m) memory regardless of cube size. The returned order
/// is randomized (algorithms sort internally anyway).
/// Precondition: m <= N - 1.
std::vector<NodeId> random_destinations(const Topology& topo, NodeId source,
                                        std::size_t m, Rng& rng);

/// A deterministic per-point seed derived from an experiment-level seed
/// and the sweep coordinates, so points are independent of sweep order.
std::uint64_t derive_seed(std::uint64_t experiment_seed, std::uint64_t m,
                          std::uint64_t trial);

}  // namespace hypercast::workload

#endif  // HYPERCAST_WORKLOAD_RANDOM_SETS_HPP
