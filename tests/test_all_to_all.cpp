#include "coll/all_to_all.hpp"

#include <gtest/gtest.h>

namespace hypercast::coll {
namespace {

using hcube::Topology;

TEST(AllToAll, MatchesTheClosedForm) {
  for (const hcube::Dim n : {1, 2, 4, 6}) {
    const Topology topo(n);
    const AllToAllConfig config;
    const auto result = simulate_all_to_all(topo, config);
    EXPECT_EQ(result.completion, all_to_all_latency(topo, config)) << n;
  }
}

TEST(AllToAll, DimensionExchangeIsContentionFree) {
  for (const auto res :
       {hcube::Resolution::HighToLow, hcube::Resolution::LowToHigh}) {
    const Topology topo(5, res);
    const auto result = simulate_all_to_all(topo, AllToAllConfig{});
    EXPECT_EQ(result.stats.blocked_acquisitions, 0u);
  }
}

TEST(AllToAll, EveryNodeFinishesSimultaneously) {
  const Topology topo(4);
  const auto result = simulate_all_to_all(topo, AllToAllConfig{});
  ASSERT_EQ(result.finish.size(), topo.num_nodes());
  for (const auto& [node, t] : result.finish) {
    EXPECT_EQ(t, result.completion) << "node " << node;
  }
}

TEST(AllToAll, MessageCountIsNRounds) {
  const Topology topo(5);
  const auto result = simulate_all_to_all(topo, AllToAllConfig{});
  EXPECT_EQ(result.stats.messages, topo.num_nodes() * 5);
}

TEST(AllToAll, BlockSizeScalesRoundCost) {
  const Topology topo(4);
  AllToAllConfig small;
  small.block_bytes = 256;
  AllToAllConfig large;
  large.block_bytes = 4096;
  const auto a = simulate_all_to_all(topo, small);
  const auto b = simulate_all_to_all(topo, large);
  EXPECT_EQ(b.completion - a.completion,
            4 * small.cost.body_time((16 / 2) * (4096 - 256)));
}

TEST(AllToAll, TrivialCubes) {
  const Topology topo0(0);
  const auto r0 = simulate_all_to_all(topo0, AllToAllConfig{});
  EXPECT_EQ(r0.completion, 0);
  const Topology topo1(1);
  const AllToAllConfig config;
  const auto r1 = simulate_all_to_all(topo1, config);
  // One round, one block each way.
  EXPECT_EQ(r1.completion,
            config.cost.send_startup + config.cost.per_hop +
                config.cost.body_time(config.block_bytes) +
                config.cost.recv_overhead);
}

TEST(AllToAll, TraceRecordsEveryExchange) {
  const Topology topo(3);
  AllToAllConfig config;
  config.record_trace = true;
  const auto result = simulate_all_to_all(topo, config);
  EXPECT_EQ(result.trace.messages.size(), 8u * 3u);
  for (const auto& m : result.trace.messages) {
    EXPECT_TRUE(topo.adjacent(m.from, m.to));
    EXPECT_EQ(m.blocked_ns, 0);
  }
}

}  // namespace
}  // namespace hypercast::coll
