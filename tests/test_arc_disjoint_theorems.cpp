// Property tests for the arc-disjointness theorems of Section 3.3,
// checked against the brute-force arc-set predicate.

#include <gtest/gtest.h>

#include <random>

#include "hcube/chain.hpp"
#include "hcube/ecube.hpp"
#include "hcube/subcube.hpp"

namespace hypercast::hcube {
namespace {

class TheoremProperty
    : public ::testing::TestWithParam<std::tuple<Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

/// Theorem 1: paths leaving a common source on different channels are
/// arc-disjoint.
TEST_P(TheoremProperty, TheoremOne) {
  const Topology topo = this->topo();
  std::mt19937 rng(43);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  int applicable = 0;
  for (int i = 0; i < 2000 && applicable < 400; ++i) {
    const NodeId x = dist(rng);
    const NodeId y = dist(rng);
    const NodeId v = dist(rng);
    if (x == y || x == v) continue;
    if (delta_distinct(topo, x, y) == delta_distinct(topo, x, v)) continue;
    ++applicable;
    EXPECT_TRUE(arc_disjoint(topo, x, y, x, v))
        << topo.format(x) << "->" << topo.format(y) << " vs "
        << topo.format(x) << "->" << topo.format(v);
  }
  EXPECT_GT(applicable, 0);
}

/// Theorem 2: a path with both endpoints inside subcube S is
/// arc-disjoint from any path with both endpoints outside S.
TEST_P(TheoremProperty, TheoremTwo) {
  const Topology topo = this->topo();
  const Dim n = topo.dim();
  if (n < 2) GTEST_SKIP() << "needs at least a 2-cube";
  std::mt19937 rng(47);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  std::uniform_int_distribution<Dim> ns_dist(0, n);
  int applicable = 0;
  for (int i = 0; i < 4000 && applicable < 400; ++i) {
    const Dim ns = ns_dist(rng);
    std::uniform_int_distribution<std::uint32_t> mask_dist(
        0, (1u << (n - ns)) - 1);
    const Subcube s{ns, mask_dist(rng)};
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const NodeId x = dist(rng);
    const NodeId y = dist(rng);
    if (u == v || x == y) continue;
    if (!s.contains(topo, u) || !s.contains(topo, v)) continue;
    if (s.contains(topo, x) || s.contains(topo, y)) continue;
    ++applicable;
    EXPECT_TRUE(arc_disjoint(topo, u, v, x, y));
  }
  EXPECT_GT(applicable, 0);
}

/// Theorem 2 corollary used throughout Section 4: traffic within one
/// half of the cube never contends with traffic within the other half.
TEST_P(TheoremProperty, HalfCubeSeparation) {
  const Topology topo = this->topo();
  const Dim n = topo.dim();
  if (n < 2) GTEST_SKIP();
  const Subcube lower = whole_cube(topo).lower_half();
  std::mt19937 rng(53);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  int applicable = 0;
  for (int i = 0; i < 2000 && applicable < 300; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const NodeId x = dist(rng);
    const NodeId y = dist(rng);
    if (u == v || x == y) continue;
    if (!lower.contains(topo, u) || !lower.contains(topo, v)) continue;
    if (lower.contains(topo, x) || lower.contains(topo, y)) continue;
    ++applicable;
    EXPECT_TRUE(arc_disjoint(topo, u, v, x, y));
  }
}

/// The E-cube path between two subcube members stays inside the subcube
/// (the containment that makes Theorem 2 work).
TEST_P(TheoremProperty, EcubePathStaysInsideSubcube) {
  const Topology topo = this->topo();
  const Dim n = topo.dim();
  std::mt19937 rng(59);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  std::uniform_int_distribution<Dim> ns_dist(0, n);
  for (int i = 0; i < 1000; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const Subcube s = smallest_common_subcube(topo, u, v);
    for (const NodeId w : ecube_path(topo, u, v)) {
      EXPECT_TRUE(s.contains(topo, w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, TheoremProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

}  // namespace
}  // namespace hypercast::hcube
