// Tests for the two baseline schemes: separate addressing and the
// store-and-forward relay tree.

#include <gtest/gtest.h>

#include "core/separate.hpp"
#include "core/sf_tree.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

TEST(SeparateAddressing, OneUnicastPerDestination) {
  const Topology topo(5);
  workload::Rng rng(601);
  const auto req = random_request(topo, 12, rng);
  const auto s = separate_addressing(req);
  EXPECT_TRUE(covers_exactly(s, req));
  EXPECT_EQ(s.num_unicasts(), req.destinations.size());
  // Every unicast originates at the source.
  for (const Unicast& u : s.unicasts()) {
    EXPECT_EQ(u.from, req.source);
  }
}

TEST(SeparateAddressing, OnePortStepsEqualDestinationCount) {
  const Topology topo(5);
  workload::Rng rng(607);
  const auto req = random_request(topo, 9, rng);
  const auto steps = assign_steps(separate_addressing(req),
                                  PortModel::one_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 9);
}

TEST(SeparateAddressing, AllPortStepsBoundedByChannelLoad) {
  // On all-port, the steps equal the maximum number of destinations
  // sharing one initial channel.
  const Topology topo(4);
  const MulticastRequest req{topo, 0, {8, 9, 10, 4, 2}};
  // delta: 8,9,10 -> channel 3; 4 -> 2; 2 -> 1. Max load 3.
  const auto steps = assign_steps(separate_addressing(req),
                                  PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 3);
}

TEST(SeparateAddressing, EmptyAndSingle) {
  const Topology topo(3);
  EXPECT_EQ(separate_addressing(MulticastRequest{topo, 1, {}}).num_unicasts(),
            0u);
  EXPECT_EQ(separate_addressing(MulticastRequest{topo, 1, {6}}).num_unicasts(),
            1u);
}

class SfTreeProperty
    : public ::testing::TestWithParam<std::tuple<hcube::Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(SfTreeProperty, CoversAllDestinations) {
  const Topology topo = this->topo();
  workload::Rng rng(611);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    EXPECT_TRUE(covers_at_least(sf_tree(req), req));
  }
}

TEST_P(SfTreeProperty, EveryHopIsOneChannel) {
  // Store-and-forward: the message never rides through a router; every
  // unicast is between neighbours.
  const Topology topo = this->topo();
  workload::Rng rng(613);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    for (const Unicast& u : sf_tree(req).unicasts()) {
      EXPECT_EQ(topo.distance(u.from, u.to), 1);
    }
  }
}

TEST_P(SfTreeProperty, DepthBoundedByDimension) {
  const Topology topo = this->topo();
  workload::Rng rng(617);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    const auto steps = assign_steps(sf_tree(req), PortModel::one_port(),
                                    req.destinations);
    // The relay tree corrects one dimension per level; with one-port
    // serialization a node sends at most n messages, so total steps are
    // bounded by 2n for any destination set on these sizes.
    EXPECT_LE(steps.total_steps, 2 * topo.dim());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, SfTreeProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(SfTree, RelaysOnlyWhenNeeded) {
  // A destination adjacent to the source needs no relay.
  const Topology topo(4);
  const MulticastRequest req{topo, 0, {1}};
  const auto s = sf_tree(req);
  EXPECT_TRUE(s.relay_processors(req.destinations).empty());
  EXPECT_EQ(s.num_unicasts(), 1u);
}

TEST(SfTree, DistantSingletonUsesRelays) {
  // One destination at distance 4: three relay processors en route.
  const Topology topo(4);
  const MulticastRequest req{topo, 0b0000, {0b1111}};
  const auto s = sf_tree(req);
  EXPECT_TRUE(covers_at_least(s, req));
  EXPECT_EQ(s.relay_processors(req.destinations).size(), 3u);
  EXPECT_EQ(s.num_unicasts(), 4u);
}

TEST(SfTree, BroadcastIsTheBinomialTree) {
  const Topology topo(4);
  std::vector<NodeId> dests;
  for (NodeId u = 1; u < 16; ++u) dests.push_back(u);
  const MulticastRequest req{topo, 0, dests};
  const auto s = sf_tree(req);
  EXPECT_TRUE(covers_exactly(s, req));  // broadcast: no extra relays
  EXPECT_EQ(s.num_unicasts(), 15u);
  const auto steps =
      assign_steps(s, PortModel::one_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 4);
}

}  // namespace
}  // namespace hypercast::core
