#include "harness/bench.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "metrics/json.hpp"

namespace hypercast::bench {
namespace {

// ---- minimal JSON syntax validator (tests only) --------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RunOptions smoke_options(const std::string& out_dir) {
  RunOptions opts;
  opts.filter = "smoke";
  opts.quick = true;
  opts.out_dir = out_dir;
  opts.verbose = false;
  return opts;
}

// ---- JsonWriter ----------------------------------------------------------

TEST(JsonWriter, WritesNestedStructures) {
  metrics::JsonWriter w;
  w.begin_object()
      .key("name")
      .value("fig")
      .key("xs")
      .begin_array()
      .value(1.0)
      .value(2.5)
      .end_array()
      .key("ok")
      .value(true)
      .key("nothing")
      .null()
      .end_object();
  const std::string doc = std::move(w).str();
  EXPECT_EQ(doc, "{\"name\":\"fig\",\"xs\":[1,2.5],\"ok\":true,"
                 "\"nothing\":null}");
  EXPECT_TRUE(JsonChecker(doc).valid());
}

TEST(JsonWriter, EscapesStrings) {
  metrics::JsonWriter w;
  w.begin_object().key("s").value("a\"b\\c\nd\te").end_object();
  const std::string doc = std::move(w).str();
  EXPECT_EQ(doc, "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
  EXPECT_TRUE(JsonChecker(doc).valid());
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  metrics::JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(std::move(w).str(), "[null,null]");
}

// ---- registry and filters ------------------------------------------------

TEST(BenchRegistry, SmokeBenchmarkIsRegistered) {
  bool found = false;
  for (const Benchmark* b : all_benchmarks()) {
    if (b->name == "smoke") {
      found = true;
      EXPECT_EQ(b->kind, Kind::Micro);
      EXPECT_NE(b->fn, nullptr);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchRegistry, FilterMatchesNameSubstringAndKind) {
  const Benchmark b{"fig09_steps_6cube", Kind::Figure, "", nullptr};
  EXPECT_TRUE(matches(b, ""));
  EXPECT_TRUE(matches(b, "fig09"));
  EXPECT_TRUE(matches(b, "steps"));
  EXPECT_TRUE(matches(b, "figure"));
  EXPECT_FALSE(matches(b, "micro"));
  EXPECT_FALSE(matches(b, "fig10"));
}

// ---- golden schema -------------------------------------------------------

TEST(BenchRunner, SmokeEmitsValidSchema) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "hypercast_bench_schema";
  std::filesystem::remove_all(dir);

  const auto records = run_benchmarks(smoke_options(dir.string()));
  ASSERT_EQ(records.size(), 1u);
  ASSERT_FALSE(records[0].json_path.empty());
  ASSERT_TRUE(std::filesystem::exists(records[0].json_path));

  const std::string on_disk = slurp(records[0].json_path);
  EXPECT_EQ(on_disk, records[0].json + "\n");
  EXPECT_TRUE(JsonChecker(records[0].json).valid());

  // Required schema keys, in document order.
  const char* keys[] = {"\"schema\":\"hypercast-bench-v1\"",
                        "\"name\":\"smoke\"",
                        "\"kind\":\"micro\"",
                        "\"description\":",
                        "\"config\":",
                        "\"wall_seconds\":[",
                        "\"metrics\":{",
                        "\"series\":[",
                        "\"machine\":{"};
  std::size_t at = 0;
  for (const char* key : keys) {
    const std::size_t found = records[0].json.find(key, at);
    EXPECT_NE(found, std::string::npos) << "missing " << key;
    at = found;
  }
  ASSERT_EQ(records[0].wall_seconds.size(), 1u);
  EXPECT_GT(records[0].wall_seconds[0], 0.0);
  std::filesystem::remove_all(dir);
}

TEST(BenchRunner, SmokeSeriesAreDeterministic) {
  // Sweep results (everything between "series" and "machine") must be
  // identical across runs — only timing metrics may differ.
  const auto run_once = [] {
    RunOptions opts = smoke_options("");
    const auto records = run_benchmarks(opts);
    const std::string& json = records.at(0).json;
    const std::size_t begin = json.find("\"series\":");
    const std::size_t end = json.find("\"machine\":");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return json.substr(begin, end - begin);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(BenchRunner, RejectsZeroRepeat) {
  RunOptions opts = smoke_options("");
  opts.repeat = 0;
  EXPECT_THROW(run_benchmarks(opts), std::invalid_argument);
}

// ---- parallel sweeps -----------------------------------------------------

TEST(ParallelSweep, StepSweepIsThreadCountInvariant) {
  harness::StepSweepConfig config;
  config.n = 4;
  config.sizes = {3, 7, 15};
  config.sets_per_point = 6;
  const auto serial = harness::run_step_sweep(config);
  config.threads = 4;
  const auto parallel = harness::run_step_sweep(config);

  ASSERT_EQ(serial.curves().size(), parallel.curves().size());
  for (std::size_t c = 0; c < serial.curves().size(); ++c) {
    const auto& sc = serial.curves()[c];
    const auto& pc = parallel.curves()[c];
    EXPECT_EQ(sc.name, pc.name);
    ASSERT_EQ(sc.points.size(), pc.points.size());
    for (std::size_t p = 0; p < sc.points.size(); ++p) {
      EXPECT_EQ(sc.points[p].x, pc.points[p].x);
      EXPECT_EQ(sc.points[p].stats.count(), pc.points[p].stats.count());
      EXPECT_DOUBLE_EQ(sc.points[p].stats.mean(), pc.points[p].stats.mean());
    }
  }
}

TEST(ParallelSweep, DelaySweepIsThreadCountInvariant) {
  harness::DelaySweepConfig config;
  config.n = 4;
  config.sizes = {5, 15};
  config.sets_per_point = 3;
  const auto serial = harness::run_delay_sweep(config);
  config.threads = 3;
  const auto parallel = harness::run_delay_sweep(config);

  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_GT(serial.events, 0u);
  EXPECT_EQ(serial.blocked_acquisitions, parallel.blocked_acquisitions);
  ASSERT_EQ(serial.avg.curves().size(), parallel.avg.curves().size());
  for (std::size_t c = 0; c < serial.avg.curves().size(); ++c) {
    const auto& sc = serial.avg.curves()[c];
    const auto& pc = parallel.avg.curves()[c];
    ASSERT_EQ(sc.points.size(), pc.points.size());
    for (std::size_t p = 0; p < sc.points.size(); ++p) {
      EXPECT_DOUBLE_EQ(sc.points[p].stats.mean(), pc.points[p].stats.mean());
    }
  }
}

}  // namespace
}  // namespace hypercast::bench
