#include "hcube/bits.hpp"

#include <gtest/gtest.h>

#include <random>

namespace hypercast::hcube {
namespace {

TEST(Bits, PopcountBasics) {
  EXPECT_EQ(popcount(0u), 0);
  EXPECT_EQ(popcount(1u), 1);
  EXPECT_EQ(popcount(0b1011u), 3);
  EXPECT_EQ(popcount(0xFFFFFFFFu), 32);
}

TEST(Bits, HammingIsPopcountOfXor) {
  EXPECT_EQ(hamming(0b0101, 0b1110), 3);
  EXPECT_EQ(hamming(7, 7), 0);
  EXPECT_EQ(hamming(0, 0b1111), 4);
}

TEST(Bits, HighestAndLowestBit) {
  EXPECT_EQ(highest_bit(1u), 0);
  EXPECT_EQ(highest_bit(0b1000u), 3);
  EXPECT_EQ(highest_bit(0b1010u), 3);
  EXPECT_EQ(lowest_bit(0b1010u), 1);
  EXPECT_EQ(lowest_bit(0b1000u), 3);
  EXPECT_EQ(lowest_bit(1u), 0);
}

TEST(Bits, TestBit) {
  EXPECT_TRUE(test_bit(0b0100u, 2));
  EXPECT_FALSE(test_bit(0b0100u, 1));
  EXPECT_FALSE(test_bit(0u, 0));
}

TEST(Bits, BitReverseSmallCases) {
  EXPECT_EQ(bit_reverse(0b001u, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110u, 3), 0b011u);
  EXPECT_EQ(bit_reverse(0b1011u, 4), 0b1101u);
  EXPECT_EQ(bit_reverse(0u, 8), 0u);
}

TEST(Bits, BitReverseIsInvolution) {
  std::mt19937 rng(7);
  for (int n = 1; n <= 20; ++n) {
    std::uniform_int_distribution<std::uint32_t> dist(0, (1u << n) - 1);
    for (int i = 0; i < 200; ++i) {
      const std::uint32_t v = dist(rng);
      EXPECT_EQ(bit_reverse(bit_reverse(v, n), n), v);
    }
  }
}

TEST(Bits, BitReversePreservesPopcount) {
  std::mt19937 rng(9);
  for (int n = 1; n <= 20; ++n) {
    std::uniform_int_distribution<std::uint32_t> dist(0, (1u << n) - 1);
    for (int i = 0; i < 100; ++i) {
      const std::uint32_t v = dist(rng);
      EXPECT_EQ(popcount(bit_reverse(v, n)), popcount(v));
    }
  }
}

TEST(Bits, BitReverseMapsHighestToLowest) {
  std::mt19937 rng(11);
  for (int n = 2; n <= 20; ++n) {
    std::uniform_int_distribution<std::uint32_t> dist(1, (1u << n) - 1);
    for (int i = 0; i < 100; ++i) {
      const std::uint32_t v = dist(rng);
      EXPECT_EQ(highest_bit(bit_reverse(v, n)), n - 1 - lowest_bit(v));
      EXPECT_EQ(lowest_bit(bit_reverse(v, n)), n - 1 - highest_bit(v));
    }
  }
}

}  // namespace
}  // namespace hypercast::hcube
