#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/registry.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

TEST(Bounds, OnePortLowerBound) {
  EXPECT_EQ(one_port_step_lower_bound(0), 0);
  EXPECT_EQ(one_port_step_lower_bound(1), 1);
  EXPECT_EQ(one_port_step_lower_bound(2), 2);
  EXPECT_EQ(one_port_step_lower_bound(3), 2);
  EXPECT_EQ(one_port_step_lower_bound(4), 3);
  EXPECT_EQ(one_port_step_lower_bound(7), 3);
  EXPECT_EQ(one_port_step_lower_bound(8), 4);
  EXPECT_EQ(one_port_step_lower_bound(1023), 10);
}

TEST(Bounds, AllPortLowerBound) {
  // n = 1 degenerates to the one-port bound.
  for (const std::size_t m : {0u, 1u, 5u, 31u}) {
    EXPECT_EQ(all_port_step_lower_bound(m, 1), one_port_step_lower_bound(m));
  }
  // n = 3: informed nodes quadruple per step.
  EXPECT_EQ(all_port_step_lower_bound(3, 3), 1);
  EXPECT_EQ(all_port_step_lower_bound(4, 3), 2);
  EXPECT_EQ(all_port_step_lower_bound(15, 3), 2);
  EXPECT_EQ(all_port_step_lower_bound(16, 3), 3);
  // 10-cube broadcast: ceil(log_11(1024)) = 3.
  EXPECT_EQ(all_port_step_lower_bound(1023, 10), 3);
}

TEST(Bounds, AllAlgorithmsRespectTheAllPortBound) {
  const Topology topo(6);
  workload::Rng rng(1103);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 1 + rng() % 63;
    const auto req = random_request(topo, m, rng);
    for (const auto& algo : paper_algorithms()) {
      const int steps = assign_steps(algo.build(req), PortModel::all_port(),
                                     req.destinations)
                            .total_steps;
      EXPECT_GE(steps, all_port_step_lower_bound(m, 6))
          << algo.name << " m=" << m;
      EXPECT_LE(steps, static_cast<int>(m)) << algo.name;
    }
  }
}

TEST(Registry, PaperAlgorithmsInCurveOrder) {
  const auto algos = paper_algorithms();
  ASSERT_EQ(algos.size(), 4u);
  EXPECT_EQ(algos[0].name, "ucube");
  EXPECT_EQ(algos[1].name, "maxport");
  EXPECT_EQ(algos[2].name, "combine");
  EXPECT_EQ(algos[3].name, "wsort");
  EXPECT_EQ(algos[3].display, "W-sort");
}

TEST(Registry, AllAlgorithmsIncludeBaselines) {
  const auto algos = all_algorithms();
  ASSERT_EQ(algos.size(), 6u);
  EXPECT_EQ(algos[4].name, "separate");
  EXPECT_EQ(algos[5].name, "sftree");
}

TEST(Registry, FindByNameAndUnknownThrows) {
  EXPECT_EQ(find_algorithm("wsort").display, "W-sort");
  EXPECT_EQ(find_algorithm("sftree").display, "SF-tree");
  EXPECT_THROW(find_algorithm("nope"), std::invalid_argument);
}

TEST(Registry, EveryEntryBuildsAWorkingSchedule) {
  const Topology topo(5);
  workload::Rng rng(1109);
  const auto req = random_request(topo, 10, rng);
  for (const auto& algo : all_algorithms()) {
    const auto s = algo.build(req);
    EXPECT_NO_THROW(s.validate()) << algo.name;
    EXPECT_TRUE(s.covers(req.destinations)) << algo.name;
  }
}

}  // namespace
}  // namespace hypercast::core
