#include "hcube/chain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "workload/random_sets.hpp"

namespace hypercast::hcube {
namespace {

TEST(Chain, DimensionOrderExamplesFromSection41) {
  // High-to-low resolution: dimension order == numeric order.
  // "dimension ordering of 10100, 00110, and 10010 results in the chain:
  //  00110, 10010, 10100."
  const Topology high(5, Resolution::HighToLow);
  std::vector<NodeId> nodes{0b10100, 0b00110, 0b10010};
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return dimension_order_less(high, a, b);
  });
  EXPECT_EQ(nodes, (std::vector<NodeId>{0b00110, 0b10010, 0b10100}));

  // Low-to-high resolution: "a dimension-ordered chain is:
  //  10100, 10010, 00110."
  const Topology low(5, Resolution::LowToHigh);
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return dimension_order_less(low, a, b);
  });
  EXPECT_EQ(nodes, (std::vector<NodeId>{0b10100, 0b10010, 0b00110}));
}

TEST(Chain, RelativeKeyIsXorOfKeys) {
  const Topology topo(4, Resolution::HighToLow);
  EXPECT_EQ(relative_key(topo, 0b0100, 0b0001), 0b0101u);
  EXPECT_EQ(relative_key(topo, 0b0100, 0b0100), 0u);
  const Topology low(4, Resolution::LowToHigh);
  EXPECT_EQ(relative_key(low, 0b0100, 0b0001),
            bit_reverse(0b0100, 4) ^ bit_reverse(0b0001, 4));
}

TEST(Chain, MakeRelativeChainMatchesFigure5) {
  // Source 0100, destinations {0001, 0011, 0101, 0111, 1000, 1010,
  // 1011, 1111}; relative keys sort to {1,3,5,7,11,12,14,15}, i.e. the
  // paper's chain PHI = {0000, 0001, 0011, 0101, 0111, 1011, 1100,
  // 1110, 1111} in relative terms.
  const Topology topo(4, Resolution::HighToLow);
  const std::vector<NodeId> dests{0b0001, 0b0011, 0b0101, 0b0111,
                                  0b1000, 0b1010, 0b1011, 0b1111};
  const auto chain = make_relative_chain(topo, 0b0100, dests);
  const std::vector<NodeId> expected{0b0100, 0b0101, 0b0111, 0b0001, 0b0011,
                                     0b1111, 0b1000, 0b1010, 0b1011};
  EXPECT_EQ(chain, expected);
  std::vector<std::uint32_t> rel;
  for (const NodeId u : chain) rel.push_back(relative_key(topo, 0b0100, u));
  EXPECT_EQ(rel, (std::vector<std::uint32_t>{0, 1, 3, 5, 7, 11, 12, 14, 15}));
}

TEST(Chain, MakeRelativeChainIsDimensionOrdered) {
  std::mt19937_64 rng(13);
  for (const Resolution res : {Resolution::HighToLow, Resolution::LowToHigh}) {
    const Topology topo(6, res);
    workload::Rng wrng(99);
    for (int trial = 0; trial < 50; ++trial) {
      const NodeId source = static_cast<NodeId>(rng() % topo.num_nodes());
      const auto dests =
          workload::random_destinations(topo, source, 20, wrng);
      const auto chain = make_relative_chain(topo, source, dests);
      EXPECT_EQ(chain.size(), dests.size() + 1);
      EXPECT_EQ(chain.front(), source);
      EXPECT_TRUE(is_relative_dimension_ordered(topo, chain));
    }
  }
}

/// Theorem 4: every dimension-ordered chain is cube-ordered.
TEST(Chain, TheoremFourDimensionOrderedImpliesCubeOrdered) {
  std::mt19937_64 rng(17);
  for (const Resolution res : {Resolution::HighToLow, Resolution::LowToHigh}) {
    for (const Dim n : {3, 5, 7}) {
      const Topology topo(n, res);
      workload::Rng wrng(1234);
      for (int trial = 0; trial < 30; ++trial) {
        const NodeId source = static_cast<NodeId>(rng() % topo.num_nodes());
        const std::size_t m =
            1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 20);
        const auto dests = workload::random_destinations(topo, source, m, wrng);
        const auto chain = make_relative_chain(topo, source, dests);
        EXPECT_TRUE(is_cube_ordered(topo, chain));
        EXPECT_TRUE(is_cube_ordered_reference(topo, chain));
      }
    }
  }
}

TEST(Chain, CubeOrderDetectsViolations) {
  const Topology topo(3, Resolution::HighToLow);
  // {0, 1, 4, 3}: subcube (2, 0) = {0,1,2,3} holds positions 0, 1 and 3
  // with position 2 (node 4) outside — not contiguous.
  const std::vector<NodeId> bad{0, 1, 4, 3};
  EXPECT_FALSE(is_cube_ordered(topo, bad));
  EXPECT_FALSE(is_cube_ordered_reference(topo, bad));
  // {0, 4, 5, 1}: subcube {4,5} contiguous, but {0,1} split by it.
  const std::vector<NodeId> bad2{0, 4, 5, 1};
  EXPECT_FALSE(is_cube_ordered(topo, bad2));
  EXPECT_FALSE(is_cube_ordered_reference(topo, bad2));
  // Swapping whole halves preserves cube order: {0, 1, 6, 7, 4, 5}.
  const std::vector<NodeId> good{0, 1, 6, 7, 4, 5};
  EXPECT_TRUE(is_cube_ordered(topo, good));
  EXPECT_TRUE(is_cube_ordered_reference(topo, good));
}

TEST(Chain, FastCubeOrderAgreesWithReference) {
  std::mt19937_64 rng(23);
  const Topology topo(4, Resolution::HighToLow);
  for (int trial = 0; trial < 400; ++trial) {
    // Random chains of random distinct nodes — mostly NOT cube ordered.
    std::vector<NodeId> pool(16);
    for (NodeId u = 0; u < 16; ++u) pool[u] = u;
    std::shuffle(pool.begin(), pool.end(), rng);
    const std::size_t len = 2 + rng() % 10;
    std::vector<NodeId> chain(pool.begin(),
                              pool.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_EQ(is_cube_ordered(topo, chain),
              is_cube_ordered_reference(topo, chain))
        << "trial " << trial;
  }
}

TEST(Chain, FastCubeOrderAgreesWithReferenceLowToHigh) {
  std::mt19937_64 rng(29);
  const Topology topo(4, Resolution::LowToHigh);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<NodeId> pool(16);
    for (NodeId u = 0; u < 16; ++u) pool[u] = u;
    std::shuffle(pool.begin(), pool.end(), rng);
    const std::size_t len = 2 + rng() % 10;
    std::vector<NodeId> chain(pool.begin(),
                              pool.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_EQ(is_cube_ordered(topo, chain),
              is_cube_ordered_reference(topo, chain))
        << "trial " << trial;
  }
}

TEST(Chain, TrivialChainsAreOrdered) {
  const Topology topo(4);
  EXPECT_TRUE(is_cube_ordered(topo, std::vector<NodeId>{}));
  EXPECT_TRUE(is_cube_ordered(topo, std::vector<NodeId>{5}));
  EXPECT_TRUE(is_cube_ordered(topo, std::vector<NodeId>{5, 9}));
  EXPECT_TRUE(is_relative_dimension_ordered(topo, std::vector<NodeId>{}));
  EXPECT_TRUE(is_relative_dimension_ordered(topo, std::vector<NodeId>{3}));
}

}  // namespace
}  // namespace hypercast::hcube
