#include "core/chain_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/wsort.hpp"
#include "hcube/chain.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

TEST(ChainSearch, EmptyAndSingleton) {
  const Topology topo(4);
  const MulticastRequest none{topo, 3, {}};
  const auto r0 = best_cube_ordered_chain(none);
  EXPECT_EQ(r0.best_chain, (std::vector<NodeId>{3}));
  EXPECT_EQ(r0.chains_examined, 1u);

  const MulticastRequest one{topo, 3, {12}};
  const auto r1 = best_cube_ordered_chain(one);
  EXPECT_EQ(r1.best_steps, 1);
  EXPECT_EQ(r1.chains_examined, 1u);
}

TEST(ChainSearch, CountMatchesEnumeration) {
  const Topology topo(5);
  workload::Rng rng(6001);
  for (int trial = 0; trial < 20; ++trial) {
    const auto req = random_request(topo, 2 + rng() % 8, rng);
    const auto result = best_cube_ordered_chain(req);
    EXPECT_EQ(result.chains_examined, count_cube_ordered_chains(req));
  }
}

TEST(ChainSearch, EnumerationCoversAllCubeOrderedPermutations) {
  // Brute-force cross-check on tiny instances: the enumerated space
  // must equal the set of source-first cube-ordered permutations.
  const Topology topo(3);
  workload::Rng rng(6007);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 2 + rng() % 3;  // 2..4 destinations
    const auto req = random_request(topo, m, rng);
    const std::size_t enumerated = count_cube_ordered_chains(req);

    // All permutations of the destinations, source fixed first.
    std::vector<NodeId> perm = req.destinations;
    std::sort(perm.begin(), perm.end());
    std::size_t valid = 0;
    do {
      std::vector<NodeId> chain{req.source};
      chain.insert(chain.end(), perm.begin(), perm.end());
      if (hcube::is_cube_ordered_reference(topo, chain)) ++valid;
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(enumerated, valid) << "m=" << m;
  }
}

TEST(ChainSearch, EveryEnumeratedChainIsAdmissible) {
  const Topology topo(4);
  const MulticastRequest req{topo, 0, {1, 3, 5, 7, 11, 12, 14, 15}};
  const auto result = best_cube_ordered_chain(req);
  // The best chain itself must be cube-ordered with the source first.
  EXPECT_EQ(result.best_chain.front(), 0u);
  EXPECT_TRUE(hcube::is_cube_ordered(topo, result.best_chain));
}

TEST(ChainSearch, Figure3OptimumIsTwoSteps) {
  // W-sort finds the 2-step tree of Figure 3(e); the exhaustive search
  // confirms no cube-ordered chain does better.
  const Topology topo(4);
  const MulticastRequest req{
      topo, 0, {1, 3, 5, 7, 11, 12, 14, 15}};
  const auto result = best_cube_ordered_chain(req);
  EXPECT_EQ(result.best_steps, 2);
  const auto wsort_steps =
      assign_steps(wsort(req), PortModel::all_port(), req.destinations)
          .total_steps;
  EXPECT_EQ(wsort_steps, result.best_steps);
}

TEST(ChainSearch, WsortNeverBeatsTheOptimum) {
  workload::Rng rng(6011);
  for (const hcube::Dim n : {4, 5}) {
    const Topology topo(n);
    for (int trial = 0; trial < 25; ++trial) {
      const std::size_t m = 2 + rng() % 8;
      const auto req = random_request(topo, m, rng);
      const auto best = best_cube_ordered_chain(req);
      const auto heuristic =
          assign_steps(wsort(req), PortModel::all_port(), req.destinations)
              .total_steps;
      EXPECT_GE(heuristic, best.best_steps) << "n=" << n << " m=" << m;
    }
  }
}

TEST(ChainSearch, HeuristicIsUsuallyOptimalOnSmallCubes) {
  workload::Rng rng(6029);
  const Topology topo(5);
  int optimal = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t m = 3 + rng() % 8;
    const auto req = random_request(topo, m, rng);
    const auto best = best_cube_ordered_chain(req);
    const auto heuristic =
        assign_steps(wsort(req), PortModel::all_port(), req.destinations)
            .total_steps;
    if (heuristic == best.best_steps) ++optimal;
  }
  // The crowding heuristic should hit the optimum in the large
  // majority of small instances.
  EXPECT_GE(optimal, trials * 3 / 4);
}

TEST(ChainSearch, ThrowsWhenSpaceTooLarge) {
  const Topology topo(8);
  workload::Rng rng(6037);
  const auto req = random_request(topo, 120, rng);
  EXPECT_THROW(best_cube_ordered_chain(req, PortModel::all_port(), 1024),
               std::invalid_argument);
}

TEST(ChainSearch, SearchRespectsPortModel) {
  // Under one-port the chain ordering cannot change the step count
  // (it is always ceil stepwise serialization over the same tree
  // sizes)? Not exactly — but the search must at least return a count
  // within [lower bound, m].
  const Topology topo(4);
  const MulticastRequest req{topo, 0, {1, 3, 5, 7, 11, 12, 14, 15}};
  const auto result =
      best_cube_ordered_chain(req, PortModel::one_port());
  EXPECT_GE(result.best_steps, 4);  // ceil(log2(9))
  EXPECT_LE(result.best_steps, 8);
}

}  // namespace
}  // namespace hypercast::core
