#include "core/channel_load.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "core/separate.hpp"
#include "core/wsort.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

ChannelLoadReport analyze(const MulticastSchedule& s) {
  return analyze_channel_load(s, assign_steps(s, PortModel::all_port()));
}

TEST(ChannelLoad, SingleUnicastLoadsItsPathOnce) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 0b1011, {});  // 3 hops
  const auto report = analyze(s);
  EXPECT_EQ(report.channels_used, 3u);
  EXPECT_EQ(report.total_crossings, 3u);
  EXPECT_EQ(report.max_load, 1u);
  EXPECT_DOUBLE_EQ(report.avg_load, 1.0);
  EXPECT_EQ(report.max_step_channel_reuse, 1u);
  ASSERT_EQ(report.load_histogram.size(), 2u);
  EXPECT_EQ(report.load_histogram[1], 3u);
}

TEST(ChannelLoad, SeparateAddressingConcentratesLoad) {
  // All destinations behind one channel: the first arc is crossed m
  // times.
  const Topology topo(4);
  const MulticastRequest req{topo, 0, {8, 9, 10, 11}};
  const auto report = analyze(separate_addressing(req));
  EXPECT_EQ(report.max_load, 4u);
}

TEST(ChannelLoad, WsortLoadsEveryChannelAtMostOnce) {
  // A contention-free tree whose unicasts are pairwise arc-disjoint or
  // causally chained still never needs a channel twice in one step; for
  // W-sort the stronger property holds — each channel is crossed at
  // most once in the whole operation (subcube separation + distinct
  // channels per sender).
  workload::Rng rng(9001);
  for (const hcube::Dim n : {4, 6, 8}) {
    const Topology topo(n);
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t m =
          1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 60);
      const auto req = random_request(topo, m, rng);
      const auto report = analyze(wsort(req));
      EXPECT_EQ(report.max_load, 1u) << "n=" << n << " m=" << m;
      EXPECT_EQ(report.max_step_channel_reuse, 1u);
    }
  }
}

TEST(ChannelLoad, UCubeReusesChannelsAcrossSteps) {
  // Figure 3's set: U-cube pushes two messages through 0111 -> 1111.
  const Topology topo(4);
  const MulticastRequest req{
      topo, 0, {0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110,
                0b1111}};
  const auto report = analyze(ucube(req));
  EXPECT_GE(report.max_load, 2u);
  // ...but never twice within one step (that would be contention).
  EXPECT_EQ(report.max_step_channel_reuse, 1u);
}

TEST(ChannelLoad, EmptyScheduleIsAllZeros) {
  MulticastSchedule s(Topology(4), 2);
  const auto report = analyze(s);
  EXPECT_EQ(report.channels_used, 0u);
  EXPECT_EQ(report.total_crossings, 0u);
  EXPECT_EQ(report.max_load, 0u);
  EXPECT_DOUBLE_EQ(report.avg_load, 0.0);
}

TEST(ChannelLoad, HistogramSumsToChannelsUsed) {
  const Topology topo(6);
  workload::Rng rng(9007);
  const auto req = random_request(topo, 30, rng);
  for (const auto& algo : all_algorithms()) {
    const auto report = analyze(algo.build(req));
    std::size_t sum = 0;
    std::size_t crossings = 0;
    for (std::size_t k = 1; k < report.load_histogram.size(); ++k) {
      sum += report.load_histogram[k];
      crossings += k * report.load_histogram[k];
    }
    EXPECT_EQ(sum, report.channels_used) << algo.name;
    EXPECT_EQ(crossings, report.total_crossings) << algo.name;
  }
}

}  // namespace
}  // namespace hypercast::core
