#include "coll/collectives.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "test_util.hpp"
#include "workload/patterns.hpp"

namespace hypercast::coll {
namespace {

using namespace testutil;

Collectives::Options six_cube() {
  Collectives::Options o;
  o.topo = Topology(6);
  return o;
}

TEST(Collectives, PlanUsesConfiguredAlgorithm) {
  auto options = six_cube();
  options.algorithm = "ucube";
  const Collectives comm(options);
  const std::vector<NodeId> dests{1, 2, 3, 9, 33};
  const auto plan = comm.plan(0, dests);
  const core::MulticastRequest req{options.topo, 0, dests};
  EXPECT_EQ(plan.format_tree(), core::ucube(req).format_tree());
}

TEST(Collectives, UnknownAlgorithmThrows) {
  auto options = six_cube();
  options.algorithm = "bogus";
  EXPECT_THROW(Collectives{options}, std::invalid_argument);
}

TEST(Collectives, MulticastDeliversToAll) {
  const Collectives comm(six_cube());
  workload::Rng rng(5001);
  const auto req = random_request(Topology(6), 12, rng);
  const auto result = comm.multicast(req.source, req.destinations, 4096);
  for (const NodeId d : req.destinations) {
    EXPECT_TRUE(result.delivery.contains(d));
  }
  EXPECT_EQ(result.stats.blocked_acquisitions, 0u);  // W-sort, Theorem 6
}

TEST(Collectives, BroadcastReachesEveryone) {
  const Collectives comm(six_cube());
  const auto result = comm.broadcast(17, 1024);
  EXPECT_EQ(result.delivery.size(), 63u);
}

TEST(Collectives, ReduceCompletesAfterSlowestLeaf) {
  const Collectives comm(six_cube());
  const auto dests = workload::broadcast_destinations(Topology(6), 0);
  const auto result = comm.reduce(0, dests, 4096);
  EXPECT_GT(result.completion, 0);
  EXPECT_EQ(result.stats.messages, 63u);
}

TEST(Collectives, GatherCostsMoreThanReduce) {
  const Collectives comm(six_cube());
  workload::Rng rng(5003);
  const auto req = random_request(Topology(6), 20, rng);
  const auto reduce = comm.reduce(req.source, req.destinations, 4096);
  const auto gather = comm.gather(req.source, req.destinations, 4096);
  EXPECT_GT(gather.completion, reduce.completion);
}

TEST(Collectives, BarrierIsReducePlusBroadcastShaped) {
  const Collectives comm(six_cube());
  const auto dests = workload::broadcast_destinations(Topology(6), 0);
  const sim::SimTime barrier = comm.barrier(0, dests);
  // Lower bound: two tree traversals of small messages; upper bound:
  // generous multiple of the per-level cost.
  const auto& cost = comm.options().cost;
  const sim::SimTime level = cost.send_startup + cost.recv_overhead;
  EXPECT_GT(barrier, 2 * level);
  EXPECT_LT(barrier, 40 * level);
}

TEST(Collectives, BarrierScalesWithParticipants) {
  const Collectives comm(six_cube());
  const std::vector<NodeId> few{1, 2, 4};
  const auto all = workload::broadcast_destinations(Topology(6), 0);
  EXPECT_LT(comm.barrier(0, few), comm.barrier(0, all));
}

TEST(Collectives, AlgorithmChoiceMattersForDelay) {
  workload::Rng rng(5009);
  const auto req = random_request(Topology(6), 30, rng);
  auto wsort_opts = six_cube();
  auto ucube_opts = six_cube();
  ucube_opts.algorithm = "ucube";
  const auto wsort_avg = Collectives(wsort_opts)
                             .multicast(req.source, req.destinations, 4096)
                             .avg_delay(req.destinations);
  const auto ucube_avg = Collectives(ucube_opts)
                             .multicast(req.source, req.destinations, 4096)
                             .avg_delay(req.destinations);
  EXPECT_LT(wsort_avg, ucube_avg);
}

TEST(Collectives, AllToAllMatchesDirectSimulation) {
  const Collectives comm(six_cube());
  const auto via_facade = comm.all_to_all(512);
  AllToAllConfig config;
  config.block_bytes = 512;
  const auto direct = simulate_all_to_all(Topology(6), config);
  EXPECT_EQ(via_facade.completion, direct.completion);
  EXPECT_EQ(via_facade.stats.blocked_acquisitions, 0u);
}

TEST(Collectives, OnePortConfigurationPropagates) {
  auto options = six_cube();
  options.port = core::PortModel::one_port();
  const Collectives one(options);
  const Collectives all(six_cube());
  workload::Rng rng(5011);
  const auto req = random_request(Topology(6), 20, rng);
  EXPECT_GT(one.multicast(req.source, req.destinations, 4096)
                .max_delay(req.destinations),
            all.multicast(req.source, req.destinations, 4096)
                .max_delay(req.destinations));
}

}  // namespace
}  // namespace hypercast::coll
