#include "core/chain_algorithms.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/contention.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

class CombineProperty
    : public ::testing::TestWithParam<std::tuple<hcube::Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(CombineProperty, CoversExactlyTheDestinations) {
  const Topology topo = this->topo();
  workload::Rng rng(301);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    EXPECT_TRUE(covers_exactly(combine(req), req));
  }
}

TEST_P(CombineProperty, NoNodeResponsibleForMoreThanHalf) {
  // Combine's defining guarantee: next >= center, so the subtree handed
  // to each recipient never exceeds what U-cube's binary halving would
  // hand over: with r nodes remaining at the sender (itself included),
  // the handoff covers at most floor((r-1)/2) + 1 nodes.
  const Topology topo = this->topo();
  workload::Rng rng(307);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    const auto s = combine(req);
    for (const NodeId sender : s.senders()) {
      // Remaining responsibility before the first send: the sender plus
      // everything in its subtree.
      std::size_t remaining = 1;
      for (const Send& send : s.sends_from(sender)) {
        remaining += send.payload.size() + 1;
      }
      for (const Send& send : s.sends_from(sender)) {
        const std::size_t handoff = send.payload.size() + 1;
        EXPECT_LE(handoff, (remaining - 1) / 2 + 1)
            << "sender " << topo.format(sender) << " m=" << m;
        remaining -= handoff;
      }
    }
  }
}

TEST_P(CombineProperty, ScheduleIsContentionFreeOnAllPort) {
  const Topology topo = this->topo();
  workload::Rng rng(311);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 25);
    const auto req = random_request(topo, m, rng);
    const auto report = check_contention(combine(req), PortModel::all_port());
    EXPECT_TRUE(report.contention_free()) << report.summary(topo);
  }
}

TEST_P(CombineProperty, AllPortStepsAtMostUCube) {
  // Combine dominates U-cube under the all-port step model on random
  // sets: it spreads across channels whenever that does not inflate
  // any node's responsibility. (Equality is common at small m.)
  const Topology topo = this->topo();
  if (topo.dim() < 3) GTEST_SKIP();
  workload::Rng rng(313);
  int combine_wins = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    const int c =
        assign_steps(combine(req), PortModel::all_port(), req.destinations)
            .total_steps;
    const int u =
        assign_steps(ucube(req), PortModel::all_port(), req.destinations)
            .total_steps;
    EXPECT_LE(c, u) << "m=" << m;
    if (c < u) ++combine_wins;
  }
  if (topo.dim() >= 6) {
    EXPECT_GT(combine_wins, 0) << "Combine should beat U-cube somewhere";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, CombineProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(Combine, AvoidsTheMaxportPathology) {
  // Figure 6's case plus deeper variants: when all destinations live in
  // one far subcube, Combine halves instead of chaining.
  const Topology topo(5);
  const MulticastRequest req{topo, 0, {17, 18, 19, 20, 21, 22, 23}};
  const int c = assign_steps(combine(req), PortModel::all_port(),
                             req.destinations)
                    .total_steps;
  const int mp = assign_steps(maxport(req), PortModel::all_port(),
                              req.destinations)
                     .total_steps;
  EXPECT_LT(c, mp);
  EXPECT_EQ(c, 3);  // ceil(log2(7+1)) within the subcube chain
}

TEST(Combine, SingleDestination) {
  const Topology topo(4);
  const MulticastRequest req{topo, 1, {14}};
  EXPECT_EQ(combine(req).num_unicasts(), 1u);
}

}  // namespace
}  // namespace hypercast::core
