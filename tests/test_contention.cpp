#include "core/contention.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

TEST(Contention, DisjointPathsAreFine) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {});
  s.add_send(0, 4, {});
  const auto report = check_contention(s, PortModel::all_port());
  EXPECT_TRUE(report.contention_free());
  EXPECT_EQ(report.pairs_checked, 1u);
  EXPECT_EQ(report.pairs_sharing_arcs, 0u);
}

TEST(Contention, SameStepSharedArcIsAViolation) {
  // Two sends from different sources crossing the same channel in the
  // same step: 0 -> 12 uses arc (1000, dim 2); 8 -> 15 also starts
  // there. Put both at step 1 by construction.
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 12, {});
  s.add_send(0, 8, {15});
  s.add_send(8, 15, {});
  // Under the stepwise model 8 arrives in step 2 (channel 3 conflict
  // with 12? no: delta(0,12)=3 and delta(0,8)=3 share the first arc) —
  // craft explicit steps instead to force the overlap.
  StepResult forced;
  forced.unicasts = {
      TimedUnicast{0, 12, 1},
      TimedUnicast{8, 15, 1},  // 8 magically already has the message
  };
  const auto report = check_contention(s, forced);
  EXPECT_FALSE(report.contention_free());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].shared_arc, (hcube::Arc{8, 2}));
}

TEST(Contention, MixedPairsJudgedIndividually) {
  // A hand-built schedule exercising all three pair classes at once:
  //   0 -> 8  at step 1 (arc (0000, 3));
  //   0 -> 12 at step 2 (reuses (0000, 3): legal, same source, Thm 3);
  //   8 -> 15 at step 2 (shares (1000, 2) with 0 -> 12 in the SAME
  //   step: a genuine Definition-4 violation).
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {15});
  s.add_send(8, 15, {});
  s.add_send(0, 12, {});
  const auto steps = assign_steps(s, PortModel::all_port());
  EXPECT_EQ(steps.arrival_step.at(8), 1);
  EXPECT_EQ(steps.arrival_step.at(12), 2);
  EXPECT_EQ(steps.arrival_step.at(15), 2);
  const auto report = check_contention(s, steps);
  EXPECT_FALSE(report.contention_free());
  // Exactly one offending pair: (0 -> 12, 8 -> 15).
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].shared_arc, (hcube::Arc{8, 2}));
}

TEST(Contention, AncestorSharingArcAcrossStepsIsAllowed) {
  // 0 -> 8 at step 1 (arc (0000, dim3)); 0 -> 9 at step 2 reuses the
  // same arc. Same source: Theorem 3 says contention-free; the checker
  // accepts because 0 is trivially in R_0 and steps differ.
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {});
  s.add_send(0, 9, {});
  const auto steps = assign_steps(s, PortModel::all_port());
  EXPECT_EQ(steps.arrival_step.at(8), 1);
  EXPECT_EQ(steps.arrival_step.at(9), 2);
  const auto report = check_contention(s, steps);
  EXPECT_TRUE(report.contention_free()) << report.summary(topo);
  EXPECT_EQ(report.pairs_sharing_arcs, 1u);
}

TEST(Contention, SameArcSameStepFromSameSourceNeverHappensViaAssignSteps) {
  // assign_steps can never put two same-channel sends of one node in
  // one step, so Theorem 3 situations always pass the checker.
  const Topology topo(6);
  workload::Rng rng(901);
  for (int trial = 0; trial < 10; ++trial) {
    const auto req = random_request(topo, 15, rng);
    MulticastSchedule s(topo, req.source);
    for (const NodeId d : req.destinations) {
      s.add_send(req.source, d, {});
    }
    const auto report = check_contention(s, PortModel::all_port());
    EXPECT_TRUE(report.contention_free()) << report.summary(topo);
  }
}

TEST(Contention, ViolationSummaryMentionsArc) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 12, {});
  s.add_send(0, 8, {15});
  s.add_send(8, 15, {});
  StepResult forced;
  forced.unicasts = {TimedUnicast{0, 12, 1}, TimedUnicast{8, 15, 1}};
  const auto report = check_contention(s, forced);
  const std::string summary = report.summary(topo);
  EXPECT_NE(summary.find("violation"), std::string::npos);
  EXPECT_NE(summary.find("1000"), std::string::npos);
}

TEST(Contention, UCubeOnOnePortIsAlwaysClean) {
  // The paper's guarantee for U-cube under its intended (one-port)
  // execution, across cubes and resolutions.
  workload::Rng rng(907);
  for (const Resolution res : {Resolution::HighToLow, Resolution::LowToHigh}) {
    for (const hcube::Dim n : {3, 5, 7}) {
      const Topology topo(n, res);
      for (int trial = 0; trial < 8; ++trial) {
        const std::size_t m =
            1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
        const auto req = random_request(topo, m, rng);
        const auto report =
            check_contention(ucube(req), PortModel::one_port());
        EXPECT_TRUE(report.contention_free()) << report.summary(topo);
      }
    }
  }
}

}  // namespace
}  // namespace hypercast::core
