// Co-scheduler invariants and the end-to-end contention win.
//
// The plan-shape tests recompute every invariant independently from
// core::arc_footprint (waves partition the batch, per-wave overlap
// stays within the bound, fallbacks are accounted), the determinism
// tests pin serve_batch_cosched to byte-identical sequential serving at
// any thread count, and the DES tests assert the acceptance criterion:
// co-scheduled launches beat oblivious superposition on blocked-cycle
// count (>= 20% reduction at the default bound) and phase makespan on
// the multi-tenant and hot-spot workloads. The simulator is
// deterministic, so these are exact regressions, not statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include "coll/coscheduler.hpp"
#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "core/channel_load.hpp"
#include "core/registry.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/concurrent.hpp"
#include "workload/random_sets.hpp"

namespace hypercast {
namespace {

using coll::CoschedPlan;
using coll::CoschedPolicy;
using coll::CoScheduler;
using core::MulticastRequest;
using core::MulticastSchedule;

std::vector<MulticastSchedule> build_batch(
    const hcube::Topology& topo,
    const std::vector<workload::ConcurrentRequest>& requests) {
  const auto& wsort = core::find_algorithm("wsort");
  std::vector<MulticastSchedule> schedules;
  schedules.reserve(requests.size());
  for (const auto& r : requests) {
    schedules.push_back(
        wsort.build(MulticastRequest{topo, r.source, r.destinations}));
  }
  return schedules;
}

std::vector<const MulticastSchedule*> pointers(
    const std::vector<MulticastSchedule>& schedules) {
  std::vector<const MulticastSchedule*> ptrs;
  for (const auto& s : schedules) ptrs.push_back(&s);
  return ptrs;
}

TEST(CoScheduler, WavesPartitionTheBatch) {
  const hcube::Topology topo(6);
  workload::Rng rng(0xC05C4ED1ull);
  const auto requests = workload::multi_tenant_mix(topo, 4, 3, 20, rng);
  const auto schedules = build_batch(topo, requests);
  const auto ptrs = pointers(schedules);

  CoScheduler scheduler;
  const CoschedPlan plan =
      scheduler.plan(std::span<const MulticastSchedule* const>(ptrs));

  // Every batch index appears in exactly one wave, ascending within it.
  std::set<std::size_t> seen;
  for (const auto& wave : plan.waves) {
    EXPECT_FALSE(wave.members.empty());
    EXPECT_TRUE(std::is_sorted(wave.members.begin(), wave.members.end()));
    for (const std::size_t idx : wave.members) {
      EXPECT_LT(idx, schedules.size());
      EXPECT_TRUE(seen.insert(idx).second) << "index " << idx << " twice";
    }
  }
  EXPECT_EQ(seen.size(), schedules.size());
  EXPECT_EQ(plan.size(), schedules.size());
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    EXPECT_LT(plan.wave_of(i), plan.waves.size());
  }
  EXPECT_EQ(plan.wave_of(schedules.size()), plan.size());

  // Wave offsets are the stagger ladder.
  for (std::size_t w = 0; w < plan.waves.size(); ++w) {
    EXPECT_EQ(plan.waves[w].start_offset_ns,
              w * scheduler.policy().stagger_offset_ns);
  }
}

TEST(CoScheduler, OverlapBoundHoldsUnderIndependentRecount) {
  const hcube::Topology topo(6);
  for (const std::uint32_t bound : {1u, 2u, 4u}) {
    workload::Rng rng(0x0B00ull + bound);
    const auto requests = workload::hot_spot_mix(topo, 12, 16, 8, rng);
    const auto schedules = build_batch(topo, requests);
    const auto ptrs = pointers(schedules);

    CoschedPolicy policy;
    policy.max_arc_overlap = bound;
    CoScheduler scheduler(policy);
    const CoschedPlan plan =
        scheduler.plan(std::span<const MulticastSchedule* const>(ptrs));

    std::uint32_t recomputed_peak = 0;
    for (const auto& wave : plan.waves) {
      // Recount the wave's per-arc crossings from scratch.
      core::ChannelLoadMap load;
      load.reset(topo);
      std::uint32_t wave_self_max = 0;
      for (const std::size_t idx : wave.members) {
        const core::ArcFootprint fp =
            core::arc_footprint(topo, schedules[idx]);
        load.add(fp);
        wave_self_max = std::max(wave_self_max, fp.self_max);
      }
      EXPECT_EQ(load.max_load(), wave.peak_overlap);
      // The bound may only be exceeded by a tree that exceeds it alone
      // (oblivious fallback) — and such a tree rides in a solo wave.
      if (wave.peak_overlap > bound) {
        EXPECT_EQ(wave.members.size(), 1u);
        EXPECT_GT(wave_self_max, bound);
      }
      recomputed_peak = std::max(recomputed_peak, load.max_load());
    }
    EXPECT_EQ(plan.peak_overlap, recomputed_peak);
    if (plan.oblivious_fallback == 0) {
      EXPECT_LE(plan.peak_overlap, bound);
    }
  }
}

TEST(CoScheduler, SelfHeavyTreeFallsBackSolo) {
  // Two unicasts from one source whose E-cube paths share arc 0->2
  // (high-to-low resolution: 0->3 routes 0->2->3): self-overlap 2,
  // unschedulable under bound 1.
  const hcube::Topology topo(3);
  MulticastSchedule heavy(topo, 0);
  heavy.add_send(0, 2, {});
  heavy.add_send(0, 3, {});
  heavy.finalize();
  MulticastSchedule light(topo, 4);
  light.add_send(4, 6, {});
  light.finalize();
  ASSERT_EQ(core::arc_footprint(topo, heavy).self_max, 2u);

  const std::vector<const MulticastSchedule*> ptrs{&heavy, &light};
  CoschedPolicy policy;
  policy.max_arc_overlap = 1;
  CoScheduler scheduler(policy);
  const CoschedPlan plan =
      scheduler.plan(std::span<const MulticastSchedule* const>(ptrs));

  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.oblivious_fallback, 1u);
  // The heavy tree is alone in its wave.
  const std::size_t heavy_wave = plan.wave_of(0);
  ASSERT_LT(heavy_wave, plan.waves.size());
  EXPECT_EQ(plan.waves[heavy_wave].members.size(), 1u);
  EXPECT_GT(plan.waves[heavy_wave].peak_overlap, policy.max_arc_overlap);
}

TEST(CoScheduler, MaxWavesCapSuperposesTheRemainder) {
  const hcube::Topology topo(5);
  workload::Rng rng(0xCAB5ull);
  const auto requests = workload::hot_spot_mix(topo, 10, 12, 4, rng);
  const auto schedules = build_batch(topo, requests);
  const auto ptrs = pointers(schedules);

  CoschedPolicy tight;
  tight.max_arc_overlap = 1;
  CoScheduler unbounded(tight);
  const CoschedPlan free_plan =
      unbounded.plan(std::span<const MulticastSchedule* const>(ptrs));
  ASSERT_GT(free_plan.waves.size(), 2u) << "workload too easy to cap";

  tight.max_waves = 2;
  CoScheduler capped(tight);
  const CoschedPlan capped_plan =
      capped.plan(std::span<const MulticastSchedule* const>(ptrs));
  EXPECT_EQ(capped_plan.waves.size(), 2u);
  EXPECT_EQ(capped_plan.size(), schedules.size());  // still a partition
  EXPECT_GT(capped_plan.oblivious_fallback, 0u);
}

TEST(CoScheduler, NullSlotsAreSkippedAndMixedTopologiesThrow) {
  const hcube::Topology topo(4);
  workload::Rng rng(0x51D3ull);
  const auto requests = workload::bursty_arrivals(topo, 2, 3, 6, 1000, rng);
  const auto schedules = build_batch(topo, requests);

  std::vector<std::shared_ptr<const MulticastSchedule>> shared;
  for (const auto& s : schedules) {
    shared.push_back(std::make_shared<const MulticastSchedule>(s));
  }
  shared.insert(shared.begin() + 2, nullptr);  // a shed slot

  CoScheduler scheduler;
  const CoschedPlan plan = scheduler.plan(
      std::span<const std::shared_ptr<const MulticastSchedule>>(shared));
  EXPECT_EQ(plan.size(), schedules.size());  // null slot in no wave
  EXPECT_EQ(plan.wave_of(2), plan.size());

  const hcube::Topology other(5);
  MulticastSchedule alien(other, 0);
  alien.add_send(0, 1, {});
  alien.finalize();
  std::vector<const MulticastSchedule*> mixed = pointers(schedules);
  mixed.push_back(&alien);
  EXPECT_THROW(
      (void)scheduler.plan(std::span<const MulticastSchedule* const>(mixed)),
      std::invalid_argument);
}

TEST(CoScheduler, ServeBatchCoschedIsDeterministicAcrossThreadCounts) {
  const hcube::Topology topo(6);
  workload::Rng rng(0xD37E12ull);
  const auto concurrent = workload::multi_tenant_mix(topo, 4, 4, 18, rng);
  std::vector<MulticastRequest> requests;
  for (const auto& r : concurrent) {
    requests.push_back(MulticastRequest{topo, r.source, r.destinations});
  }

  const coll::ServePipeline pipeline(
      "wsort", std::make_shared<coll::ScheduleCache>());
  const CoschedPolicy policy;
  const auto sequential =
      pipeline.serve_batch(requests, coll::ServePipeline::BatchPolicy{1, 0});

  for (const int threads : {1, 2, 4}) {
    const auto batch = pipeline.serve_batch_cosched(
        requests, coll::ServePipeline::BatchPolicy{threads, 0}, policy);
    ASSERT_EQ(batch.schedules.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      ASSERT_NE(batch.schedules[i], nullptr);
      // Byte-identical payloads: co-scheduling reorders launches, never
      // rebuilds or mutates the schedules themselves.
      EXPECT_EQ(*batch.schedules[i], *sequential[i]) << "slot " << i;
    }
    // The plan is a pure function of the schedules, so every thread
    // count produces the same waves.
    const auto reference = pipeline.serve_batch_cosched(
        requests, coll::ServePipeline::BatchPolicy{1, 0}, policy);
    ASSERT_EQ(batch.plan.waves.size(), reference.plan.waves.size());
    for (std::size_t w = 0; w < batch.plan.waves.size(); ++w) {
      EXPECT_EQ(batch.plan.waves[w].members,
                reference.plan.waves[w].members);
      EXPECT_EQ(batch.plan.waves[w].start_offset_ns,
                reference.plan.waves[w].start_offset_ns);
    }
  }
}

TEST(CoScheduler, ToJobsStaggersByWave) {
  const hcube::Topology topo(5);
  workload::Rng rng(0x70B5ull);
  const auto requests = workload::hot_spot_mix(topo, 8, 10, 4, rng);
  const auto schedules = build_batch(topo, requests);
  const auto ptrs = pointers(schedules);

  CoScheduler scheduler;
  const CoschedPlan plan =
      scheduler.plan(std::span<const MulticastSchedule* const>(ptrs));
  const auto jobs = CoScheduler::to_jobs(
      plan, std::span<const MulticastSchedule* const>(ptrs), 500);
  ASSERT_EQ(jobs.size(), schedules.size());
  std::size_t k = 0;
  for (const auto& wave : plan.waves) {
    for (const std::size_t idx : wave.members) {
      EXPECT_EQ(jobs[k].schedule, &schedules[idx]);
      EXPECT_EQ(jobs[k].start,
                500 + static_cast<sim::SimTime>(wave.start_offset_ns));
      ++k;
    }
  }
}

// The acceptance criterion: at the default policy, co-scheduled waves
// cut simulated channel blocking by >= 20% vs oblivious superposition
// and do not lose on phase makespan, on both adversarial workloads.
TEST(CoScheduler, BeatsObliviousSuperpositionInTheSimulator) {
  const hcube::Topology topo(6);
  const CoschedPolicy policy;
  const sim::SimConfig config;

  for (const int which : {0, 1}) {
    workload::Rng rng(which == 0 ? 0x7E4A47ull : 0x4075ull);
    const auto requests =
        which == 0 ? workload::multi_tenant_mix(topo, 4, 6, 24, rng)
                   : workload::hot_spot_mix(topo, 24, 16, 8, rng);
    const auto schedules = build_batch(topo, requests);
    const auto ptrs = pointers(schedules);

    std::vector<sim::CollectiveJob> oblivious;
    for (const auto& s : schedules) {
      oblivious.push_back(sim::CollectiveJob{&s, 0});
    }
    CoScheduler scheduler(policy);
    const CoschedPlan plan =
        scheduler.plan(std::span<const MulticastSchedule* const>(ptrs));
    const auto cosched = CoScheduler::to_jobs(
        plan, std::span<const MulticastSchedule* const>(ptrs));

    const auto base = sim::simulate_collectives(oblivious, config);
    const auto planned = sim::simulate_collectives(cosched, config);

    EXPECT_LE(
        static_cast<double>(planned.stats.total_blocked_ns),
        0.8 * static_cast<double>(base.stats.total_blocked_ns))
        << "workload " << which;
    EXPECT_LE(planned.stats.blocked_acquisitions,
              base.stats.blocked_acquisitions)
        << "workload " << which;
    // The paper's per-multicast "max delay" (Figures 11-14): each job's
    // worst delivery measured from its own launch. The waves trade a
    // known launch stagger for far less in-network blocking, so the
    // worst per-multicast delay must drop even though the batch's
    // absolute completion stretches by the stagger tail.
    const auto worst_delay = [](const sim::MultiSimResult& result,
                                std::span<const sim::CollectiveJob> jobs) {
      sim::SimTime worst = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        worst =
            std::max(worst, result.per_job[i].max_delay() - jobs[i].start);
      }
      return worst;
    };
    EXPECT_LE(worst_delay(planned, cosched), worst_delay(base, oblivious))
        << "workload " << which;
  }
}

TEST(ConcurrentWorkloads, GeneratorsAreDeterministicAndValid) {
  const hcube::Topology topo(6);
  for (const int which : {0, 1, 2}) {
    workload::Rng a(0x5EED0ull + which), b(0x5EED0ull + which);
    const auto make = [&](workload::Rng& rng) {
      switch (which) {
        case 0:
          return workload::multi_tenant_mix(topo, 4, 3, 20, rng);
        case 1:
          return workload::bursty_arrivals(topo, 3, 4, 12, 500'000, rng);
        default:
          return workload::hot_spot_mix(topo, 10, 14, 8, rng);
      }
    };
    const auto first = make(a);
    const auto second = make(b);
    ASSERT_EQ(first.size(), second.size());
    std::set<hcube::NodeId> sources;
    std::uint64_t prev_arrival = 0;
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].source, second[i].source);
      EXPECT_EQ(first[i].destinations, second[i].destinations);
      EXPECT_EQ(first[i].arrival_ns, second[i].arrival_ns);
      // Every request is a valid multicast (validate() throws if not).
      MulticastRequest{topo, first[i].source, first[i].destinations}
          .validate();
      EXPECT_TRUE(sources.insert(first[i].source).second)
          << "duplicate source in workload " << which;
      EXPECT_GE(first[i].arrival_ns, prev_arrival);
      prev_arrival = first[i].arrival_ns;
    }
  }
  // Degenerate parameters fail loudly instead of looping.
  workload::Rng rng(1);
  EXPECT_THROW(
      (void)workload::multi_tenant_mix(hcube::Topology(2), 8, 1, 1, rng),
      std::invalid_argument);
  EXPECT_THROW(
      (void)workload::hot_spot_mix(hcube::Topology(2), 2, 4, 1, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace hypercast
