#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace hypercast::sim {
namespace {

TEST(CostModel, MicrosecondConversionsRoundTrip) {
  EXPECT_EQ(microseconds(0), 0);
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(microseconds(160), 160000);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_microseconds(1500), 1.5);
}

TEST(CostModel, BodyTimeIsLinearInBytes) {
  const CostModel c = CostModel::ncube2();
  EXPECT_EQ(c.body_time(0), 0);
  EXPECT_EQ(c.body_time(1), c.ns_per_byte);
  EXPECT_EQ(c.body_time(4096), 4096 * c.ns_per_byte);
  EXPECT_EQ(c.body_time(8192), 2 * c.body_time(4096));
}

TEST(CostModel, UnicastLatencyDecomposition) {
  const CostModel c = CostModel::ncube2();
  EXPECT_EQ(c.unicast_latency(0, 0), c.send_startup + c.recv_overhead);
  EXPECT_EQ(c.unicast_latency(3, 1024),
            c.send_startup + 3 * c.per_hop + 1024 * c.ns_per_byte +
                c.recv_overhead);
  // Distance insensitivity: extra hops cost only per_hop each.
  EXPECT_EQ(c.unicast_latency(10, 4096) - c.unicast_latency(1, 4096),
            9 * c.per_hop);
}

TEST(CostModel, Ncube2DefaultsAreTheDocumentedApproximations) {
  const CostModel c = CostModel::ncube2();
  EXPECT_EQ(c.send_startup, microseconds(160));
  EXPECT_EQ(c.recv_overhead, microseconds(80));
  EXPECT_EQ(c.per_hop, microseconds(2));
  EXPECT_EQ(c.ns_per_byte, 450);
  // 4 KiB body ~ 1.84 ms: the regime where the body dominates startup,
  // i.e. where the paper's 4096-byte measurements live.
  EXPECT_GT(c.body_time(4096), 10 * c.send_startup);
}

TEST(CostModel, FastNetworkIsUniformlyCheaper) {
  const CostModel slow = CostModel::ncube2();
  const CostModel fast = CostModel::fast_network();
  for (const int hops : {1, 5, 10}) {
    for (const std::size_t bytes : {64u, 4096u}) {
      EXPECT_LT(fast.unicast_latency(hops, bytes),
                slow.unicast_latency(hops, bytes));
    }
  }
}

}  // namespace
}  // namespace hypercast::sim
