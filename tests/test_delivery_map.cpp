// Direct unit coverage for sim::DeliveryMap — the flat delivery-time map
// every simulation result is built on. The simulator tests exercise it
// end to end; these pin down the container semantics themselves:
// insertion order, duplicate rejection, growth/rehash, the sparse batch
// fill the engines use, and clear()/reuse.

#include "sim/delivery_map.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace {

using hypercast::hcube::NodeId;
using hypercast::sim::DeliveryMap;
using hypercast::sim::SimTime;

TEST(DeliveryMap, EmplaceFindAndInsertionOrder) {
  DeliveryMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(3), nullptr);

  const NodeId order[] = {7, 3, 11, 0, 5};
  SimTime t = 100;
  for (const NodeId u : order) {
    auto [slot, inserted] = map.emplace(u, t);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, t);
    t += 10;
  }
  EXPECT_EQ(map.size(), 5u);
  EXPECT_TRUE(map.contains(11));
  EXPECT_EQ(map.at(0), 130);
  EXPECT_THROW(map.at(42), std::out_of_range);

  // Iteration replays exactly the insertion order — what makes sharded
  // vs joint simulation results comparable deterministically.
  std::size_t i = 0;
  for (const auto& [node, time] : map) {
    EXPECT_EQ(node, order[i]);
    EXPECT_EQ(time, 100 + static_cast<SimTime>(10 * i));
    ++i;
  }
  EXPECT_EQ(i, 5u);
}

TEST(DeliveryMap, DuplicateEmplaceKeepsFirstValue) {
  DeliveryMap map;
  map.emplace(9, 50);
  auto [slot, inserted] = map.emplace(9, 999);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 50);
  EXPECT_EQ(map.size(), 1u);
  // The returned address is writable — the unordered_map::emplace shape
  // the duplicate checks in the engines rely on.
  *slot = 51;
  EXPECT_EQ(map.at(9), 51);
}

TEST(DeliveryMap, GrowsThroughRehashWithoutLosingEntries) {
  DeliveryMap map;  // no reserve: forces several rehashes
  constexpr NodeId kNodes = 1u << 10;
  for (NodeId u = 0; u < kNodes; ++u) {
    auto [slot, inserted] = map.emplace(u * 2654435761u % kNodes + u, u);
    (void)slot;
    (void)inserted;
  }
  // Colliding keys above deduplicate; re-insert densely and verify all.
  for (NodeId u = 0; u < kNodes; ++u) map.emplace(u, u + 7);
  for (NodeId u = 0; u < kNodes; ++u) {
    const SimTime* p = map.find(u);
    ASSERT_NE(p, nullptr) << "node " << u << " lost in a rehash";
  }
  EXPECT_GE(map.size(), static_cast<std::size_t>(kNodes));
}

// The engines' fill pattern: reserve for the recipient count, then
// materialize from a sparse done-array where most slots are absent.
TEST(DeliveryMap, BatchMaterializeFromSparseDoneArray) {
  constexpr std::size_t kCube = 256;
  std::vector<SimTime> done(kCube, 0);  // 0 = not delivered
  for (std::size_t u = 3; u < kCube; u += 5) {
    done[u] = static_cast<SimTime>(1000 + u);
  }
  DeliveryMap map;
  map.reserve(kCube / 5 + 1);
  for (std::size_t u = 0; u < kCube; ++u) {
    if (done[u] != 0) map.emplace(static_cast<NodeId>(u), done[u]);
  }
  std::size_t expected = 0;
  for (std::size_t u = 3; u < kCube; u += 5) {
    ++expected;
    EXPECT_EQ(map.at(static_cast<NodeId>(u)), static_cast<SimTime>(1000 + u));
  }
  EXPECT_EQ(map.size(), expected);
  EXPECT_FALSE(map.contains(0));
  EXPECT_FALSE(map.contains(4));
}

TEST(DeliveryMap, EqualityIsOrderIndependent) {
  DeliveryMap a;
  DeliveryMap b;
  a.emplace(1, 10);
  a.emplace(2, 20);
  b.emplace(2, 20);
  b.emplace(1, 10);
  EXPECT_TRUE(a == b);
  b.emplace(3, 30);
  EXPECT_FALSE(a == b);
  DeliveryMap c;
  c.emplace(1, 10);
  c.emplace(2, 21);  // same key set, different time
  EXPECT_FALSE(a == c);
}

TEST(DeliveryMap, ClearKeepsCapacityAndSupportsReuse) {
  DeliveryMap map;
  for (NodeId u = 0; u < 100; ++u) map.emplace(u, u);
  EXPECT_EQ(map.size(), 100u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(50), nullptr);
  EXPECT_EQ(map.begin(), map.end());
  // Refill with a different key set: stale index slots must not alias.
  for (NodeId u = 0; u < 100; ++u) {
    auto [slot, inserted] = map.emplace(u + 1000, u * 2);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(*slot, static_cast<SimTime>(u * 2));
  }
  EXPECT_EQ(map.size(), 100u);
  EXPECT_FALSE(map.contains(50));
  EXPECT_EQ(map.at(1050), 100);
}

}  // namespace
