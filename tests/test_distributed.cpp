// Tests for the distributed-execution view: local_sends is the routine
// each node runs on message receipt; chaining it over delivered address
// fields must replicate the centralized schedules exactly.

#include <gtest/gtest.h>

#include <deque>

#include "core/chain_algorithms.hpp"
#include "core/wsort.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

TEST(LocalSends, EmptyFieldSendsNothing) {
  const Topology topo(4);
  EXPECT_TRUE(local_sends(topo, 5, {}, NextRule::Center).empty());
}

TEST(LocalSends, SingleResponsibilityIsOneSend) {
  const Topology topo(4);
  const std::vector<NodeId> field{9};
  const auto sends = local_sends(topo, 5, field, NextRule::HighDim);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].to, 9u);
  EXPECT_TRUE(sends[0].payload.empty());
}

TEST(LocalSends, Figure8SourceSends) {
  // Node 0 with the weighted field {1,3,5,7,14,15,12,11} under Maxport
  // issues sends to 14, 5, 3, 1 — the Figure 8(c) fan-out.
  const Topology topo(4);
  const std::vector<NodeId> field{1, 3, 5, 7, 14, 15, 12, 11};
  const auto sends = local_sends(topo, 0, field, NextRule::HighDim);
  ASSERT_EQ(sends.size(), 4u);
  EXPECT_EQ(sends[0].to, 14u);
  EXPECT_EQ(to_vec(sends[0].payload), (std::vector<NodeId>{15, 12, 11}));
  EXPECT_EQ(sends[1].to, 5u);
  EXPECT_EQ(to_vec(sends[1].payload), (std::vector<NodeId>{7}));
  EXPECT_EQ(sends[2].to, 3u);
  EXPECT_EQ(sends[3].to, 1u);
}

TEST(LocalSends, IntermediateNodeNeedsNoGlobalSource) {
  // Node 14 receiving {15, 12, 11} (as in Figure 8(c), where the
  // global source was 0) issues the same sends regardless of which
  // source originated the multicast.
  const Topology topo(4);
  const std::vector<NodeId> field{15, 12, 11};  // the field of Fig 8(c)
  const auto sends = local_sends(topo, 14, field, NextRule::HighDim);
  ASSERT_EQ(sends.size(), 3u);
  EXPECT_EQ(sends[0].to, 11u);
  EXPECT_EQ(sends[1].to, 12u);
  EXPECT_EQ(sends[2].to, 15u);
}

/// Executing the distributed protocol hop by hop — every node calling
/// local_sends on exactly the field it received — reproduces the
/// centralized schedule for every algorithm.
class DistributedEquivalence
    : public ::testing::TestWithParam<std::tuple<hcube::Dim, Resolution>> {};

TEST_P(DistributedEquivalence, MatchesCentralizedSchedules) {
  const Topology topo(std::get<0>(GetParam()), std::get<1>(GetParam()));
  workload::Rng rng(3001);
  const struct {
    const char* name;
    NextRule rule;
  } kAlgos[] = {{"ucube", NextRule::Center},
                {"maxport", NextRule::HighDim},
                {"combine", NextRule::MaxOfBoth}};
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    for (const auto& [name, rule] : kAlgos) {
      const auto centralized = find_algorithm(name).build(req);
      // Distributed run: the source computes the sorted chain, then
      // every recipient independently processes its field.
      const auto chain =
          hcube::make_relative_chain(topo, req.source, req.destinations);
      MulticastSchedule distributed(topo, req.source);
      std::deque<std::pair<NodeId, std::vector<NodeId>>> inbox;
      inbox.emplace_back(req.source,
                         std::vector<NodeId>(chain.begin() + 1, chain.end()));
      while (!inbox.empty()) {
        auto [node, field] = std::move(inbox.front());
        inbox.pop_front();
        // The sends' payload spans alias `field`; copy each one into
        // the inbox (the wire transmission) before field goes away.
        for (const Send& s : local_sends(topo, node, field, rule)) {
          inbox.emplace_back(s.to, to_vec(s.payload));
          distributed.add_send(node, s.to, s.payload);
        }
      }
      EXPECT_EQ(distributed.format_tree(), centralized.format_tree())
          << name << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, DistributedEquivalence,
    ::testing::Combine(::testing::Values(2, 4, 6, 8),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(LocalSends, WsortFieldsAreProcessedLikeMaxport) {
  // W-sort's recipients run plain Maxport logic on the weighted field;
  // the library's wsort() must equal that composition.
  const Topology topo(6);
  workload::Rng rng(3011);
  for (int trial = 0; trial < 10; ++trial) {
    const auto req = random_request(topo, 20, rng);
    const auto via_algo = wsort(req);
    const auto chain = wsort_chain(req);
    const auto via_chain = build_chain_schedule(topo, chain, NextRule::HighDim);
    EXPECT_EQ(via_algo.format_tree(), via_chain.format_tree());
  }
}

}  // namespace
}  // namespace hypercast::core
