#include "hcube/ecube.hpp"

#include <gtest/gtest.h>

#include <random>

namespace hypercast::hcube {
namespace {

/// Parameterized over (dimension, resolution order): the E-cube
/// invariants must hold in every configuration.
class ECubeProperty
    : public ::testing::TestWithParam<std::tuple<Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(ECubeProperty, PathEndpointsAndLength) {
  const Topology topo = this->topo();
  std::mt19937 rng(17);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  for (int i = 0; i < 300; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const auto path = ecube_path(topo, u, v);
    ASSERT_GE(path.size(), 1u);
    EXPECT_EQ(path.front(), u);
    EXPECT_EQ(path.back(), v);
    EXPECT_EQ(path.size(), static_cast<std::size_t>(hamming(u, v)) + 1);
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      EXPECT_TRUE(topo.adjacent(path[k], path[k + 1]));
    }
  }
}

TEST_P(ECubeProperty, RouteDimsAreMonotoneInResolutionOrder) {
  const Topology topo = this->topo();
  std::mt19937 rng(23);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  for (int i = 0; i < 300; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const auto dims = route_dims(topo, u, v);
    for (std::size_t k = 0; k + 1 < dims.size(); ++k) {
      if (topo.resolution() == Resolution::HighToLow) {
        EXPECT_GT(dims[k], dims[k + 1]);
      } else {
        EXPECT_LT(dims[k], dims[k + 1]);
      }
    }
    // Each dimension is used at most once (part of Lemma 1): strict
    // monotonicity already implies it, but check the set explicitly.
    std::uint32_t used = 0;
    for (const Dim d : dims) {
      EXPECT_FALSE(test_bit(used, d));
      used |= 1u << d;
    }
    EXPECT_EQ(used, u ^ v);
  }
}

/// Lemma 1: along P(x, y), before travelling dimension d the address
/// agrees with x on every later-resolved dimension <= d already matching
/// x, and after travelling d it agrees with y on all earlier-resolved
/// dimensions; and x, y differ in d itself.
TEST_P(ECubeProperty, LemmaOne) {
  const Topology topo = this->topo();
  std::mt19937 rng(29);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  const bool high_first = topo.resolution() == Resolution::HighToLow;
  for (int i = 0; i < 200; ++i) {
    const NodeId x = dist(rng);
    const NodeId y = dist(rng);
    const auto path = ecube_path(topo, x, y);
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      const Dim d = static_cast<Dim>(highest_bit(path[hop] ^ path[hop + 1]));
      EXPECT_NE(test_bit(x, d), test_bit(y, d)) << "condition 3";
      // Condition 1: w_j (j <= hop) agrees with x in every dimension not
      // yet resolved at this point.
      for (std::size_t j = 0; j <= hop; ++j) {
        for (Dim k = 0; k < topo.dim(); ++k) {
          const bool not_yet = high_first ? (k <= d) : (k >= d);
          if (not_yet) {
            EXPECT_EQ(test_bit(path[j], k), test_bit(x, k));
          }
        }
      }
      // Condition 2: w_j (j > hop) agrees with y in every dimension
      // already resolved.
      for (std::size_t j = hop + 1; j < path.size(); ++j) {
        for (Dim k = 0; k < topo.dim(); ++k) {
          const bool resolved = high_first ? (k > d) : (k < d);
          if (resolved) {
            EXPECT_EQ(test_bit(path[j], k), test_bit(y, k));
          }
        }
      }
    }
  }
}

TEST_P(ECubeProperty, DeltaIsFirstRouteDim) {
  const Topology topo = this->topo();
  std::mt19937 rng(31);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  for (int i = 0; i < 300; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const auto d = delta(topo, u, v);
    if (u == v) {
      EXPECT_FALSE(d.has_value());
      continue;
    }
    ASSERT_TRUE(d.has_value());
    const auto dims = route_dims(topo, u, v);
    ASSERT_FALSE(dims.empty());
    EXPECT_EQ(*d, dims.front());
    EXPECT_EQ(*d, delta_distinct(topo, u, v));
  }
}

TEST_P(ECubeProperty, ArcsMatchPath) {
  const Topology topo = this->topo();
  std::mt19937 rng(37);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(topo.num_nodes() - 1));
  for (int i = 0; i < 200; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const auto path = ecube_path(topo, u, v);
    const auto arcs = ecube_arcs(topo, u, v);
    ASSERT_EQ(arcs.size() + 1, path.size());
    for (std::size_t k = 0; k < arcs.size(); ++k) {
      EXPECT_EQ(arcs[k].from, path[k]);
      EXPECT_EQ(topo.neighbor(arcs[k].from, arcs[k].dim), path[k + 1]);
    }
  }
}

/// The two resolution orders are isomorphic under bit reversal:
/// P_lowhigh(u, v) = rev(P_highlow(rev(u), rev(v))).
TEST_P(ECubeProperty, ResolutionOrdersAreBitReverseIsomorphic) {
  const Dim n = std::get<0>(GetParam());
  const Topology low(n, Resolution::LowToHigh);
  const Topology high(n, Resolution::HighToLow);
  std::mt19937 rng(41);
  std::uniform_int_distribution<NodeId> dist(
      0, static_cast<NodeId>(low.num_nodes() - 1));
  for (int i = 0; i < 200; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const auto p_low = ecube_path(low, u, v);
    const auto p_high =
        ecube_path(high, bit_reverse(u, n), bit_reverse(v, n));
    ASSERT_EQ(p_low.size(), p_high.size());
    for (std::size_t k = 0; k < p_low.size(); ++k) {
      EXPECT_EQ(bit_reverse(p_low[k], n), p_high[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, ECubeProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8, 10),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(ECube, PaperPathExample) {
  // Section 3.1: P(0101, 1110) = (0101; 1101; 1111; 1110) under
  // high-to-low resolution.
  const Topology topo(4, Resolution::HighToLow);
  const auto path = ecube_path(topo, 0b0101, 0b1110);
  const std::vector<NodeId> expected{0b0101, 0b1101, 0b1111, 0b1110};
  EXPECT_EQ(path, expected);
}

TEST(ECube, DeltaDefinitionExamples) {
  const Topology topo(4, Resolution::HighToLow);
  // delta = floor(log2(u xor v)) under high-to-low resolution.
  EXPECT_EQ(delta_distinct(topo, 0b0000, 0b0001), 0);
  EXPECT_EQ(delta_distinct(topo, 0b0000, 0b1000), 3);
  EXPECT_EQ(delta_distinct(topo, 0b0101, 0b1110), 3);
  EXPECT_EQ(delta_distinct(topo, 0b0111, 0b1011), 3);
  const Topology low(4, Resolution::LowToHigh);
  EXPECT_EQ(delta_distinct(low, 0b0101, 0b1110), 0);
  EXPECT_EQ(delta_distinct(low, 0b0110, 0b0010), 2);
}

TEST(ECube, ArcDisjointBruteForce) {
  const Topology topo(4);
  // P(0000, 0011) = 0000 -> 0010 -> 0011; P(0100, 0111) uses different
  // arcs entirely (different subcube).
  EXPECT_TRUE(arc_disjoint(topo, 0b0000, 0b0011, 0b0100, 0b0111));
  // Same path twice is trivially not disjoint.
  EXPECT_FALSE(arc_disjoint(topo, 0b0000, 0b0011, 0b0000, 0b0011));
  // P(0111, 1100) and P(0111, 1011) share the arc 0111 -> 1111
  // (Figure 3(d)'s conflict).
  EXPECT_FALSE(arc_disjoint(topo, 0b0111, 0b1100, 0b0111, 0b1011));
  // Opposite directions over the same link are distinct channels.
  EXPECT_TRUE(arc_disjoint(topo, 0b0000, 0b0001, 0b0001, 0b0000));
}

TEST(ECube, EmptyPathsAreDisjoint) {
  const Topology topo(3);
  EXPECT_TRUE(arc_disjoint(topo, 1, 1, 2, 2));
  EXPECT_TRUE(arc_disjoint(topo, 1, 1, 0, 7));
}

}  // namespace
}  // namespace hypercast::hcube
