#include "hcube/embeddings.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hypercast::hcube {
namespace {

TEST(GrayCode, FirstValues) {
  EXPECT_EQ(gray_code(0), 0u);
  EXPECT_EQ(gray_code(1), 1u);
  EXPECT_EQ(gray_code(2), 3u);
  EXPECT_EQ(gray_code(3), 2u);
  EXPECT_EQ(gray_code(4), 6u);
  EXPECT_EQ(gray_code(7), 4u);
}

TEST(GrayCode, DecodeInvertsEncode) {
  for (std::uint32_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(gray_decode(gray_code(i)), i);
  }
}

TEST(GrayCode, ConsecutiveValuesDifferInOneBit) {
  for (std::uint32_t i = 0; i + 1 < 4096; ++i) {
    EXPECT_EQ(popcount(gray_code(i) ^ gray_code(i + 1)), 1) << i;
  }
}

TEST(GrayRing, IsAHamiltonianCycle) {
  for (const Dim n : {1, 2, 3, 5, 8}) {
    const Topology topo(n);
    const auto ring = gray_ring(topo);
    ASSERT_EQ(ring.size(), topo.num_nodes());
    std::set<NodeId> distinct(ring.begin(), ring.end());
    EXPECT_EQ(distinct.size(), topo.num_nodes());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const NodeId a = ring[i];
      const NodeId b = ring[(i + 1) % ring.size()];
      EXPECT_TRUE(topo.adjacent(a, b)) << "position " << i;
    }
  }
}

TEST(EmbedRing, EveryEvenLengthEmbeds) {
  const Topology topo(5);
  for (std::size_t length = 2; length <= 32; length += 2) {
    const auto ring = embed_ring(topo, length);
    ASSERT_EQ(ring.size(), length) << length;
    std::set<NodeId> distinct(ring.begin(), ring.end());
    EXPECT_EQ(distinct.size(), length) << length;
    for (std::size_t i = 0; i < length; ++i) {
      EXPECT_TRUE(topo.adjacent(ring[i], ring[(i + 1) % length]))
          << "length " << length << " position " << i;
    }
  }
}

TEST(EmbedRing, RejectsOddAndOversized) {
  const Topology topo(4);
  EXPECT_THROW(embed_ring(topo, 3), std::invalid_argument);
  EXPECT_THROW(embed_ring(topo, 7), std::invalid_argument);
  EXPECT_THROW(embed_ring(topo, 1), std::invalid_argument);
  EXPECT_THROW(embed_ring(topo, 18), std::invalid_argument);
  EXPECT_NO_THROW(embed_ring(topo, 16));
}

TEST(EmbedGrid, NeighboursAndTorusWraparound) {
  const Topology topo(6);
  for (const auto& [rows, cols] :
       {std::pair<std::size_t, std::size_t>{4, 8},
        {8, 8},
        {2, 16},
        {1, 8}}) {
    const auto grid = embed_grid(topo, rows, cols);
    ASSERT_EQ(grid.size(), rows * cols);
    std::set<NodeId> distinct(grid.begin(), grid.end());
    EXPECT_EQ(distinct.size(), rows * cols);
    const auto at = [&](std::size_t r, std::size_t c) {
      return grid[r * cols + c];
    };
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (cols > 1) {
          EXPECT_TRUE(topo.adjacent(at(r, c), at(r, (c + 1) % cols)));
        }
        if (rows > 1) {
          EXPECT_TRUE(topo.adjacent(at(r, c), at((r + 1) % rows, c)));
        }
      }
    }
  }
}

TEST(EmbedGrid, RejectsBadShapes) {
  const Topology topo(4);
  EXPECT_THROW(embed_grid(topo, 3, 4), std::invalid_argument);
  EXPECT_THROW(embed_grid(topo, 4, 8), std::invalid_argument);  // 32 > 16
  EXPECT_THROW(embed_grid(topo, 0, 4), std::invalid_argument);
  EXPECT_NO_THROW(embed_grid(topo, 4, 4));
}

}  // namespace
}  // namespace hypercast::hcube
