// Exhaustive verification on the 3-cube: EVERY source and EVERY
// non-empty destination subset (8 x 127 = 1016 instances), every paper
// algorithm. Small enough to brute-force, strong enough to catch any
// corner the randomized suites might miss.

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/contention.hpp"
#include "core/registry.hpp"
#include "sim/wormhole_sim.hpp"
#include "test_util.hpp"

namespace hypercast {
namespace {

using namespace testutil;
using core::PortModel;

std::vector<core::MulticastRequest> all_3cube_requests(Resolution res) {
  const Topology topo(3, res);
  std::vector<core::MulticastRequest> out;
  for (NodeId source = 0; source < 8; ++source) {
    for (std::uint32_t mask = 1; mask < 256; ++mask) {
      if (mask & (1u << source)) continue;  // source not a destination
      std::vector<NodeId> dests;
      for (NodeId u = 0; u < 8; ++u) {
        if (mask & (1u << u)) dests.push_back(u);
      }
      if (dests.empty()) continue;
      out.push_back(core::MulticastRequest{topo, source, std::move(dests)});
    }
  }
  return out;
}

class Exhaustive3Cube : public ::testing::TestWithParam<Resolution> {};

TEST_P(Exhaustive3Cube, EveryAlgorithmCoversEveryInstance) {
  for (const auto& req : all_3cube_requests(GetParam())) {
    for (const auto& algo : core::all_algorithms()) {
      const auto s = algo.build(req);
      ASSERT_NO_THROW(s.validate()) << algo.name;
      ASSERT_TRUE(s.covers(req.destinations))
          << algo.name << " src=" << req.source;
    }
  }
}

TEST_P(Exhaustive3Cube, UCubeAlwaysMeetsTheOnePortBound) {
  for (const auto& req : all_3cube_requests(GetParam())) {
    const auto steps = core::assign_steps(
        core::find_algorithm("ucube").build(req), PortModel::one_port(),
        req.destinations);
    ASSERT_EQ(steps.total_steps,
              core::one_port_step_lower_bound(req.destinations.size()))
        << "src=" << req.source;
  }
}

TEST_P(Exhaustive3Cube, MaxportAndWsortAreAlwaysContentionFree) {
  for (const auto& req : all_3cube_requests(GetParam())) {
    for (const char* name : {"maxport", "wsort"}) {
      const auto s = core::find_algorithm(name).build(req);
      const auto report = core::check_contention(s, PortModel::all_port());
      ASSERT_TRUE(report.contention_free())
          << name << " src=" << req.source << "\n"
          << report.summary(req.topo);
    }
  }
}

TEST_P(Exhaustive3Cube, UCubeOnePortIsAlwaysContentionFree) {
  for (const auto& req : all_3cube_requests(GetParam())) {
    const auto s = core::find_algorithm("ucube").build(req);
    ASSERT_TRUE(
        core::check_contention(s, PortModel::one_port()).contention_free())
        << "src=" << req.source;
  }
}

TEST_P(Exhaustive3Cube, MaxportAndWsortNeverBlockInTheSimulator) {
  sim::SimConfig config;
  config.message_bytes = 512;
  for (const auto& req : all_3cube_requests(GetParam())) {
    for (const char* name : {"maxport", "wsort"}) {
      const auto s = core::find_algorithm(name).build(req);
      const auto result = sim::simulate_multicast(s, config);
      ASSERT_EQ(result.stats.blocked_acquisitions, 0u)
          << name << " src=" << req.source;
      ASSERT_EQ(result.delivery.size(), req.destinations.size());
    }
  }
}

TEST_P(Exhaustive3Cube, StepCountsWithinBounds) {
  for (const auto& req : all_3cube_requests(GetParam())) {
    const auto m = req.destinations.size();
    for (const auto& algo : core::paper_algorithms()) {
      const int steps = core::assign_steps(algo.build(req),
                                           PortModel::all_port(),
                                           req.destinations)
                            .total_steps;
      ASSERT_GE(steps, core::all_port_step_lower_bound(m, 3)) << algo.name;
      ASSERT_LE(steps, static_cast<int>(m)) << algo.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothResolutions, Exhaustive3Cube,
                         ::testing::Values(Resolution::HighToLow,
                                           Resolution::LowToHigh),
                         [](const auto& info) {
                           return info.param == Resolution::HighToLow
                                      ? "HighToLow"
                                      : "LowToHigh";
                         });

}  // namespace
}  // namespace hypercast
