// Fault-aware wrapper: under every single-link fault of a 4-cube, every
// paper algorithm's repaired tree still reaches every destination, and
// no unicast of the repaired tree ever touches a failed resource — the
// latter proved twice, statically against the FaultSet and dynamically
// by the simulator's hard-error path.

#include <gtest/gtest.h>

#include "fault/fault_aware.hpp"
#include "fault/fault_inject.hpp"
#include "sim/wormhole_sim.hpp"
#include "test_util.hpp"
#include "workload/patterns.hpp"

namespace hypercast {
namespace {

using fault::FaultSet;
using hcube::NodeId;
using hcube::Topology;

/// Every unicast of the schedule routes cleanly around the faults.
::testing::AssertionResult no_unicast_blocked(
    const core::MulticastSchedule& schedule, const FaultSet& faults) {
  for (const core::Unicast& u : schedule.unicasts()) {
    if (faults.path_blocked(u.from, u.to)) {
      return ::testing::AssertionFailure()
             << "unicast " << schedule.topo().format(u.from) << " -> "
             << schedule.topo().format(u.to)
             << " crosses a fault: " << faults.format();
    }
  }
  return ::testing::AssertionSuccess();
}

/// Run one repaired schedule through the wormhole DES with the fault
/// set armed: the Network throws std::logic_error the moment any worm
/// tries to acquire a failed channel, so a clean run is a dynamic proof.
::testing::AssertionResult sim_delivers(
    const core::MulticastSchedule& schedule,
    const core::MulticastRequest& req, const FaultSet& faults) {
  sim::SimConfig config;
  config.faults = &faults;
  try {
    const auto result = sim::simulate_multicast(schedule, config);
    for (const NodeId d : req.destinations) {
      if (!result.delivery.contains(d)) {
        return ::testing::AssertionFailure()
               << "destination " << req.topo.format(d) << " never delivered";
      }
    }
  } catch (const std::exception& e) {
    return ::testing::AssertionFailure() << "simulation failed: " << e.what();
  }
  return ::testing::AssertionSuccess();
}

std::vector<core::MulticastRequest> sample_requests(const Topology& topo) {
  std::vector<core::MulticastRequest> reqs;
  // Broadcast from 0 (the worst case: every link matters).
  reqs.push_back({topo, 0, workload::broadcast_destinations(topo, 0)});
  // Random sets of several sizes and sources, deterministic seeds.
  for (const auto [m, trial] : {std::pair<std::size_t, std::uint64_t>{3, 0},
                                {7, 1},
                                {11, 2}}) {
    workload::Rng rng(workload::derive_seed(0xFA017, m, trial));
    reqs.push_back(testutil::random_request(topo, m, rng));
  }
  return reqs;
}

TEST(FaultAwareMulticast, EverySingleLinkFaultIn4Cube) {
  const Topology topo(4);
  const auto requests = sample_requests(topo);
  for (const auto& algo : core::paper_algorithms()) {
    for (hcube::Dim d = 0; d < topo.dim(); ++d) {
      for (NodeId low = 0; low < static_cast<NodeId>(topo.num_nodes());
           ++low) {
        if (hcube::test_bit(low, d)) continue;  // enumerate links once
        FaultSet fs(topo);
        fs.fail_link(low, d);
        for (const auto& req : requests) {
          const auto result = fault::fault_aware_multicast(algo, req, fs);
          ASSERT_TRUE(testutil::covers_at_least(result.schedule, req))
              << algo.name << " link " << topo.format(low) << ":" << d;
          ASSERT_TRUE(no_unicast_blocked(result.schedule, fs)) << algo.name;
          ASSERT_TRUE(sim_delivers(result.schedule, req, fs)) << algo.name;
        }
      }
    }
  }
}

TEST(FaultAwareMulticast, UntouchedScheduleWhenNoFaultApplies) {
  const Topology topo(4);
  const FaultSet none(topo);
  const core::MulticastRequest req{topo, 0, {1, 3, 5, 7, 12}};
  for (const auto& algo : core::paper_algorithms()) {
    const auto base = algo.build(req);
    const auto result = fault::fault_aware_multicast(algo, req, none);
    EXPECT_TRUE(result.report.clean());
    EXPECT_EQ(result.report.broken, 0u);
    EXPECT_EQ(result.report.contention_violations, 0u)
        << "paper algorithms stay contention-free without faults";
    EXPECT_EQ(result.schedule.num_unicasts(), base.num_unicasts());
    EXPECT_EQ(testutil::recipient_set(result.schedule),
              testutil::recipient_set(base));
  }
}

TEST(FaultAwareMulticast, RepairReportAccountsForTheDetour) {
  const Topology topo(4);
  FaultSet fs(topo);
  fs.fail_link(0, 0);  // 0000 - 0001: breaks the 1-hop unicast to 0001
  const core::MulticastRequest req{topo, 0, {1}};
  const auto& ucube = core::find_algorithm("ucube");
  const auto result = fault::fault_aware_multicast(ucube, req, fs);
  EXPECT_EQ(result.report.unicasts_checked, 1u);
  EXPECT_EQ(result.report.broken, 1u);
  EXPECT_EQ(result.report.relayed, 1u) << "1-hop faults admit no "
                                          "same-length detour";
  EXPECT_EQ(result.report.rerouted_shortest, 0u);
  EXPECT_EQ(result.report.relay_nodes_added, 1u);
  // Adjacent nodes share no common neighbour in a hypercube, so the
  // shortest relay route is 3 hops where the direct link was 1.
  EXPECT_EQ(result.report.extra_hops, 2);
  ASSERT_EQ(result.report.repairs.size(), 1u);
  EXPECT_EQ(result.report.repairs.front().from, 0u);
  EXPECT_EQ(result.report.repairs.front().to, 1u);
  EXPECT_FALSE(result.report.summary().empty());
}

TEST(FaultAwareMulticast, DeadRelayIsBypassed) {
  const Topology topo(4);
  // U-cube broadcast from 0 uses internal relays; kill one recipient
  // that we exclude from the destination set and repair.
  const auto& ucube = core::find_algorithm("ucube");
  const NodeId dead = 0b1000;
  std::vector<NodeId> dests;
  for (NodeId u = 1; u < 16; ++u) {
    if (u != dead) dests.push_back(u);
  }
  const core::MulticastRequest req{topo, 0, dests};
  FaultSet fs(topo);
  fs.fail_node(dead);
  const auto result = fault::fault_aware_multicast(ucube, req, fs);
  EXPECT_TRUE(testutil::covers_at_least(result.schedule, req));
  EXPECT_TRUE(no_unicast_blocked(result.schedule, fs));
  EXPECT_TRUE(sim_delivers(result.schedule, req, fs));
  // The dead node never appears in the repaired tree.
  for (const NodeId r : result.schedule.recipients()) {
    EXPECT_NE(r, dead);
  }
}

TEST(FaultAwareMulticast, DeadDestinationIsUnrepairable) {
  const Topology topo(3);
  FaultSet fs(topo);
  fs.fail_node(5);
  const core::MulticastRequest req{topo, 0, {1, 5}};
  const auto& wsort = core::find_algorithm("wsort");
  EXPECT_THROW(fault::fault_aware_multicast(wsort, req, fs),
               fault::UnrepairableFault);
  FaultSet dead_source(topo);
  dead_source.fail_node(0);
  EXPECT_THROW(fault::fault_aware_multicast(wsort, req, dead_source),
               std::invalid_argument);
}

TEST(FaultAwareMulticast, SimulatorHardErrorsOnFaultObliviousSchedule) {
  const Topology topo(4);
  FaultSet fs(topo);
  fs.fail_link(0, 0);
  const core::MulticastRequest req{topo, 0, {1}};
  const auto& ucube = core::find_algorithm("ucube");
  const auto oblivious = ucube.build(req);  // routes straight into the fault
  sim::SimConfig config;
  config.faults = &fs;
  EXPECT_THROW(sim::simulate_multicast(oblivious, config), std::logic_error);
}

TEST(FaultAwareMulticast, RandomMultiFaultScenariosOn5Cube) {
  const Topology topo(5);
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    workload::Rng fault_rng(workload::derive_seed(0xDE6, 8, trial));
    const FaultSet fs = fault::connected_link_faults(topo, 8, fault_rng);
    workload::Rng req_rng(workload::derive_seed(0xDE6, 12, trial));
    const auto req = testutil::random_request(topo, 12, req_rng);
    for (const auto& algo : core::paper_algorithms()) {
      const auto result = fault::fault_aware_multicast(algo, req, fs);
      ASSERT_TRUE(testutil::covers_at_least(result.schedule, req))
          << algo.name << " trial " << trial;
      ASSERT_TRUE(no_unicast_blocked(result.schedule, fs)) << algo.name;
      ASSERT_TRUE(sim_delivers(result.schedule, req, fs)) << algo.name;
    }
  }
}

TEST(FaultAwareRegistry, VariantsRegisterAndResolve) {
  const Topology topo(4);
  auto fs = std::make_shared<FaultSet>(topo);
  fs->fail_link(0, 0);
  fault::register_fault_aware_algorithms(fs);
  const auto& entry = core::find_algorithm("wsort-ft");
  EXPECT_EQ(entry.display, "W-sort+FT");
  const core::MulticastRequest req{topo, 0, {1, 6, 9}};
  const auto schedule = entry.build(req);
  EXPECT_TRUE(schedule.covers(req.destinations));
  EXPECT_TRUE(no_unicast_blocked(schedule, *fs));
  // Re-registering (a new fault set) replaces, not duplicates.
  fault::register_fault_aware_algorithms(std::make_shared<FaultSet>(topo));
  std::size_t wsort_ft = 0;
  for (const auto& e : core::registered_algorithms()) {
    if (e.name == "wsort-ft") ++wsort_ft;
  }
  EXPECT_EQ(wsort_ft, 1u);
}

TEST(FaultAwareRegistry, UnknownNameListsKnownAlgorithms) {
  try {
    core::find_algorithm("definitely-not-an-algorithm");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("known:"), std::string::npos) << what;
    EXPECT_NE(what.find("ucube"), std::string::npos) << what;
    EXPECT_NE(what.find("wsort"), std::string::npos) << what;
  }
  EXPECT_THROW(
      core::register_algorithm(core::AlgorithmEntry{
          "ucube", "shadow",
          [](const core::MulticastRequest& r) {
            return core::MulticastSchedule(r.topo, r.source);
          }}),
      std::invalid_argument);
}

}  // namespace
}  // namespace hypercast
