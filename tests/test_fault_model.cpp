// Fault model: FaultSet bookkeeping, seeded generator determinism and
// the surviving-cube connectivity check.

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault_inject.hpp"
#include "fault/fault_route.hpp"
#include "fault/fault_set.hpp"

namespace hypercast {
namespace {

using fault::FaultSet;
using fault::Link;
using hcube::Arc;
using hcube::NodeId;
using hcube::Topology;

TEST(FaultSet, EmptySetBlocksNothing) {
  const Topology topo(4);
  const FaultSet fs(topo);
  EXPECT_TRUE(fs.empty());
  EXPECT_TRUE(fs.surviving_connected());
  for (std::size_t i = 0; i < topo.num_arcs(); ++i) {
    EXPECT_FALSE(fs.arc_failed(topo.arc_at(i)));
  }
  EXPECT_FALSE(fs.path_blocked(0, 15));
}

TEST(FaultSet, LinkFailureKillsBothArcs) {
  const Topology topo(4);
  FaultSet fs(topo);
  fs.fail_link(0b0101, 1);  // link 0101 - 0111
  EXPECT_TRUE(fs.arc_failed(Arc{0b0101, 1}));
  EXPECT_TRUE(fs.arc_failed(Arc{0b0111, 1}));
  EXPECT_TRUE(fs.link_failed(0b0111, 1));  // named from either end
  EXPECT_FALSE(fs.arc_failed(Arc{0b0101, 0}));
  EXPECT_EQ(fs.num_failed_links(), 1u);
  // Idempotent, from either endpoint.
  fs.fail_link(0b0111, 1);
  EXPECT_EQ(fs.num_failed_links(), 1u);
}

TEST(FaultSet, NodeFailureKillsIncidentArcsAndPathsThrough) {
  const Topology topo(4);
  FaultSet fs(topo);
  fs.fail_node(0b0100);
  EXPECT_TRUE(fs.node_failed(0b0100));
  for (hcube::Dim d = 0; d < 4; ++d) {
    EXPECT_TRUE(fs.arc_failed(Arc{0b0100, d}));
    EXPECT_TRUE(fs.arc_failed(Arc{topo.neighbor(0b0100, d), d}));
  }
  // HighToLow route 0110 -> 0000 passes through 0010... not 0100;
  // route 0101 -> 0000 corrects bit 2 first: 0101 -> 0001 -> 0000. But
  // 0110 -> 0100 ends at the dead node, and 0101 -> 0100 too.
  EXPECT_TRUE(fs.path_blocked(0b0101, 0b0100));
  // 0111 -> 0000 routes 0111 -> 0011 -> 0001 -> 0000: unaffected.
  EXPECT_FALSE(fs.path_blocked(0b0111, 0b0000));
  // 0100 -> anywhere starts dead.
  EXPECT_TRUE(fs.path_blocked(0b0100, 0b0000));
  EXPECT_EQ(fs.num_failed_nodes(), 1u);
  EXPECT_EQ(fs.live_nodes().size(), 15u);
}

TEST(FaultSet, PathBlockedFollowsEcubeOrder) {
  const Topology topo(4);  // HighToLow: 0000 -> 1001 routes dim 3 then 0
  FaultSet fs(topo);
  fs.fail_link(0b1000, 0);  // the *second* hop 1000 -> 1001
  EXPECT_TRUE(fs.path_blocked(0b0000, 0b1001));
  EXPECT_FALSE(fs.path_blocked(0b0000, 0b1000));
  // LowToHigh resolves dim 0 first: 0000 -> 0001 -> 1001, avoiding the
  // failed link entirely.
  const Topology low(4, hcube::Resolution::LowToHigh);
  FaultSet fs_low(low);
  fs_low.fail_link(0b1000, 0);
  EXPECT_FALSE(fs_low.path_blocked(0b0000, 0b1001));
}

TEST(FaultSet, RangeChecksThrow) {
  const Topology topo(3);
  FaultSet fs(topo);
  EXPECT_THROW(fs.fail_link(8, 0), std::invalid_argument);
  EXPECT_THROW(fs.fail_link(0, 3), std::invalid_argument);
  EXPECT_THROW(fs.fail_node(8), std::invalid_argument);
}

TEST(FaultSet, ConnectivityDetectsIsolatedNode) {
  const Topology topo(4);
  FaultSet fs(topo);
  for (hcube::Dim d = 0; d < 3; ++d) fs.fail_link(0, d);
  EXPECT_TRUE(fs.surviving_connected()) << "one live link keeps 0 attached";
  fs.fail_link(0, 3);
  EXPECT_FALSE(fs.surviving_connected());
  // Declaring the cut-off node dead makes the *surviving* cube whole.
  fs.fail_node(0);
  EXPECT_TRUE(fs.surviving_connected());
}

TEST(FaultSet, FormatMentionsEverything) {
  const Topology topo(4);
  FaultSet fs(topo);
  fs.fail_link(0, 1);
  fs.fail_node(5);
  const std::string s = fs.format();
  EXPECT_NE(s.find("1 failed link"), std::string::npos) << s;
  EXPECT_NE(s.find("0000-0010"), std::string::npos) << s;
  EXPECT_NE(s.find("1 dead node"), std::string::npos) << s;
  EXPECT_NE(s.find("0101"), std::string::npos) << s;
}

TEST(FaultInject, LinkFaultsAreSeedDeterministic) {
  const Topology topo(6);
  workload::Rng rng_a(workload::derive_seed(99, 10, 0));
  workload::Rng rng_b(workload::derive_seed(99, 10, 0));
  const FaultSet a = fault::random_link_faults(topo, 10, rng_a);
  const FaultSet b = fault::random_link_faults(topo, 10, rng_b);
  EXPECT_EQ(a.failed_links(), b.failed_links());
  EXPECT_EQ(a.num_failed_links(), 10u);

  workload::Rng rng_c(workload::derive_seed(99, 10, 1));
  const FaultSet c = fault::random_link_faults(topo, 10, rng_c);
  EXPECT_NE(a.failed_links(), c.failed_links())
      << "different trial seeds must draw different fault scenarios";
}

TEST(FaultInject, LinkFaultsAreDistinctAndExhaustive) {
  const Topology topo(4);
  const std::size_t all_links = topo.num_arcs() / 2;  // 32
  workload::Rng rng(7);
  const FaultSet fs = fault::random_link_faults(topo, all_links, rng);
  EXPECT_EQ(fs.num_failed_links(), all_links);
  // Every link failed exactly once (distinctness at full coverage).
  for (std::size_t i = 0; i < topo.num_arcs(); ++i) {
    EXPECT_TRUE(fs.arc_failed(topo.arc_at(i)));
  }
  workload::Rng rng2(7);
  EXPECT_THROW(fault::random_link_faults(topo, all_links + 1, rng2),
               std::invalid_argument);
}

TEST(FaultInject, NodeFaultsRespectProtectedNodes) {
  const Topology topo(5);
  const std::vector<NodeId> protect{0, 7, 31};
  workload::Rng rng(123);
  const FaultSet fs = fault::random_node_faults(topo, 12, rng, protect);
  EXPECT_EQ(fs.num_failed_nodes(), 12u);
  for (const NodeId p : protect) EXPECT_FALSE(fs.node_failed(p));
}

TEST(FaultInject, LinksForRateMatchesPaperScale) {
  const Topology topo(6);  // 192 links
  EXPECT_EQ(fault::links_for_rate(topo, 0.0), 0u);
  EXPECT_EQ(fault::links_for_rate(topo, 0.10), 19u);
  EXPECT_EQ(fault::links_for_rate(topo, 0.15), 29u);
  EXPECT_EQ(fault::links_for_rate(topo, 1.0), 192u);
}

TEST(FaultInject, ConnectedGeneratorAlwaysReturnsConnected) {
  const Topology topo(5);
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    workload::Rng rng(workload::derive_seed(5, 12, trial));
    const FaultSet fs = fault::connected_link_faults(topo, 12, rng);
    EXPECT_EQ(fs.num_failed_links(), 12u);
    EXPECT_TRUE(fs.surviving_connected());
  }
}

TEST(FaultRoute, DimensionDetourAvoidsFailedArc) {
  const Topology topo(4);
  FaultSet fs(topo);
  // E-cube 0000 -> 1100 goes 0000 -> 1000 -> 1100; break the first hop.
  fs.fail_link(0b0000, 3);
  const auto path = fault::dimension_ordered_detour(topo, fs, 0b0000, 0b1100);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);  // still shortest
  EXPECT_EQ(path->front(), 0b0000u);
  EXPECT_EQ(path->back(), 0b1100u);
  EXPECT_EQ((*path)[1], 0b0100u) << "must correct dim 2 first instead";
  // Decomposition: dims 2 then 3 ascend, so 0100 must relay.
  const auto endpoints = fault::segment_endpoints(topo, *path);
  EXPECT_EQ(endpoints, (std::vector<NodeId>{0b0000, 0b0100, 0b1100}));
}

TEST(FaultRoute, SingleHopHasNoShortestDetourButBfsFindsRelay) {
  const Topology topo(4);
  FaultSet fs(topo);
  fs.fail_link(0, 0);  // 0000 - 0001
  EXPECT_FALSE(
      fault::dimension_ordered_detour(topo, fs, 0, 1).has_value());
  const auto path = fault::bfs_detour(topo, fs, 0, 1);
  ASSERT_TRUE(path.has_value());
  // Adjacent hypercube nodes share no common neighbour, so the shortest
  // relay route is 3 hops (two intermediates).
  EXPECT_EQ(path->size(), 4u);
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 1u);
}

TEST(FaultRoute, BfsReturnsNulloptWhenDisconnected) {
  const Topology topo(3);
  FaultSet fs(topo);
  for (hcube::Dim d = 0; d < 3; ++d) fs.fail_link(0, d);
  EXPECT_FALSE(fault::bfs_detour(topo, fs, 0, 7).has_value());
}

TEST(FaultRoute, SegmentEndpointsIdentityForEcubePath) {
  const Topology topo(4);
  const auto path = hcube::ecube_path(topo, 0b0000, 0b1011);
  const auto endpoints = fault::segment_endpoints(topo, path);
  EXPECT_EQ(endpoints, (std::vector<NodeId>{0b0000, 0b1011}))
      << "a dimension-ordered path needs no relays";
}

}  // namespace
}  // namespace hypercast
